// E19/E21 (DESIGN.md §3): substrate performance — raw throughput of the
// synchronous simulation kernel (packet-moves per second), the sparse
// active-set path vs the dense sweep on drain-heavy workloads, serial vs
// the thread pool, plus the scaling of a full sorting run with network
// size. This is the only bench about wall-clock speed rather than step
// counts. The JSON records (BENCH_engine.json) feed the CI perf-smoke
// guard (scripts/check_perf_regression.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

/// Process-wide peak resident set in MiB (getrusage ru_maxrss; KiB on
/// Linux). Monotone over the process lifetime, so a record's value is the
/// peak *up to* that run — meaningful as a guard ceiling, not as a
/// per-workload delta. 0 where the platform has no getrusage.
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

/// One timed run for the E21/E26 wall-clock records. `mode` names the
/// traversal policy and packet-storage layout under test ("dense",
/// "sparse", "dense_tiled", "sparse_tiled"); everything else about the run
/// is fixed by the workload.
struct WallRecord {
  std::string workload;  ///< "drain_two_phase", "loaded_route", "mega_partial"
  MeshSpec spec;
  std::string mode;
  std::int64_t steps = 0;
  std::int64_t sparse_steps = 0;
  std::int64_t moves = 0;
  double wall_ms = 0.0;
  double peak_rss_mb = 0.0;
  /// RSS ceiling for this record (MiB); 0 = unguarded. The perf-regression
  /// guard fails the run when peak_rss_mb exceeds it (the mega fixtures pin
  /// "footprint proportional to in-flight packets, not N" this way).
  double rss_guard_mb = 0.0;
};

void EmitWallRecord(BenchJson& json, const WallRecord& rec) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String("engine_wall");
  w.Key("workload").String(rec.workload);
  w.Key("spec").BeginObject();
  w.Key("d").Int(rec.spec.d);
  w.Key("n").Int(rec.spec.n);
  w.Key("wrap").String(rec.spec.wrap == Wrap::kTorus ? "torus" : "mesh");
  w.EndObject();
  w.Key("mode").String(rec.mode);
  w.Key("steps").Int(rec.steps);
  w.Key("sparse_steps").Int(rec.sparse_steps);
  w.Key("moves").Int(rec.moves);
  w.Key("wall_ms").Double(rec.wall_ms);
  w.Key("packet_steps_per_sec")
      .Double(rec.wall_ms > 0.0
                  ? static_cast<double>(rec.moves) * 1000.0 / rec.wall_ms
                  : 0.0);
  w.Key("peak_rss_mb").Double(rec.peak_rss_mb);
  if (rec.rss_guard_mb > 0.0) w.Key("rss_guard_mb").Double(rec.rss_guard_mb);
  w.EndObject();
  json.AddRaw(os.str());
}

SparseMode SparseFor(const std::string& mode) {
  return mode.rfind("dense", 0) == 0 ? SparseMode::kNever : SparseMode::kAuto;
}

LayoutMode LayoutFor(const std::string& mode) {
  return mode.size() >= 6 && mode.compare(mode.size() - 6, 6, "_tiled") == 0
             ? LayoutMode::kTiled
             : LayoutMode::kLegacy;
}

/// Engine configuration for one wall-record mode. Tiled modes force the
/// invariant checker off — with it on the engine falls back to legacy
/// storage (see EngineOptions::layout), which would silently bench the
/// wrong thing in a debug build.
EngineOptions EngineOptionsFor(const std::string& mode) {
  EngineOptions eopts;
  eopts.sparse = SparseFor(mode);
  eopts.layout = LayoutFor(mode);
  if (eopts.layout == LayoutMode::kTiled) {
    eopts.invariants = InvariantMode::kOff;
  }
  return eopts;
}

/// Two-phase reversal routing — the drain-heavy workload the sparse path
/// targets: each phase spends most of its steps below half occupancy.
WallRecord RunDrainTwoPhase(const MeshSpec& spec, const std::string& mode,
                            int reps) {
  Topology topo = spec.Build();
  const std::vector<ProcId> dest = ReversalPermutation(topo);
  TwoPhaseOptions opts;
  opts.g = spec.d == 2 ? 8 : 4;
  opts.seed = 99;
  opts.engine = EngineOptionsFor(mode);
  WallRecord rec;
  rec.workload = "drain_two_phase";
  rec.spec = spec;
  rec.mode = mode;
  rec.wall_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < rec.wall_ms) rec.wall_ms = ms;
    rec.steps = r.total_steps;
    rec.sparse_steps = r.phase1.sparse_steps + r.phase2.sparse_steps;
    rec.moves = r.phase1.moves + r.phase2.moves;
  }
  rec.peak_rss_mb = PeakRssMb();
  return rec;
}

/// Multi-permutation Route — the dense guard: occupancy stays near j
/// packets per processor for most of the run, so kAuto must not regress
/// against the plain dense sweep here.
WallRecord RunLoadedRoute(const MeshSpec& spec, const std::string& mode,
                          int reps) {
  Topology topo = spec.Build();
  constexpr int kPerms = 4;
  WallRecord rec;
  rec.workload = "loaded_route";
  rec.spec = spec;
  rec.mode = mode;
  rec.wall_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Network net(topo);
    Rng rng(7);
    std::int64_t id = 0;
    for (int t = 0; t < kPerms; ++t) {
      Rng perm_rng = rng.Split(static_cast<std::uint64_t>(t));
      auto dest = RandomPermutation(topo, perm_rng);
      for (ProcId p = 0; p < topo.size(); ++p) {
        Packet pkt;
        pkt.id = id++;
        pkt.key = static_cast<std::uint64_t>(pkt.id);
        pkt.dest = dest[static_cast<std::size_t>(p)];
        pkt.klass = static_cast<std::uint16_t>(t % spec.d);
        net.Add(p, pkt);
      }
    }
    Engine engine(topo, EngineOptionsFor(mode));
    const auto t0 = std::chrono::steady_clock::now();
    RouteResult r = engine.Route(net);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < rec.wall_ms) rec.wall_ms = ms;
    rec.steps = r.steps;
    rec.sparse_steps = r.sparse_steps;
    rec.moves = r.moves;
  }
  rec.peak_rss_mb = PeakRssMb();
  return rec;
}

/// Partial-occupancy drain: N/64 random packets on a mesh large enough
/// that a dense O(N) sweep dominates the per-step cost. This is the
/// workload class the tiled layout exists for — footprint and step cost
/// proportional to the tiles packets actually touch — so it is where the
/// layout must beat the legacy dense sweep, while the full-occupancy
/// drain fixtures above pin how much the tile indirection costs when
/// every processor is busy.
WallRecord RunDrainPartial(const MeshSpec& spec, const std::string& mode,
                           int reps) {
  Topology topo = spec.Build();
  const std::int64_t kPackets = topo.size() / 64;
  WallRecord rec;
  rec.workload = "drain_partial";
  rec.spec = spec;
  rec.mode = mode;
  rec.wall_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Network net(topo);
    Rng rng(512);
    const auto kN = static_cast<std::uint64_t>(topo.size());
    for (std::int64_t i = 0; i < kPackets; ++i) {
      Packet pkt;
      pkt.id = i;
      pkt.key = static_cast<std::uint64_t>(i);
      const auto src = static_cast<ProcId>(rng.Below(kN));
      pkt.dest = static_cast<ProcId>(rng.Below(kN));
      pkt.klass = static_cast<std::uint16_t>(i % spec.d);
      net.Add(src, pkt);
    }
    Engine engine(topo, EngineOptionsFor(mode));
    const auto t0 = std::chrono::steady_clock::now();
    RouteResult r = engine.Route(net);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < rec.wall_ms) rec.wall_ms = ms;
    rec.steps = r.steps;
    rec.sparse_steps = r.sparse_steps;
    rec.moves = r.moves;
  }
  rec.peak_rss_mb = PeakRssMb();
  return rec;
}

/// --mega: the tiled layout's reason to exist — a 2D n=4096 mesh (16.7M
/// processors) carrying a *partial* workload of 16384 random packets. The
/// legacy layout cannot even construct this engine (its parity mailbox
/// alone is 2 x N x 2d packet slots, tens of GB); the tiled arena
/// materializes only the tiles the packets touch. The record carries an
/// RSS guard: the run must fit in 6 GiB, which bounds the footprint by the
/// Network's queue directory + live tiles, not by a dense O(N) engine.
WallRecord RunMegaPartial() {
  const MeshSpec spec{2, 4096, Wrap::kMesh};
  const std::int64_t kPackets = 16384;
  Topology topo = spec.Build();
  WallRecord rec;
  rec.workload = "mega_partial";
  rec.spec = spec;
  rec.mode = "sparse_tiled";
  rec.rss_guard_mb = 6144.0;
  Network net(topo);
  Rng rng(4096);
  const auto kN = static_cast<std::uint64_t>(topo.size());
  for (std::int64_t i = 0; i < kPackets; ++i) {
    Packet pkt;
    pkt.id = i;
    pkt.key = static_cast<std::uint64_t>(i);
    const auto src = static_cast<ProcId>(rng.Below(kN));
    pkt.dest = static_cast<ProcId>(rng.Below(kN));
    pkt.klass = static_cast<std::uint16_t>(i % spec.d);
    net.Add(src, pkt);
  }
  Engine engine(topo, EngineOptionsFor(rec.mode));
  const auto t0 = std::chrono::steady_clock::now();
  RouteResult r = engine.Route(net);
  rec.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  rec.steps = r.steps;
  rec.sparse_steps = r.sparse_steps;
  rec.moves = r.moves;
  rec.peak_rss_mb = PeakRssMb();
  if (!r.completed) {
    std::fprintf(stderr, "bench_engine --mega: mega_partial hit the step cap\n");
  }
  return rec;
}

// --perfetto: one instrumented two-phase drain exported as a Chrome-trace
// timeline — phase spans (TraceContext via TwoPhaseOptions::trace), engine
// counter tracks (CongestionTrace probe), and thread-pool worker tracks.
// CI schema-checks this artifact with check_perf_regression.py
// validate-trace.
void WritePerfettoTrace(const OutputFlags& flags) {
  const MeshSpec spec{3, 16, Wrap::kMesh};
  Topology topo = spec.Build();
  const std::vector<ProcId> dest = ReversalPermutation(topo);
  ThreadPool pool(2);
  ThreadPoolActivity activity;
  pool.set_activity(&activity);
  TraceContext ctx;
  // --perf: phase spans carry hardware-counter deltas, which the Chrome
  // trace exports as span args (visible in the Perfetto UI).
  if (flags.perf && !ctx.EnablePerfCounters()) {
    std::fprintf(stderr, "bench_engine --perf: %s\n", ctx.perf_error().c_str());
  }
  CongestionTrace trace;
  MetricsRegistry metrics;
  TwoPhaseOptions opts;
  opts.g = 4;
  opts.seed = 99;
  opts.trace = &ctx;
  opts.engine.pool = &pool;
  opts.engine.probe = &trace;
  opts.engine.metrics = &metrics;
  RouteTwoPhase(topo, dest, opts);

  RunManifest manifest = MakeRunManifest(topo, opts.engine);
  manifest.seed = opts.seed;
  manifest.binary = "bench_engine";
  ChromeTraceWriter writer(manifest);
  writer.AddSpanTree(ctx);
  writer.AddCounters(trace);
  writer.AddWorkerActivity(activity);
  pool.set_activity(nullptr);
  writer.WriteFile(flags.perfetto);
}

// E24: per-phase hardware profile — one instrumented two-phase run per
// spec with perf_event_open counters scoped to each phase span. Emits one
// phase_perf record per span: steps, wall time, and (when the kernel
// grants counters) cycles / instructions / IPC / cache and branch misses.
// The wall-clock regression guard ignores these records — they carry no
// packet_steps_per_sec.
void EmitPhasePerf(BenchJson& json, const MeshSpec& spec) {
  Topology topo = spec.Build();
  const std::vector<ProcId> dest = ReversalPermutation(topo);
  TraceContext ctx;
  if (!ctx.EnablePerfCounters()) {
    std::fprintf(stderr, "bench_engine --perf: %s\n", ctx.perf_error().c_str());
  }
  TwoPhaseOptions opts;
  opts.g = spec.d == 2 ? 8 : 4;
  opts.seed = 99;
  opts.trace = &ctx;
  RouteTwoPhase(topo, dest, opts);
  for (std::size_t i = 1; i < ctx.nodes().size(); ++i) {
    const TraceContext::Node& n = ctx.nodes()[i];
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    w.Key("experiment").String("phase_perf");
    w.Key("spec").BeginObject();
    w.Key("d").Int(spec.d);
    w.Key("n").Int(spec.n);
    w.Key("wrap").String(spec.wrap == Wrap::kTorus ? "torus" : "mesh");
    w.EndObject();
    w.Key("phase").String(n.name);
    w.Key("top_level").Bool(n.parent == 0);
    w.Key("steps").Int(n.stats.steps);
    w.Key("moves").Int(n.stats.moves);
    w.Key("wall_ms").Double(n.end_ms >= 0.0 ? n.end_ms - n.begin_ms : 0.0);
    if (n.perf.cycles >= 0) w.Key("cycles").Int(n.perf.cycles);
    if (n.perf.instructions >= 0) {
      w.Key("instructions").Int(n.perf.instructions);
    }
    if (n.perf.ipc() >= 0.0) w.Key("ipc").Double(n.perf.ipc());
    if (n.perf.cache_misses >= 0) {
      w.Key("cache_misses").Int(n.perf.cache_misses);
    }
    if (n.perf.branch_misses >= 0) {
      w.Key("branch_misses").Int(n.perf.branch_misses);
    }
    w.EndObject();
    json.AddRaw(os.str());
  }
}

// E21 wall-clock records, keyed (workload, spec, mode): min-of-reps wall
// time and derived packet-moves-per-second throughput for the dense sweep
// vs the sparse active-set path on the same inputs.
void WriteThroughputJson(const OutputFlags& flags) {
  if (!flags.WantsJson()) return;
  BenchJson json("engine_wall");
  // The primary drain spec and its engine configuration describe the
  // artifact: real topology shape, sparse mode, and options hash instead
  // of the placeholder zero manifest (records sweeping other specs carry
  // their own spec object).
  const MeshSpec primary{2, 128, Wrap::kMesh};
  {
    RunManifest m = MakeRunManifest(primary.Build(), EngineOptionsFor("sparse"));
    m.binary = "bench_engine";
    m.seed = 99;  // the drain workload's two-phase seed
    json.SetManifest(std::move(m));
  }
  // --quick keeps the exact spec set (the regression guard matches records
  // by (workload, spec, mode), so CI must produce the same keys as the
  // committed baseline) and only drops the repetitions.
  const int reps = flags.quick ? 1 : 3;
  const std::vector<MeshSpec> drain_specs = {primary, {3, 32, Wrap::kMesh}};
  const std::vector<MeshSpec> loaded_specs = {{2, 64, Wrap::kMesh}};
  for (const MeshSpec& spec : drain_specs) {
    for (const char* mode : {"dense", "sparse", "dense_tiled", "sparse_tiled"}) {
      EmitWallRecord(json, RunDrainTwoPhase(spec, mode, reps));
    }
  }
  for (const MeshSpec& spec : loaded_specs) {
    for (const char* mode : {"dense", "sparse", "dense_tiled", "sparse_tiled"}) {
      EmitWallRecord(json, RunLoadedRoute(spec, mode, reps));
    }
  }
  const std::vector<MeshSpec> partial_specs = {{2, 512, Wrap::kMesh}};
  for (const MeshSpec& spec : partial_specs) {
    for (const char* mode : {"dense", "sparse", "dense_tiled", "sparse_tiled"}) {
      EmitWallRecord(json, RunDrainPartial(spec, mode, reps));
    }
  }
  // E26 mega fixture: opt-in (multi-GB RSS, minutes of wall time), so the
  // committed baseline includes it but CI smoke loops skip it. The guard
  // only compares keys present on both sides.
  if (flags.mega) EmitWallRecord(json, RunMegaPartial());
  // --perf --json: append the E24 per-phase hardware records for the 2D
  // and 3D routing pipelines.
  if (flags.perf) {
    for (const MeshSpec& spec :
         {MeshSpec{2, 64, Wrap::kMesh}, MeshSpec{3, 16, Wrap::kMesh}}) {
      EmitPhasePerf(json, spec);
    }
  }
  json.WriteFile(flags.json);
}

void BM_EngineRandomPermutation(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Topology topo(d, n, Wrap::kMesh);
  std::int64_t moves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(1);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % d);
      net.Add(p, pkt);
    }
    state.ResumeTiming();
    Engine engine(topo);
    RouteResult r = engine.Route(net);
    moves = r.moves;
    benchmark::DoNotOptimize(r.steps);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["procs"] = static_cast<double>(topo.size());
}

BENCHMARK(BM_EngineRandomPermutation)
    ->Args({2, 32})
    ->Args({2, 64})
    ->Args({2, 128})
    ->Args({3, 32})
    ->Args({4, 12})
    ->Unit(benchmark::kMillisecond);

void BM_EngineWithThreads(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  Topology topo(3, 32, Wrap::kMesh);
  ThreadPool pool(workers);
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(2);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % 3);
      net.Add(p, pkt);
    }
    state.ResumeTiming();
    EngineOptions opts;
    opts.pool = &pool;
    Engine engine(topo, opts);
    benchmark::DoNotOptimize(engine.Route(net).steps);
  }
  state.counters["workers"] = static_cast<double>(workers);
}

BENCHMARK(BM_EngineWithThreads)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FullSortingRun(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 3;
  for (auto _ : state) {
    SortRow row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["procs"] = static_cast<double>(spec.size());
}

BENCHMARK(BM_FullSortingRun)
    ->Args({2, 64, 4})
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  if (flags.WantsPerfetto()) mdmesh::WritePerfettoTrace(flags);
  mdmesh::WriteThroughputJson(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
