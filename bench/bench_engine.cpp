// E19 (DESIGN.md §3): substrate performance — raw throughput of the
// synchronous simulation kernel (packet-moves per second), serial vs the
// thread pool, plus the scaling of a full sorting run with network size.
// This is the only bench about wall-clock speed rather than step counts.
#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

// Bespoke throughput record: the schema's steps/phases fields don't fit a
// wall-clock bench, so emit {experiment, spec, steps, moves, wall_ms,
// moves_per_sec} per measured network.
void WriteThroughputJson(const OutputFlags& flags) {
  if (!flags.WantsJson()) return;
  BenchJson json("engine_throughput");
  std::vector<MeshSpec> specs = {{2, 32, Wrap::kMesh},
                                 {2, 64, Wrap::kMesh},
                                 {3, 32, Wrap::kMesh}};
  if (flags.quick) specs.resize(1);
  for (const MeshSpec& spec : specs) {
    Topology topo = spec.Build();
    Network net(topo);
    Rng rng(1);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % spec.d);
      net.Add(p, pkt);
    }
    Engine engine(topo);
    const auto t0 = std::chrono::steady_clock::now();
    RouteResult r = engine.Route(net);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    w.Key("experiment").String("engine_throughput");
    w.Key("spec").BeginObject();
    w.Key("d").Int(spec.d);
    w.Key("n").Int(spec.n);
    w.Key("wrap").String("mesh");
    w.EndObject();
    w.Key("steps").Int(r.steps);
    w.Key("moves").Int(r.moves);
    w.Key("wall_ms").Double(wall_ms);
    w.Key("moves_per_sec")
        .Double(wall_ms > 0.0 ? static_cast<double>(r.moves) * 1000.0 / wall_ms
                              : 0.0);
    w.EndObject();
    json.AddRaw(os.str());
  }
  json.WriteFile(flags.json);
}

void BM_EngineRandomPermutation(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Topology topo(d, n, Wrap::kMesh);
  std::int64_t moves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(1);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % d);
      net.Add(p, pkt);
    }
    state.ResumeTiming();
    Engine engine(topo);
    RouteResult r = engine.Route(net);
    moves = r.moves;
    benchmark::DoNotOptimize(r.steps);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["procs"] = static_cast<double>(topo.size());
}

BENCHMARK(BM_EngineRandomPermutation)
    ->Args({2, 32})
    ->Args({2, 64})
    ->Args({2, 128})
    ->Args({3, 32})
    ->Args({4, 12})
    ->Unit(benchmark::kMillisecond);

void BM_EngineWithThreads(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  Topology topo(3, 32, Wrap::kMesh);
  ThreadPool pool(workers);
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(2);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % 3);
      net.Add(p, pkt);
    }
    state.ResumeTiming();
    EngineOptions opts;
    opts.pool = &pool;
    Engine engine(topo, opts);
    benchmark::DoNotOptimize(engine.Route(net).steps);
  }
  state.counters["workers"] = static_cast<double>(workers);
}

BENCHMARK(BM_EngineWithThreads)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FullSortingRun(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 3;
  for (auto _ : state) {
    SortRow row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["procs"] = static_cast<double>(spec.size());
}

BENCHMARK(BM_FullSortingRun)
    ->Args({2, 64, 4})
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::WriteThroughputJson(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
