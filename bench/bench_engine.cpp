// E19 (DESIGN.md §3): substrate performance — raw throughput of the
// synchronous simulation kernel (packet-moves per second), serial vs the
// thread pool, plus the scaling of a full sorting run with network size.
// This is the only bench about wall-clock speed rather than step counts.
#include <benchmark/benchmark.h>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void BM_EngineRandomPermutation(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Topology topo(d, n, Wrap::kMesh);
  std::int64_t moves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(1);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % d);
      net.Add(p, pkt);
    }
    state.ResumeTiming();
    Engine engine(topo);
    RouteResult r = engine.Route(net);
    moves = r.moves;
    benchmark::DoNotOptimize(r.steps);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["procs"] = static_cast<double>(topo.size());
}

BENCHMARK(BM_EngineRandomPermutation)
    ->Args({2, 32})
    ->Args({2, 64})
    ->Args({2, 128})
    ->Args({3, 32})
    ->Args({4, 12})
    ->Unit(benchmark::kMillisecond);

void BM_EngineWithThreads(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  Topology topo(3, 32, Wrap::kMesh);
  ThreadPool pool(workers);
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(2);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % 3);
      net.Add(p, pkt);
    }
    state.ResumeTiming();
    EngineOptions opts;
    opts.pool = &pool;
    Engine engine(topo, opts);
    benchmark::DoNotOptimize(engine.Route(net).steps);
  }
  state.counters["workers"] = static_cast<double>(workers);
}

BENCHMARK(BM_EngineWithThreads)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FullSortingRun(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 3;
  for (auto _ : state) {
    SortRow row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["procs"] = static_cast<double>(spec.size());
}

BENCHMARK(BM_FullSortingRun)
    ->Args({2, 64, 4})
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

BENCHMARK_MAIN();
