// E14 (DESIGN.md §3): Theorem 5.1 — deterministic permutation routing on the
// d-dimensional mesh in D + n + o(n) steps via block-granular midpoints
// S_nu(X,Y) with nu = n/2, vs the plain greedy dimension-order baseline.
//
// Shape to reproduce: the two-phase router stays near (D + n)/D on the
// structured worst cases (reversal, transpose) where plain greedy either
// also does fine (reversal — it is a "bit-complement"-style permutation) or
// funnels badly (transpose concentrates n packets on single diagonal links).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E14: two-phase permutation routing on meshes (Theorem 5.1, "
              "claimed <= D + n + o(n)) ==\n");
  struct Config {
    MeshSpec spec;
    int g;
  };
  std::vector<Config> configs = {
      {{2, 32, Wrap::kMesh}, 4}, {{2, 64, Wrap::kMesh}, 4},
      {{2, 128, Wrap::kMesh}, 8}, {{3, 16, Wrap::kMesh}, 4},
      {{3, 32, Wrap::kMesh}, 4}, {{4, 8, Wrap::kMesh}, 2},
  };
  if (flags.quick) configs.resize(1);
  BenchJson json("two_phase_mesh");
  {
    RunManifest m = json.manifest();
    m.binary = "bench_routing_mesh";
    json.SetManifest(std::move(m));
  }
  std::vector<RoutingRow> rows;
  for (const Config& config : configs) {
    for (const char* perm : {"random", "reversal", "transpose"}) {
      TwoPhaseOptions opts;
      opts.g = config.g;
      opts.seed = 99;
      rows.push_back(RunRoutingExperiment(config.spec, perm, opts));
      json.Add(rows.back());
    }
  }
  MakeRoutingTable(rows).Print();
  std::printf("claim: 2phase/D <= (D + n)/D + o(1) on EVERY permutation; "
              "plain greedy's funnels scale as n^(d-1)\n");
  for (const Config& config : configs) {
    const double claimed = 1.0 + static_cast<double>(config.spec.n) /
                                     static_cast<double>(config.spec.diameter());
    std::printf("  %s: claimed (D+n)/D = %.3f\n",
                config.spec.ToString().c_str(), claimed);
  }
  std::printf("\n");

  if (flags.WantsTrace()) {
    // Per-step congestion trace of the transpose worst case (the funnel the
    // two-phase router exists to avoid), viewable with examples/trace_viewer.
    const MeshSpec spec = configs.front().spec;
    Topology topo = spec.Build();
    std::vector<ProcId> dest = TransposePermutation(topo);
    CongestionTrace trace;
    TwoPhaseOptions opts;
    opts.g = configs.front().g;
    opts.seed = 99;
    opts.engine.probe = &trace;
    RouteTwoPhase(topo, dest, opts);
    std::ofstream csv = OpenOutputFile(flags.trace_csv, "--trace-csv");
    trace.WriteCsv(csv);
    std::fprintf(stderr, "wrote %zu trace sample(s) to %s\n",
                 trace.samples().size(), flags.trace_csv.c_str());
  }

  if (flags.quick) {
    if (flags.WantsJson()) json.WriteFile(flags.json);
    return;
  }

  // The paper's Section 6 open question: "one might try to overlap the two
  // routing phases". Measured answer: overlapping (packets retarget at
  // their midpoints, no barrier) removes the phase-boundary idle time and
  // hits the DIAMETER BOUND exactly on reversal.
  std::printf("== open question (Sec. 6): overlapped vs sequential phases "
              "==\n");
  Table overlap_table({"network", "perm", "D", "sequential", "overlapped",
                       "overlapped/D", "delivered"});
  for (const Config& config :
       {Config{{2, 64, Wrap::kMesh}, 4}, Config{{2, 128, Wrap::kMesh}, 8},
        Config{{3, 32, Wrap::kMesh}, 4}}) {
    for (const char* perm : {"random", "reversal", "transpose"}) {
      TwoPhaseOptions seq;
      seq.g = config.g;
      seq.seed = 99;
      RoutingRow sequential = RunRoutingExperiment(config.spec, perm, seq);
      TwoPhaseOptions ovl = seq;
      ovl.overlap = true;
      RoutingRow overlapped = RunRoutingExperiment(config.spec, perm, ovl);
      overlap_table.Row()
          .Cell(config.spec.ToString())
          .Cell(perm)
          .Cell(sequential.diameter)
          .Cell(sequential.two_phase.total_steps)
          .Cell(overlapped.two_phase.total_steps)
          .Cell(overlapped.two_phase.steps_over_diameter(overlapped.diameter))
          .Cell(overlapped.two_phase.delivered ? "yes" : "NO");
    }
  }
  overlap_table.Print();
  std::printf("finding: overlapping achieves D exactly on reversal and cuts "
              "0.05-0.55 D elsewhere — evidence toward the conjectured "
              "D + o(n) routing\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
}

void BM_TwoPhaseMesh(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  const char* perms[] = {"random", "reversal", "transpose"};
  TwoPhaseOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 99;
  RoutingRow row;
  for (auto _ : state) {
    row = RunRoutingExperiment(spec, perms[state.range(3)], opts);
    benchmark::DoNotOptimize(row.two_phase.total_steps);
  }
  state.counters["2phase/D"] =
      row.two_phase.steps_over_diameter(row.diameter);
  state.counters["greedy/D"] = row.baseline.steps_over_diameter();
  state.counters["delivered"] = row.two_phase.delivered ? 1 : 0;
}

BENCHMARK(BM_TwoPhaseMesh)
    ->Args({2, 128, 8, 2})  // transpose
    ->Args({2, 128, 8, 1})  // reversal
    ->Args({3, 32, 4, 0})   // random
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
