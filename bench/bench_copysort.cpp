// E7 (DESIGN.md §3): Theorem 3.2 — CopySort reaches 5D/4 + o(n) on the
// d-dimensional mesh by making one copy of each packet (bound proven for
// d >= 8; the copy trick already pays off at every simulable d).
//
// Shape to reproduce: ratio(CopySort) < ratio(SimpleSort), trending toward
// 1.25 vs 1.5. The d >= 8 point runs at n = 4 (65536 processors) where the
// o(n) machinery is far outside its regime — reported honestly with its
// fix-up round count (see DESIGN.md §5).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E7: CopySort (Theorem 3.2, claimed 1.25 D, d >= 8) vs "
              "SimpleSort (1.5 D) ==\n");
  struct Config {
    MeshSpec spec;
    int g;
  };
  std::vector<Config> configs = {
      {{2, 64, Wrap::kMesh}, 4}, {{2, 128, Wrap::kMesh}, 8},
      {{3, 16, Wrap::kMesh}, 4}, {{3, 32, Wrap::kMesh}, 4},
      {{4, 16, Wrap::kMesh}, 4}, {{6, 4, Wrap::kMesh}, 2},
      {{8, 4, Wrap::kMesh}, 2},
  };
  if (flags.quick) configs.resize(1);
  BenchJson json("copy_sort");
  std::vector<SortRow> rows;
  for (const Config& config : configs) {
    for (SortAlgo algo : {SortAlgo::kCopy, SortAlgo::kSimple}) {
      SortOptions opts;
      opts.g = config.g;
      opts.seed = 4242;
      rows.push_back(RunSortExperiment(algo, config.spec, opts));
      json.Add(rows.back());
    }
  }
  MakeSortTable(rows).Print();
  std::printf("claim: CopySort's copy+delete halves the second routing "
              "phase: ratio -> 1.25 (vs SimpleSort's 1.5)\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
  if (flags.quick) return;

  // Lemma 3.3 audit: the survivor phase's realized max distance vs D/2.
  std::printf("== Lemma 3.3: survivor routing distance <= D/2 + O(b) ==\n");
  Table table({"network", "D", "survivor max_dist", "D/2", "slack(b units)"});
  for (const Config& config : configs) {
    SortOptions opts;
    opts.g = config.g;
    opts.seed = 4242;
    SortRow row = RunSortExperiment(SortAlgo::kCopy, config.spec, opts);
    std::int64_t survivor_dist = 0;
    for (const PhaseStats& phase : row.result.phases) {
      if (phase.name == "route-survivors") survivor_dist = phase.max_distance;
    }
    const std::int64_t half = row.diameter / 2;
    const int b = config.spec.n / config.g;
    table.Row()
        .Cell(config.spec.ToString())
        .Cell(row.diameter)
        .Cell(survivor_dist)
        .Cell(half)
        .Cell(static_cast<double>(survivor_dist - half) / b, 2);
  }
  table.Print();
  std::printf("\n");
}

void BM_CopySort(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 4242;
  SortRow row;
  for (auto _ : state) {
    row = RunSortExperiment(SortAlgo::kCopy, spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["routing"] = static_cast<double>(row.result.routing_steps);
  state.counters["ratio"] = row.ratio;
  state.counters["claimed"] = row.claimed;
  state.counters["sorted"] = row.result.sorted ? 1 : 0;
}

BENCHMARK(BM_CopySort)
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Args({8, 4, 2})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
