// E1-E3 (DESIGN.md §3): greedy routing of simultaneous permutations.
//
//   Lemma 2.1: up to 2d random permutations route DISTANCE-OPTIMALLY on the
//              d-dimensional torus (max overshoot o(n)).
//   Lemma 2.2/2.3: 2 resp. floor(d/2) permutations on the mesh; d
//              simultaneous permutations are NOT distance-optimal on meshes.
//   Leighton [13] baseline: one random permutation, plain greedy.
//
// The table sweeps the permutation count j at several (d, n, topology) and
// reports max overshoot / n — the distance-optimality measure. The paper's
// shape: overshoot stays a small multiple of n up to the lemma's j, and
// grows sharply beyond it (clearest on the mesh past floor(d/2)).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E1-E3: distance-optimality of extended greedy routing "
              "(Lemmas 2.1-2.3) ==\n");
  std::vector<GreedyRow> rows;
  struct Sweep {
    MeshSpec spec;
    std::vector<int> perm_counts;
  };
  std::vector<Sweep> sweeps = {
      {{2, 32, Wrap::kMesh}, {1, 2, 4}},        // Lemma 2.2 regime is j<=1..2
      {{3, 16, Wrap::kMesh}, {1, 2, 3, 6}},     // floor(d/2)=1 .. beyond
      {{4, 8, Wrap::kMesh}, {1, 2, 4, 8}},      // floor(d/2)=2 .. beyond
      {{2, 32, Wrap::kTorus}, {2, 4, 8}},       // Lemma 2.1: 2d = 4
      {{3, 16, Wrap::kTorus}, {3, 6, 12}},      // 2d = 6
      {{4, 8, Wrap::kTorus}, {4, 8, 16}},       // 2d = 8
  };
  if (flags.quick) sweeps = {{{2, 32, Wrap::kMesh}, {1, 2}}};
  BenchJson json("greedy");
  for (const Sweep& sweep : sweeps) {
    for (int j : sweep.perm_counts) {
      rows.push_back(RunGreedyExperiment(sweep.spec, j, 42));
      json.Add(rows.back());
    }
  }
  MakeGreedyTable(rows).Print();
  std::printf(
      "claim: overshoot/n stays O(1) for j <= 2d (torus) resp. floor(d/2) "
      "(mesh)\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
  if (flags.quick) return;

  // The deterministic stand-in: unshuffle permutations route like random
  // ones (Section 2.1's claim).
  std::printf("== unshuffle permutations route like random ones ==\n");
  Table table({"network", "perms", "kind", "steps", "max_overshoot"});
  for (int j : {1, 2}) {
    MeshSpec spec{3, 16, Wrap::kMesh};
    Topology topo = spec.Build();
    BlockGrid grid(topo, 2);
    GreedyOptions opts;
    opts.seed = 7;
    GreedyRun unshuffled = RouteUnshufflePermutations(topo, grid, j, opts);
    GreedyRun random = RouteRandomPermutations(topo, j, opts);
    table.Row()
        .Cell(spec.ToString())
        .Cell(static_cast<std::int64_t>(j))
        .Cell("unshuffle")
        .Cell(unshuffled.route.steps)
        .Cell(unshuffled.route.max_overshoot);
    table.Row()
        .Cell(spec.ToString())
        .Cell(static_cast<std::int64_t>(j))
        .Cell("random")
        .Cell(random.route.steps)
        .Cell(random.route.max_overshoot);
  }
  table.Print();
  std::printf("\n");
}

void BM_GreedyPermutations(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)),
                      state.range(2) != 0 ? Wrap::kTorus : Wrap::kMesh};
  const int j = static_cast<int>(state.range(3));
  GreedyRow row;
  for (auto _ : state) {
    row = RunGreedyExperiment(spec, j, 42);
    benchmark::DoNotOptimize(row.run.route.steps);
  }
  state.counters["steps"] = static_cast<double>(row.run.route.steps);
  state.counters["steps/D"] = row.run.steps_over_diameter();
  state.counters["overshoot"] = static_cast<double>(row.run.route.max_overshoot);
  state.counters["max_queue"] = static_cast<double>(row.run.route.max_queue);
}

BENCHMARK(BM_GreedyPermutations)
    ->Args({2, 32, 0, 1})
    ->Args({3, 16, 0, 1})
    ->Args({3, 16, 1, 6})
    ->Args({4, 8, 1, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
