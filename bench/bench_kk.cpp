// E5/E9 (DESIGN.md §3): k-k sorting.
//
//   Corollary 3.1.1: k <= floor(d/4) packets per processor sort on the mesh
//                    in the same 3D/2 + o(n) (the spare extended-greedy
//                    bandwidth of Lemma 2.3 absorbs the load).
//   Corollary 3.3.1: d-d sorting on the d-dimensional torus in 3D/2 + o(n)
//                    (Lemma 2.1's 2d-permutation bandwidth).
//
// Shape to reproduce: the ratio degrades only mildly as k grows up to the
// corollary's limit, and the k = d torus point stays in the same regime.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E5: k-k SimpleSort on meshes (Corollary 3.1.1) ==\n");
  struct Config {
    MeshSpec spec;
    int g;
    int k;
  };
  std::vector<Config> mesh_configs = {
      {{2, 64, Wrap::kMesh}, 4, 1}, {{2, 64, Wrap::kMesh}, 4, 2},
      {{3, 16, Wrap::kMesh}, 4, 1}, {{3, 16, Wrap::kMesh}, 4, 2},
      {{4, 8, Wrap::kMesh}, 2, 1},  {{4, 8, Wrap::kMesh}, 2, 2},
  };
  if (flags.quick) mesh_configs.resize(2);
  BenchJson json("kk_sort");
  Table mesh_table({"network", "k", "D", "routing", "ratio", "claimed",
                    "max_q", "sorted"});
  for (const Config& config : mesh_configs) {
    SortOptions opts;
    opts.g = config.g;
    opts.k = config.k;
    opts.seed = 31337;
    SortRow row = RunSortExperiment(SortAlgo::kSimple, config.spec, opts);
    json.Add(row);
    mesh_table.Row()
        .Cell(config.spec.ToString())
        .Cell(static_cast<std::int64_t>(config.k))
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(1.5, 2)
        .Cell(row.result.max_queue)
        .Cell(row.result.sorted ? "yes" : "NO");
  }
  mesh_table.Print();
  if (flags.quick) {
    if (flags.WantsJson()) json.WriteFile(flags.json);
    return;
  }
  std::printf("\n== E9: d-d TorusSort (Corollary 3.3.1, k = d) ==\n");
  const std::vector<Config> torus_configs = {
      {{2, 32, Wrap::kTorus}, 4, 2},
      {{2, 64, Wrap::kTorus}, 4, 2},
      {{3, 16, Wrap::kTorus}, 4, 3},
      {{4, 8, Wrap::kTorus}, 2, 4},
  };
  Table torus_table({"network", "k", "D", "routing", "ratio", "claimed",
                     "max_q", "sorted"});
  for (const Config& config : torus_configs) {
    SortOptions opts;
    opts.g = config.g;
    opts.k = config.k;
    opts.seed = 31337;
    SortRow row = RunSortExperiment(SortAlgo::kTorus, config.spec, opts);
    json.Add(row);
    torus_table.Row()
        .Cell(config.spec.ToString())
        .Cell(static_cast<std::int64_t>(config.k))
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(1.5, 2)
        .Cell(row.result.max_queue)
        .Cell(row.result.sorted ? "yes" : "NO");
  }
  torus_table.Print();
  std::printf("claim: k-k loads up to the corollary limits keep the same "
              "leading coefficient (bisection forces >= kn/2 resp. kn/4 for "
              "large k)\n\n");

  // Where the corollaries' diameter-dominated regime ends: the k at which
  // the Section 1.1 bisection bound kn/2 (mesh) / kn/4 (torus) overtakes
  // 1.5 D — beyond it the k >= 4d algorithms of [5, 6, 12] take over.
  std::printf("== bisection crossover: diameter regime vs bisection regime "
              "==\n");
  Table cross({"network", "D", "bisection width", "LB at k=1", "LB at k=4d",
               "crossover k (vs 1.5D)"});
  for (const MeshSpec& spec :
       {MeshSpec{2, 16, Wrap::kMesh}, MeshSpec{3, 16, Wrap::kMesh},
        MeshSpec{4, 8, Wrap::kMesh}, MeshSpec{8, 4, Wrap::kMesh},
        MeshSpec{3, 16, Wrap::kTorus}, MeshSpec{4, 8, Wrap::kTorus}}) {
    Topology topo = spec.Build();
    cross.Row()
        .Cell(spec.ToString())
        .Cell(topo.Diameter())
        .Cell(BisectionWidth(topo))
        .Cell(KkBisectionBound(topo, 1), 1)
        .Cell(KkBisectionBound(topo, 4 * spec.d), 1)
        .Cell(BisectionCrossoverK(topo, 1.5));
  }
  cross.Print();
  std::printf("claim: the crossover k grows with d — small-k sorting is "
              "diameter-bound, matching Corollary 3.1.1's k <= d/4 regime\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
}

void BM_KkSort(benchmark::State& state) {
  const bool torus = state.range(0) != 0;
  const MeshSpec spec{static_cast<int>(state.range(1)),
                      static_cast<int>(state.range(2)),
                      torus ? Wrap::kTorus : Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(3));
  opts.k = static_cast<int>(state.range(4));
  opts.seed = 31337;
  SortRow row;
  for (auto _ : state) {
    row = RunSortExperiment(torus ? SortAlgo::kTorus : SortAlgo::kSimple, spec,
                            opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["ratio"] = row.ratio;
  state.counters["k"] = static_cast<double>(opts.k);
  state.counters["sorted"] = row.result.sorted ? 1 : 0;
}

BENCHMARK(BM_KkSort)
    ->Args({0, 2, 64, 4, 2})
    ->Args({0, 4, 8, 2, 2})
    ->Args({1, 3, 16, 4, 3})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
