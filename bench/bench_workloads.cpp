// E22/E23 (DESIGN.md §3): dynamic workloads under open-loop injection.
// E22 sweeps the offered rate for several traffic patterns on a 3D mesh and
// reports the latency quantiles and accepted throughput at each point —
// latency rises toward the measured saturation rate. E23 bisects for the
// saturation rate itself across dimension, side, and engine traversal
// policy. The workload_wall records (BENCH_workloads.json) feed the CI
// perf-smoke guard (scripts/check_perf_regression.py) alongside the engine
// bench.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

SparseMode ModeFor(const std::string& mode) {
  return mode == "dense" ? SparseMode::kNever : SparseMode::kAuto;
}

/// Shared windowing for every run in this bench. --quick shrinks the
/// windows; the record keys (experiment, pattern, spec, rate, mode) are
/// unaffected, so CI output stays comparable to the committed baseline.
DriverOptions Windows(bool quick) {
  DriverOptions d;
  d.warmup_steps = quick ? 32 : 128;
  d.measure_steps = quick ? 128 : 512;
  d.seed = 11;
  return d;
}

void WriteSpec(JsonWriter& w, const MeshSpec& spec) {
  w.Key("spec").BeginObject();
  w.Key("d").Int(spec.d);
  w.Key("n").Int(spec.n);
  w.Key("wrap").String(spec.wrap == Wrap::kTorus ? "torus" : "mesh");
  w.EndObject();
}

// ---------------------------------------------------------------------------
// E22: latency vs offered rate, per pattern.

struct LatencyPoint {
  MeshSpec spec;
  WorkloadResult run;
};

void EmitLatencyRecord(BenchJson& json, const LatencyPoint& pt) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String("workload_latency");
  WriteSpec(w, pt.spec);
  w.Key("pattern").String(pt.run.pattern);
  w.Key("rate").Double(pt.run.driver.rate);
  w.Key("seed").UInt(pt.run.driver.seed);
  w.Key("warmup_steps").Int(pt.run.driver.warmup_steps);
  w.Key("measure_steps").Int(pt.run.driver.measure_steps);
  w.Key("offered").Int(pt.run.offered);
  w.Key("delivered").Int(pt.run.delivered);
  w.Key("throughput").Double(pt.run.throughput);
  w.Key("stable").Bool(pt.run.stable);
  w.Key("latency_count").Int(pt.run.latency_count);
  w.Key("latency_mean").Double(pt.run.latency_mean);
  w.Key("latency_p50").Double(pt.run.latency_p50);
  w.Key("latency_p95").Double(pt.run.latency_p95);
  w.Key("latency_p99").Double(pt.run.latency_p99);
  w.Key("latency_max").Int(pt.run.latency_max);
  w.Key("steps").Int(pt.run.route.steps);
  w.Key("peak_active_procs").Int(pt.run.route.peak_active_procs);
  w.EndObject();
  json.AddRaw(os.str());
}

const std::vector<PatternKind>& LatencyPatterns() {
  static const std::vector<PatternKind> kPatterns = {
      PatternKind::kUniform, PatternKind::kBitReversal,
      PatternKind::kTranspose, PatternKind::kHotSpot};
  return kPatterns;
}

std::vector<LatencyPoint> RunLatencySweep(bool quick) {
  const MeshSpec spec{3, 8, Wrap::kMesh};
  const Topology topo = spec.Build();
  const std::vector<double> rates = {0.02, 0.05, 0.10, 0.20, 0.40};
  std::vector<LatencyPoint> points;
  for (PatternKind kind : LatencyPatterns()) {
    TrafficPattern pattern(topo, kind, /*seed=*/17);
    for (double rate : rates) {
      DriverOptions dopts = Windows(quick);
      dopts.rate = rate;
      points.push_back({spec, RunOpenLoop(topo, pattern, dopts)});
    }
  }
  return points;
}

void PrintLatencyTable(const std::vector<LatencyPoint>& points) {
  std::printf("E22: open-loop latency vs offered rate (3D mesh, n=8)\n");
  Table table({"pattern", "rate", "throughput", "p50", "p95", "p99",
               "stable"});
  for (const LatencyPoint& pt : points) {
    table.Row()
        .Cell(pt.run.pattern)
        .Cell(pt.run.driver.rate, 2)
        .Cell(pt.run.throughput, 3)
        .Cell(pt.run.latency_p50, 1)
        .Cell(pt.run.latency_p95, 1)
        .Cell(pt.run.latency_p99, 1)
        .Cell(pt.run.stable ? "yes" : "NO");
  }
  table.Print();
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// E23: saturation rate vs dimension, side, and traversal policy.

struct SaturationPoint {
  MeshSpec spec;
  std::string pattern;
  std::string mode;
  SaturationResult result;
};

void EmitSaturationRecord(BenchJson& json, const SaturationPoint& pt) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String("workload_saturation");
  WriteSpec(w, pt.spec);
  w.Key("pattern").String(pt.pattern);
  w.Key("mode").String(pt.mode);
  w.Key("saturation_rate").Double(pt.result.rate);
  w.Key("unstable_rate").Double(pt.result.unstable_rate);
  w.Key("probes").Int(static_cast<std::int64_t>(pt.result.probes.size()));
  w.EndObject();
  json.AddRaw(os.str());
}

std::vector<SaturationPoint> RunSaturationSweep(bool quick) {
  const std::vector<MeshSpec> specs = {{2, 8, Wrap::kMesh},
                                       {2, 16, Wrap::kMesh},
                                       {3, 8, Wrap::kMesh},
                                       {4, 4, Wrap::kMesh}};
  SaturationOptions sopts;
  sopts.iterations = quick ? 4 : 6;
  std::vector<SaturationPoint> points;
  for (const MeshSpec& spec : specs) {
    const Topology topo = spec.Build();
    TrafficPattern pattern(topo, PatternKind::kUniform, /*seed=*/17);
    for (const char* mode : {"dense", "sparse"}) {
      EngineOptions eopts;
      eopts.sparse = ModeFor(mode);
      points.push_back({spec, pattern.name(), mode,
                        FindSaturationRate(topo, pattern, Windows(quick),
                                           sopts, eopts)});
    }
  }
  return points;
}

void PrintSaturationTable(const std::vector<SaturationPoint>& points) {
  std::printf("E23: saturation rate (uniform traffic) vs d, n, policy\n");
  Table table({"spec", "mode", "saturation", "unstable_at"});
  for (const SaturationPoint& pt : points) {
    table.Row()
        .Cell(pt.spec.ToString())
        .Cell(pt.mode)
        .Cell(pt.result.rate, 4)
        .Cell(pt.result.unstable_rate, 4);
  }
  table.Print();
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// workload_wall: timed open-loop runs for the CI perf guard.

struct WallRecord {
  std::string workload;
  MeshSpec spec;
  std::string mode;
  std::int64_t steps = 0;
  std::int64_t moves = 0;
  double wall_ms = 0.0;
};

void EmitWallRecord(BenchJson& json, const WallRecord& rec) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String("workload_wall");
  w.Key("workload").String(rec.workload);
  WriteSpec(w, rec.spec);
  w.Key("mode").String(rec.mode);
  w.Key("steps").Int(rec.steps);
  w.Key("moves").Int(rec.moves);
  w.Key("wall_ms").Double(rec.wall_ms);
  w.Key("packet_steps_per_sec")
      .Double(rec.wall_ms > 0.0
                  ? static_cast<double>(rec.moves) * 1000.0 / rec.wall_ms
                  : 0.0);
  w.EndObject();
  json.AddRaw(os.str());
}

/// One timed open-loop run (uniform traffic at a below-saturation rate):
/// min-of-reps wall time over the full injection + routing loop.
WallRecord RunWall(const MeshSpec& spec, const std::string& mode, bool quick) {
  const Topology topo = spec.Build();
  TrafficPattern pattern(topo, PatternKind::kUniform, /*seed=*/17);
  DriverOptions dopts = Windows(quick);
  dopts.rate = 0.1;
  dopts.drain = true;
  EngineOptions eopts;
  eopts.sparse = ModeFor(mode);
  const int reps = quick ? 1 : 3;
  WallRecord rec{"open_loop_uniform", spec, mode, 0, 0, 1e300};
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    WorkloadResult r = RunOpenLoop(topo, pattern, dopts, eopts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < rec.wall_ms) rec.wall_ms = ms;
    rec.steps = r.route.steps;
    rec.moves = r.route.moves;
  }
  return rec;
}

// ---------------------------------------------------------------------------
// --perfetto: one instrumented open-loop capture exported as a Chrome-trace
// timeline (phase spans, engine counter tracks, thread-pool worker tracks,
// embedded run manifest). Runs on a small local pool so the worker tracks
// show real parallel dispatches; the engine is byte-identical at any thread
// count, so this changes no results.

void WritePerfettoTrace(const OutputFlags& flags) {
  const MeshSpec spec{3, 8, Wrap::kMesh};
  const Topology topo = spec.Build();
  ThreadPool pool(2);
  ThreadPoolActivity activity;
  pool.set_activity(&activity);
  TraceContext ctx;
  CongestionTrace trace;
  MetricsRegistry metrics;
  EngineOptions eopts;
  eopts.pool = &pool;
  eopts.probe = &trace;
  eopts.metrics = &metrics;

  DriverOptions dopts = Windows(flags.quick);
  dopts.rate = 0.2;
  dopts.drain = true;
  TrafficPattern uniform(topo, PatternKind::kUniform, /*seed=*/17);
  TrafficPattern transpose(topo, PatternKind::kTranspose, /*seed=*/17);
  for (const TrafficPattern* pattern : {&uniform, &transpose}) {
    Span span = ctx.Open(std::string("open_loop_") + pattern->name());
    const WorkloadResult r = RunOpenLoop(topo, *pattern, dopts, eopts);
    r.route.RecordTo(span);
  }

  RunManifest manifest = MakeRunManifest(topo, eopts);
  manifest.seed = dopts.seed;
  manifest.binary = "bench_workloads";
  ChromeTraceWriter writer(manifest);
  writer.AddSpanTree(ctx);
  writer.AddCounters(trace);
  writer.AddWorkerActivity(activity);
  pool.set_activity(nullptr);
  writer.WriteFile(flags.perfetto);
}

void RunAllAndReport(const OutputFlags& flags) {
  if (flags.WantsPerfetto()) WritePerfettoTrace(flags);
  const std::vector<LatencyPoint> latency = RunLatencySweep(flags.quick);
  PrintLatencyTable(latency);
  const std::vector<SaturationPoint> saturation =
      RunSaturationSweep(flags.quick);
  PrintSaturationTable(saturation);
  if (!flags.WantsJson()) return;
  BenchJson json("workloads");
  {
    RunManifest m = json.manifest();
    m.binary = "bench_workloads";
    m.seed = 11;  // the shared Windows() driver seed
    json.SetManifest(std::move(m));
  }
  for (const LatencyPoint& pt : latency) EmitLatencyRecord(json, pt);
  for (const SaturationPoint& pt : saturation) EmitSaturationRecord(json, pt);
  // Wall records use a fixed spec set for the same reason as bench_engine:
  // the regression guard matches keys, so CI (--quick) must produce the
  // same (workload, spec, mode) keys as the committed baseline.
  for (const MeshSpec spec : {MeshSpec{2, 32, Wrap::kMesh},
                              MeshSpec{3, 16, Wrap::kMesh}}) {
    for (const char* mode : {"dense", "sparse"}) {
      EmitWallRecord(json, RunWall(spec, mode, flags.quick));
    }
  }
  json.WriteFile(flags.json);
}

void BM_OpenLoopUniform(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  const Topology topo = spec.Build();
  TrafficPattern pattern(topo, PatternKind::kUniform, 17);
  DriverOptions dopts = Windows(/*quick=*/true);
  dopts.rate = 0.1;
  dopts.drain = true;
  for (auto _ : state) {
    WorkloadResult r = RunOpenLoop(topo, pattern, dopts);
    benchmark::DoNotOptimize(r.route.moves);
  }
  state.counters["procs"] = static_cast<double>(spec.size());
}

BENCHMARK(BM_OpenLoopUniform)
    ->Args({2, 16})
    ->Args({2, 32})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::RunAllAndReport(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
