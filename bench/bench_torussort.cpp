// E8 (DESIGN.md §3): Theorem 3.3 — TorusSort sorts the d-dimensional torus
// in 3D/2 + o(n) steps (torus D = d*floor(n/2)) with one antipodal copy per
// packet, vs the FullSort baseline (~2D).
//
// Shape to reproduce: ratio(TorusSort) near 1.5 and below FullSort; the
// Lemma 3.4 audit shows survivors never travel beyond D/2 + O(b) — exact
// for the antipodal copy placement (DESIGN.md §2).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E8: TorusSort (Theorem 3.3, claimed 1.5 D) vs FullSort "
              "baseline (~2 D) on tori ==\n");
  struct Config {
    MeshSpec spec;
    int g;
  };
  std::vector<Config> configs = {
      {{2, 32, Wrap::kTorus}, 4},  {{2, 64, Wrap::kTorus}, 4},
      {{2, 128, Wrap::kTorus}, 8}, {{3, 16, Wrap::kTorus}, 4},
      {{3, 32, Wrap::kTorus}, 4},  {{4, 8, Wrap::kTorus}, 2},
      {{4, 16, Wrap::kTorus}, 4},
  };
  if (flags.quick) configs.resize(1);
  BenchJson json("torus_sort");
  std::vector<SortRow> rows;
  for (const Config& config : configs) {
    for (SortAlgo algo : {SortAlgo::kTorus, SortAlgo::kFull}) {
      SortOptions opts;
      opts.g = config.g;
      opts.seed = 777;
      rows.push_back(RunSortExperiment(algo, config.spec, opts));
      json.Add(rows.back());
    }
  }
  MakeSortTable(rows).Print();
  std::printf("claim: ratio(TorusSort) -> 1.5 on tori; previous best was "
              "2D - n + o(n)\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
  if (flags.quick) return;

  std::printf("== Lemma 3.4: survivor distance <= D/2 + O(b) "
              "(exact for the antipodal copy) ==\n");
  Table table({"network", "D", "survivor max_dist", "D/2", "slack(b units)"});
  for (const Config& config : configs) {
    SortOptions opts;
    opts.g = config.g;
    opts.seed = 777;
    SortRow row = RunSortExperiment(SortAlgo::kTorus, config.spec, opts);
    std::int64_t survivor_dist = 0;
    for (const PhaseStats& phase : row.result.phases) {
      if (phase.name == "route-survivors") survivor_dist = phase.max_distance;
    }
    const std::int64_t half = row.diameter / 2;
    const int b = config.spec.n / config.g;
    table.Row()
        .Cell(config.spec.ToString())
        .Cell(row.diameter)
        .Cell(survivor_dist)
        .Cell(half)
        .Cell(static_cast<double>(survivor_dist - half) / b, 2);
  }
  table.Print();
  std::printf("\n");
}

void BM_TorusSort(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kTorus};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 777;
  SortRow row;
  for (auto _ : state) {
    row = RunSortExperiment(SortAlgo::kTorus, spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["routing"] = static_cast<double>(row.result.routing_steps);
  state.counters["ratio"] = row.ratio;
  state.counters["claimed"] = row.claimed;
  state.counters["sorted"] = row.result.sorted ? 1 : 0;
}

BENCHMARK(BM_TorusSort)
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Args({4, 16, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
