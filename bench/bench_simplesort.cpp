// E4 (DESIGN.md §3): Theorem 3.1 — SimpleSort sorts the d-dimensional mesh
// in 3D/2 + o(n) steps without copying packets, vs. the whole-network
// sort-and-unshuffle baseline (FullSort, ~2D).
//
// Shape to reproduce: SimpleSort's routing/D ratio sits near 1.5 and BELOW
// FullSort's, with the gap widening as blocks shrink relative to the network
// (the o(n) terms at simulable n are dominated by the block side b; see
// EXPERIMENTS.md for the finite-size discussion).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E4: SimpleSort (Theorem 3.1, claimed 1.5 D) vs FullSort "
              "baseline (~2 D) ==\n");
  struct Config {
    MeshSpec spec;
    int g;
  };
  std::vector<Config> configs = {
      {{2, 32, Wrap::kMesh}, 4},  {{2, 64, Wrap::kMesh}, 4},
      {{2, 128, Wrap::kMesh}, 8}, {{3, 16, Wrap::kMesh}, 4},
      {{3, 32, Wrap::kMesh}, 4},  {{4, 8, Wrap::kMesh}, 2},
      {{4, 16, Wrap::kMesh}, 4},
  };
  if (flags.quick) configs.resize(1);
  BenchJson json("simple_sort");
  std::vector<SortRow> rows;
  for (const Config& config : configs) {
    for (SortAlgo algo : {SortAlgo::kSimple, SortAlgo::kFull}) {
      SortOptions opts;
      opts.g = config.g;
      opts.seed = 12345;
      rows.push_back(RunSortExperiment(algo, config.spec, opts));
      json.Add(rows.back());
    }
  }
  MakeSortTable(rows).Print();
  std::printf("claim: ratio(SimpleSort) -> 1.5, ratio(FullSort) -> 2.0; "
              "SimpleSort wins at every scale with b << n\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
  if (flags.quick) return;

  // The classical pre-mesh-algorithms baseline for perspective: odd-even
  // transposition over the global snake is Theta(N) = Theta(n^d) steps.
  std::printf("== classical baseline: odd-even transposition on the snake "
              "(Theta(N) steps) ==\n");
  std::vector<SortRow> classic;
  for (const MeshSpec& spec :
       {MeshSpec{2, 16, Wrap::kMesh}, MeshSpec{2, 32, Wrap::kMesh},
        MeshSpec{3, 8, Wrap::kMesh}}) {
    SortOptions opts;
    opts.seed = 12345;
    classic.push_back(RunSortExperiment(SortAlgo::kSnake, spec, opts));
    classic.push_back(RunSortExperiment(SortAlgo::kSimple, spec, opts));
  }
  MakeSortTable(classic).Print();
  std::printf("claim: the paper's O(dn) algorithms beat the classical "
              "Theta(n^d) chain sort by a factor ~n^(d-1)/d\n\n");
}

void BM_SimpleSort(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 12345;
  SortRow row;
  for (auto _ : state) {
    row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["routing"] = static_cast<double>(row.result.routing_steps);
  state.counters["ratio"] = row.ratio;
  state.counters["claimed"] = row.claimed;
  state.counters["sorted"] = row.result.sorted ? 1 : 0;
  state.counters["max_queue"] = static_cast<double>(row.result.max_queue);
}

BENCHMARK(BM_SimpleSort)
    ->Args({2, 64, 4})
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Args({4, 16, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
