// E13 (DESIGN.md §3): selection (Section 4.3).
//
//   Upper bound (implemented): median at the center region in D + o(n) —
//   concentrate (<= 3D/4), estimate ranks, route the candidate window to
//   the center block (<= D/4), select exactly.
//   Lower bound (Theorem 4.5): (9/16 - eps) D for d >= d0(eps); trivial
//   radius bound D/2.
//
// Shape to reproduce: measured routing/D stays near (and below) 1.0 and the
// lower-bound table shows 9/16 - eps > 1/2 for eps < 1/16.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E13a: median selection upper bound (Section 4.3, claimed "
              "~1.0 D) ==\n");
  struct Config {
    MeshSpec spec;
    int g;
  };
  // The candidate window spans (m+2)*mc ranks, so the block grid must stay
  // coarse relative to N (margin << N*k) — at d >= 3 that means g = 2.
  std::vector<Config> configs = {
      {{2, 32, Wrap::kMesh}, 4}, {{2, 64, Wrap::kMesh}, 4},
      {{2, 128, Wrap::kMesh}, 8}, {{3, 16, Wrap::kMesh}, 2},
      {{3, 32, Wrap::kMesh}, 2}, {{4, 16, Wrap::kMesh}, 2},
  };
  if (flags.quick) configs.resize(1);
  BenchJson json("selection");
  std::vector<SelectRow> rows;
  for (const Config& config : configs) {
    SortOptions opts;
    opts.g = config.g;
    opts.seed = 2718;
    rows.push_back(RunSelectionExperiment(config.spec, opts));
    json.Add(rows.back());
  }
  MakeSelectionTable(rows).Print();
  std::printf("claim: routing <= D + o(n); every run returns the exact "
              "median\n\n");
  if (flags.quick) {
    if (flags.WantsJson()) json.WriteFile(flags.json);
    return;
  }

  // Torus variant (Section 4.3: (1 + eps) D achievable for large d against
  // the trivial radius bound of D). The same concentrate-and-collect
  // algorithm runs unchanged; the torus diameter is half the mesh's, so the
  // finite-size overhead is relatively larger.
  std::printf("== E13c: selection on tori (claimed (1 + eps) D for large d; "
              "trivial bound 1.0 D) ==\n");
  const std::vector<Config> torus_configs = {
      {{2, 32, Wrap::kTorus}, 4},
      {{2, 64, Wrap::kTorus}, 4},
      {{2, 128, Wrap::kTorus}, 8},
      {{3, 16, Wrap::kTorus}, 2},
      {{3, 32, Wrap::kTorus}, 2},
  };
  std::vector<SelectRow> torus_rows;
  for (const Config& config : torus_configs) {
    SortOptions opts;
    opts.g = config.g;
    opts.seed = 2718;
    torus_rows.push_back(RunSelectionExperiment(config.spec, opts));
    json.Add(torus_rows.back());
  }
  MakeSelectionTable(torus_rows).Print();
  std::printf("\n");

  // The paper's large-d refinement ((3/4 + eps) D on meshes) concentrates
  // into a SMALLER center region; the sweep shows the finite-d trade-off
  // (smaller region = shorter collection hop but more load per processor).
  std::printf("== E13d: center-region size sweep for selection ==\n");
  Table sweep({"network", "center blocks", "routing", "ratio", "candidates",
               "correct"});
  for (std::int64_t mc : {2, 4, 8}) {
    SortOptions opts;
    opts.g = 4;
    opts.center_blocks = mc;
    opts.seed = 2718;
    SelectRow row = RunSelectionExperiment({2, 64, Wrap::kMesh}, opts);
    sweep.Row()
        .Cell(std::string("mesh(d=2,n=64)"))
        .Cell(mc)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(row.result.candidates)
        .Cell(row.correct ? "yes" : "NO");
  }
  sweep.Print();
  std::printf("\n");

  std::printf("== E13b: selection lower bound (Theorem 4.5) ==\n");
  Table lb({"eps", "(9/16-eps)", "beats radius D/2?", "analytic d0",
            "premise holds at d0 (n=17)"});
  for (double eps : {0.01, 0.02, 0.04, 0.0625, 0.1}) {
    const double coeff = SelectionLowerCoefficient(eps);
    const int d0 = FindD0Selection(eps);
    lb.Row()
        .Cell(eps, 4)
        .Cell(coeff, 4)
        .Cell(coeff > 0.5 ? "yes" : "no")
        .Cell(static_cast<std::int64_t>(d0))
        .Cell(d0 > 0 && d0 <= 256 ? (CheckSelectionPremise(d0, 17, eps) ? "yes" : "NO")
                                  : "(d0 too large to tabulate)");
  }
  lb.Print();
  std::printf("claim: selection needs (9/16 - eps) D steps for d >= d0(eps) "
              "— strictly above the trivial D/2 radius bound for eps < 1/16\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
}

void BM_Selection(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 2718;
  SelectRow row;
  for (auto _ : state) {
    row = RunSelectionExperiment(spec, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["ratio"] = row.ratio;
  state.counters["candidates"] = static_cast<double>(row.result.candidates);
  state.counters["correct"] = row.correct ? 1 : 0;
}

BENCHMARK(BM_Selection)
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
