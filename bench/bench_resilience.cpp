// E20: resilience under fault injection — random permutation routing on
// tori with seeded FaultPlans, sweeping the dead-link rate across (d, n).
// Reported per cell: completion rate over seeds, steps/D inflation versus
// the fault-free run, and the fraction of moves that were adaptive detours.
//
// Shape to observe: at low fault rates every connected instance still
// completes, with steps/D degrading gracefully (a few percent per percent
// of dead links); the engine's watchdog turns pathological instances into
// structured stall reports instead of step_cap burns.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

struct Cell {
  MeshSpec spec;
  double link_rate = 0.0;
  int seeds = 0;
  int connected = 0;
  int completed = 0;
  int stalled = 0;  ///< incomplete runs that produced a stall report
  double ratio_sum = 0.0;       ///< steps/D over completed runs
  double detour_frac_sum = 0.0; ///< detours/moves over completed runs
};

void PrintResilienceTable(const OutputFlags& flags) {
  std::printf("== E20: routing resilience under link faults (adaptive "
              "detours, seeded FaultPlans) ==\n");
  std::vector<MeshSpec> specs = {
      {2, 16, Wrap::kTorus}, {2, 32, Wrap::kTorus}, {3, 8, Wrap::kTorus}};
  std::vector<double> rates = {0.0, 0.005, 0.01, 0.02, 0.05};
  int num_seeds = 5;
  if (flags.quick) {
    specs.resize(1);
    rates = {0.0, 0.01, 0.05};
    num_seeds = 3;
  }

  BenchJson json("resilience");
  Table table({"network", "link_rate", "connected", "completed", "stalls",
               "steps/D", "detour%"});
  for (const MeshSpec& spec : specs) {
    Topology topo = spec.Build();
    const auto D = static_cast<double>(topo.Diameter());
    for (double rate : rates) {
      Cell cell;
      cell.spec = spec;
      cell.link_rate = rate;
      for (int seed = 1; seed <= num_seeds; ++seed) {
        FaultSpec fs;
        fs.link_rate = rate;
        FaultPlan plan =
            FaultPlan::Random(topo, fs, static_cast<std::uint64_t>(seed));
        ++cell.seeds;
        const bool connected = plan.Connected();
        if (connected) ++cell.connected;

        EngineOptions opts;
        opts.faults = &plan;
        Engine engine(topo, opts);
        Network net(topo);
        Rng rng(static_cast<std::uint64_t>(seed) * 7919);
        const std::vector<ProcId> dest = RandomPermutation(topo, rng);
        for (ProcId p = 0; p < topo.size(); ++p) {
          Packet pkt;
          pkt.id = p;
          pkt.dest = dest[static_cast<std::size_t>(p)];
          pkt.klass = static_cast<std::uint16_t>(p % spec.d);
          net.Add(p, pkt);
        }
        RouteResult r = engine.Route(net);
        if (r.completed) {
          ++cell.completed;
          cell.ratio_sum += static_cast<double>(r.steps) / D;
          cell.detour_frac_sum +=
              r.moves > 0 ? static_cast<double>(r.detours) /
                                static_cast<double>(r.moves)
                          : 0.0;
        } else if (r.stall_report != nullptr) {
          ++cell.stalled;
        }

        std::ostringstream os;
        JsonWriter w(os);
        w.BeginObject();
        w.Key("experiment").String("resilience");
        w.Key("spec").BeginObject();
        w.Key("d").Int(spec.d);
        w.Key("n").Int(spec.n);
        w.Key("wrap").String("torus");
        w.EndObject();
        w.Key("seed").Int(seed);
        w.Key("link_rate").Double(rate);
        w.Key("connected").Bool(connected);
        w.Key("faults");
        plan.WriteJson(w);
        w.Key("steps").Int(r.steps);
        w.Key("D").Int(topo.Diameter());
        w.Key("ratio").Double(static_cast<double>(r.steps) / D);
        w.Key("completed").Bool(r.completed);
        w.Key("moves").Int(r.moves);
        w.Key("detours").Int(r.detours);
        if (r.stall_report != nullptr) {
          w.Key("stall");
          r.stall_report->WriteJson(w);
        }
        w.EndObject();
        json.AddRaw(os.str());
      }
      char conn_text[32], done_text[32];
      std::snprintf(conn_text, sizeof conn_text, "%d/%d", cell.connected,
                    cell.seeds);
      std::snprintf(done_text, sizeof done_text, "%d/%d", cell.completed,
                    cell.seeds);
      table.Row()
          .Cell(spec.ToString())
          .Cell(rate, 3)
          .Cell(conn_text)
          .Cell(done_text)
          .Cell(static_cast<std::int64_t>(cell.stalled));
      if (cell.completed > 0) {
        table.Cell(cell.ratio_sum / cell.completed, 3)
            .Cell(100.0 * cell.detour_frac_sum / cell.completed, 2);
      } else {
        table.Cell("-").Cell("-");
      }
    }
  }
  table.Print();
  std::printf("claim: every connected instance completes; steps/D and the "
              "detour share grow smoothly with the dead-link rate\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
}

void BM_ResilienceRoute(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kTorus};
  const double rate = static_cast<double>(state.range(2)) / 1000.0;
  Topology topo = spec.Build();
  FaultSpec fs;
  fs.link_rate = rate;
  FaultPlan plan = FaultPlan::Random(topo, fs, 1);
  std::int64_t steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Network net(topo);
    Rng rng(1);
    const std::vector<ProcId> dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = p;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(p % spec.d);
      net.Add(p, pkt);
    }
    EngineOptions opts;
    opts.faults = &plan;
    Engine engine(topo, opts);
    state.ResumeTiming();
    RouteResult r = engine.Route(net);
    steps = r.steps;
    benchmark::DoNotOptimize(r.moves);
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["steps/D"] =
      static_cast<double>(steps) / static_cast<double>(topo.Diameter());
}

BENCHMARK(BM_ResilienceRoute)
    ->Args({2, 32, 0})   // fault-free baseline
    ->Args({2, 32, 10})  // 1% dead links
    ->Args({2, 32, 50})  // 5% dead links
    ->Args({3, 16, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintResilienceTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
