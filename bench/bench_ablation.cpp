// E6/E18 (DESIGN.md §3): design-choice ablations.
//
//   E6  — Corollary 3.1.2: shrinking the center region below m/2 blocks
//         trades concentration distance (phase gets shorter: D + 2r) against
//         per-processor load (k*m/mc packets). The sweep shows the measured
//         trade-off.
//   E18 — derandomization (Section 2.1): the deterministic sort-and-unshuffle
//         spread vs Valiant-Brebner random intermediate destinations. The
//         claim is they behave alike — that is the whole point of the
//         unshuffle machinery.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintCenterSizeAblation(BenchJson& json) {
  std::printf("== E6: center-region size sweep (Corollary 3.1.2 machinery, "
              "mesh d=2 n=64 g=4, m=16) ==\n");
  Table table({"center blocks", "load/proc", "region radius", "D", "routing",
               "ratio", "sorted"});
  const MeshSpec spec{2, 64, Wrap::kMesh};
  for (std::int64_t mc : {2, 4, 8, 16}) {
    SortOptions opts;
    opts.g = 4;
    opts.center_blocks = mc;
    opts.seed = 11;
    SortRow row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
    json.Add(row);
    Topology topo = spec.Build();
    BlockGrid grid(topo, 4);
    CenterRegion region(grid, mc);
    table.Row()
        .Cell(mc)
        .Cell(16 / mc)  // k*m/mc with k=1, m=16
        .Cell(region.radius(), 1)
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(row.result.sorted ? "yes" : "NO");
  }
  table.Print();
  std::printf("claim: smaller regions cut the travel radius (-> D + 2r) but "
              "raise congestion; mc = m/2 is the paper's sweet spot unless d "
              "is large\n\n");
}

void PrintDerandomizationAblation(BenchJson& json) {
  std::printf("== E18: deterministic unshuffle spread vs random intermediate "
              "destinations (Section 2.1) ==\n");
  Table table({"network", "algo", "spread", "routing", "ratio", "max_q",
               "sorted"});
  struct Config {
    MeshSpec spec;
    int g;
    SortAlgo algo;
  };
  const std::vector<Config> configs = {
      {{2, 64, Wrap::kMesh}, 4, SortAlgo::kSimple},
      {{3, 16, Wrap::kMesh}, 4, SortAlgo::kSimple},
      {{2, 64, Wrap::kMesh}, 4, SortAlgo::kFull},
      {{3, 16, Wrap::kMesh}, 4, SortAlgo::kFull},
      {{2, 64, Wrap::kMesh}, 4, SortAlgo::kCopy},
  };
  for (const Config& config : configs) {
    for (bool randomized : {false, true}) {
      SortOptions opts;
      opts.g = config.g;
      opts.seed = 13;
      opts.randomized_spread = randomized;
      SortRow row = RunSortExperiment(config.algo, config.spec, opts);
      json.Add(row);
      table.Row()
          .Cell(config.spec.ToString())
          .Cell(SortAlgoName(config.algo))
          .Cell(randomized ? "random" : "unshuffle")
          .Cell(row.result.routing_steps)
          .Cell(row.ratio)
          .Cell(row.result.max_queue)
          .Cell(row.result.sorted ? "yes" : "NO");
    }
  }
  table.Print();
  std::printf("claim: the deterministic unshuffle matches the randomized "
              "spread's step count (and keeps queues tighter)\n\n");

  // Extended-greedy class assignment ablation: by-permutation vs local-rank
  // vs all-zero classes on a multi-permutation load.
  std::printf("== extended-greedy class assignment (Section 2.2) ==\n");
  Table classes({"mode", "steps", "steps/D", "max_overshoot", "max_q"});
  const MeshSpec spec{3, 16, Wrap::kTorus};
  Topology topo = spec.Build();
  for (auto [name, mode] :
       std::vector<std::pair<const char*, ClassMode>>{
           {"by-permutation", ClassMode::kByPermutation},
           {"local-rank", ClassMode::kLocalRank},
           {"random", ClassMode::kRandom},
           {"all-zero (plain greedy)", ClassMode::kZero}}) {
    GreedyOptions opts;
    opts.seed = 17;
    opts.class_mode = mode;
    GreedyRun run = RouteRandomPermutations(topo, 6, opts);
    classes.Row()
        .Cell(name)
        .Cell(run.route.steps)
        .Cell(run.steps_over_diameter())
        .Cell(run.route.max_overshoot)
        .Cell(run.route.max_queue);
  }
  classes.Print();
  std::printf("claim: splitting the 2d permutations across dimension orders "
              "(any of the first three modes) beats forcing them all through "
              "dimension order 0\n\n");
}

void PrintCostModelAblation() {
  std::printf("== local-sort cost models (DESIGN.md §1): what the o(n) term "
              "costs under each accounting ==\n");
  Table table({"network", "g", "cost model", "routing", "local", "total",
               "sorted"});
  const MeshSpec spec{2, 32, Wrap::kMesh};
  for (int g : {2, 4}) {
    for (auto [name, model] :
         std::vector<std::pair<const char*, LocalCostModel>>{
             {"oracle (0)", LocalCostModel::kOracle},
             {"linear (4db)", LocalCostModel::kLinear},
             {"measured (odd-even)", LocalCostModel::kMeasured}}) {
      SortOptions opts;
      opts.g = g;
      opts.seed = 29;
      opts.cost = model;
      SortRow row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
      table.Row()
          .Cell(spec.ToString())
          .Cell(static_cast<std::int64_t>(g))
          .Cell(name)
          .Cell(row.result.routing_steps)
          .Cell(row.result.local_steps)
          .Cell(row.result.total_steps)
          .Cell(row.result.sorted ? "yes" : "NO");
    }
  }
  table.Print();
  std::printf("note: at simulable n the measured odd-even block sort costs "
              "Theta(b^d) and swamps the routing term — the reason the paper "
              "cites o(n) block-sorting results instead (and we default to "
              "the oracle model for bound verification)\n\n");
}

void PrintRemapAblation() {
  std::printf("== sorting into other indexing schemes (remap adapter) ==\n");
  Table table({"network", "target scheme", "sort routing", "remap steps",
               "total/D", "sorted"});
  const MeshSpec spec{2, 64, Wrap::kMesh};
  Topology topo = spec.Build();
  BlockGrid grid(topo, 4);
  for (const char* name : {"row-major", "snake", "morton", "hilbert"}) {
    auto scheme = MakeIndexing(name, spec.d, spec.n, 0);
    Network net(topo);
    FillInput(net, grid, 1, InputKind::kRandom, 37);
    SortOptions opts;
    opts.g = 4;
    SortResult r = SortIntoScheme(SortAlgo::kSimple, net, grid, *scheme, opts);
    const std::int64_t remap_steps = r.phases.back().routing_steps;
    table.Row()
        .Cell(spec.ToString())
        .Cell(scheme->Name())
        .Cell(r.routing_steps - remap_steps)
        .Cell(remap_steps)
        .Cell(r.RatioToDiameter(spec.diameter()))
        .Cell(r.sorted ? "yes" : "NO");
  }
  table.Print();
  std::printf("note: the paper's algorithms target the blocked snake; one "
              "extra fixed-permutation phase (<= D + o(n)) retargets any "
              "bijective scheme\n\n");
}

void BM_AblationCenter(benchmark::State& state) {
  SortOptions opts;
  opts.g = 4;
  opts.center_blocks = state.range(0);
  opts.seed = 11;
  SortRow row;
  for (auto _ : state) {
    row = RunSortExperiment(SortAlgo::kSimple, {2, 64, Wrap::kMesh}, opts);
    benchmark::DoNotOptimize(row.result.routing_steps);
  }
  state.counters["ratio"] = row.ratio;
}

BENCHMARK(BM_AblationCenter)->Arg(4)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::BenchJson json("ablation");
  mdmesh::PrintCenterSizeAblation(json);
  if (!flags.quick) {
    mdmesh::PrintDerandomizationAblation(json);
    mdmesh::PrintCostModelAblation();
    mdmesh::PrintRemapAblation();
  }
  if (flags.WantsJson()) json.WriteFile(flags.json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
