// E15/E16 (DESIGN.md §3): Theorems 5.2 and 5.3 — permutation routing on the
// d-dimensional torus in D + n/8 + o(n) (nu = n/16), and the epsilon-n trend:
// as d grows, smaller and smaller nu keep the midpoint sets non-empty
// (k * |S_nu| * B >= N), driving the running time toward D + eps*n.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

void PrintReproductionTable(const OutputFlags& flags) {
  std::printf("== E15: two-phase routing on tori (Theorem 5.2, claimed "
              "<= D + n/8 + o(n)) ==\n");
  struct Config {
    MeshSpec spec;
    int g;
  };
  std::vector<Config> configs = {
      {{2, 32, Wrap::kTorus}, 4}, {{2, 64, Wrap::kTorus}, 4},
      {{2, 128, Wrap::kTorus}, 8}, {{3, 16, Wrap::kTorus}, 4},
      {{3, 32, Wrap::kTorus}, 4}, {{4, 8, Wrap::kTorus}, 2},
  };
  if (flags.quick) configs.resize(1);
  BenchJson json("two_phase_torus");
  std::vector<RoutingRow> rows;
  for (const Config& config : configs) {
    for (const char* perm : {"random", "reversal", "transpose"}) {
      TwoPhaseOptions opts;
      opts.g = config.g;
      opts.seed = 55;
      rows.push_back(RunRoutingExperiment(config.spec, perm, opts));
      json.Add(rows.back());
    }
  }
  MakeRoutingTable(rows).Print();
  std::printf("claim: 2phase/D <= (D + n/8)/D + o(1) on every permutation\n\n");

  if (flags.quick) {
    if (flags.WantsJson()) json.WriteFile(flags.json);
    return;
  }

  // Section 6 open question, torus edition: overlapped phases.
  std::printf("== overlapped vs sequential phases (tori) ==\n");
  Table overlap_table({"network", "perm", "D", "sequential", "overlapped",
                       "overlapped/D"});
  for (const Config& config :
       {Config{{2, 64, Wrap::kTorus}, 4}, Config{{2, 128, Wrap::kTorus}, 8}}) {
    for (const char* perm : {"random", "reversal"}) {
      TwoPhaseOptions seq;
      seq.g = config.g;
      seq.seed = 55;
      RoutingRow sequential = RunRoutingExperiment(config.spec, perm, seq);
      TwoPhaseOptions ovl = seq;
      ovl.overlap = true;
      RoutingRow overlapped = RunRoutingExperiment(config.spec, perm, ovl);
      overlap_table.Row()
          .Cell(config.spec.ToString())
          .Cell(perm)
          .Cell(sequential.diameter)
          .Cell(sequential.two_phase.total_steps)
          .Cell(overlapped.two_phase.total_steps)
          .Cell(overlapped.two_phase.steps_over_diameter(overlapped.diameter));
    }
  }
  overlap_table.Print();
  std::printf("\n");

  // E16: nu feasibility trend (Theorem 5.3). The midpoint sets S_nu(X,Y)
  // stay non-empty at smaller and smaller nu/n as d grows — measured as the
  // minimal nu/n (in 1/32 steps) with min|S_nu| * B * floor(d/2) >= N.
  std::printf("== E16: minimal feasible nu as d grows (Theorem 5.3) ==\n");
  Table table({"network", "g", "min feasible nu/n", "min|S| at nu=n/16"});
  const std::vector<Config> trend = {
      {{2, 16, Wrap::kTorus}, 4},
      {{3, 16, Wrap::kTorus}, 4},
      {{4, 8, Wrap::kTorus}, 2},
      {{5, 8, Wrap::kTorus}, 2},
      {{6, 4, Wrap::kTorus}, 2},
  };
  for (const Config& config : trend) {
    Topology topo = config.spec.Build();
    BlockGrid grid(topo, config.g);
    const std::int64_t N = topo.size();
    const std::int64_t bandwidth = std::max<std::int64_t>(1, config.spec.d / 2);
    double feasible = -1.0;
    for (int t = 0; t <= 32; ++t) {
      const double nu = static_cast<double>(t) * config.spec.n / 32.0;
      if (bandwidth * MinMidpointSetSize(grid, nu) * grid.block_volume() >= N) {
        feasible = static_cast<double>(t) / 32.0;
        break;
      }
    }
    table.Row()
        .Cell(config.spec.ToString())
        .Cell(static_cast<std::int64_t>(config.g))
        .Cell(feasible, 3)
        .Cell(MinMidpointSetSize(grid, config.spec.n / 16.0));
  }
  table.Print();
  std::printf("claim: the feasible nu/n shrinks with d (routing time -> "
              "D + eps*n)\n\n");
  if (flags.WantsJson()) json.WriteFile(flags.json);
}

void BM_TwoPhaseTorus(benchmark::State& state) {
  const MeshSpec spec{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), Wrap::kTorus};
  TwoPhaseOptions opts;
  opts.g = static_cast<int>(state.range(2));
  opts.seed = 55;
  RoutingRow row;
  for (auto _ : state) {
    row = RunRoutingExperiment(spec, "reversal", opts);
    benchmark::DoNotOptimize(row.two_phase.total_steps);
  }
  state.counters["2phase/D"] = row.two_phase.steps_over_diameter(row.diameter);
  state.counters["delivered"] = row.two_phase.delivered ? 1 : 0;
}

BENCHMARK(BM_TwoPhaseTorus)
    ->Args({2, 128, 8})
    ->Args({3, 32, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintReproductionTable(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
