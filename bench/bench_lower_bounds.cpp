// E10-E12 (DESIGN.md §3): the Section 4 lower bounds, evaluated exactly.
//
//   E10 — Lemma 4.1: exact diamond volume/surface vs the analytic Chernoff
//         bounds, swept over d and gamma.
//   E11 — Lemma 4.2 / Theorem 4.1: the capacity condition and the resulting
//         no-copy sorting lower bound (-> (3/2 - eps) D), plus the d0(eps)
//         thresholds.
//   E12 — Theorems 4.3/4.4: the with-copying coefficients and their d0
//         premises.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

// The lower-bound tables are analytic (no simulation), so the JSON records
// carry the evaluated quantities directly instead of the routing schema.
void WriteJsonRecords(const OutputFlags& flags) {
  if (!flags.WantsJson()) return;
  BenchJson json("lower_bounds");
  for (int d : {2, 4, 8, 16, 32}) {
    for (double gamma : {0.2, 0.5, 0.8}) {
      std::ostringstream os;
      JsonWriter w(os);
      w.BeginObject();
      w.Key("experiment").String("lower_bounds");
      w.Key("lemma").String("4.1");
      w.Key("d").Int(d);
      w.Key("n").Int(33);
      w.Key("gamma").Double(gamma);
      w.Key("volume_exact").Double(ExactVolumeNormalized(d, 33, gamma));
      w.Key("volume_bound").Double(Lemma41VolumeBoundNormalized(d, gamma));
      w.Key("surface_exact").Double(ExactSurfaceNormalized(d, 33, gamma));
      w.Key("surface_bound").Double(Lemma41SurfaceBoundNormalized(d, gamma));
      w.Key("holds").Bool(CheckLemma41(d, 33, gamma));
      w.EndObject();
      json.AddRaw(os.str());
    }
  }
  for (double eps : {0.05, 0.1, 0.2, 0.3}) {
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    w.Key("experiment").String("lower_bounds");
    w.Key("theorem").String("4.3/4.4");
    w.Key("eps").Double(eps);
    w.Key("mesh_coeff").Double(CopyMeshCoefficient(eps));
    w.Key("torus_coeff").Double(CopyTorusCoefficient(eps));
    w.Key("d0").Int(FindD0Copying(eps, 0.01, 33));
    w.EndObject();
    json.AddRaw(os.str());
  }
  json.WriteFile(flags.json);
}

void PrintLemma41Table() {
  std::printf("== E10: Lemma 4.1 — exact diamond counts vs analytic bounds "
              "(n = 33) ==\n");
  Table table({"d", "gamma", "V/n^d exact", "V bound", "S/n^(d-1) exact",
               "S bound", "holds"});
  for (int d : {2, 4, 8, 16, 32}) {
    for (double gamma : {0.2, 0.5, 0.8}) {
      table.Row()
          .Cell(static_cast<std::int64_t>(d))
          .Cell(gamma, 2)
          .Cell(ExactVolumeNormalized(d, 33, gamma), 6)
          .Cell(Lemma41VolumeBoundNormalized(d, gamma), 6)
          .Cell(ExactSurfaceNormalized(d, 33, gamma), 6)
          .Cell(Lemma41SurfaceBoundNormalized(d, gamma), 6)
          .Cell(CheckLemma41(d, 33, gamma) ? "yes" : "NO");
    }
  }
  table.Print();
  std::printf("claim: both inequalities hold everywhere; the exact counts "
              "decay exponentially in d\n\n");
}

void PrintLemma42Table() {
  std::printf("== E11: Lemma 4.2 / Theorem 4.1 — no-copy sorting lower bound "
              "(n = 33, beta = 0.7) ==\n");
  Table table({"d", "gamma", "capacity lhs", "capacity rhs", "condition",
               "bound/D"});
  for (int d : {2, 4, 8, 16, 32, 64}) {
    for (double gamma : {0.3, 0.6}) {
      Lemma42Eval eval = EvalLemma42(d, 33, gamma, 0.7);
      table.Row()
          .Cell(static_cast<std::int64_t>(d))
          .Cell(gamma, 2)
          .Cell(eval.lhs, 4)
          .Cell(eval.rhs, 4)
          .Cell(eval.condition_holds ? "holds" : "-")
          .Cell(eval.bound_over_D, 4);
    }
  }
  table.Print();
  std::printf("claim: once the condition holds (large d), sorting without "
              "copying needs >= (1 + (1-gamma)/2) D - o(D) steps\n\n");

  std::printf("== Theorem 4.1 thresholds: d0(eps) for the (3/2 - eps) D "
              "no-copy bound ==\n");
  Table d0_table({"eps", "claimed coeff", "analytic d0"});
  for (double eps : {0.45, 0.4, 0.35, 0.3, 0.25}) {
    d0_table.Row()
        .Cell(eps, 3)
        .Cell(NoCopyCoefficient(eps), 3)
        .Cell(static_cast<std::int64_t>(FindD0NoCopy(eps, 0.7, 33, 1 << 20)));
  }
  d0_table.Print();
  std::printf("\n");
}

void PrintCopyingTable() {
  std::printf("== E12: with-copying lower bounds (Theorems 4.3 / 4.4) ==\n");
  Table table({"eps", "mesh coeff (Thm 4.3)", "torus coeff (Thm 4.4)",
               "premise d0 (delta=0.01)"});
  for (double eps : {0.05, 0.1, 0.2, 0.3}) {
    table.Row()
        .Cell(eps, 3)
        .Cell(CopyMeshCoefficient(eps), 3)
        .Cell(CopyTorusCoefficient(eps), 3)
        .Cell(static_cast<std::int64_t>(FindD0Copying(eps, 0.01, 33)));
  }
  table.Print();
  std::printf("claim: with copying, >= (5/4 - eps) D on meshes and >= "
              "(3/2 - eps) D on tori for d >= d0 — matching CopySort's 5D/4 "
              "and TorusSort's 3D/2 upper bounds (Theorems 3.2/3.3)\n\n");

  // The separation the paper proves: for large d, sorting WITHOUT copying
  // (>= 3/2 D) is strictly harder than CopySort's 5/4 D upper bound.
  std::printf("== copy/no-copy separation (Theorem 4.1 vs Theorem 3.2) ==\n");
  std::printf("  no-copy LB coefficient (eps=0.1): %.3f > CopySort UB 1.25\n\n",
              NoCopyCoefficient(0.1));

  // The broadcast-tree ingredient of the Theorem 4.3 proof sketch: spreading
  // copies far apart costs real bandwidth. If every packet must leave copies
  // `spread` apart, the network needs >= N*spread/links steps just to fan
  // them out — e.g. CopySort's single mirrored copy at ~D/2 distance.
  std::printf("== Theorem 4.3 ingredient: copy fan-out cost (Steiner lower "
              "bound) ==\n");
  Table fan({"network", "copies spread", "step bound N*s/links",
             "vs CopySort's 1.25 D"});
  for (int n : {16, 32, 64}) {
    Topology topo(2, n, Wrap::kMesh);
    const std::int64_t spread = topo.Diameter() / 2;
    fan.Row()
        .Cell("mesh(d=2,n=" + std::to_string(n) + ")")
        .Cell(spread)
        .Cell(CopySpreadStepBound(topo, spread), 1)
        .Cell(1.25 * static_cast<double>(topo.Diameter()), 1);
  }
  fan.Print();
  std::printf("claim: one far copy per packet costs ~N*D/(2*links) ~ n/8 "
              "steps of pure bandwidth at d=2 — affordable; flooding MANY "
              "copies is not, which is what caps the power of copying\n\n");
}

void PrintTheorem42Table() {
  std::printf("== Theorem 4.2: diameter unmatchable without copying for "
              "d >= 5 ==\n");
  Table table({"d", "finite-n witness (n=33)", "asymptotic witness",
               "diameter matchable?"});
  for (int d : {2, 3, 4, 5, 6, 8, 12, 16}) {
    const double asym = BestNoCopyBoundOverDAsymptotic(d);
    table.Row()
        .Cell(static_cast<std::int64_t>(d))
        .Cell(BestNoCopyBoundOverD(d, 33, 0.7), 4)
        .Cell(asym, 4)
        .Cell(asym > 1.0 ? "NO (bound > D)" : "open here");
  }
  table.Print();
  std::printf("paper: not matchable for d >= 5; our conservative capacity "
              "form (entry rate d*S) certifies d >= 6 — the d = 5 case needs "
              "the paper's sharper per-network argument (witness 0.99)\n\n");
}

void PrintCompatibilityTable() {
  std::printf("== compatible indexing schemes (Section 4 definition) ==\n");
  Table table({"scheme", "d", "n", "min joker window w*", "n^(d-1)", "beta*",
               "compatible"});
  struct Row {
    const char* name;
    int d, n, b;
  };
  for (const Row& r : {Row{"row-major", 2, 16, 0}, Row{"snake", 2, 16, 0},
                       Row{"blocked-snake", 2, 16, 4},
                       Row{"row-major", 3, 8, 0}, Row{"snake", 3, 8, 0},
                       Row{"blocked-snake", 3, 8, 2},
                       Row{"morton", 2, 16, 0}, Row{"morton", 3, 8, 0},
                       Row{"hilbert", 2, 16, 0}}) {
    Topology topo(r.d, r.n, Wrap::kMesh);
    auto scheme = MakeIndexing(r.name, r.d, r.n, r.b);
    CompatibilityResult c = CheckCompatibility(topo, *scheme);
    table.Row()
        .Cell(scheme->Name())
        .Cell(static_cast<std::int64_t>(r.d))
        .Cell(static_cast<std::int64_t>(r.n))
        .Cell(c.min_window)
        .Cell(IPow(r.n, r.d - 1))
        .Cell(c.beta, 3)
        .Cell(c.compatible ? "yes" : "NO");
  }
  table.Print();
  std::printf("claim: the paper's schemes need windows ~2 n^(d-1) (beta < 1 "
              "=> lower bounds apply); Morton smears hyperplanes across the "
              "whole range and sits at the edge of the definition\n\n");
}

void BM_DiamondCounting(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CenterDistanceDistribution(d, n));
  }
}

BENCHMARK(BM_DiamondCounting)
    ->Args({8, 33})
    ->Args({32, 33})
    ->Args({64, 65})
    ->Unit(benchmark::kMicrosecond);

void BM_Lemma42Eval(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalLemma42(static_cast<int>(state.range(0)), 33, 0.5, 0.7));
  }
}

BENCHMARK(BM_Lemma42Eval)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mdmesh

int main(int argc, char** argv) {
  const mdmesh::OutputFlags flags = mdmesh::ParseOutputFlags(&argc, argv);
  mdmesh::PrintLemma41Table();
  if (!flags.quick) {
    mdmesh::PrintLemma42Table();
    mdmesh::PrintTheorem42Table();
    mdmesh::PrintCopyingTable();
    mdmesh::PrintCompatibilityTable();
  }
  mdmesh::WriteJsonRecords(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
