#!/usr/bin/env python3
"""CLI client for the mdmesh experiment service (examples/experiment_server).

Submits JSON run requests, lists and watches runs, and scrapes metrics over
the server's loopback HTTP control plane. Stdlib only.

Commands:
    submit  build a RunSpec from flags (or --spec-json FILE) and POST /runs
    list    GET /runs — all records + state counts
    get     GET /runs/<id> — one record (status, result, artifact paths)
    wait    poll GET /runs/<id> until it reaches done/failed (prints the
            record; exits 0 for done, 3 for failed)
    status  GET /status — service snapshot
    metrics GET /metrics — Prometheus text

Examples:
    serve_client.py --port 8080 submit --d 2 --n 8 --pattern uniform \\
        --rate 0.1 --warmup 32 --measure 128 --drain
    serve_client.py --port 8080 wait 3
    serve_client.py --port 8080 list

Exit codes: 0 ok, 1 transport/server error, 2 bad usage, 3 run failed,
4 rejected (queue full / draining).
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def request(port, method, path, body=None, timeout=10.0):
    url = f"http://127.0.0.1:{port}{path}"
    data = body.encode() if isinstance(body, str) else body
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()
    except OSError as e:
        sys.exit(f"cannot reach 127.0.0.1:{port}{path}: {e}")


def build_spec(args):
    if args.spec_json:
        with open(args.spec_json, encoding="utf-8") as f:
            return json.load(f)
    spec = {
        "priority": args.priority,
        "topology": {"d": args.d, "n": args.n, "torus": args.torus},
        "pattern": {"kind": args.pattern, "seed": args.seed},
        "driver": {
            "rate": args.rate,
            "warmup": args.warmup,
            "measure": args.measure,
            "drain": args.drain,
            "seed": args.seed,
        },
        "engine": {"layout": args.layout},
    }
    if args.name:
        spec["name"] = args.name
    return spec


def cmd_submit(args):
    spec = build_spec(args)
    status, body = request(args.port, "POST", "/runs", json.dumps(spec))
    print(body, end="")
    if status == 202:
        return 0
    if status in (429, 503):
        return 4
    return 1


def cmd_list(args):
    status, body = request(args.port, "GET", "/runs")
    print(body, end="")
    return 0 if status == 200 else 1


def cmd_get(args):
    status, body = request(args.port, "GET", f"/runs/{args.id}")
    print(body, end="")
    return 0 if status == 200 else 1


def cmd_wait(args):
    deadline = time.monotonic() + args.timeout
    while True:
        status, body = request(args.port, "GET", f"/runs/{args.id}")
        if status != 200:
            print(body, end="", file=sys.stderr)
            return 1
        record = json.loads(body)
        state = record.get("state")
        if state == "done":
            print(body, end="")
            return 0
        if state == "failed":
            print(body, end="", file=sys.stderr)
            return 3
        if time.monotonic() > deadline:
            sys.exit(
                f"run {args.id} still {state} after {args.timeout}s"
            )
        time.sleep(args.interval)


def cmd_status(args):
    status, body = request(args.port, "GET", "/status")
    print(body, end="")
    return 0 if status == 200 else 1


def cmd_metrics(args):
    status, body = request(args.port, "GET", "/metrics")
    print(body, end="")
    return 0 if status == 200 else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--port", type=int, required=True,
                    help="experiment_server port on 127.0.0.1")
    sub = ap.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("submit", help="POST a run request")
    sp.add_argument("--spec-json", default=None,
                    help="JSON spec file (overrides the flags below)")
    sp.add_argument("--name", default="")
    sp.add_argument("--priority", type=int, default=0)
    sp.add_argument("--d", type=int, default=2)
    sp.add_argument("--n", type=int, default=8)
    sp.add_argument("--torus", action="store_true")
    sp.add_argument("--pattern", default="uniform")
    sp.add_argument("--rate", type=float, default=0.1)
    sp.add_argument("--warmup", type=int, default=32)
    sp.add_argument("--measure", type=int, default=128)
    sp.add_argument("--drain", action="store_true")
    sp.add_argument("--seed", type=int, default=1)
    sp.add_argument("--layout", default="auto",
                    choices=("auto", "legacy", "tiled"))
    sp.set_defaults(fn=cmd_submit)

    lp = sub.add_parser("list", help="GET /runs")
    lp.set_defaults(fn=cmd_list)

    gp = sub.add_parser("get", help="GET /runs/<id>")
    gp.add_argument("id", type=int)
    gp.set_defaults(fn=cmd_get)

    wp = sub.add_parser("wait", help="poll a run until done/failed")
    wp.add_argument("id", type=int)
    wp.add_argument("--timeout", type=float, default=120.0)
    wp.add_argument("--interval", type=float, default=0.2)
    wp.set_defaults(fn=cmd_wait)

    tp = sub.add_parser("status", help="GET /status")
    tp.set_defaults(fn=cmd_status)

    mp = sub.add_parser("metrics", help="GET /metrics")
    mp.set_defaults(fn=cmd_metrics)

    args = ap.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
