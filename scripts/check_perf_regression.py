#!/usr/bin/env python3
"""Wall-clock regression guard for the timed bench records (E21, workloads).

Compares a freshly generated bench JSON (BENCH_engine.json,
BENCH_workloads.json) against the committed baseline: every
(experiment, workload, spec, mode) key present in the baseline must still
exist, and its packet_steps_per_sec must not have dropped by more than the
guard factor. Records without a packet_steps_per_sec field (step-count
experiments like workload_latency) are ignored — only timed wall-clock
records are guarded. The factor defaults to 2x — CI machines are shared
and noisy, so the guard catches order-of-magnitude regressions (a dense
fallback that stopped engaging, an accidentally quadratic active-set
rebuild), not single-digit-percent drift; tighten it for controlled
hardware with --factor.

Usage:
    check_perf_regression.py BASELINE CANDIDATE [--factor 2.0]

Exit status: 0 when every key holds, 1 on any regression or missing key.
Stdlib only.
"""

import argparse
import json
import sys


def key_of(rec):
    spec = rec.get("spec", {})
    return (
        rec.get("experiment", "?"),
        rec.get("workload", "?"),
        spec.get("d"),
        spec.get("n"),
        spec.get("wrap"),
        rec.get("mode", "?"),
    )


def load(path):
    with open(path) as f:
        recs = json.load(f)
    if not isinstance(recs, list) or not recs:
        sys.exit(f"{path}: expected a non-empty JSON array of records")
    table = {}
    for rec in recs:
        if "packet_steps_per_sec" not in rec:
            continue  # step-count experiment, not a timed record
        rate = rec["packet_steps_per_sec"]
        if not isinstance(rate, (int, float)) or rate <= 0:
            sys.exit(f"{path}: bad packet_steps_per_sec in {rec}")
        table[key_of(rec)] = float(rate)
    if not table:
        sys.exit(f"{path}: no timed wall-clock records")
    return table


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_engine.json")
    ap.add_argument("candidate", help="freshly generated BENCH_engine.json")
    ap.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="max allowed throughput drop (candidate >= baseline / factor)",
    )
    args = ap.parse_args()
    if args.factor < 1.0:
        ap.error("--factor must be >= 1.0")

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    for key, base_rate in sorted(base.items()):
        name = "/".join(str(part) for part in key)
        if key not in cand:
            # Workload sets may legitimately differ between the full bench
            # (committed baseline) and a --quick CI run; only keys present
            # in BOTH are guarded.
            print(f"  skip  {name}: not in candidate")
            continue
        cand_rate = cand[key]
        floor = base_rate / args.factor
        verdict = "ok" if cand_rate >= floor else "FAIL"
        print(
            f"  {verdict:4}  {name}: {cand_rate / 1e6:.2f} M moves/s "
            f"(baseline {base_rate / 1e6:.2f}, floor {floor / 1e6:.2f})"
        )
        if cand_rate < floor:
            failures.append(name)

    guarded = sum(1 for key in base if key in cand)
    if guarded == 0:
        sys.exit("no overlapping (workload, spec, mode) keys to guard")
    if failures:
        sys.exit(
            f"{len(failures)} of {guarded} guarded key(s) regressed by more "
            f"than {args.factor}x: {', '.join(failures)}"
        )
    print(f"all {guarded} guarded key(s) within {args.factor}x of baseline")


if __name__ == "__main__":
    main()
