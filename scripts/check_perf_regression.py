#!/usr/bin/env python3
"""Wall-clock regression guard + Chrome-trace validator for bench artifacts.

Default mode compares a freshly generated bench JSON (BENCH_engine.json,
BENCH_workloads.json) against the committed baseline: every
(experiment, workload, spec, mode) key present in the baseline must still
exist, and its packet_steps_per_sec must not have dropped by more than the
guard factor. Records without a packet_steps_per_sec field (step-count
experiments like workload_latency) are ignored — only timed wall-clock
records are guarded. The factor defaults to 2x — CI machines are shared
and noisy, so the guard catches order-of-magnitude regressions (a dense
fallback that stopped engaging, an accidentally quadratic active-set
rebuild), not single-digit-percent drift; tighten it for controlled
hardware with --factor.

Records may also carry peak_rss_mb (process peak resident set when the
record was emitted; tiled-layout modes like "dense_tiled"/"sparse_tiled"
use it to pin "footprint proportional to in-flight packets"). Two memory
checks ride along with the throughput guard:

  * relative: on overlapping keys where both sides report a positive
    peak_rss_mb, the candidate must stay within
    max(baseline * 2, baseline + 256 MiB) — slack for allocator and
    shared-machine noise while still catching an O(N) footprint sneaking
    back into a tiled path.
  * absolute: any candidate record carrying rss_guard_mb (the --mega
    n=4096 fixture) must satisfy peak_rss_mb <= rss_guard_mb, even when
    the baseline lacks the key.

Artifacts may be the legacy bare JSON array of records or the manifest
wrapper {"manifest": {...}, "records": [...]} (BenchJson since the
timeline-export change); both load transparently.

The validate-trace subcommand schema-checks a --perfetto Chrome Trace
Event artifact instead: top-level shape, an embedded run manifest, the
required ph/ts/pid/tid fields on every event, matched B/E pairs per
(pid, tid) track, non-negative durations on X events, and (optionally) a
minimum number of distinct counter tracks.

The validate-prom subcommand checks a Prometheus text-exposition body
(as scraped from the live --metrics-port endpoint): every line is a
`# TYPE` comment or a sample with a legal metric name and a numeric
value, every sample's family is declared, and --require names must be
present.

The validate-flight subcommand checks a --flight-recorder black-box dump:
embedded run manifest, abort reason, ring accounting
(total_records = dropped + len(records)), strictly increasing step
cursors, and the headline step matching the final record —
--expect-reason pins the abort cause CI forced.

The validate-journeys subcommand checks a --journeys JSONL artifact (one
traced packet per line, format src/obs/journey.h): required keys with the
right shapes, event steps strictly increasing within each packet, event
counters (moves/waits/dim_moves/dim_waits) agreeing with the raw event
list, and the critical-path identity on every complete delivered journey:
delivery_step - injected_step = moves + lost_bid waits + dead-link waits.
--min-journeys pins a floor on traced packets; --require-delivered
insists every traced journey finished.

The validate-ckpt subcommand integrity-checks engine checkpoint files
(--checkpoint output, format src/ckpt/checkpoint.h) without linking any
C++: the 28-byte header is struct.unpack("<8sIIQI") — magic "MDMCKPT1",
format version, flags, payload size, payload CRC — and the checksum is
the zlib/binascii.crc32 variant by construction. Accepts files or
directories (a directory validates every ckpt-*.mdc in it).

Usage:
    check_perf_regression.py BASELINE CANDIDATE [--factor 2.0]
    check_perf_regression.py validate-trace TRACE [--min-counter-tracks N]
    check_perf_regression.py validate-prom TEXT [--require NAME ...]
    check_perf_regression.py validate-flight DUMP [--expect-reason R]
    check_perf_regression.py validate-ckpt PATH... [--min-files N]
    check_perf_regression.py validate-journeys JSONL [--min-journeys N]

Exit status: 0 when every check holds, 1 on any regression, missing key,
or schema violation. Stdlib only.
"""

import argparse
import binascii
import json
import os
import re
import struct
import sys


def key_of(rec):
    spec = rec.get("spec", {})
    return (
        rec.get("experiment", "?"),
        rec.get("workload", "?"),
        spec.get("d"),
        spec.get("n"),
        spec.get("wrap"),
        rec.get("mode", "?"),
    )


def records_of(path, data):
    """Unwraps either artifact shape into the list of records."""
    if isinstance(data, dict):
        if "records" not in data:
            sys.exit(f"{path}: object artifact is missing a 'records' array")
        if not isinstance(data.get("manifest"), dict):
            sys.exit(f"{path}: object artifact is missing its run manifest")
        data = data["records"]
    if not isinstance(data, list) or not data:
        sys.exit(f"{path}: expected a non-empty array of records")
    return data


def load(path):
    with open(path) as f:
        recs = records_of(path, json.load(f))
    table = {}
    for rec in recs:
        if "packet_steps_per_sec" not in rec:
            continue  # step-count experiment, not a timed record
        rate = rec["packet_steps_per_sec"]
        if not isinstance(rate, (int, float)) or rate <= 0:
            sys.exit(f"{path}: bad packet_steps_per_sec in {rec}")
        rss = rec.get("peak_rss_mb", 0.0)
        guard = rec.get("rss_guard_mb", 0.0)
        for name, val in (("peak_rss_mb", rss), ("rss_guard_mb", guard)):
            if not isinstance(val, (int, float)) or val < 0:
                sys.exit(f"{path}: bad {name} in {rec}")
        table[key_of(rec)] = {
            "rate": float(rate),
            "rss": float(rss),
            "guard": float(guard),
        }
    if not table:
        sys.exit(f"{path}: no timed wall-clock records")
    return table


def validate_trace(argv):
    ap = argparse.ArgumentParser(
        prog="check_perf_regression.py validate-trace",
        description="Schema-check a --perfetto Chrome Trace Event artifact.",
    )
    ap.add_argument("trace", help="Chrome-trace JSON written with --perfetto")
    ap.add_argument(
        "--min-counter-tracks",
        type=int,
        default=0,
        help="require at least N distinct counter (ph=C) track names",
    )
    args = ap.parse_args(argv)

    with open(args.trace) as f:
        data = json.load(f)

    problems = []
    if not isinstance(data, dict):
        sys.exit(f"{args.trace}: top level must be an object")
    manifest = data.get("metadata", {}).get("manifest")
    if not isinstance(manifest, dict) or "tool" not in manifest:
        problems.append("missing embedded run manifest in metadata.manifest")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit(f"{args.trace}: traceEvents must be a non-empty array")

    counter_tracks = set()
    open_stacks = {}  # (pid, tid) -> stack of open B names
    for i, ev in enumerate(events):
        missing = [k for k in ("ph", "ts", "pid", "tid") if k not in ev]
        if missing:
            problems.append(f"event {i} missing {missing}: {ev}")
            continue
        ph = ev["ph"]
        track = (ev["pid"], ev["tid"])
        if ph == "B":
            open_stacks.setdefault(track, []).append(ev.get("name", "?"))
        elif ph == "E":
            stack = open_stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E without matching B on {track}")
            else:
                begun = stack.pop()
                if ev.get("name", "?") != begun:
                    problems.append(
                        f"event {i}: E '{ev.get('name')}' closes B '{begun}' "
                        f"on {track}"
                    )
        elif ph == "C":
            counter_tracks.add(ev.get("name", "?"))
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                problems.append(f"event {i}: negative dur on X event")

    for track, stack in sorted(open_stacks.items()):
        if stack:
            problems.append(f"unclosed B event(s) on {track}: {stack}")

    if len(counter_tracks) < args.min_counter_tracks:
        problems.append(
            f"only {len(counter_tracks)} counter track(s), need "
            f">= {args.min_counter_tracks}: {sorted(counter_tracks)}"
        )

    if problems:
        for p in problems:
            print(f"  FAIL  {p}")
        sys.exit(f"{args.trace}: {len(problems)} schema problem(s)")
    print(
        f"{args.trace}: {len(events)} events ok "
        f"({len(counter_tracks)} counter track(s), manifest embedded)"
    )


PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def validate_prom(argv):
    ap = argparse.ArgumentParser(
        prog="check_perf_regression.py validate-prom",
        description="Check a Prometheus text-exposition body.",
    )
    ap.add_argument("text", help="file holding the scraped /metrics body")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="metric name that must appear as a sample (repeatable)",
    )
    args = ap.parse_args(argv)

    with open(args.text) as f:
        lines = f.read().splitlines()

    problems = []
    declared = set()  # families introduced by # TYPE
    sampled = set()  # metric names that actually carry a sample
    samples = 0
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            problems.append(f"line {i}: blank line in exposition")
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "TYPE":
                problems.append(f"line {i}: comment is not '# TYPE name kind'")
            elif parts[3] not in ("counter", "gauge", "summary", "histogram"):
                problems.append(f"line {i}: unknown metric kind {parts[3]!r}")
            else:
                declared.add(parts[2])
            continue
        sp = line.rfind(" ")
        if sp < 0:
            problems.append(f"line {i}: sample without a value: {line!r}")
            continue
        name = line[:sp].split("{", 1)[0]
        if not PROM_NAME.match(name):
            problems.append(f"line {i}: illegal metric name {name!r}")
            continue
        try:
            float(line[sp + 1 :])
        except ValueError:
            problems.append(f"line {i}: non-numeric value: {line!r}")
            continue
        # Summary samples belong to the family without the _count/_sum
        # suffix; plain counters and gauges are their own family.
        family = name
        for suffix in ("_count", "_sum"):
            if family.endswith(suffix) and family[: -len(suffix)] in declared:
                family = family[: -len(suffix)]
        if family not in declared:
            problems.append(f"line {i}: sample {name!r} has no # TYPE")
        sampled.add(name)
        sampled.add(family)
        samples += 1

    if samples == 0:
        problems.append("no samples in exposition")
    for name in args.require:
        if name not in sampled:
            problems.append(f"required metric {name!r} missing")

    if problems:
        for p in problems:
            print(f"  FAIL  {p}")
        sys.exit(f"{args.text}: {len(problems)} exposition problem(s)")
    print(
        f"{args.text}: {samples} sample(s) across {len(declared)} "
        f"declared famil(ies) ok"
    )


def validate_flight(argv):
    ap = argparse.ArgumentParser(
        prog="check_perf_regression.py validate-flight",
        description="Check a --flight-recorder black-box dump.",
    )
    ap.add_argument("dump", help="flight-recorder JSON artifact")
    ap.add_argument(
        "--expect-reason",
        help="require this abort reason (watchdog, step_cap, interrupt, "
        "invariant_failure)",
    )
    args = ap.parse_args(argv)

    with open(args.dump) as f:
        data = json.load(f)

    problems = []
    if not isinstance(data.get("manifest"), dict):
        problems.append("missing embedded run manifest")
    reason = data.get("reason")
    if not isinstance(reason, str) or not reason:
        problems.append("missing abort reason")
    if args.expect_reason and reason != args.expect_reason:
        problems.append(
            f"reason {reason!r}, expected {args.expect_reason!r}"
        )
    records = data.get("records")
    if not isinstance(records, list) or not records:
        problems.append("records must be a non-empty array")
        records = []
    total = data.get("total_records", -1)
    dropped = data.get("dropped", -1)
    if records and total != dropped + len(records):
        problems.append(
            f"ring accounting broken: total_records {total} != "
            f"dropped {dropped} + {len(records)} retained"
        )
    prev_step = None
    for i, rec in enumerate(records):
        missing = [
            k
            for k in ("step", "in_flight", "arrivals", "moves", "injected",
                      "queue_max")
            if k not in rec
        ]
        if missing:
            problems.append(f"record {i} missing {missing}: {rec}")
            continue
        if prev_step is not None and rec["step"] <= prev_step:
            problems.append(
                f"record {i}: step {rec['step']} not after {prev_step}"
            )
        prev_step = rec["step"]
        if "dir_moves" in rec and sum(rec["dir_moves"]) != rec["moves"]:
            problems.append(
                f"record {i}: dir_moves sum != moves: {rec}"
            )
    if records and data.get("step") != records[-1]["step"]:
        problems.append(
            f"headline step {data.get('step')} != final record step "
            f"{records[-1]['step']}"
        )

    if problems:
        for p in problems:
            print(f"  FAIL  {p}")
        sys.exit(f"{args.dump}: {len(problems)} dump problem(s)")
    print(
        f"{args.dump}: {len(records)} record(s) ok "
        f"(reason {reason}, {dropped} dropped, final step "
        f"{records[-1]['step'] if records else '?'})"
    )


JOURNEY_KINDS = {"injected", "move", "wait_lost_bid", "wait_links_dead"}


def check_journey(i, j):
    """Returns a list of problems with one journey record (empty = ok)."""
    problems = []
    required = {
        "id": int,
        "injected_step": int,
        "delivery_step": int,
        "delivered": bool,
        "dist0": int,
        "moves": int,
        "detour_moves": int,
        "retargets": int,
        "dim_moves": list,
        "dim_waits": list,
        "waits": dict,
        "events": list,
    }
    for key, kind in required.items():
        if not isinstance(j.get(key), kind):
            problems.append(f"journey {i}: missing or mistyped {key!r}")
    if problems:
        return problems

    waits = j["waits"]
    if not isinstance(waits.get("lost_bid"), int) or not isinstance(
        waits.get("links_dead"), int
    ):
        return [f"journey {i}: waits must carry integer lost_bid/links_dead"]

    pid = j["id"]
    # Replay the raw event list and require the headline counters to match:
    # a packet does exactly one thing per step, so steps must be strictly
    # increasing and every event must land in one of the four kinds.
    moves = lost = dead = 0
    dim_moves = [0] * len(j["dim_moves"])
    dim_waits = [0] * len(j["dim_waits"])
    prev_step = None
    delivered_at = None
    for e, ev in enumerate(j["events"]):
        if not isinstance(ev, list) or len(ev) != 6:
            problems.append(
                f"journey {i} (id {pid}): event {e} is not "
                f"[step, kind, proc, dim, dir, flags]"
            )
            continue
        step, kind, _proc, dim, _direc, flags = ev
        if kind not in JOURNEY_KINDS:
            problems.append(f"journey {i} (id {pid}): unknown kind {kind!r}")
            continue
        if prev_step is not None and step <= prev_step:
            problems.append(
                f"journey {i} (id {pid}): event {e} step {step} not after "
                f"{prev_step}"
            )
        prev_step = step
        if kind == "move":
            moves += 1
            if 0 <= dim < len(dim_moves):
                dim_moves[dim] += 1
        elif kind == "wait_lost_bid":
            lost += 1
            if 0 <= dim < len(dim_waits):
                dim_waits[dim] += 1
        elif kind == "wait_links_dead":
            dead += 1
        if flags & 4:  # kDelivered
            delivered_at = step
    for name, got, declared in (
        ("moves", moves, j["moves"]),
        ("waits.lost_bid", lost, waits["lost_bid"]),
        ("waits.links_dead", dead, waits["links_dead"]),
        ("dim_moves", dim_moves, j["dim_moves"]),
        ("dim_waits", dim_waits, j["dim_waits"]),
    ):
        if got != declared:
            problems.append(
                f"journey {i} (id {pid}): {name} declares {declared} but "
                f"events replay to {got}"
            )
    if sum(dim_moves) != moves:
        problems.append(
            f"journey {i} (id {pid}): {moves} move(s) but dim_moves sums to "
            f"{sum(dim_moves)} (a move without a dimension)"
        )
    if j["delivered"] != (delivered_at is not None) or (
        delivered_at is not None and delivered_at != j["delivery_step"]
    ):
        problems.append(
            f"journey {i} (id {pid}): delivered flag/step disagree with "
            f"the event list"
        )

    # The identity this subsystem exists to provide. Partial journeys
    # (resumed runs trace only post-resume steps, injected_step -1) and
    # undelivered packets are exempt, matching PacketJourney::IdentityHolds.
    if j["injected_step"] >= 0 and j["delivery_step"] >= 0:
        latency = j["delivery_step"] - j["injected_step"]
        decomposed = moves + lost + dead
        if latency != decomposed:
            problems.append(
                f"journey {i} (id {pid}): identity broken: latency "
                f"{latency} != {moves} move(s) + {lost + dead} wait(s)"
            )
        if j["retargets"] == 0 and moves < j["dist0"]:
            problems.append(
                f"journey {i} (id {pid}): {moves} move(s) below initial "
                f"distance {j['dist0']}"
            )
    return problems


def validate_journeys(argv):
    ap = argparse.ArgumentParser(
        prog="check_perf_regression.py validate-journeys",
        description="Check a --journeys packet-journey JSONL artifact.",
    )
    ap.add_argument("jsonl", help="journeys JSONL written with --journeys")
    ap.add_argument(
        "--min-journeys",
        type=int,
        default=1,
        help="fail unless at least this many packets were traced",
    )
    ap.add_argument(
        "--require-delivered",
        action="store_true",
        help="require every traced journey to end delivered",
    )
    args = ap.parse_args(argv)

    problems = []
    journeys = 0
    delivered = 0
    identities = 0
    with open(args.jsonl) as f:
        for i, line in enumerate(f):
            if not line.strip():
                continue
            try:
                j = json.loads(line)
            except ValueError as e:
                problems.append(f"line {i + 1}: not JSON: {e}")
                continue
            journeys += 1
            probs = check_journey(i, j)
            problems.extend(probs)
            if not probs:
                if j["delivered"]:
                    delivered += 1
                    if j["delivered"] and j["injected_step"] >= 0:
                        identities += 1
                elif args.require_delivered:
                    problems.append(
                        f"journey {i} (id {j.get('id')}): not delivered"
                    )

    if journeys < args.min_journeys:
        problems.append(
            f"{journeys} traced journey(s), need >= {args.min_journeys}"
        )

    if problems:
        for p in problems:
            print(f"  FAIL  {p}")
        sys.exit(f"{args.jsonl}: {len(problems)} journey problem(s)")
    print(
        f"{args.jsonl}: {journeys} journey(s) ok ({delivered} delivered, "
        f"{identities} critical-path identit(ies) verified)"
    )


CKPT_MAGIC = b"MDMCKPT1"
CKPT_VERSION = 1
CKPT_HEADER = struct.Struct("<8sIIQI")  # magic, version, flags, size, crc


def check_ckpt_file(path):
    """Returns a list of problems with one checkpoint file (empty = ok)."""
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        return [f"unreadable: {e}"]
    if len(blob) < CKPT_HEADER.size:
        return [f"truncated header: {len(blob)} < {CKPT_HEADER.size} bytes"]
    magic, version, flags, size, crc = CKPT_HEADER.unpack_from(blob)
    problems = []
    if magic != CKPT_MAGIC:
        return [f"bad magic {magic!r}"]
    if version != CKPT_VERSION:
        problems.append(f"version {version}, expected {CKPT_VERSION}")
    if flags != 0:
        problems.append(f"reserved flags nonzero: {flags:#x}")
    payload = blob[CKPT_HEADER.size:]
    if len(payload) != size:
        problems.append(
            f"payload {len(payload)} byte(s), header declares {size}"
        )
    elif binascii.crc32(payload) != crc:
        problems.append(
            f"payload CRC {binascii.crc32(payload):08x} != header {crc:08x}"
        )
    return problems


def validate_ckpt(argv):
    ap = argparse.ArgumentParser(
        prog="check_perf_regression.py validate-ckpt",
        description="Integrity-check engine checkpoint files "
        "(header framing + CRC-32, no C++ needed).",
    )
    ap.add_argument(
        "paths",
        nargs="+",
        help="checkpoint files, or directories holding ckpt-*.mdc",
    )
    ap.add_argument(
        "--min-files",
        type=int,
        default=1,
        help="fail unless at least this many checkpoint files were found",
    )
    args = ap.parse_args(argv)

    files = []
    for path in args.paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.startswith("ckpt-") and name.endswith(".mdc")
            )
        else:
            files.append(path)

    bad = 0
    for path in files:
        problems = check_ckpt_file(path)
        if problems:
            bad += 1
            for p in problems:
                print(f"  FAIL  {path}: {p}")
        else:
            size = os.path.getsize(path)
            print(f"  ok    {path}: {size} byte(s), CRC verified")
    if len(files) < args.min_files:
        sys.exit(
            f"found {len(files)} checkpoint file(s), need {args.min_files}"
        )
    if bad:
        sys.exit(f"{bad} of {len(files)} checkpoint file(s) invalid")
    print(f"all {len(files)} checkpoint file(s) valid")


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "validate-ckpt":
        validate_ckpt(sys.argv[2:])
        return
    if len(sys.argv) > 1 and sys.argv[1] == "validate-trace":
        validate_trace(sys.argv[2:])
        return
    if len(sys.argv) > 1 and sys.argv[1] == "validate-prom":
        validate_prom(sys.argv[2:])
        return
    if len(sys.argv) > 1 and sys.argv[1] == "validate-flight":
        validate_flight(sys.argv[2:])
        return
    if len(sys.argv) > 1 and sys.argv[1] == "validate-journeys":
        validate_journeys(sys.argv[2:])
        return

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_engine.json")
    ap.add_argument("candidate", help="freshly generated BENCH_engine.json")
    ap.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="max allowed throughput drop (candidate >= baseline / factor)",
    )
    args = ap.parse_args()
    if args.factor < 1.0:
        ap.error("--factor must be >= 1.0")

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    for key, base_rec in sorted(base.items()):
        name = "/".join(str(part) for part in key)
        if key not in cand:
            # Workload sets may legitimately differ between the full bench
            # (committed baseline) and a --quick CI run; only keys present
            # in BOTH are guarded.
            print(f"  skip  {name}: not in candidate")
            continue
        cand_rec = cand[key]
        base_rate, cand_rate = base_rec["rate"], cand_rec["rate"]
        floor = base_rate / args.factor
        verdict = "ok" if cand_rate >= floor else "FAIL"
        print(
            f"  {verdict:4}  {name}: {cand_rate / 1e6:.2f} M moves/s "
            f"(baseline {base_rate / 1e6:.2f}, floor {floor / 1e6:.2f})"
        )
        if cand_rate < floor:
            failures.append(name)
        if base_rec["rss"] > 0 and cand_rec["rss"] > 0:
            ceiling = max(base_rec["rss"] * 2.0, base_rec["rss"] + 256.0)
            if cand_rec["rss"] > ceiling:
                print(
                    f"  FAIL  {name}: peak RSS {cand_rec['rss']:.0f} MiB > "
                    f"ceiling {ceiling:.0f} (baseline {base_rec['rss']:.0f})"
                )
                failures.append(name + " [rss]")

    # Absolute RSS guards bind regardless of baseline overlap: the --mega
    # fixture's whole point is that the run fits the declared footprint.
    for key, cand_rec in sorted(cand.items()):
        if cand_rec["guard"] <= 0:
            continue
        name = "/".join(str(part) for part in key)
        if cand_rec["rss"] <= 0:
            print(f"  FAIL  {name}: rss_guard_mb set but no peak_rss_mb")
            failures.append(name + " [rss-guard]")
        elif cand_rec["rss"] > cand_rec["guard"]:
            print(
                f"  FAIL  {name}: peak RSS {cand_rec['rss']:.0f} MiB exceeds "
                f"its guard {cand_rec['guard']:.0f}"
            )
            failures.append(name + " [rss-guard]")
        else:
            print(
                f"  ok    {name}: peak RSS {cand_rec['rss']:.0f} MiB within "
                f"guard {cand_rec['guard']:.0f}"
            )

    guarded = sum(1 for key in base if key in cand)
    if guarded == 0:
        sys.exit("no overlapping (workload, spec, mode) keys to guard")
    if failures:
        sys.exit(
            f"{len(failures)} of {guarded} guarded key(s) failed "
            f"(>{args.factor}x slowdown or RSS breach): {', '.join(failures)}"
        )
    print(f"all {guarded} guarded key(s) within {args.factor}x of baseline")


if __name__ == "__main__":
    main()
