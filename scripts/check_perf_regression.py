#!/usr/bin/env python3
"""Wall-clock regression guard + Chrome-trace validator for bench artifacts.

Default mode compares a freshly generated bench JSON (BENCH_engine.json,
BENCH_workloads.json) against the committed baseline: every
(experiment, workload, spec, mode) key present in the baseline must still
exist, and its packet_steps_per_sec must not have dropped by more than the
guard factor. Records without a packet_steps_per_sec field (step-count
experiments like workload_latency) are ignored — only timed wall-clock
records are guarded. The factor defaults to 2x — CI machines are shared
and noisy, so the guard catches order-of-magnitude regressions (a dense
fallback that stopped engaging, an accidentally quadratic active-set
rebuild), not single-digit-percent drift; tighten it for controlled
hardware with --factor.

Artifacts may be the legacy bare JSON array of records or the manifest
wrapper {"manifest": {...}, "records": [...]} (BenchJson since the
timeline-export change); both load transparently.

The validate-trace subcommand schema-checks a --perfetto Chrome Trace
Event artifact instead: top-level shape, an embedded run manifest, the
required ph/ts/pid/tid fields on every event, matched B/E pairs per
(pid, tid) track, non-negative durations on X events, and (optionally) a
minimum number of distinct counter tracks.

Usage:
    check_perf_regression.py BASELINE CANDIDATE [--factor 2.0]
    check_perf_regression.py validate-trace TRACE [--min-counter-tracks N]

Exit status: 0 when every check holds, 1 on any regression, missing key,
or schema violation. Stdlib only.
"""

import argparse
import json
import sys


def key_of(rec):
    spec = rec.get("spec", {})
    return (
        rec.get("experiment", "?"),
        rec.get("workload", "?"),
        spec.get("d"),
        spec.get("n"),
        spec.get("wrap"),
        rec.get("mode", "?"),
    )


def records_of(path, data):
    """Unwraps either artifact shape into the list of records."""
    if isinstance(data, dict):
        if "records" not in data:
            sys.exit(f"{path}: object artifact is missing a 'records' array")
        if not isinstance(data.get("manifest"), dict):
            sys.exit(f"{path}: object artifact is missing its run manifest")
        data = data["records"]
    if not isinstance(data, list) or not data:
        sys.exit(f"{path}: expected a non-empty array of records")
    return data


def load(path):
    with open(path) as f:
        recs = records_of(path, json.load(f))
    table = {}
    for rec in recs:
        if "packet_steps_per_sec" not in rec:
            continue  # step-count experiment, not a timed record
        rate = rec["packet_steps_per_sec"]
        if not isinstance(rate, (int, float)) or rate <= 0:
            sys.exit(f"{path}: bad packet_steps_per_sec in {rec}")
        table[key_of(rec)] = float(rate)
    if not table:
        sys.exit(f"{path}: no timed wall-clock records")
    return table


def validate_trace(argv):
    ap = argparse.ArgumentParser(
        prog="check_perf_regression.py validate-trace",
        description="Schema-check a --perfetto Chrome Trace Event artifact.",
    )
    ap.add_argument("trace", help="Chrome-trace JSON written with --perfetto")
    ap.add_argument(
        "--min-counter-tracks",
        type=int,
        default=0,
        help="require at least N distinct counter (ph=C) track names",
    )
    args = ap.parse_args(argv)

    with open(args.trace) as f:
        data = json.load(f)

    problems = []
    if not isinstance(data, dict):
        sys.exit(f"{args.trace}: top level must be an object")
    manifest = data.get("metadata", {}).get("manifest")
    if not isinstance(manifest, dict) or "tool" not in manifest:
        problems.append("missing embedded run manifest in metadata.manifest")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit(f"{args.trace}: traceEvents must be a non-empty array")

    counter_tracks = set()
    open_stacks = {}  # (pid, tid) -> stack of open B names
    for i, ev in enumerate(events):
        missing = [k for k in ("ph", "ts", "pid", "tid") if k not in ev]
        if missing:
            problems.append(f"event {i} missing {missing}: {ev}")
            continue
        ph = ev["ph"]
        track = (ev["pid"], ev["tid"])
        if ph == "B":
            open_stacks.setdefault(track, []).append(ev.get("name", "?"))
        elif ph == "E":
            stack = open_stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E without matching B on {track}")
            else:
                begun = stack.pop()
                if ev.get("name", "?") != begun:
                    problems.append(
                        f"event {i}: E '{ev.get('name')}' closes B '{begun}' "
                        f"on {track}"
                    )
        elif ph == "C":
            counter_tracks.add(ev.get("name", "?"))
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                problems.append(f"event {i}: negative dur on X event")

    for track, stack in sorted(open_stacks.items()):
        if stack:
            problems.append(f"unclosed B event(s) on {track}: {stack}")

    if len(counter_tracks) < args.min_counter_tracks:
        problems.append(
            f"only {len(counter_tracks)} counter track(s), need "
            f">= {args.min_counter_tracks}: {sorted(counter_tracks)}"
        )

    if problems:
        for p in problems:
            print(f"  FAIL  {p}")
        sys.exit(f"{args.trace}: {len(problems)} schema problem(s)")
    print(
        f"{args.trace}: {len(events)} events ok "
        f"({len(counter_tracks)} counter track(s), manifest embedded)"
    )


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "validate-trace":
        validate_trace(sys.argv[2:])
        return

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_engine.json")
    ap.add_argument("candidate", help="freshly generated BENCH_engine.json")
    ap.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="max allowed throughput drop (candidate >= baseline / factor)",
    )
    args = ap.parse_args()
    if args.factor < 1.0:
        ap.error("--factor must be >= 1.0")

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    for key, base_rate in sorted(base.items()):
        name = "/".join(str(part) for part in key)
        if key not in cand:
            # Workload sets may legitimately differ between the full bench
            # (committed baseline) and a --quick CI run; only keys present
            # in BOTH are guarded.
            print(f"  skip  {name}: not in candidate")
            continue
        cand_rate = cand[key]
        floor = base_rate / args.factor
        verdict = "ok" if cand_rate >= floor else "FAIL"
        print(
            f"  {verdict:4}  {name}: {cand_rate / 1e6:.2f} M moves/s "
            f"(baseline {base_rate / 1e6:.2f}, floor {floor / 1e6:.2f})"
        )
        if cand_rate < floor:
            failures.append(name)

    guarded = sum(1 for key in base if key in cand)
    if guarded == 0:
        sys.exit("no overlapping (workload, spec, mode) keys to guard")
    if failures:
        sys.exit(
            f"{len(failures)} of {guarded} guarded key(s) regressed by more "
            f"than {args.factor}x: {', '.join(failures)}"
        )
    print(f"all {guarded} guarded key(s) within {args.factor}x of baseline")


if __name__ == "__main__":
    main()
