#!/usr/bin/env python3
"""Crash-recovery drill: SIGKILL a checkpointing run mid-flight, resume it,
and require the delivery trace to come out byte-identical.

The drill is the end-to-end proof of the checkpoint/restore contract
(src/ckpt/): a run killed at an arbitrary instant — including mid-write,
which the atomic rename makes safe — restarts from its newest valid
checkpoint and finishes with exactly the delivery_hash of an uninterrupted
run. The hash (workload/driver.h) folds every (packet id, injection step,
arrival step) triple in delivery order, so a single reordered or re-timed
delivery after resume fails the drill.

Sequence:
  1. baseline: run workload_demo to completion, record delivery_hash
  2. victim:   same run with --checkpoint=DIR, poll until a seeded-random
               number of checkpoint generations (2-6) exist, then SIGKILL —
               waiting for files rather than sleeping makes the drill
               timing-proof on slow CI machines and guarantees a valid
               checkpoint exists at kill time
  3. optional (--corrupt-newest): flip a byte in the newest generation so
     the resume must fall back past it (exercises LoadNewestValid)
  4. resume:   --checkpoint=DIR --resume, record delivery_hash
  5. verdict:  hashes equal -> exit 0, else exit 1

Stdlib only. Exit codes propagate the real failure signal: when a child run
fails, the drill exits with the child's own exit code (128+N for a
signal-killed child, shell style) rather than a generic 1, so CI logs show
what actually happened. A scratch temp directory is removed on every path,
success or failure; pass --workdir to keep the checkpoint directory for
artifact upload instead.

Usage:
    crash_drill.py [--binary BUILD/examples/workload_demo]
                   [--d 2 --n 8 --warmup 50 --measure 300 --rate-pm 100]
                   [--every 25] [--seed 1] [--corrupt-newest]
"""

import argparse
import atexit
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def extract_hash(stdout, label):
    for line in stdout.splitlines():
        if line.startswith("delivery_hash:"):
            return line.split(":", 1)[1].strip()
    sys.exit(f"{label}: no delivery_hash line in output:\n{stdout}")


def run_to_completion(cmd, label):
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        # Propagate the child's exit code so CI shows the real signal: a
        # signal-killed child (returncode -N) becomes the shell-style 128+N.
        code = proc.returncode if proc.returncode > 0 else 128 - proc.returncode
        print(
            f"{label}: exit {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}",
            file=sys.stderr,
        )
        sys.exit(code)
    return proc


def count_checkpoints(ckpt_dir):
    if not os.path.isdir(ckpt_dir):
        return []
    return sorted(
        name
        for name in os.listdir(ckpt_dir)
        if name.startswith("ckpt-") and name.endswith(".mdc")
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--binary",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir, "build", "examples", "workload_demo",
        ),
        help="workload_demo binary (default: ../build/examples/)",
    )
    ap.add_argument("--d", type=int, default=2)
    ap.add_argument("--n", type=int, default=8)
    ap.add_argument("--warmup", type=int, default=50)
    ap.add_argument("--measure", type=int, default=300)
    ap.add_argument("--rate-pm", type=int, default=100,
                    help="injection rate, per mille")
    ap.add_argument("--every", type=int, default=25,
                    help="checkpoint cadence in steps")
    ap.add_argument("--seed", type=int, default=1,
                    help="drill seed (picks the kill point)")
    ap.add_argument("--corrupt-newest", action="store_true",
                    help="bit-flip the newest checkpoint before resuming, "
                    "forcing the fallback path")
    ap.add_argument("--workdir", default=None,
                    help="directory for the checkpoint dir (default: a "
                    "fresh temp dir, removed on success)")
    ap.add_argument("--layout", default="auto",
                    choices=("auto", "legacy", "tiled"),
                    help="engine packet-storage layout to drill "
                    "(passed through to workload_demo)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="seconds to wait for checkpoints / runs")
    args = ap.parse_args()

    if not os.path.exists(args.binary):
        sys.exit(f"binary not found: {args.binary} (build the tree first)")

    # A scratch temp dir is removed on *every* exit path — including the
    # sys.exit failure paths, via atexit; an explicit --workdir is always
    # kept so CI can upload its contents as artifacts.
    scratch = None if args.workdir else tempfile.mkdtemp(prefix="crash_drill_")
    if scratch:
        atexit.register(shutil.rmtree, scratch, ignore_errors=True)
    workdir = args.workdir or scratch
    os.makedirs(workdir, exist_ok=True)
    ckpt_dir = os.path.join(workdir, "ckpt")
    shutil.rmtree(ckpt_dir, ignore_errors=True)

    base_cmd = [
        args.binary,
        f"--d={args.d}",
        f"--n={args.n}",
        f"--warmup={args.warmup}",
        f"--measure={args.measure}",
        f"--rate-pm={args.rate_pm}",
        f"--layout={args.layout}",
        "--drain",
    ]

    # 1. Uninterrupted baseline.
    baseline = run_to_completion(base_cmd, "baseline")
    want = extract_hash(baseline.stdout, "baseline")
    print(f"baseline delivery_hash: {want}")

    # 2. Victim: checkpointing run, SIGKILL once enough generations exist.
    rng = random.Random(args.seed)
    target = rng.randint(2, 6)
    # keep must exceed the kill target or rotation caps the file count and
    # the poll below would never fire.
    victim_cmd = base_cmd + [
        f"--checkpoint={ckpt_dir}",
        f"--checkpoint-every={args.every}",
        f"--checkpoint-keep={target + 2}",
    ]
    print(f"victim: kill after {target} checkpoint generation(s)")
    victim = subprocess.Popen(
        victim_cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    deadline = time.monotonic() + args.timeout
    killed = False
    while victim.poll() is None:
        if len(count_checkpoints(ckpt_dir)) >= target:
            victim.kill()  # SIGKILL: no cleanup, no flush, mid-anything
            killed = True
            break
        if time.monotonic() > deadline:
            victim.kill()
            sys.exit(
                f"victim produced {len(count_checkpoints(ckpt_dir))} "
                f"checkpoint(s) in {args.timeout}s, wanted {target}"
            )
        time.sleep(0.01)
    victim.wait()
    files = count_checkpoints(ckpt_dir)
    if not killed:
        # The run outraced the poll loop. Any surviving checkpoint still
        # proves resume correctness, so continue — but say so.
        print("victim finished before the kill; resuming from its last "
              "checkpoint instead")
    if not files:
        sys.exit("victim left no checkpoint files")
    print(f"victim killed (signal {-victim.returncode}); "
          f"{len(files)} generation(s) on disk: {', '.join(files)}"
          if killed else f"{len(files)} generation(s) on disk")

    # 3. Optionally corrupt the newest generation.
    if args.corrupt_newest:
        newest = os.path.join(ckpt_dir, files[-1])
        with open(newest, "r+b") as f:
            f.seek(-1, os.SEEK_END)
            byte = f.read(1)
            f.seek(-1, os.SEEK_END)
            f.write(bytes([byte[0] ^ 0x55]))
        print(f"corrupted newest generation: {files[-1]}")

    # 4. Resume.
    resume_cmd = base_cmd + [f"--checkpoint={ckpt_dir}", "--resume"]
    resumed = run_to_completion(resume_cmd, "resume")
    if "resuming from" not in resumed.stderr:
        sys.exit(f"resume did not report a checkpoint:\n{resumed.stderr}")
    if args.corrupt_newest and files[-1] in resumed.stderr.split(
            "resuming from", 1)[1]:
        sys.exit(
            f"resume used the corrupted generation {files[-1]}:\n"
            f"{resumed.stderr}"
        )
    got = extract_hash(resumed.stdout, "resume")
    print(f"resumed  delivery_hash: {got}")

    # 5. Verdict.
    if got != want:
        kept = (f"checkpoint dir kept at {ckpt_dir}" if args.workdir
                else "pass --workdir to keep the checkpoint dir")
        print(f"FAIL: delivery trace diverged after crash recovery "
              f"({got} != {want}); {kept}")
        sys.exit(1)
    print("ok: crash-recovered run is byte-identical to the baseline")


if __name__ == "__main__":
    main()
