// Plain-text table formatter for bench/example output.
//
// Benches reproduce the paper's theorem bounds as rows of
// (parameters, measured steps, steps/D, claimed coefficient); this helper
// renders them with aligned columns so EXPERIMENTS.md can quote the output
// verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdmesh {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent Cell() calls fill it left to right.
  Table& Row();
  Table& Cell(const std::string& value);
  Table& Cell(std::int64_t value);
  Table& Cell(double value, int precision = 3);

  /// Renders with a header rule. All rows are padded to the header width.
  std::string ToString() const;

  /// Comma-separated form (header row first; cells containing commas or
  /// quotes are quoted) for piping bench tables into plotting scripts.
  std::string ToCsv() const;

  /// Renders to stdout.
  void Print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdmesh
