// Tiny command-line flag parser for the example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos surface immediately. Flag names may be given
// with or without the leading dashes ("json" and "--json" register and look
// up the same flag), so call sites can spell the flag the way the user
// types it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdmesh {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Registers a flag with a default value and help text. Must be called
  /// before Parse.
  void AddInt(const std::string& name, std::int64_t def, const std::string& help);
  void AddString(const std::string& name, const std::string& def, const std::string& help);
  void AddBool(const std::string& name, bool def, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  bool Parse(int argc, const char* const* argv);

  std::int64_t GetInt(const std::string& name) const;
  std::string GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  std::string Usage() const;

 private:
  enum class Kind { kInt, kString, kBool };
  /// Strips any leading dashes: "--json" -> "json".
  static std::string Normalize(const std::string& name);
  struct Flag {
    Kind kind;
    std::string value;
    std::string def;
    std::string help;
  };
  const Flag& Find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace mdmesh
