// Streaming statistics accumulators used by the metrics and bench layers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdmesh {

/// Single-pass accumulator for count/min/max/mean/variance (Welford).
class Accumulator {
 public:
  void Add(double x);
  void Merge(const Accumulator& other);

  std::int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over integer values [0, size). Values >= size are
/// clamped into the last bucket (and counted as overflow).
class Histogram {
 public:
  explicit Histogram(std::size_t size) : buckets_(size, 0) {}

  void Add(std::int64_t value);
  std::int64_t Count(std::size_t bucket) const { return buckets_.at(bucket); }
  std::int64_t total() const { return total_; }
  std::int64_t overflow() const { return overflow_; }
  std::size_t size() const { return buckets_.size(); }

  /// Smallest value v such that at least `q` fraction of samples are <= v.
  std::int64_t Quantile(double q) const;

 private:
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
  std::int64_t overflow_ = 0;
};

}  // namespace mdmesh
