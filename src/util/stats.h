// Streaming statistics accumulators used by the metrics and bench layers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdmesh {

/// Single-pass accumulator for count/min/max/mean/variance (Welford).
class Accumulator {
 public:
  void Add(double x);
  void Merge(const Accumulator& other);

  std::int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Raw second central moment (Welford m2), exposed with RestoreMoments so
  /// a checkpoint can round-trip the accumulator exactly.
  double m2() const { return m2_; }
  void RestoreMoments(std::int64_t count, double mean, double m2, double min,
                      double max);

  std::string ToString() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over integer values [0, size). Values >= size are
/// clamped into the last bucket (and counted as overflow).
class Histogram {
 public:
  explicit Histogram(std::size_t size) : buckets_(size, 0) {}

  void Add(std::int64_t value);
  /// Adds `count` identical samples of `value` in O(1). Used for the bulk
  /// zero-occupancy tail when snapshotting sparse storage (tiled arena).
  void AddN(std::int64_t value, std::int64_t count);
  std::int64_t Count(std::size_t bucket) const { return buckets_.at(bucket); }
  std::int64_t total() const { return total_; }
  std::int64_t overflow() const { return overflow_; }
  std::size_t size() const { return buckets_.size(); }

  /// Smallest value v such that at least `q` fraction of samples are <= v.
  std::int64_t Quantile(double q) const;

  /// Interpolated percentile over the stored sample multiset (the numpy
  /// "linear" rule): the value at fractional rank q * (total - 1), linearly
  /// interpolated between the two adjacent sample values when the rank falls
  /// between them. Exact (equals Quantile) when the rank lands on a sample.
  /// Returns 0 on an empty histogram.
  double Percentile(double q) const;

 private:
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
  std::int64_t overflow_ = 0;
};

/// Quantile histogram for non-negative integer measurements with an
/// unknown range (per-packet latencies): a fixed number of buckets whose
/// common width starts at 1 and doubles whenever a value lands beyond the
/// current span (adjacent buckets merge pairwise, which is exact). Memory
/// stays O(buckets) forever; resolution degrades gracefully from exact
/// counts to power-of-two-wide bins. Quantile() is exact while the width
/// is 1 and linearly interpolated inside wider bins, always clamped to the
/// observed [min, max].
class QuantileHistogram {
 public:
  explicit QuantileHistogram(std::size_t buckets = 2048);

  /// Adds one sample. value must be >= 0.
  void Add(std::int64_t value);
  /// Folds `other` into this histogram (widths are aligned by doubling).
  void Merge(const QuantileHistogram& other);

  std::int64_t count() const { return count_; }
  std::int64_t min() const { return count_ > 0 ? min_ : 0; }
  std::int64_t max() const { return count_ > 0 ? max_ : 0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Current bucket width (1 = exact integer resolution).
  std::int64_t width() const { return width_; }

  /// Exact sample sum (mean() * count(), kept separately for round-trips).
  double sum() const { return sum_; }
  /// The raw bucket array, for checkpoint serialization.
  const std::vector<std::int64_t>& raw_buckets() const { return buckets_; }
  /// Replaces the full histogram state from a checkpoint. Returns false
  /// (leaving the histogram untouched) on malformed input: width < 1,
  /// negative count, or fewer than two buckets.
  bool RestoreState(std::int64_t width, std::int64_t count, std::int64_t min,
                    std::int64_t max, double sum,
                    std::vector<std::int64_t> buckets);

  /// The value at quantile q in [0, 1] (0.5 = median). Exact for width 1;
  /// otherwise interpolated within the containing bucket. Clamped to the
  /// observed range, so singleton and all-equal sample sets are always
  /// answered exactly. Returns 0 when empty.
  double Quantile(double q) const;

  std::string ToString() const;  ///< "n=... p50=... p95=... p99=... max=..."

 private:
  void GrowToFit(std::int64_t value);

  std::vector<std::int64_t> buckets_;
  std::int64_t width_ = 1;
  std::int64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace mdmesh
