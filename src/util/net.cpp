#include "util/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mdmesh {

#if defined(_WIN32)

int ListenLoopback(int, int, int*, std::string* error) {
  if (error != nullptr) *error = "POSIX sockets unavailable on this platform";
  return -1;
}
AcceptStatus AcceptClient(int, int*, std::string* diag) {
  if (diag != nullptr) *diag = "POSIX sockets unavailable on this platform";
  return AcceptStatus::kFatal;
}
int RecvSome(int, char*, std::size_t, int) { return -2; }
bool SendAll(int, const std::string&) { return false; }
void CloseFd(int) {}

#else

int ListenLoopback(int port, int backlog, int* bound_port,
                   std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    if (error != nullptr) {
      *error = "cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    *bound_port = ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0
                      ? ntohs(bound.sin_port)
                      : port;
  }
  return fd;
}

AcceptStatus AcceptClient(int listen_fd, int* client_fd, std::string* diag) {
  *client_fd = -1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      *client_fd = fd;
      return AcceptStatus::kAccepted;
    }
    const int err = errno;
    if (err == EINTR) continue;  // signal during accept: the connection is
                                 // still pending; try again immediately
    if (err == EAGAIN || err == EWOULDBLOCK || err == ECONNABORTED) {
      return AcceptStatus::kRetry;
    }
    if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
      // Descriptor/buffer exhaustion: the pending connection stays in the
      // listen backlog; the caller should back off and retry rather than
      // tear down the listener.
      if (diag != nullptr) {
        *diag = std::string("accept: ") + std::strerror(err) +
                " (fd exhaustion; backing off)";
      }
      return AcceptStatus::kExhausted;
    }
    if (diag != nullptr) {
      *diag = std::string("accept: ") + std::strerror(err);
    }
    return AcceptStatus::kFatal;
  }
}

int RecvSome(int fd, char* buf, std::size_t cap, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return -1;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, static_cast<int>(left));
    if (r < 0) {
      if (errno == EINTR) continue;
      return -2;
    }
    if (r == 0) return -1;
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return static_cast<int>(n);
    if (n == 0) return 0;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return -2;
  }
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t k =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    sent += static_cast<std::size_t>(k);
  }
  return true;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

#endif  // _WIN32

}  // namespace mdmesh
