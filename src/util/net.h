// Shared loopback-socket helpers for the HTTP surfaces (obs/publisher and
// serve/http). POSIX only: on _WIN32 every call fails cleanly so callers
// degrade (the publisher falls back to status files; the server refuses to
// start) without platform #ifdefs at each call site.
//
// The accept path encodes the hardening the single-client publisher
// originally skipped: accept() is retried through EINTR (a SIGTERM aimed at
// graceful drain must not eat an unrelated connection), and descriptor
// exhaustion (EMFILE/ENFILE, plus the ENOBUFS/ENOMEM kernel variants) backs
// off with a diagnostic instead of silently spinning or dropping the
// listener — under exhaustion the pending connection stays queued in the
// listen backlog and is served once descriptors free up.
#pragma once

#include <string>

namespace mdmesh {

/// Backlog for HTTP listeners. The publisher's original 8 was sized for one
/// scraper; the experiment service takes bursts of concurrent submissions,
/// and a too-short backlog turns those into connection refusals.
inline constexpr int kListenBacklog = 64;

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 picks an ephemeral
/// port). Returns the fd, with the actually-bound port in *bound_port, or
/// -1 with *error describing the failure.
int ListenLoopback(int port, int backlog, int* bound_port, std::string* error);

/// Result of one accept attempt.
enum class AcceptStatus {
  kAccepted,   ///< *client_fd is a connected socket
  kRetry,      ///< transient (would-block / connection aborted) — poll again
  kExhausted,  ///< fd exhaustion; caller should back off (diag set)
  kFatal,      ///< listener is broken (diag set)
};

/// One hardened accept() on `listen_fd`: loops internally on EINTR, maps
/// resource exhaustion and transient errors to statuses the caller can act
/// on. `diag` (may be null) receives a printable reason for kExhausted and
/// kFatal.
AcceptStatus AcceptClient(int listen_fd, int* client_fd, std::string* diag);

/// One poll+recv round with a deadline. Returns the byte count (> 0), 0 on
/// orderly peer close, -1 on timeout, -2 on socket error. EINTR retries
/// internally without restarting the timeout from scratch.
int RecvSome(int fd, char* buf, std::size_t cap, int timeout_ms);

/// Writes the whole buffer; returns false on error/short write.
bool SendAll(int fd, const std::string& data);

/// close() wrapper (no-op on fd < 0 / non-POSIX).
void CloseFd(int fd);

}  // namespace mdmesh
