#include "util/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mdmesh {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::string Cli::Normalize(const std::string& name) {
  std::size_t start = 0;
  while (start < name.size() && name[start] == '-') ++start;
  return name.substr(start);
}

void Cli::AddInt(const std::string& name, std::int64_t def, const std::string& help) {
  const std::string key = Normalize(name);
  flags_[key] = Flag{Kind::kInt, std::to_string(def), std::to_string(def), help};
  order_.push_back(key);
}

void Cli::AddString(const std::string& name, const std::string& def, const std::string& help) {
  const std::string key = Normalize(name);
  flags_[key] = Flag{Kind::kString, def, def, help};
  order_.push_back(key);
}

void Cli::AddBool(const std::string& name, bool def, const std::string& help) {
  const std::string key = Normalize(name);
  flags_[key] = Flag{Kind::kBool, def ? "1" : "0", def ? "1" : "0", help};
  order_.push_back(key);
}

bool Cli::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s", arg.c_str(),
                   Usage().c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(), Usage().c_str());
      return false;
    }
    if (!have_value) {
      if (it->second.kind == Kind::kBool) {
        value = "1";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag '--%s' requires a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const Cli::Flag& Cli::Find(const std::string& name, Kind kind) const {
  auto it = flags_.find(Normalize(name));
  if (it == flags_.end() || it->second.kind != kind) {
    throw std::logic_error("flag not registered with this type: " + name);
  }
  return it->second;
}

std::int64_t Cli::GetInt(const std::string& name) const {
  return std::stoll(Find(name, Kind::kInt).value);
}

std::string Cli::GetString(const std::string& name) const {
  return Find(name, Kind::kString).value;
}

bool Cli::GetBool(const std::string& name) const {
  const std::string& v = Find(name, Kind::kBool).value;
  return v == "1" || v == "true" || v == "yes";
}

std::string Cli::Usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nflags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.def << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace mdmesh
