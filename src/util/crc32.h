// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the zlib/PNG
// variant, chosen deliberately so Python's binascii.crc32 computes the same
// digest and CI scripts can validate checkpoint files without linking any
// C++ code.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mdmesh {

/// One-shot CRC-32 of a byte buffer.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Incremental form: feed `crc` = 0 for the first chunk, then the previous
/// return value for each following chunk. Equivalent to one Crc32 call over
/// the concatenation.
std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size);

}  // namespace mdmesh
