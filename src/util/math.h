// Small integer-math helpers used throughout mdmesh.
//
// All network sizes are products n^d that comfortably fit in int64_t for the
// parameter ranges we simulate (N < 2^40); helpers assert on overflow in
// debug builds instead of silently wrapping.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

namespace mdmesh {

/// Integer power base^exp for small exponents. Asserts on overflow.
constexpr std::int64_t IPow(std::int64_t base, int exp) {
  assert(exp >= 0);
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    assert(base == 0 || r <= std::numeric_limits<std::int64_t>::max() / (base > 0 ? base : 1));
    r *= base;
  }
  return r;
}

/// Ceiling division for non-negative operands.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  assert(b > 0 && a >= 0);
  return (a + b - 1) / b;
}

/// True Euclidean modulus (result in [0, m) even for negative a).
constexpr std::int64_t Mod(std::int64_t a, std::int64_t m) {
  assert(m > 0);
  std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// |a - b| for signed integers.
constexpr std::int64_t AbsDiff(std::int64_t a, std::int64_t b) {
  return a > b ? a - b : b - a;
}

/// Distance between positions a and b on a ring of size n (shorter way).
constexpr std::int64_t RingDist(std::int64_t a, std::int64_t b, std::int64_t n) {
  std::int64_t x = AbsDiff(a, b);
  return x < n - x ? x : n - x;
}

/// Integer log2 floor; requires x > 0.
constexpr int Log2Floor(std::uint64_t x) {
  assert(x > 0);
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

}  // namespace mdmesh
