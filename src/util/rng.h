// Deterministic, splittable pseudo-random number generation.
//
// Simulations in mdmesh must be exactly reproducible across runs and across
// thread counts. We therefore avoid std::mt19937 seeded from global state
// and instead use xoshiro256** seeded via SplitMix64, with a Split() method
// that derives statistically independent child streams (e.g., one per
// processor of the simulated network) from a parent seed and a stream id.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mdmesh {

/// SplitMix64 step: used for seeding and stream derivation.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** generator (Blackman/Vigna). Satisfies the basic requirements
/// of UniformRandomBitGenerator so it can drive std::shuffle and friends.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  /// Unbiased uniform draw from [0, bound) via Lemire rejection. bound > 0.
  std::uint64_t Below(std::uint64_t bound);

  /// Uniform draw from [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double Unit();

  /// Bernoulli(p) draw.
  bool Chance(double p) { return Unit() < p; }

  /// Derives an independent child generator for stream `stream`.
  /// Children of the same parent with distinct stream ids are independent;
  /// the parent's own state is not advanced.
  Rng Split(std::uint64_t stream) const;

  /// Fisher-Yates shuffle of a vector (deterministic given this Rng state).
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of [0, size).
  std::vector<std::int64_t> Permutation(std::int64_t size);

  /// The full generator state (the four xoshiro256** lanes), for
  /// checkpointing. Restore() on any Rng replays the identical draw
  /// sequence from that point — including Split() children, whose
  /// derivation reads only the parent state.
  std::array<std::uint64_t, 4> State() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void Restore(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<std::size_t>(i)];
    // The all-zero state is a fixed point of xoshiro and unreachable from
    // any seeded generator; guard against hand-built inputs anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mdmesh
