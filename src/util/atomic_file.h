// Atomic file replacement: write a temporary sibling, flush it to stable
// storage, then rename it over the destination. A reader (or a crash at any
// instant) sees either the previous complete file or the new complete file,
// never a torn mixture — the invariant the checkpoint store, the
// --status-file snapshot, and the flight-recorder dump all rely on.
#pragma once

#include <cstddef>
#include <string>

namespace mdmesh {

/// Writes `size` bytes at `data` to `path` via `path + ".tmp"`:
/// write -> fsync -> rename. Returns false on failure with a diagnostic
/// (including the errno text) in *error; `error` may be null. The
/// temporary file is removed on a failed write, so retries start clean.
bool WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size, std::string* error);

bool WriteFileAtomic(const std::string& path, const std::string& data,
                     std::string* error);

}  // namespace mdmesh
