#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace mdmesh {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  assert(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(std::int64_t value) { return Cell(std::to_string(value)); }

Table& Table::Cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return Cell(os.str());
}

std::string Table::ToString() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c])) << v;
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < headers_.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      os << escape(c < cells.size() ? cells[c] : std::string{});
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace mdmesh
