#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mdmesh {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void Accumulator::RestoreMoments(std::int64_t count, double mean, double m2,
                                 double min, double max) {
  count_ = count < 0 ? 0 : count;
  mean_ = mean;
  m2_ = m2;
  min_ = min;
  max_ = max;
}

double Accumulator::min() const { return count_ ? min_ : 0.0; }
double Accumulator::max() const { return count_ ? max_ : 0.0; }
double Accumulator::mean() const { return mean_; }

double Accumulator::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string Accumulator::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " min=" << min() << " mean=" << mean()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

void Histogram::Add(std::int64_t value) {
  assert(value >= 0);
  auto idx = static_cast<std::size_t>(value);
  if (idx >= buckets_.size()) {
    ++overflow_;
    idx = buckets_.size() - 1;
  }
  ++buckets_[idx];
  ++total_;
}

void Histogram::AddN(std::int64_t value, std::int64_t count) {
  assert(value >= 0 && count >= 0);
  if (count == 0) return;
  auto idx = static_cast<std::size_t>(value);
  if (idx >= buckets_.size()) {
    overflow_ += count;
    idx = buckets_.size() - 1;
  }
  buckets_[idx] += count;
  total_ += count;
}

std::int64_t Histogram::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0;
  auto want = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_)));
  want = std::max<std::int64_t>(want, 1);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= want) return static_cast<std::int64_t>(i);
  }
  return static_cast<std::int64_t>(buckets_.size()) - 1;
}

namespace {

/// Value of the sorted sample multiset at 0-based index `idx` (bucket value
/// = bucket index, the Histogram convention).
std::int64_t SampleAt(const std::vector<std::int64_t>& buckets,
                      std::int64_t idx) {
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > idx) return static_cast<std::int64_t>(i);
  }
  return static_cast<std::int64_t>(buckets.size()) - 1;
}

}  // namespace

double Histogram::Percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double rank = q * static_cast<double>(total_ - 1);
  const auto lo_idx = static_cast<std::int64_t>(rank);
  const double frac = rank - static_cast<double>(lo_idx);
  const std::int64_t lo = SampleAt(buckets_, lo_idx);
  if (frac == 0.0) return static_cast<double>(lo);
  const std::int64_t hi = SampleAt(buckets_, lo_idx + 1);
  return static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
}

QuantileHistogram::QuantileHistogram(std::size_t buckets)
    : buckets_(buckets < 2 ? 2 : buckets, 0) {}

void QuantileHistogram::GrowToFit(std::int64_t value) {
  const auto n = static_cast<std::int64_t>(buckets_.size());
  while (value / width_ >= n) {
    // Double the width: merge bucket pairs (2i, 2i+1) -> i. Exact — every
    // sample stays in a bucket that still covers its value.
    const std::size_t half = buckets_.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      buckets_[i] = buckets_[2 * i] + buckets_[2 * i + 1];
    }
    if (buckets_.size() % 2 != 0) {
      buckets_[half] = buckets_.back();
      std::fill(buckets_.begin() + static_cast<std::ptrdiff_t>(half) + 1,
                buckets_.end(), 0);
    } else {
      std::fill(buckets_.begin() + static_cast<std::ptrdiff_t>(half),
                buckets_.end(), 0);
    }
    width_ *= 2;
  }
}

void QuantileHistogram::Add(std::int64_t value) {
  assert(value >= 0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  GrowToFit(value);
  ++buckets_[static_cast<std::size_t>(value / width_)];
}

void QuantileHistogram::Merge(const QuantileHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  // Every occupied bucket of `other` starts at or below other.max_, so
  // growing to other's max fits them all. Re-adding at bucket starts is
  // exact when widths match; a coarser `other` loses nothing beyond its own
  // bin resolution.
  GrowToFit(other.max_);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] == 0) continue;
    const std::int64_t value = static_cast<std::int64_t>(i) * other.width_;
    buckets_[static_cast<std::size_t>(value / width_)] += other.buckets_[i];
  }
}

bool QuantileHistogram::RestoreState(std::int64_t width, std::int64_t count,
                                     std::int64_t min, std::int64_t max,
                                     double sum,
                                     std::vector<std::int64_t> buckets) {
  if (width < 1 || count < 0 || buckets.size() < 2) return false;
  buckets_ = std::move(buckets);
  width_ = width;
  count_ = count;
  min_ = min;
  max_ = max;
  sum_ = sum;
  return true;
}

double QuantileHistogram::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  auto want =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_)));
  want = std::max<std::int64_t>(want, 1);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::int64_t prev = seen;
    seen += buckets_[i];
    if (seen < want) continue;
    const double lo = static_cast<double>(static_cast<std::int64_t>(i) * width_);
    // Linear interpolation inside the bucket by the rank's position among
    // the bucket's samples; collapses to `lo` at width 1.
    const double within =
        width_ == 1
            ? 0.0
            : static_cast<double>(want - prev - 1) /
                  static_cast<double>(buckets_[i]) * static_cast<double>(width_);
    const double est = lo + within;
    return std::min(std::max(est, static_cast<double>(min_)),
                    static_cast<double>(max_));
  }
  return static_cast<double>(max_);
}

std::string QuantileHistogram::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " p50=" << Quantile(0.5) << " p95=" << Quantile(0.95)
     << " p99=" << Quantile(0.99) << " max=" << max();
  return os.str();
}

}  // namespace mdmesh
