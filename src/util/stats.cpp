#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mdmesh {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Accumulator::min() const { return count_ ? min_ : 0.0; }
double Accumulator::max() const { return count_ ? max_ : 0.0; }
double Accumulator::mean() const { return mean_; }

double Accumulator::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string Accumulator::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " min=" << min() << " mean=" << mean()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

void Histogram::Add(std::int64_t value) {
  assert(value >= 0);
  auto idx = static_cast<std::size_t>(value);
  if (idx >= buckets_.size()) {
    ++overflow_;
    idx = buckets_.size() - 1;
  }
  ++buckets_[idx];
  ++total_;
}

std::int64_t Histogram::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0;
  auto want = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_)));
  want = std::max<std::int64_t>(want, 1);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= want) return static_cast<std::int64_t>(i);
  }
  return static_cast<std::int64_t>(buckets_.size()) - 1;
}

}  // namespace mdmesh
