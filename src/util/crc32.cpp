#include "util/crc32.h"

namespace mdmesh {
namespace {

struct Crc32Table {
  std::uint32_t entry[256];
  constexpr Crc32Table() : entry{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entry[i] = c;
    }
  }
};

constexpr Crc32Table kTable{};

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable.entry[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace mdmesh
