#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace mdmesh {

void ThreadPoolActivity::Clear() {
  for (auto& lane : lanes_) lane.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void ThreadPoolActivity::EnsureLanes(std::size_t count) {
  if (lanes_.size() < count) lanes_.resize(count);
}

void ThreadPoolActivity::Record(std::size_t lane, const Interval& iv) {
  std::vector<Interval>& slot = lanes_[lane];
  if (slot.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (slot.capacity() == 0) slot.reserve(capacity_);
  slot.push_back(iv);
}

template <typename Body>
void ThreadPool::RunLogged(std::size_t lane, std::int64_t begin,
                           std::int64_t end, std::uint8_t stage,
                           const Body& body) {
  if (activity_ == nullptr) {
    body();
    return;
  }
  ThreadPoolActivity::Interval iv;
  iv.begin = begin;
  iv.end = end;
  iv.stage = stage;
  iv.t0 = std::chrono::steady_clock::now();
  body();
  iv.t1 = std::chrono::steady_clock::now();
  activity_->Record(lane, iv);
}

void ThreadPool::set_activity(ThreadPoolActivity* activity) {
  activity_ = activity;
  // Lane 0 is the coordinator; pool workers append at index + 1.
  if (activity_ != nullptr) activity_->EnsureLanes(threads_.size() + 1);
}

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::ShardsFor(std::int64_t count) const {
  const auto nw = static_cast<std::int64_t>(threads_.size());
  if (nw <= 1 || count < 2 * nw) return 1;
  return static_cast<unsigned>(nw);
}

void ThreadPool::ParallelFor(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (count <= 0) return;
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  items_.fetch_add(count, std::memory_order_relaxed);
  if (ShardsFor(count) == 1) {
    RunLogged(0, 0, count, 0, [&] { fn(0, count); });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.fn = &fn;
    job_.stage1 = nullptr;
    job_.stage2 = nullptr;
    job_.count = count;
    ++epoch_;
    job_.epoch = epoch_;
    remaining_ = static_cast<unsigned>(threads_.size());
  }
  cv_start_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
}

void ThreadPool::ParallelForStaged(std::int64_t count, const StagedFn& stage1,
                                   const StagedFn& stage2) {
  if (count <= 0) return;
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  items_.fetch_add(count, std::memory_order_relaxed);
  if (ShardsFor(count) == 1) {
    RunLogged(0, 0, count, 1, [&] { stage1(0, 0, count); });
    RunLogged(0, 0, count, 2, [&] { stage2(0, 0, count); });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.fn = nullptr;
    job_.stage1 = &stage1;
    job_.stage2 = &stage2;
    job_.count = count;
    ++epoch_;
    job_.epoch = epoch_;
    remaining_ = static_cast<unsigned>(threads_.size());
    barrier_remaining_ = remaining_;
  }
  cv_start_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
}

void ThreadPool::WorkerLoop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::int64_t, std::int64_t)>* fn;
    const StagedFn* stage1;
    const StagedFn* stage2;
    std::int64_t count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || job_.epoch > seen; });
      if (stop_) return;
      seen = job_.epoch;
      fn = job_.fn;
      stage1 = job_.stage1;
      stage2 = job_.stage2;
      count = job_.count;
    }
    const auto nw = static_cast<std::int64_t>(threads_.size());
    const std::int64_t chunk = (count + nw - 1) / nw;
    const std::int64_t begin = std::min<std::int64_t>(count, chunk * index);
    const std::int64_t end = std::min<std::int64_t>(count, begin + chunk);
    if (fn != nullptr) {
      if (begin < end) {
        RunLogged(index + 1, begin, end, 0, [&] { (*fn)(begin, end); });
      }
    } else {
      if (begin < end) {
        RunLogged(index + 1, begin, end, 1,
                  [&] { (*stage1)(index, begin, end); });
      }
      // Internal barrier: every worker (empty shards included) arrives, the
      // last one releases the rest, and only then may stage2 read what
      // other shards' stage1 wrote.
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--barrier_remaining_ == 0) {
          cv_barrier_.notify_all();
        } else {
          cv_barrier_.wait(lock, [this] { return barrier_remaining_ == 0; });
        }
      }
      if (begin < end) {
        RunLogged(index + 1, begin, end, 2,
                  [&] { (*stage2)(index, begin, end); });
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MDMESH_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(std::min<long>(v, 256));
    }
    return 0u;  // serial by default; deterministic either way
  }());
  return pool;
}

}  // namespace mdmesh
