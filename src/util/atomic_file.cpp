#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mdmesh {
namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

}  // namespace

#if !defined(_WIN32)

bool WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "open " + tmp);
    return false;
  }
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, "write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // Flush to stable storage before the rename: otherwise a crash can leave
  // the new name pointing at not-yet-durable bytes, which is exactly the
  // torn state the temp-then-rename dance exists to rule out.
  if (::fsync(fd) != 0) {
    SetError(error, "fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    SetError(error, "close " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

#else  // _WIN32: stdio fallback, no fsync (the repo's CI targets POSIX).

bool WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "open " + tmp);
    return false;
  }
  const bool wrote = size == 0 || std::fwrite(data, 1, size, f) == size;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    SetError(error, "write " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  std::remove(path.c_str());  // rename does not replace on Windows
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp + " -> " + path);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

#endif

bool WriteFileAtomic(const std::string& path, const std::string& data,
                     std::string* error) {
  return WriteFileAtomic(path, data.data(), data.size(), error);
}

}  // namespace mdmesh
