// Minimal little-endian byte codec for checkpoint payloads and injector
// state blobs. Header-only so any layer can serialize without a link
// dependency; fixed-width little-endian on every platform, so a checkpoint
// written on one machine restores on another (and Python tooling can parse
// the framing with struct.unpack("<...")).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace mdmesh {

/// Appends fixed-width little-endian values to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(v); }
  void U16(std::uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(const void* data, std::size_t size) { Raw(data, size); }

 private:
  void Raw(const void* data, std::size_t size) {
    // Little-endian hosts only (static_asserted where a payload crosses a
    // file boundary); every target this repo builds on qualifies.
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }

  std::vector<std::uint8_t>* out_;
};

/// Reads fixed-width little-endian values back. Out-of-bounds reads flip
/// `ok()` to false and return zeros — callers check once at the end instead
/// of per field, and a truncated buffer can never read past its end.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::uint8_t U8() {
    std::uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::uint16_t U16() {
    std::uint16_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void Bytes(void* out, std::size_t size) { Raw(out, size); }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  /// True when every byte was consumed and no read ran past the end.
  bool exhausted() const { return ok_ && p_ == end_; }

 private:
  void Raw(void* out, std::size_t size) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < size) {
      ok_ = false;
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, p_, size);
    p_ += size;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

}  // namespace mdmesh
