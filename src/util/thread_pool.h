// Minimal work-sharing thread pool with a blocking ParallelFor and a fused
// two-stage dispatch.
//
// The simulation engine's per-step update is embarrassingly parallel over
// processors (each directed link has a unique writer slot), so a simple
// static range split is sufficient. The pool is optional: with 0 or 1
// workers ParallelFor degrades to a plain serial loop, which keeps single
// core machines (and unit tests) free of threading overhead while remaining
// bit-for-bit deterministic at any worker count.
//
// ParallelForStaged runs two dependent stages over the *same* static shard
// partition with one pool dispatch: every worker runs stage1 on its shard,
// crosses an internal worker barrier, then runs stage2 on the same shard.
// Compared to two back-to-back ParallelFor calls this halves the number of
// coordinator round-trips (one wake + one completion wait instead of two of
// each), which is what the engine's fused bid/commit step is built on. The
// partition is exposed through ShardsFor so callers can precompute
// shard-interior sets that stay valid as long as the partition does.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdmesh {

/// Bounded per-worker record of pool dispatch activity, for timeline export
/// (obs/chrome_trace.h renders it as one Perfetto track per worker). Lane 0
/// is the coordinator (serial-mode dispatches and too-small-to-shard loops
/// run inline there); lanes 1..workers are the pool threads. Each worker
/// appends to its own lane with no synchronization — attach/detach and
/// reads must happen while the pool is quiescent (no dispatch in flight).
/// When a lane fills up, further intervals are dropped (counted), so a
/// million-step run cannot grow the log without bound.
class ThreadPoolActivity {
 public:
  struct Interval {
    std::chrono::steady_clock::time_point t0;
    std::chrono::steady_clock::time_point t1;
    std::int64_t begin = 0;   ///< item range [begin, end)
    std::int64_t end = 0;
    std::uint8_t stage = 0;   ///< 0 = ParallelFor; 1/2 = staged stages
  };

  explicit ThreadPoolActivity(std::size_t capacity_per_lane = 8192)
      : capacity_(capacity_per_lane) {}

  const std::vector<std::vector<Interval>>& lanes() const { return lanes_; }
  std::int64_t dropped() const { return dropped_; }
  void Clear();

 private:
  friend class ThreadPool;
  void EnsureLanes(std::size_t count);
  void Record(std::size_t lane, const Interval& iv);

  std::size_t capacity_;
  std::vector<std::vector<Interval>> lanes_;
  std::atomic<std::int64_t> dropped_{0};
};

class ThreadPool {
 public:
  /// Stage callback for ParallelForStaged: (shard index, begin, end).
  using StagedFn = std::function<void(unsigned, std::int64_t, std::int64_t)>;

  /// Creates `workers` persistent threads. 0 means "serial mode".
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Number of shards a dispatch over `count` items splits into: 1 in
  /// serial mode (no workers, or count too small to be worth waking them),
  /// workers() otherwise. Shard s covers
  /// [s * ceil(count/shards), min(count, (s+1) * ceil(count/shards))).
  unsigned ShardsFor(std::int64_t count) const;

  /// Runs fn(begin, end) over the static ShardsFor partition of [0, count)
  /// and blocks until all chunks finish. fn must be safe to call
  /// concurrently on disjoint ranges. Exceptions in fn terminate (by
  /// design: the simulation kernel is noexcept in practice).
  void ParallelFor(std::int64_t count,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Fused two-stage dispatch: stage1(s, begin, end) over every shard, one
  /// internal worker barrier, then stage2(s, begin, end) over the same
  /// shards — a single pool round-trip. stage2 may read anything stage1
  /// wrote in *any* shard. In serial mode both stages run inline as
  /// stage1(0, 0, count); stage2(0, 0, count).
  void ParallelForStaged(std::int64_t count, const StagedFn& stage1,
                         const StagedFn& stage2);

  /// Attaches (or detaches, with nullptr) an activity recorder. Every
  /// subsequent dispatch logs one Interval per executed shard — including
  /// serial/inline execution, which logs into lane 0. Call only while the
  /// pool is quiescent; the recorder must outlive its attachment. A null
  /// recorder (the default) costs one pointer check per dispatch, nothing
  /// per item — the engine's zero-cost observability contract.
  void set_activity(ThreadPoolActivity* activity);
  ThreadPoolActivity* activity() const { return activity_; }

  /// Lifetime dispatch totals: calls to ParallelFor/ParallelForStaged and
  /// the items they covered. One relaxed add per *dispatch* (never per
  /// item), so they are always on; live-telemetry publishers surface them
  /// as pool gauges. Reads are racy-but-monotonic snapshots.
  std::int64_t dispatches() const {
    return dispatches_.load(std::memory_order_relaxed);
  }
  std::int64_t items_dispatched() const {
    return items_.load(std::memory_order_relaxed);
  }

  /// Process-wide pool sized from MDMESH_THREADS (default: serial).
  static ThreadPool& Global();

 private:
  void WorkerLoop(unsigned index);
  /// Runs `body()` and, when a recorder is attached, logs it as an Interval
  /// on `lane`.
  template <typename Body>
  void RunLogged(std::size_t lane, std::int64_t begin, std::int64_t end,
                 std::uint8_t stage, const Body& body);

  struct Job {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    const StagedFn* stage1 = nullptr;  // staged job when non-null
    const StagedFn* stage2 = nullptr;
    std::int64_t count = 0;
    std::uint64_t epoch = 0;
  };

  std::vector<std::thread> threads_;
  ThreadPoolActivity* activity_ = nullptr;
  std::atomic<std::int64_t> dispatches_{0};
  std::atomic<std::int64_t> items_{0};
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_barrier_;
  std::condition_variable cv_done_;
  Job job_;
  unsigned remaining_ = 0;
  unsigned barrier_remaining_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace mdmesh
