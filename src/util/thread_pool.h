// Minimal work-sharing thread pool with a blocking ParallelFor.
//
// The simulation engine's per-step update is embarrassingly parallel over
// processors (each directed link has a unique writer slot), so a simple
// static range split is sufficient. The pool is optional: with 0 or 1
// workers ParallelFor degrades to a plain serial loop, which keeps single
// core machines (and unit tests) free of threading overhead while remaining
// bit-for-bit deterministic at any worker count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdmesh {

class ThreadPool {
 public:
  /// Creates `workers` persistent threads. 0 means "serial mode".
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Runs fn(begin, end) over a static partition of [0, count) and blocks
  /// until all chunks finish. fn must be safe to call concurrently on
  /// disjoint ranges. Exceptions in fn terminate (by design: the simulation
  /// kernel is noexcept in practice).
  void ParallelFor(std::int64_t count,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide pool sized from MDMESH_THREADS (default: serial).
  static ThreadPool& Global();

 private:
  void WorkerLoop(unsigned index);

  struct Job {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t count = 0;
    std::uint64_t epoch = 0;
  };

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  unsigned remaining_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace mdmesh
