// Minimal work-sharing thread pool with a blocking ParallelFor and a fused
// two-stage dispatch.
//
// The simulation engine's per-step update is embarrassingly parallel over
// processors (each directed link has a unique writer slot), so a simple
// static range split is sufficient. The pool is optional: with 0 or 1
// workers ParallelFor degrades to a plain serial loop, which keeps single
// core machines (and unit tests) free of threading overhead while remaining
// bit-for-bit deterministic at any worker count.
//
// ParallelForStaged runs two dependent stages over the *same* static shard
// partition with one pool dispatch: every worker runs stage1 on its shard,
// crosses an internal worker barrier, then runs stage2 on the same shard.
// Compared to two back-to-back ParallelFor calls this halves the number of
// coordinator round-trips (one wake + one completion wait instead of two of
// each), which is what the engine's fused bid/commit step is built on. The
// partition is exposed through ShardsFor so callers can precompute
// shard-interior sets that stay valid as long as the partition does.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdmesh {

class ThreadPool {
 public:
  /// Stage callback for ParallelForStaged: (shard index, begin, end).
  using StagedFn = std::function<void(unsigned, std::int64_t, std::int64_t)>;

  /// Creates `workers` persistent threads. 0 means "serial mode".
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Number of shards a dispatch over `count` items splits into: 1 in
  /// serial mode (no workers, or count too small to be worth waking them),
  /// workers() otherwise. Shard s covers
  /// [s * ceil(count/shards), min(count, (s+1) * ceil(count/shards))).
  unsigned ShardsFor(std::int64_t count) const;

  /// Runs fn(begin, end) over the static ShardsFor partition of [0, count)
  /// and blocks until all chunks finish. fn must be safe to call
  /// concurrently on disjoint ranges. Exceptions in fn terminate (by
  /// design: the simulation kernel is noexcept in practice).
  void ParallelFor(std::int64_t count,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Fused two-stage dispatch: stage1(s, begin, end) over every shard, one
  /// internal worker barrier, then stage2(s, begin, end) over the same
  /// shards — a single pool round-trip. stage2 may read anything stage1
  /// wrote in *any* shard. In serial mode both stages run inline as
  /// stage1(0, 0, count); stage2(0, 0, count).
  void ParallelForStaged(std::int64_t count, const StagedFn& stage1,
                         const StagedFn& stage2);

  /// Process-wide pool sized from MDMESH_THREADS (default: serial).
  static ThreadPool& Global();

 private:
  void WorkerLoop(unsigned index);

  struct Job {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    const StagedFn* stage1 = nullptr;  // staged job when non-null
    const StagedFn* stage2 = nullptr;
    std::int64_t count = 0;
    std::uint64_t epoch = 0;
  };

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_barrier_;
  std::condition_variable cv_done_;
  Job job_;
  unsigned remaining_ = 0;
  unsigned barrier_remaining_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace mdmesh
