#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace mdmesh {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::Range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  Below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::Unit() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Rng Rng::Split(std::uint64_t stream) const {
  // Hash (lane0, stream) through SplitMix64 twice to decorrelate streams.
  std::uint64_t sm = s_[0] ^ (0x6a09e667f3bcc909ull + stream);
  std::uint64_t a = SplitMix64(sm);
  std::uint64_t b = SplitMix64(sm);
  return Rng(a ^ Rotl(b, 31) ^ stream);
}

std::vector<std::int64_t> Rng::Permutation(std::int64_t size) {
  assert(size >= 0);
  std::vector<std::int64_t> p(static_cast<std::size_t>(size));
  std::iota(p.begin(), p.end(), std::int64_t{0});
  Shuffle(p);
  return p;
}

}  // namespace mdmesh
