// Small-buffer vector for the simulation hot path.
//
// Every processor of the simulated network owns a queue that holds a
// handful of packets (the multi-packet model's O(1) — measured maxima are
// 5-25 across all experiments, and 1-4 almost everywhere). std::vector puts
// even a single packet on the heap; InlineVec keeps up to `N` elements in
// the object itself and only falls back to the heap beyond that, removing
// the per-processor allocations from the engine's rebuild loop.
//
// Deliberately minimal: restricted to trivially copyable element types
// (Packet is), so growth and copies are memcpy and no destructors are ever
// run element-wise. Provides exactly the std::vector surface the engine,
// algorithms, and tests use.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

namespace mdmesh {

template <typename T, std::size_t N = 4>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is restricted to trivially copyable types");
  static_assert(N >= 1, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;

  InlineVec(const InlineVec& other) { CopyFrom(other); }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  InlineVec(InlineVec&& other) noexcept { MoveFrom(std::move(other)); }

  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~InlineVec() { Release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() { size_ = 0; }  // keeps the buffer

  void reserve(std::size_t want) {
    if (want <= cap_) return;
    Grow(want);
  }

  void push_back(const T& value) {
    if (size_ == cap_) {
      // `value` may alias an element of this vector (v.push_back(v[0]));
      // Grow frees the old heap buffer, so copy first.
      const T tmp = value;
      Grow(cap_ * 2);
      data_[size_++] = tmp;
      return;
    }
    data_[size_++] = value;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  /// New elements are value-initialized.
  void resize(std::size_t want) {
    if (want > cap_) Grow(std::max(want, cap_ * 2));
    if (want > size_) {
      std::memset(static_cast<void*>(data_ + size_), 0,
                  (want - size_) * sizeof(T));
    }
    size_ = want;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  /// Erases [first, last); the std::remove_if idiom.
  iterator erase(iterator first, iterator last) {
    assert(begin() <= first && first <= last && last <= end());
    const auto tail = static_cast<std::size_t>(end() - last);
    if (tail > 0) {
      std::memmove(static_cast<void*>(first), static_cast<const void*>(last),
                   tail * sizeof(T));
    }
    size_ -= static_cast<std::size_t>(last - first);
    return first;
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  bool on_heap() const { return data_ != InlineData(); }
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  void Grow(std::size_t want) {
    const std::size_t new_cap = std::max<std::size_t>(want, N + 1);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(static_cast<void*>(fresh), static_cast<const void*>(data_),
                size_ * sizeof(T));
    if (on_heap()) ::operator delete(data_);
    data_ = fresh;
    cap_ = new_cap;
  }

  void Release() {
    if (on_heap()) ::operator delete(data_);
    data_ = InlineData();
    cap_ = N;
    size_ = 0;
  }

  void CopyFrom(const InlineVec& other) {
    if (other.size_ > N) {
      data_ = static_cast<T*>(::operator new(other.size_ * sizeof(T)));
      cap_ = other.size_;
    } else {
      data_ = InlineData();
      cap_ = N;
    }
    size_ = other.size_;
    std::memcpy(static_cast<void*>(data_), static_cast<const void*>(other.data_),
                size_ * sizeof(T));
  }

  void MoveFrom(InlineVec&& other) {
    if (other.on_heap()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.cap_ = N;
      other.size_ = 0;
    } else {
      data_ = InlineData();
      cap_ = N;
      size_ = other.size_;
      std::memcpy(static_cast<void*>(data_),
                  static_cast<const void*>(other.data_), size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = InlineData();
  std::size_t cap_ = N;
  std::size_t size_ = 0;
};

}  // namespace mdmesh
