// Checkpoint file format: versioned framing + CRC-32 integrity around an
// EngineCheckpointState payload.
//
// Layout (all fields little-endian):
//
//   offset  size  field
//        0     8  magic "MDMCKPT1"
//        8     4  format version (currently 1)
//       12     4  flags (reserved, 0)
//       16     8  payload size in bytes
//       24     4  CRC-32 (IEEE, zlib-compatible) of the payload
//       28     -  payload (EncodeCheckpoint)
//
// The 28-byte header is deliberately parseable with Python's
// struct.unpack("<8sIIQI", ...) and the checksum with binascii.crc32, so
// scripts/check_perf_regression.py validate-ckpt can verify a file without
// linking any C++.
//
// Every failure mode maps to a distinct CkptStatus — a torn write, a
// bit-flip, a format bump, and a stale-config file are different operator
// situations and the recovery tooling (ckpt/manager.h fallback, the crash
// drill) branches on them. Decoding never throws and never crashes on
// malformed bytes: the payload reader zero-fills past the end and the
// element counts are validated against the remaining size before any
// allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/engine_state.h"

namespace mdmesh {

/// Result of reading/validating a checkpoint file. kOk means the state is
/// fully decoded and checksum-verified.
enum class CkptStatus {
  kOk = 0,
  kIoError,      ///< open/read/write failed (error string carries errno text)
  kTruncated,    ///< shorter than the header or the declared payload size
  kBadMagic,     ///< not a checkpoint file
  kBadVersion,   ///< format version this build does not understand
  kBadChecksum,  ///< CRC mismatch — torn write or bit rot
  kBadPayload,   ///< checksum passed but the payload does not decode
  kBadManifest,  ///< decoded, but the engine-options hash does not match
};

/// Stable lowercase name ("ok", "io_error", "truncated", ...) for logs and
/// structured test assertions.
const char* CkptStatusName(CkptStatus status);

/// Serializes the state into the versioned payload (no header/CRC framing).
std::vector<std::uint8_t> EncodeCheckpoint(const EngineCheckpointState& state);

/// Decodes a payload produced by EncodeCheckpoint. Returns kOk or
/// kBadPayload; `out` is only valid on kOk.
CkptStatus DecodeCheckpoint(const std::uint8_t* data, std::size_t size,
                            EngineCheckpointState* out);

/// Writes header + payload atomically (temp file, fsync, rename) so a crash
/// mid-write can never leave a half-written file under `path`. Returns kOk
/// or kIoError; on failure `error` (if non-null) gets the reason including
/// errno text.
CkptStatus WriteCheckpointFile(const std::string& path,
                               const EngineCheckpointState& state,
                               std::string* error);

/// Reads and fully validates a checkpoint file: magic, version, declared
/// size, CRC, payload decode, and — when `expected_options_hash` is
/// non-null — the engine-options hash (kBadManifest on mismatch). `out` is
/// only valid on kOk. Never throws; malformed input of any shape yields a
/// structured status.
CkptStatus ReadCheckpointFile(const std::string& path,
                              EngineCheckpointState* out,
                              const std::uint64_t* expected_options_hash,
                              std::string* error);

}  // namespace mdmesh
