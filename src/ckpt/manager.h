// CheckpointManager: the production CheckpointSink. Decides the cadence
// (step count and/or wall clock), writes each snapshot as a versioned
// CRC-checksummed file via an atomic rename, keeps the last K generations,
// and — on the read side — finds the newest checkpoint that survives full
// validation, falling back generation by generation past torn or corrupt
// files with a log of every rejection.
//
// Recovery story (exercised end-to-end by scripts/crash_drill.py): a
// SIGKILL can land at any instant, including mid-write. The atomic rename
// means the directory only ever contains complete former generations plus
// at most one orphaned temp file; a bit-flip on disk is caught by the CRC;
// and a checkpoint from a differently-configured run is refused by the
// engine-options hash. In every case LoadNewestValid degrades to the
// newest older generation rather than resuming silently wrong.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "net/engine_state.h"

namespace mdmesh {

class MetricsRegistry;
class TraceContext;

struct CheckpointOptions {
  /// Directory the generations live in (created on first save if missing).
  std::string dir;
  /// Save every N completed steps (0 = no step cadence).
  std::int64_t every_steps = 0;
  /// Save when this much wall time passed since the last save (0 = no
  /// wall-clock cadence). Both cadences may be active; either triggers.
  double every_seconds = 0.0;
  /// Generations to keep; older ones are deleted after a successful save.
  int keep = 3;
  /// Optional: counts saves/failures/bytes under "ckpt.*".
  MetricsRegistry* metrics = nullptr;
  /// Optional: emits a "ckpt.save" span per checkpoint into the timeline.
  TraceContext* trace = nullptr;
};

/// One discovered checkpoint file (ListCheckpoints).
struct CheckpointFileInfo {
  std::string path;
  std::int64_t step = 0;
};

class CheckpointManager : public CheckpointSink {
 public:
  explicit CheckpointManager(CheckpointOptions opts);

  // CheckpointSink.
  bool Due(std::int64_t step) override;
  void Save(const EngineCheckpointState& state, const char* cause) override;

  std::int64_t saves() const { return saves_; }
  std::int64_t save_failures() const { return save_failures_; }
  /// Path of the most recent successful save ("" before the first).
  const std::string& last_path() const { return last_path_; }
  /// Reason of the most recent failed save ("" when none failed yet).
  const std::string& last_error() const { return last_error_; }

  /// All checkpoint files in `dir`, sorted by step ascending. Ignores
  /// non-checkpoint names (temp files, unrelated clutter).
  static std::vector<CheckpointFileInfo> ListCheckpoints(
      const std::string& dir);

  /// Loads the newest checkpoint in `dir` that passes full validation
  /// (framing, CRC, payload decode, and the options hash when
  /// `expected_options_hash` is non-null), walking backwards past corrupt
  /// generations. Every rejected file appends a "<path>: <status>" line to
  /// `log` (if non-null). Returns kOk with `out` and `loaded_path` set, or
  /// the status of the newest candidate when none validate (kIoError when
  /// the directory holds no checkpoints at all).
  static CkptStatus LoadNewestValid(const std::string& dir,
                                    EngineCheckpointState* out,
                                    const std::uint64_t* expected_options_hash,
                                    std::string* loaded_path,
                                    std::string* log);

 private:
  CheckpointOptions opts_;
  std::int64_t last_save_step_ = 0;
  std::chrono::steady_clock::time_point last_save_time_;
  bool dir_ready_ = false;
  std::int64_t saves_ = 0;
  std::int64_t save_failures_ = 0;
  std::string last_path_;
  std::string last_error_;
};

}  // namespace mdmesh
