#include "ckpt/manager.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#endif

#include "obs/registry.h"
#include "obs/trace.h"

namespace mdmesh {

namespace {

/// "ckpt-<step>.mdc", step zero-padded so lexical and numeric order agree.
std::string CheckpointName(std::int64_t step) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%012lld.mdc",
                static_cast<long long>(step));
  return buf;
}

bool ParseCheckpointName(const char* name, std::int64_t* step) {
  long long s = 0;
  int consumed = 0;
  if (std::sscanf(name, "ckpt-%12lld.mdc%n", &s, &consumed) != 1) return false;
  if (name[consumed] != '\0') return false;
  *step = s;
  return true;
}

bool EnsureDir(const std::string& dir) {
#if !defined(_WIN32)
  if (::mkdir(dir.c_str(), 0755) == 0) return true;
  return errno == EEXIST;
#else
  return true;
#endif
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointOptions opts)
    : opts_(std::move(opts)), last_save_time_(std::chrono::steady_clock::now()) {
  if (opts_.keep < 1) opts_.keep = 1;
}

bool CheckpointManager::Due(std::int64_t step) {
  if (opts_.every_steps > 0 && step - last_save_step_ >= opts_.every_steps) {
    return true;
  }
  if (opts_.every_seconds > 0.0) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - last_save_time_;
    if (elapsed.count() >= opts_.every_seconds) return true;
  }
  return false;
}

void CheckpointManager::Save(const EngineCheckpointState& state,
                             const char* cause) {
  Span span = TraceContext::OpenIf(opts_.trace, "ckpt.save");
  if (!dir_ready_) dir_ready_ = EnsureDir(opts_.dir);

  const std::string path = opts_.dir + "/" + CheckpointName(state.step);
  std::string error;
  const CkptStatus status = WriteCheckpointFile(path, state, &error);

  // Cadence clocks advance even on failure: a persistently failing sink
  // (disk full) must not degenerate into retrying every single step.
  last_save_step_ = state.step;
  last_save_time_ = std::chrono::steady_clock::now();

  if (status != CkptStatus::kOk) {
    ++save_failures_;
    last_error_ = error.empty() ? CkptStatusName(status) : error;
    std::fprintf(stderr, "[ckpt] save failed at step %lld (%s): %s\n",
                 static_cast<long long>(state.step), cause,
                 last_error_.c_str());
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("ckpt.save_failures").Increment();
    }
    return;
  }

  ++saves_;
  last_path_ = path;
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("ckpt.saves").Increment();
    opts_.metrics->gauge("ckpt.last_step").Max(state.step);
  }

  // Rotate: drop the oldest generations beyond `keep`. The file just
  // written is the newest, so it always survives.
  std::vector<CheckpointFileInfo> files = ListCheckpoints(opts_.dir);
  const auto keep = static_cast<std::size_t>(opts_.keep);
  if (files.size() > keep) {
    for (std::size_t i = 0; i + keep < files.size(); ++i) {
      std::remove(files[i].path.c_str());
    }
  }
}

std::vector<CheckpointFileInfo> CheckpointManager::ListCheckpoints(
    const std::string& dir) {
  std::vector<CheckpointFileInfo> out;
#if !defined(_WIN32)
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* ent = ::readdir(d)) {
    std::int64_t step = 0;
    if (!ParseCheckpointName(ent->d_name, &step)) continue;
    out.push_back({dir + "/" + ent->d_name, step});
  }
  ::closedir(d);
#endif
  std::sort(out.begin(), out.end(),
            [](const CheckpointFileInfo& a, const CheckpointFileInfo& b) {
              return a.step < b.step;
            });
  return out;
}

CkptStatus CheckpointManager::LoadNewestValid(
    const std::string& dir, EngineCheckpointState* out,
    const std::uint64_t* expected_options_hash, std::string* loaded_path,
    std::string* log) {
  std::vector<CheckpointFileInfo> files = ListCheckpoints(dir);
  CkptStatus newest_status = CkptStatus::kIoError;
  bool first = true;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::string error;
    const CkptStatus status =
        ReadCheckpointFile(it->path, out, expected_options_hash, &error);
    if (status == CkptStatus::kOk) {
      if (loaded_path != nullptr) *loaded_path = it->path;
      return CkptStatus::kOk;
    }
    if (first) {
      newest_status = status;
      first = false;
    }
    if (log != nullptr) {
      *log += it->path;
      *log += ": ";
      *log += CkptStatusName(status);
      if (!error.empty()) {
        *log += " (";
        *log += error;
        *log += ")";
      }
      *log += "\n";
    }
  }
  return newest_status;
}

}  // namespace mdmesh
