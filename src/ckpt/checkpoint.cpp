#include "ckpt/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_file.h"
#include "util/codec.h"
#include "util/crc32.h"

namespace mdmesh {

namespace {

constexpr char kMagic[8] = {'M', 'D', 'M', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 28;

/// Bytes per serialized Packet (key, id, tag, dest, dist0, arrived, klass,
/// flags) — used to bound element counts before any allocation.
constexpr std::size_t kPacketRecordSize = 8 + 8 + 8 + 8 + 4 + 4 + 2 + 2;

static_assert(sizeof(ProcId) == 8, "packet record assumes 64-bit ProcId");

void SetIoError(std::string* error, const char* what,
                const std::string& path) {
  if (error == nullptr) return;
  *error = std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

const char* CkptStatusName(CkptStatus status) {
  switch (status) {
    case CkptStatus::kOk:
      return "ok";
    case CkptStatus::kIoError:
      return "io_error";
    case CkptStatus::kTruncated:
      return "truncated";
    case CkptStatus::kBadMagic:
      return "bad_magic";
    case CkptStatus::kBadVersion:
      return "bad_version";
    case CkptStatus::kBadChecksum:
      return "bad_checksum";
    case CkptStatus::kBadPayload:
      return "bad_payload";
    case CkptStatus::kBadManifest:
      return "bad_manifest";
  }
  return "unknown";
}

std::vector<std::uint8_t> EncodeCheckpoint(const EngineCheckpointState& state) {
  std::vector<std::uint8_t> out;
  // Identity + accumulators are fixed-size; reserve for the queues too.
  std::size_t packets = 0;
  for (const auto& q : state.queues) packets += q.size();
  out.reserve(256 + state.queues.size() * 4 + packets * kPacketRecordSize +
              state.injector_state.size());
  ByteWriter w(&out);

  w.U32(static_cast<std::uint32_t>(state.d));
  w.U32(static_cast<std::uint32_t>(state.n));
  w.U8(state.torus ? 1 : 0);
  w.U8(state.injector_attached ? 1 : 0);
  w.U64(state.options_hash);

  w.I64(state.step);
  w.I64(state.in_flight);
  w.I64(state.arrivals_total);
  w.I64(state.moves_total);
  w.I64(state.detours_total);
  w.I64(state.fault_events_total);
  w.I64(state.queue_max);
  w.I64(state.no_progress);
  w.U8(state.injecting ? 1 : 0);

  w.I64(state.packets);
  w.I64(state.max_distance);
  w.I64(state.sparse_steps);
  w.I64(state.peak_active_procs);
  w.I64(state.max_overshoot);
  w.I64(state.overshoot_count);
  w.F64(state.overshoot_mean);
  w.F64(state.overshoot_m2);
  w.F64(state.overshoot_min);
  w.F64(state.overshoot_max);

  w.U64(state.fault_cursor);

  w.U64(static_cast<std::uint64_t>(state.queues.size()));
  for (const auto& q : state.queues) {
    w.U32(static_cast<std::uint32_t>(q.size()));
    for (const Packet& pkt : q) {
      w.U64(pkt.key);
      w.I64(pkt.id);
      w.I64(pkt.tag);
      w.I64(static_cast<std::int64_t>(pkt.dest));
      w.I32(pkt.dist0);
      w.I32(pkt.arrived);
      w.U16(pkt.klass);
      w.U16(pkt.flags);
    }
  }

  w.U64(static_cast<std::uint64_t>(state.injector_state.size()));
  if (!state.injector_state.empty()) {
    w.Bytes(state.injector_state.data(), state.injector_state.size());
  }
  return out;
}

CkptStatus DecodeCheckpoint(const std::uint8_t* data, std::size_t size,
                            EngineCheckpointState* out) {
  ByteReader r(data, size);
  EngineCheckpointState st;

  st.d = static_cast<int>(r.U32());
  st.n = static_cast<int>(r.U32());
  st.torus = r.U8() != 0;
  st.injector_attached = r.U8() != 0;
  st.options_hash = r.U64();

  st.step = r.I64();
  st.in_flight = r.I64();
  st.arrivals_total = r.I64();
  st.moves_total = r.I64();
  st.detours_total = r.I64();
  st.fault_events_total = r.I64();
  st.queue_max = r.I64();
  st.no_progress = r.I64();
  st.injecting = r.U8() != 0;

  st.packets = r.I64();
  st.max_distance = r.I64();
  st.sparse_steps = r.I64();
  st.peak_active_procs = r.I64();
  st.max_overshoot = r.I64();
  st.overshoot_count = r.I64();
  st.overshoot_mean = r.F64();
  st.overshoot_m2 = r.F64();
  st.overshoot_min = r.F64();
  st.overshoot_max = r.F64();

  st.fault_cursor = r.U64();

  const std::uint64_t num_procs = r.U64();
  // Each queue costs at least its 4-byte length prefix: a corrupt count
  // larger than the remaining bytes can allow is rejected before resize.
  if (!r.ok() || num_procs > r.remaining() / 4) return CkptStatus::kBadPayload;
  st.queues.resize(static_cast<std::size_t>(num_procs));
  for (auto& q : st.queues) {
    const std::uint32_t len = r.U32();
    if (!r.ok() || len > r.remaining() / kPacketRecordSize) {
      return CkptStatus::kBadPayload;
    }
    q.resize(len);
    for (Packet& pkt : q) {
      pkt.key = r.U64();
      pkt.id = r.I64();
      pkt.tag = r.I64();
      pkt.dest = static_cast<ProcId>(r.I64());
      pkt.dist0 = r.I32();
      pkt.arrived = r.I32();
      pkt.klass = r.U16();
      pkt.flags = r.U16();
    }
  }

  const std::uint64_t blob_size = r.U64();
  if (!r.ok() || blob_size > r.remaining()) return CkptStatus::kBadPayload;
  st.injector_state.resize(static_cast<std::size_t>(blob_size));
  if (blob_size > 0) {
    r.Bytes(st.injector_state.data(), st.injector_state.size());
  }

  // Trailing garbage is as much a format violation as a short buffer.
  if (!r.exhausted()) return CkptStatus::kBadPayload;
  *out = std::move(st);
  return CkptStatus::kOk;
}

CkptStatus WriteCheckpointFile(const std::string& path,
                               const EngineCheckpointState& state,
                               std::string* error) {
  const std::vector<std::uint8_t> payload = EncodeCheckpoint(state);

  std::vector<std::uint8_t> file;
  file.reserve(kHeaderSize + payload.size());
  ByteWriter w(&file);
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kFormatVersion);
  w.U32(0);  // flags, reserved
  w.U64(payload.size());
  w.U32(Crc32(payload.data(), payload.size()));
  w.Bytes(payload.data(), payload.size());

  if (!WriteFileAtomic(path, file.data(), file.size(), error)) {
    return CkptStatus::kIoError;
  }
  return CkptStatus::kOk;
}

CkptStatus ReadCheckpointFile(const std::string& path,
                              EngineCheckpointState* out,
                              const std::uint64_t* expected_options_hash,
                              std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetIoError(error, "open", path);
    return CkptStatus::kIoError;
  }
  std::vector<std::uint8_t> bytes;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    SetIoError(error, "read", path);
    return CkptStatus::kIoError;
  }

  if (bytes.size() < kHeaderSize) return CkptStatus::kTruncated;
  ByteReader r(bytes.data(), kHeaderSize);
  char magic[8];
  r.Bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return CkptStatus::kBadMagic;
  }
  const std::uint32_t version = r.U32();
  r.U32();  // flags
  const std::uint64_t payload_size = r.U64();
  const std::uint32_t payload_crc = r.U32();
  if (version != kFormatVersion) return CkptStatus::kBadVersion;
  if (payload_size != bytes.size() - kHeaderSize) return CkptStatus::kTruncated;
  const std::uint8_t* payload = bytes.data() + kHeaderSize;
  if (Crc32(payload, static_cast<std::size_t>(payload_size)) != payload_crc) {
    return CkptStatus::kBadChecksum;
  }

  EngineCheckpointState st;
  const CkptStatus decoded =
      DecodeCheckpoint(payload, static_cast<std::size_t>(payload_size), &st);
  if (decoded != CkptStatus::kOk) return decoded;
  if (expected_options_hash != nullptr &&
      st.options_hash != *expected_options_hash) {
    return CkptStatus::kBadManifest;
  }
  *out = std::move(st);
  return CkptStatus::kOk;
}

}  // namespace mdmesh
