// Table rendering for the reproduction experiments: every bench prints the
// same row shapes, so EXPERIMENTS.md can quote bench output verbatim.
#pragma once

#include <vector>

#include "core/runner.h"
#include "util/table.h"

namespace mdmesh {

/// Columns: network, algo, D, routing, ratio (routing/D), claimed, local,
/// fixups, max_queue, sorted.
Table MakeSortTable(const std::vector<SortRow>& rows);

/// Columns: network, perms, D, steps, steps/D, max_dist, max_overshoot,
/// overshoot/n, max_queue.
Table MakeGreedyTable(const std::vector<GreedyRow>& rows);

/// Columns: network, D, routing, ratio, candidates, correct.
Table MakeSelectionTable(const std::vector<SelectRow>& rows);

/// Columns: network, perm, D, offline LB, 2phase steps, (D+x)/D, baseline
/// steps, baseline/D, min|S|, delivered.
Table MakeRoutingTable(const std::vector<RoutingRow>& rows);

}  // namespace mdmesh
