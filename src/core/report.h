// Table rendering for the reproduction experiments: every bench prints the
// same row shapes, so EXPERIMENTS.md can quote bench output verbatim.
// BenchJson is the machine-readable twin: the same rows serialized as JSON
// records for the BENCH_*.json perf trajectory and downstream tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "util/table.h"

namespace mdmesh {

/// Columns: network, algo, D, routing, ratio (routing/D), claimed, local,
/// fixups, max_queue, sorted.
Table MakeSortTable(const std::vector<SortRow>& rows);

/// Columns: network, perms, D, steps, steps/D, max_dist, max_overshoot,
/// overshoot/n, max_queue.
Table MakeGreedyTable(const std::vector<GreedyRow>& rows);

/// Columns: network, D, routing, ratio, candidates, correct.
Table MakeSelectionTable(const std::vector<SelectRow>& rows);

/// Columns: network, perm, D, offline LB, 2phase steps, (D+x)/D, baseline
/// steps, baseline/D, min|S|, delivered.
Table MakeRoutingTable(const std::vector<RoutingRow>& rows);

/// Machine-readable bench output: a run manifest followed by one JSON
/// record per experiment row. The array form is
///   {"manifest": {...}, "records": [...]}
/// and the JSONL form (path ends in ".jsonl") emits {"manifest": {...}} as
/// its first line, then one record per line. Every record shares the base
/// schema
///   {experiment, spec: {d, n, wrap}, seed, steps, D, ratio,
///    phases: [{name, steps, local_steps, moves, max_queue, wall_ms}, ...],
///    wall_ms}
/// plus per-row extras (perm/algo, lower bounds, verification flags).
class BenchJson {
 public:
  explicit BenchJson(std::string experiment);

  /// Replaces the default manifest (build type, global thread count,
  /// binary = experiment name) with one describing the actual run — e.g. a
  /// bench passing along the engine's MakeRunManifest plus its seed.
  void SetManifest(RunManifest manifest);
  const RunManifest& manifest() const { return manifest_; }

  void Add(const RoutingRow& row);
  void Add(const SortRow& row);
  void Add(const GreedyRow& row);
  void Add(const SelectRow& row);
  /// Appends an already-serialized JSON object (escape hatch for benches
  /// with bespoke records, e.g. engine throughput or lower-bound tables).
  void AddRaw(std::string json_object);

  std::size_t size() const { return records_.size(); }
  const std::string& experiment() const { return experiment_; }

  /// Writes all records to `os`. JSONL emits one object per line; otherwise
  /// a pretty-printed JSON array.
  void Write(std::ostream& os, bool jsonl) const;
  /// Writes to `path` (JSONL iff it ends in ".jsonl"). If the file cannot
  /// be opened or written, prints a clear error to stderr and exits with
  /// status 1 (a CI run must not silently lose its records).
  bool WriteFile(const std::string& path) const;

 private:
  std::string experiment_;
  RunManifest manifest_;
  std::vector<std::string> records_;  ///< serialized JSON objects
};

}  // namespace mdmesh
