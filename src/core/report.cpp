#include "core/report.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "obs/output.h"
#include "util/thread_pool.h"

namespace mdmesh {
namespace {

void WriteSpec(JsonWriter& w, const MeshSpec& spec) {
  w.Key("spec").BeginObject();
  w.Key("d").Int(spec.d);
  w.Key("n").Int(spec.n);
  w.Key("wrap").String(spec.wrap == Wrap::kTorus ? "torus" : "mesh");
  w.EndObject();
}

void WritePhase(JsonWriter& w, const PhaseStats& p) {
  w.BeginObject();
  w.Key("name").String(p.name);
  w.Key("steps").Int(p.routing_steps);
  w.Key("local_steps").Int(p.local_steps);
  w.Key("moves").Int(p.moves);
  w.Key("max_queue").Int(p.max_queue);
  w.Key("max_overshoot").Int(p.max_overshoot);
  w.Key("wall_ms").Double(p.wall_ms);
  w.Key("completed").Bool(p.completed);
  w.EndObject();
}

void WriteRoutePhase(JsonWriter& w, const char* name, const RouteResult& r) {
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("steps").Int(r.steps);
  w.Key("local_steps").Int(0);
  w.Key("moves").Int(r.moves);
  w.Key("max_queue").Int(r.max_queue);
  w.Key("max_overshoot").Int(r.max_overshoot);
  w.Key("link_utilization").Double(r.LinkUtilization());
  w.Key("completed").Bool(r.completed);
  w.EndObject();
}

}  // namespace

Table MakeSortTable(const std::vector<SortRow>& rows) {
  Table table({"network", "algo", "D", "routing", "ratio", "claimed", "local",
               "fixups", "max_q", "sorted"});
  for (const SortRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(SortAlgoName(row.algo))
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(row.claimed, 2)
        .Cell(row.result.local_steps)
        .Cell(row.result.fixup_rounds)
        .Cell(row.result.max_queue)
        .Cell(row.result.sorted ? "yes" : "NO");
  }
  return table;
}

Table MakeGreedyTable(const std::vector<GreedyRow>& rows) {
  Table table({"network", "perms", "D", "steps", "steps/D", "max_dist",
               "overshoot", "overshoot/n", "max_q"});
  for (const GreedyRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(static_cast<std::int64_t>(row.num_perms))
        .Cell(row.run.diameter)
        .Cell(row.run.route.steps)
        .Cell(row.run.steps_over_diameter())
        .Cell(row.run.route.max_distance)
        .Cell(row.run.route.max_overshoot)
        .Cell(row.run.overshoot_over_n(row.spec.n))
        .Cell(row.run.route.max_queue);
  }
  return table;
}

Table MakeSelectionTable(const std::vector<SelectRow>& rows) {
  Table table({"network", "D", "routing", "ratio", "claimed", "candidates",
               "max_q", "correct"});
  for (const SelectRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(1.0, 2)
        .Cell(row.result.candidates)
        .Cell(row.result.max_queue)
        .Cell(row.correct ? "yes" : "NO");
  }
  return table;
}

Table MakeRoutingTable(const std::vector<RoutingRow>& rows) {
  Table table({"network", "perm", "D", "offlineLB", "2phase", "2phase/D",
               "greedy", "greedy/D", "min|S|", "max_q", "delivered"});
  for (const RoutingRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(row.perm_name)
        .Cell(row.diameter)
        .Cell(row.offline.bound())
        .Cell(row.two_phase.total_steps)
        .Cell(row.two_phase.steps_over_diameter(row.diameter))
        .Cell(row.baseline.route.steps)
        .Cell(row.baseline.steps_over_diameter())
        .Cell(row.two_phase.min_s_size)
        .Cell(row.two_phase.max_queue)
        .Cell(row.two_phase.delivered ? "yes" : "NO");
  }
  return table;
}

BenchJson::BenchJson(std::string experiment)
    : experiment_(std::move(experiment)) {
  manifest_.build_type = BuildTypeName();
  manifest_.threads = ThreadPool::Global().workers();
  manifest_.binary = experiment_;
}

void BenchJson::SetManifest(RunManifest manifest) {
  manifest_ = std::move(manifest);
  if (manifest_.binary.empty()) manifest_.binary = experiment_;
}

void BenchJson::Add(const RoutingRow& row) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String(experiment_);
  WriteSpec(w, row.spec);
  w.Key("perm").String(row.perm_name);
  w.Key("seed").UInt(row.seed);
  w.Key("steps").Int(row.two_phase.total_steps);
  w.Key("D").Int(row.diameter);
  w.Key("ratio").Double(row.two_phase.steps_over_diameter(row.diameter));
  w.Key("phases").BeginArray();
  WriteRoutePhase(w, "phase_a_route", row.two_phase.phase1);
  if (row.two_phase.phase2.packets > 0) {
    WriteRoutePhase(w, "phase_b_route", row.two_phase.phase2);
  }
  w.EndArray();
  w.Key("wall_ms").Double(row.wall_ms);
  w.Key("max_queue").Int(row.two_phase.max_queue);
  w.Key("min_s_size").Int(row.two_phase.min_s_size);
  w.Key("nu_used").Double(row.two_phase.nu_used);
  w.Key("offline_lb").Int(row.offline.bound());
  w.Key("greedy_steps").Int(row.baseline.route.steps);
  w.Key("greedy_ratio").Double(row.baseline.steps_over_diameter());
  w.Key("delivered").Bool(row.two_phase.delivered);
  w.EndObject();
  records_.push_back(os.str());
}

void BenchJson::Add(const SortRow& row) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String(experiment_);
  WriteSpec(w, row.spec);
  w.Key("algo").String(SortAlgoName(row.algo));
  w.Key("seed").UInt(row.seed);
  w.Key("steps").Int(row.result.routing_steps);
  w.Key("D").Int(row.diameter);
  w.Key("ratio").Double(row.ratio);
  w.Key("claimed").Double(row.claimed);
  w.Key("phases").BeginArray();
  for (const PhaseStats& p : row.result.phases) WritePhase(w, p);
  w.EndArray();
  w.Key("wall_ms").Double(row.wall_ms);
  w.Key("local_steps").Int(row.result.local_steps);
  w.Key("total_steps").Int(row.result.total_steps);
  w.Key("max_queue").Int(row.result.max_queue);
  w.Key("fixup_rounds").Int(row.result.fixup_rounds);
  w.Key("sorted").Bool(row.result.sorted);
  w.EndObject();
  records_.push_back(os.str());
}

void BenchJson::Add(const GreedyRow& row) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String(experiment_);
  WriteSpec(w, row.spec);
  w.Key("perm").String("random");
  w.Key("num_perms").Int(row.num_perms);
  w.Key("seed").UInt(row.seed);
  w.Key("steps").Int(row.run.route.steps);
  w.Key("D").Int(row.run.diameter);
  w.Key("ratio").Double(row.run.steps_over_diameter());
  w.Key("phases").BeginArray();
  WriteRoutePhase(w, "greedy_route", row.run.route);
  w.EndArray();
  w.Key("wall_ms").Double(row.wall_ms);
  w.Key("max_distance").Int(row.run.route.max_distance);
  w.Key("max_overshoot").Int(row.run.route.max_overshoot);
  w.Key("overshoot_over_n").Double(row.run.overshoot_over_n(row.spec.n));
  w.Key("max_queue").Int(row.run.route.max_queue);
  w.EndObject();
  records_.push_back(os.str());
}

void BenchJson::Add(const SelectRow& row) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").String(experiment_);
  WriteSpec(w, row.spec);
  w.Key("seed").UInt(row.seed);
  w.Key("steps").Int(row.result.routing_steps);
  w.Key("D").Int(row.diameter);
  w.Key("ratio").Double(row.ratio);
  w.Key("phases").BeginArray().EndArray();
  w.Key("wall_ms").Double(row.wall_ms);
  w.Key("local_steps").Int(row.result.local_steps);
  w.Key("candidates").Int(row.result.candidates);
  w.Key("margin").Int(row.result.margin);
  w.Key("max_queue").Int(row.result.max_queue);
  w.Key("correct").Bool(row.correct);
  w.EndObject();
  records_.push_back(os.str());
}

void BenchJson::AddRaw(std::string json_object) {
  records_.push_back(std::move(json_object));
}

void BenchJson::Write(std::ostream& os, bool jsonl) const {
  if (jsonl) {
    // The manifest leads as its own line so a streaming reader sees the
    // run description before any record.
    os << "{\"manifest\": " << manifest_.ToJson() << "}\n";
    for (const std::string& rec : records_) os << rec << '\n';
    return;
  }
  os << "{\n\"manifest\": " << manifest_.ToJson() << ",\n\"records\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    os << "  " << records_[i];
    if (i + 1 < records_.size()) os << ',';
    os << '\n';
  }
  os << "]}\n";
}

bool BenchJson::WriteFile(const std::string& path) const {
  // Open-or-die: a run pointed at an unwritable --json path must fail
  // loudly instead of silently producing nothing.
  std::ofstream out = OpenOutputFile(path, "--json");
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  Write(out, jsonl);
  out.flush();
  if (!out) {
    std::cerr << "error: failed writing --json=" << path << '\n';
    std::exit(1);
  }
  std::cerr << "BenchJson: wrote " << records_.size() << " record(s) to "
            << path << '\n';
  return true;
}

}  // namespace mdmesh
