#include "core/report.h"

namespace mdmesh {

Table MakeSortTable(const std::vector<SortRow>& rows) {
  Table table({"network", "algo", "D", "routing", "ratio", "claimed", "local",
               "fixups", "max_q", "sorted"});
  for (const SortRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(SortAlgoName(row.algo))
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(row.claimed, 2)
        .Cell(row.result.local_steps)
        .Cell(row.result.fixup_rounds)
        .Cell(row.result.max_queue)
        .Cell(row.result.sorted ? "yes" : "NO");
  }
  return table;
}

Table MakeGreedyTable(const std::vector<GreedyRow>& rows) {
  Table table({"network", "perms", "D", "steps", "steps/D", "max_dist",
               "overshoot", "overshoot/n", "max_q"});
  for (const GreedyRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(static_cast<std::int64_t>(row.num_perms))
        .Cell(row.run.diameter)
        .Cell(row.run.route.steps)
        .Cell(row.run.steps_over_diameter())
        .Cell(row.run.route.max_distance)
        .Cell(row.run.route.max_overshoot)
        .Cell(row.run.overshoot_over_n(row.spec.n))
        .Cell(row.run.route.max_queue);
  }
  return table;
}

Table MakeSelectionTable(const std::vector<SelectRow>& rows) {
  Table table({"network", "D", "routing", "ratio", "claimed", "candidates",
               "max_q", "correct"});
  for (const SelectRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(row.diameter)
        .Cell(row.result.routing_steps)
        .Cell(row.ratio)
        .Cell(1.0, 2)
        .Cell(row.result.candidates)
        .Cell(row.result.max_queue)
        .Cell(row.correct ? "yes" : "NO");
  }
  return table;
}

Table MakeRoutingTable(const std::vector<RoutingRow>& rows) {
  Table table({"network", "perm", "D", "offlineLB", "2phase", "2phase/D",
               "greedy", "greedy/D", "min|S|", "max_q", "delivered"});
  for (const RoutingRow& row : rows) {
    table.Row()
        .Cell(row.spec.ToString())
        .Cell(row.perm_name)
        .Cell(row.diameter)
        .Cell(row.offline.bound())
        .Cell(row.two_phase.total_steps)
        .Cell(row.two_phase.steps_over_diameter(row.diameter))
        .Cell(row.baseline.route.steps)
        .Cell(row.baseline.steps_over_diameter())
        .Cell(row.two_phase.min_s_size)
        .Cell(row.two_phase.max_queue)
        .Cell(row.two_phase.delivered ? "yes" : "NO");
  }
  return table;
}

}  // namespace mdmesh
