// Experiment configuration shared by benches, tests, and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "meshsim/topology.h"

namespace mdmesh {

/// A network under test.
struct MeshSpec {
  int d = 2;
  int n = 8;
  Wrap wrap = Wrap::kMesh;

  std::int64_t size() const { return IPow(n, d); }
  std::int64_t diameter() const {
    return wrap == Wrap::kTorus ? static_cast<std::int64_t>(d) * (n / 2)
                                : static_cast<std::int64_t>(d) * (n - 1);
  }
  std::string ToString() const;
  Topology Build() const { return Topology(d, n, wrap); }
};

/// The (d, n) sweeps used across the reproduction benches. Chosen so every
/// network simulates in at most a few seconds on a laptop while keeping
/// the o(n)/D terms visibly shrinking with n.
std::vector<MeshSpec> StandardMeshSweep();
std::vector<MeshSpec> StandardTorusSweep();
/// Small high-dimensional meshes for the d >= 8 theorems (CopySort).
std::vector<MeshSpec> HighDimMeshSweep();

}  // namespace mdmesh
