#include "core/runner.h"

#include <chrono>
#include <stdexcept>

#include "routing/permutations.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

double ClaimedCoefficient(SortAlgo algo, Wrap wrap) {
  const bool torus = wrap == Wrap::kTorus;
  switch (algo) {
    case SortAlgo::kSimple:
      return 1.5;  // Theorem 3.1 (mesh)
    case SortAlgo::kCopy:
      return 1.25;  // Theorem 3.2 (mesh, d >= 8)
    case SortAlgo::kTorus:
      return 1.5;  // Theorem 3.3 (torus)
    case SortAlgo::kFull:
      return 2.0;  // baseline, mesh and torus alike
    case SortAlgo::kSnake:
      return 0.0;  // classical Theta(N): no cD form (filled in per spec)
  }
  (void)torus;
  return 0.0;
}

int DefaultBlocksPerSide(const MeshSpec& spec) {
  int best = 2;
  for (int g = 2; g <= spec.n / 2; g += 2) {
    if (spec.n % g != 0) continue;
    const int b = spec.n / g;
    if (b % g != 0) continue;  // need g | b for the unshuffle arithmetic
    const std::int64_t m = IPow(g, spec.d);
    const std::int64_t B = IPow(b, spec.d);
    if (m * m <= 2 * B) best = g;  // Lemma 3.1 regime (alpha >= 2/3)
  }
  return best;
}

SortRow RunSortExperiment(SortAlgo algo, const MeshSpec& spec,
                          const SortOptions& opts, InputKind input) {
  SortRow row;
  row.spec = spec;
  row.algo = algo;
  row.diameter = spec.diameter();
  row.claimed = algo == SortAlgo::kSnake
                    ? static_cast<double>(spec.size()) /
                          static_cast<double>(spec.diameter())
                    : ClaimedCoefficient(algo, spec.wrap);

  Topology topo = spec.Build();
  BlockGrid grid(topo, opts.g > 0 ? opts.g : DefaultBlocksPerSide(spec));
  Network net(topo);
  FillInput(net, grid, opts.k, input, opts.seed);
  SortOptions effective = opts;
  effective.g = grid.blocks_per_side();
  row.seed = opts.seed;
  const auto t0 = std::chrono::steady_clock::now();
  row.result = RunSort(algo, net, grid, effective);
  row.wall_ms = MsSince(t0);
  row.ratio = row.result.RatioToDiameter(row.diameter);
  return row;
}

GreedyRow RunGreedyExperiment(const MeshSpec& spec, int j, std::uint64_t seed) {
  GreedyRow row;
  row.spec = spec;
  row.num_perms = j;
  Topology topo = spec.Build();
  GreedyOptions opts;
  opts.seed = seed;
  opts.class_mode = ClassMode::kByPermutation;
  row.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  row.run = RouteRandomPermutations(topo, j, opts);
  row.wall_ms = MsSince(t0);
  return row;
}

SelectRow RunSelectionExperiment(const MeshSpec& spec, const SortOptions& opts) {
  SelectRow row;
  row.spec = spec;
  row.diameter = spec.diameter();

  Topology topo = spec.Build();
  BlockGrid grid(topo, opts.g > 0 ? opts.g : DefaultBlocksPerSide(spec));
  Network net(topo);
  FillInput(net, grid, opts.k, InputKind::kRandom, opts.seed);

  // Ground truth before the algorithm consumes the packets.
  GroundTruth truth = CaptureGroundTruth(net);
  const std::int64_t target = (static_cast<std::int64_t>(truth.size()) - 1) / 2;

  row.seed = opts.seed;
  const auto t0 = std::chrono::steady_clock::now();
  row.result = SelectAtCenter(net, grid, opts, target);
  row.wall_ms = MsSince(t0);
  row.correct = row.result.found &&
                row.result.selected_key ==
                    truth[static_cast<std::size_t>(target)].first;
  row.ratio = row.result.RatioToDiameter(row.diameter);
  return row;
}

RoutingRow RunRoutingExperiment(const MeshSpec& spec, const std::string& perm,
                                const TwoPhaseOptions& opts) {
  RoutingRow row;
  row.spec = spec;
  row.perm_name = perm;
  row.diameter = spec.diameter();

  Topology topo = spec.Build();
  std::vector<ProcId> dest;
  if (perm == "random") {
    Rng rng(opts.seed);
    dest = RandomPermutation(topo, rng);
  } else if (perm == "reversal") {
    dest = ReversalPermutation(topo);
  } else if (perm == "transpose") {
    dest = TransposePermutation(topo);
  } else {
    throw std::invalid_argument("unknown permutation: " + perm);
  }

  row.offline = ComputeOfflineBound(topo, dest);
  row.seed = opts.seed;
  const auto t0 = std::chrono::steady_clock::now();
  row.two_phase = RouteTwoPhase(topo, dest, opts);
  row.wall_ms = MsSince(t0);

  GreedyOptions base;
  base.seed = opts.seed;
  base.class_mode = ClassMode::kZero;  // the classic single greedy router
  // Share the caller's journey tracer (runs are sequential, so one tracer
  // serves every Route call): the baseline's critical-path decomposition
  // is what the two-phase router's contention profile is compared against.
  base.engine.journeys = opts.engine.journeys;
  row.baseline = RouteOnePermutation(topo, dest, base);
  return row;
}

}  // namespace mdmesh
