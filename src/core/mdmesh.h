// mdmesh — routing and sorting on multi-dimensional meshes and tori.
//
// Reproduction of Torsten Suel, "Improved Bounds for Routing and Sorting on
// Multi-Dimensional Meshes" (SPAA 1994). Umbrella header: include this to
// get the whole public API. See README.md for a tour and DESIGN.md for the
// paper-to-module map.
#pragma once

// Substrate: topology, indexing, blocks, geometry.
#include "meshsim/blocks.h"
#include "meshsim/geometry.h"
#include "meshsim/indexing.h"
#include "meshsim/topology.h"

// Observability: phase-span traces, per-step probes, JSON/CSV/Chrome-trace
// sinks, metrics registry, run manifests.
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/journey.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/output.h"
#include "obs/perf_counters.h"
#include "obs/probe.h"
#include "obs/publisher.h"
#include "obs/registry.h"
#include "obs/trace.h"

// Fault injection (dead links/nodes, transient flaps).
#include "fault/fault_plan.h"

// Simulation kernel.
#include "net/engine.h"
#include "net/engine_state.h"
#include "net/invariants.h"
#include "net/metrics.h"
#include "net/network.h"
#include "net/packet.h"
#include "net/reference_engine.h"

// Checkpoint/restore: versioned CRC-checksummed files, keep-K rotation,
// corrupt-generation fallback.
#include "ckpt/checkpoint.h"
#include "ckpt/manager.h"

// Routing (Sections 2.2 and 5).
#include "routing/greedy.h"
#include "routing/offline.h"
#include "routing/permutations.h"
#include "routing/policy.h"
#include "routing/two_phase.h"

// Dynamic workloads: traffic patterns, open-loop injection, saturation.
#include "workload/driver.h"
#include "workload/patterns.h"

// Experiment service: JSON run requests, queued scheduler, HTTP control
// plane with checkpointed graceful drain.
#include "serve/http.h"
#include "serve/json_value.h"
#include "serve/run_spec.h"
#include "serve/scheduler.h"
#include "serve/service.h"

// Sorting and selection (Section 3, Section 4.3 upper bound).
#include "sorting/common.h"
#include "sorting/kk_sort.h"
#include "sorting/local_sort.h"
#include "sorting/remap.h"
#include "sorting/selection.h"
#include "sorting/spread.h"
#include "sorting/verify.h"

// Lower bounds (Sections 1.1 and 4).
#include "bounds/bisection.h"
#include "bounds/broadcast.h"
#include "bounds/compatibility.h"
#include "bounds/diamond.h"
#include "bounds/lemma41.h"
#include "bounds/selection_lb.h"
#include "bounds/sorting_lb.h"

// Experiment harness.
#include "core/config.h"
#include "core/report.h"
#include "core/runner.h"
