// One-call experiment runners: build the network, generate the input, run
// the algorithm, verify, and package the row a bench table needs. Keeps the
// bench binaries and examples free of setup boilerplate and guarantees they
// all measure the same way.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.h"
#include "routing/greedy.h"
#include "routing/offline.h"
#include "routing/two_phase.h"
#include "sorting/kk_sort.h"
#include "sorting/selection.h"

namespace mdmesh {

struct SortRow {
  MeshSpec spec;
  SortAlgo algo = SortAlgo::kSimple;
  std::int64_t diameter = 0;
  SortResult result;
  double ratio = 0.0;    ///< routing steps / D
  double claimed = 0.0;  ///< the theorem's coefficient for this algo/topology
  double wall_ms = 0.0;  ///< wall-clock for the sort itself (setup excluded)
  std::uint64_t seed = 0;
};

/// The leading-term coefficient the paper claims for `algo` on `wrap`.
double ClaimedCoefficient(SortAlgo algo, Wrap wrap);

/// Runs a full sorting experiment (input -> sort -> verify).
SortRow RunSortExperiment(SortAlgo algo, const MeshSpec& spec,
                          const SortOptions& opts,
                          InputKind input = InputKind::kRandom);

struct GreedyRow {
  MeshSpec spec;
  int num_perms = 0;
  GreedyRun run;
  double wall_ms = 0.0;
  std::uint64_t seed = 0;
};

/// Routes j simultaneous random permutations with the extended greedy
/// scheme (Lemmas 2.1-2.3 measurements).
GreedyRow RunGreedyExperiment(const MeshSpec& spec, int j, std::uint64_t seed);

struct SelectRow {
  MeshSpec spec;
  std::int64_t diameter = 0;
  SelectResult result;
  bool correct = false;  ///< selected key matches ground truth
  double ratio = 0.0;    ///< routing steps / D (claimed: 1.0)
  double wall_ms = 0.0;
  std::uint64_t seed = 0;
};

/// Median selection experiment with ground-truth verification.
SelectRow RunSelectionExperiment(const MeshSpec& spec, const SortOptions& opts);

struct RoutingRow {
  MeshSpec spec;
  std::string perm_name;
  std::int64_t diameter = 0;
  TwoPhaseResult two_phase;
  GreedyRun baseline;       ///< plain greedy on the same permutation
  OfflineBound offline;     ///< per-instance lower bound (distance/cuts)
  double wall_ms = 0.0;     ///< wall-clock for the two-phase route
  std::uint64_t seed = 0;
};

/// Section 5 routing vs. the plain greedy baseline on a named permutation
/// ("random" | "reversal" | "transpose").
RoutingRow RunRoutingExperiment(const MeshSpec& spec, const std::string& perm,
                                const TwoPhaseOptions& opts);

/// Blocks-per-side used across experiments: the largest even g with g | b
/// that keeps m^2 <= 2B (the Lemma 3.1 regime); falls back to 2.
int DefaultBlocksPerSide(const MeshSpec& spec);

}  // namespace mdmesh
