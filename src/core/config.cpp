#include "core/config.h"

#include <sstream>

namespace mdmesh {

std::string MeshSpec::ToString() const {
  std::ostringstream os;
  os << (wrap == Wrap::kTorus ? "torus" : "mesh") << "(d=" << d << ",n=" << n
     << ")";
  return os.str();
}

std::vector<MeshSpec> StandardMeshSweep() {
  return {
      {2, 16, Wrap::kMesh},  {2, 32, Wrap::kMesh}, {2, 64, Wrap::kMesh},
      {3, 8, Wrap::kMesh},   {3, 16, Wrap::kMesh}, {3, 24, Wrap::kMesh},
      {4, 8, Wrap::kMesh},   {4, 12, Wrap::kMesh},
  };
}

std::vector<MeshSpec> StandardTorusSweep() {
  return {
      {2, 16, Wrap::kTorus}, {2, 32, Wrap::kTorus}, {2, 64, Wrap::kTorus},
      {3, 8, Wrap::kTorus},  {3, 16, Wrap::kTorus}, {3, 24, Wrap::kTorus},
      {4, 8, Wrap::kTorus},  {4, 12, Wrap::kTorus},
  };
}

std::vector<MeshSpec> HighDimMeshSweep() {
  return {
      {6, 4, Wrap::kMesh},
      {8, 4, Wrap::kMesh},
  };
}

}  // namespace mdmesh
