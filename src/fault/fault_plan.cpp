#include "fault/fault_plan.h"

#include <algorithm>
#include <cassert>

namespace mdmesh {

FaultPlan::FaultPlan(const Topology& topo)
    : topo_(&topo),
      dead_(static_cast<std::size_t>(topo.size()) *
            static_cast<std::size_t>(2 * topo.dim())),
      node_dead_(static_cast<std::size_t>(topo.size())) {}

void FaultPlan::MarkDead(ProcId p, int dim, int dir) {
  if (topo_->Neighbor(p, dim, dir) < 0) return;  // mesh boundary: no link
  auto& cell = dead_[static_cast<std::size_t>(LinkIndex(p, dim, dir))];
  if (cell == 0) {
    cell = 1;
    ++dead_links_;
  }
}

void FaultPlan::KillLink(ProcId p, int dim, int dir) {
  assert(p >= 0 && p < topo_->size() && dim >= 0 && dim < topo_->dim());
  MarkDead(p, dim, dir);
}

void FaultPlan::KillLinkPair(ProcId p, int dim, int dir) {
  const ProcId q = topo_->Neighbor(p, dim, dir);
  if (q < 0) return;
  MarkDead(p, dim, dir);
  MarkDead(q, dim, 1 - dir);
}

void FaultPlan::KillNode(ProcId p) {
  assert(p >= 0 && p < topo_->size());
  auto& cell = node_dead_[static_cast<std::size_t>(p)];
  if (cell != 0) return;
  cell = 1;
  ++dead_nodes_;
  for (int dim = 0; dim < topo_->dim(); ++dim) {
    for (int dir = 0; dir < 2; ++dir) {
      MarkDead(p, dim, dir);
      const ProcId q = topo_->Neighbor(p, dim, dir);
      if (q >= 0) MarkDead(q, dim, 1 - dir);
    }
  }
}

void FaultPlan::AddFlap(ProcId p, int dim, int dir, std::int64_t start,
                        std::int64_t duration) {
  assert(start >= 1 && duration >= 1);
  if (topo_->Neighbor(p, dim, dir) < 0) return;
  flaps_.push_back(Flap{LinkIndex(p, dim, dir), start, duration});
  max_flap_duration_ = std::max(max_flap_duration_, duration);
}

std::vector<FaultPlan::FlapEvent> FaultPlan::Events() const {
  std::vector<FlapEvent> events;
  events.reserve(flaps_.size() * 2);
  for (const Flap& f : flaps_) {
    events.push_back(FlapEvent{f.start, f.link, +1});
    events.push_back(FlapEvent{f.start + f.duration, f.link, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const FlapEvent& a, const FlapEvent& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.link != b.link) return a.link < b.link;
              return a.delta < b.delta;
            });
  return events;
}

FaultPlan FaultPlan::Random(const Topology& topo, const FaultSpec& spec,
                            std::uint64_t seed) {
  FaultPlan plan(topo);
  Rng base(seed);
  // Independent streams per fault kind, so e.g. raising the flap rate never
  // reshuffles which permanent links die.
  Rng links = base.Split(1);
  Rng nodes = base.Split(2);
  Rng flaps = base.Split(3);
  const ProcId N = topo.size();
  const int d = topo.dim();
  if (spec.link_rate > 0.0) {
    for (ProcId p = 0; p < N; ++p) {
      for (int dim = 0; dim < d; ++dim) {
        for (int dir = 0; dir < 2; ++dir) {
          if (topo.Neighbor(p, dim, dir) < 0) continue;
          if (links.Chance(spec.link_rate)) plan.KillLink(p, dim, dir);
        }
      }
    }
  }
  if (spec.node_rate > 0.0) {
    for (ProcId p = 0; p < N; ++p) {
      if (nodes.Chance(spec.node_rate)) plan.KillNode(p);
    }
  }
  if (spec.flap_rate > 0.0) {
    const std::int64_t dur_span =
        std::max<std::int64_t>(1, spec.flap_duration_max -
                                      spec.flap_duration_min + 1);
    for (ProcId p = 0; p < N; ++p) {
      for (int dim = 0; dim < d; ++dim) {
        for (int dir = 0; dir < 2; ++dir) {
          if (topo.Neighbor(p, dim, dir) < 0) continue;
          if (!flaps.Chance(spec.flap_rate)) continue;
          const std::int64_t start =
              1 + static_cast<std::int64_t>(flaps.Below(
                      static_cast<std::uint64_t>(
                          std::max<std::int64_t>(1, spec.flap_start_max))));
          const std::int64_t duration =
              spec.flap_duration_min +
              static_cast<std::int64_t>(
                  flaps.Below(static_cast<std::uint64_t>(dur_span)));
          plan.AddFlap(p, dim, dir, start, duration);
        }
      }
    }
  }
  return plan;
}

std::vector<ProcId> FaultPlan::AliveNodes() const {
  std::vector<ProcId> alive;
  alive.reserve(static_cast<std::size_t>(topo_->size() - dead_nodes_));
  for (ProcId p = 0; p < topo_->size(); ++p) {
    if (node_dead_[static_cast<std::size_t>(p)] == 0) alive.push_back(p);
  }
  return alive;
}

bool FaultPlan::Connected() const {
  const ProcId N = topo_->size();
  const int d = topo_->dim();
  ProcId source = -1;
  std::int64_t alive = 0;
  for (ProcId p = 0; p < N; ++p) {
    if (node_dead_[static_cast<std::size_t>(p)] == 0) {
      if (source < 0) source = p;
      ++alive;
    }
  }
  if (alive <= 1) return true;

  // Strong connectivity of the directed alive graph: every alive node must
  // be forward-reachable from `source` and reach it back (BFS on the graph
  // and on its transpose).
  auto bfs = [&](bool forward) {
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(N));
    std::vector<ProcId> frontier{source};
    seen[static_cast<std::size_t>(source)] = 1;
    std::int64_t count = 1;
    while (!frontier.empty()) {
      const ProcId p = frontier.back();
      frontier.pop_back();
      for (int dim = 0; dim < d; ++dim) {
        for (int dir = 0; dir < 2; ++dir) {
          const ProcId q = topo_->Neighbor(p, dim, dir);
          if (q < 0 || seen[static_cast<std::size_t>(q)] != 0) continue;
          if (node_dead_[static_cast<std::size_t>(q)] != 0) continue;
          // Forward: edge p -> q uses p's (dim, dir) link. Backward: edge
          // q -> p uses q's (dim, 1 - dir) link.
          const std::int64_t link = forward ? LinkIndex(p, dim, dir)
                                           : LinkIndex(q, dim, 1 - dir);
          if (dead_[static_cast<std::size_t>(link)] != 0) continue;
          seen[static_cast<std::size_t>(q)] = 1;
          ++count;
          frontier.push_back(q);
        }
      }
    }
    return count;
  };
  return bfs(/*forward=*/true) == alive && bfs(/*forward=*/false) == alive;
}

void FaultPlan::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("dead_links").Int(dead_links_);
  w.Key("dead_nodes").Int(dead_nodes_);
  w.Key("flaps").Int(static_cast<std::int64_t>(flaps_.size()));
  w.Key("max_flap_duration").Int(max_flap_duration_);
  w.EndObject();
}

}  // namespace mdmesh
