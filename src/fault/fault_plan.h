// Deterministic, seeded fault injection for the routing engine.
//
// A FaultPlan describes which parts of the network are broken: permanently
// dead directed links, dead processors (every incident directed link dies,
// in both directions), and transient link "flaps" — a directed link that is
// down for a contiguous window of steps and then recovers. The engine honors
// the plan per step: a dead link transmits nothing, and the adaptive detour
// policy (net/engine.h) routes around permanent damage.
//
// Step semantics: flap windows are expressed in the engine's 1-based step
// counter and are *relative to each Engine::Route call* — a multi-phase
// algorithm replays the schedule in every phase. A flap with start s and
// duration t keeps the link dead during steps s, s+1, ..., s+t-1.
//
// Determinism: Random() derives everything from (topology, spec, seed) via
// split RNG streams, so a plan is reproducible across runs, platforms, and
// thread counts. Plans are immutable once handed to an Engine.
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/topology.h"
#include "obs/json.h"
#include "util/rng.h"

namespace mdmesh {

/// Fault rates for FaultPlan::Random. Rates are per directed link (or per
/// node) Bernoulli probabilities; 0 everywhere yields an empty plan.
struct FaultSpec {
  double link_rate = 0.0;  ///< permanently dead directed links
  double node_rate = 0.0;  ///< dead processors
  double flap_rate = 0.0;  ///< links that flap once during the run

  /// Flap start is uniform in [1, flap_start_max]; duration is uniform in
  /// [flap_duration_min, flap_duration_max].
  std::int64_t flap_start_max = 256;
  std::int64_t flap_duration_min = 4;
  std::int64_t flap_duration_max = 64;

  bool empty() const {
    return link_rate <= 0.0 && node_rate <= 0.0 && flap_rate <= 0.0;
  }
};

class FaultPlan {
 public:
  /// One transient outage of a directed link.
  struct Flap {
    std::int64_t link = 0;      ///< global directed link index
    std::int64_t start = 1;     ///< first dead step (1-based)
    std::int64_t duration = 1;  ///< number of consecutive dead steps
  };

  /// Flap edge: at `step`, add `delta` (+1 down / -1 up) to the link's
  /// outage count. Sorted by (step, link, delta) in events().
  struct FlapEvent {
    std::int64_t step = 0;
    std::int64_t link = 0;
    std::int32_t delta = 0;
  };

  explicit FaultPlan(const Topology& topo);

  /// Samples a plan from `spec` with the given seed. Deterministic: the
  /// same (topology, spec, seed) always yields the same plan.
  static FaultPlan Random(const Topology& topo, const FaultSpec& spec,
                          std::uint64_t seed);

  const Topology& topo() const { return *topo_; }

  /// Global index of the directed link leaving `p` along (dim, dir) —
  /// matches the engine's slot layout: p * 2d + dim * 2 + dir.
  std::int64_t LinkIndex(ProcId p, int dim, int dir) const {
    return p * 2 * topo_->dim() + dim * 2 + dir;
  }

  /// Kills the directed link leaving `p` along (dim, dir). No-op on a mesh
  /// boundary (the link does not exist).
  void KillLink(ProcId p, int dim, int dir);
  /// Kills both directions between `p` and its (dim, dir) neighbor.
  void KillLinkPair(ProcId p, int dim, int dir);
  /// Kills `p`: all 2d outgoing links plus every neighbor's link toward p.
  void KillNode(ProcId p);
  /// Schedules a transient outage of the link leaving `p` along (dim, dir).
  /// Requires start >= 1 and duration >= 1; no-op on a mesh boundary.
  void AddFlap(ProcId p, int dim, int dir, std::int64_t start,
               std::int64_t duration);

  bool empty() const { return dead_links_ == 0 && flaps_.empty(); }
  std::int64_t dead_link_count() const { return dead_links_; }
  std::int64_t dead_node_count() const { return dead_nodes_; }
  std::size_t flap_count() const { return flaps_.size(); }
  std::int64_t max_flap_duration() const { return max_flap_duration_; }

  bool NodeDead(ProcId p) const {
    return node_dead_[static_cast<std::size_t>(p)] != 0;
  }
  bool LinkDead(ProcId p, int dim, int dir) const {
    return dead_[static_cast<std::size_t>(LinkIndex(p, dim, dir))] != 0;
  }

  /// Permanent dead mask over all N * 2d directed link slots (includes the
  /// links implied by dead nodes). The engine copies this once per run.
  const std::vector<std::uint8_t>& dead_mask() const { return dead_; }
  const std::vector<Flap>& flaps() const { return flaps_; }

  /// All flap edges sorted by (step, link, delta) — the per-step schedule
  /// the engine consumes.
  std::vector<FlapEvent> Events() const;

  /// Processors that are not dead, in id order.
  std::vector<ProcId> AliveNodes() const;

  /// True when the alive subgraph under the *permanent* faults (flaps
  /// ignored — they heal) is strongly connected, i.e. every alive processor
  /// can still route to every other. Networks with <= 1 alive processor
  /// count as connected.
  bool Connected() const;

  /// Summary object: {dead_links, dead_nodes, flaps, max_flap_duration}.
  void WriteJson(JsonWriter& w) const;

 private:
  void MarkDead(ProcId p, int dim, int dir);

  const Topology* topo_;
  std::vector<std::uint8_t> dead_;       ///< N * 2d permanent dead mask
  std::vector<std::uint8_t> node_dead_;  ///< N dead-node mask
  std::vector<Flap> flaps_;
  std::int64_t dead_links_ = 0;  ///< distinct dead directed links
  std::int64_t dead_nodes_ = 0;
  std::int64_t max_flap_duration_ = 0;
};

}  // namespace mdmesh
