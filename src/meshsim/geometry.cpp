#include "meshsim/geometry.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mdmesh {

std::int64_t HalfDistToCenter(const Topology& topo, ProcId p) {
  const int n = topo.side();
  std::int64_t total = 0;
  for (int i = 0; i < topo.dim(); ++i) {
    auto c = static_cast<std::int64_t>(p % n);
    p /= n;
    total += AbsDiff(2 * c, n - 1);  // |2c - (n-1)| = 2|c - center|
  }
  return total;
}

std::int64_t CountWithinHalfDist(const Topology& topo, std::int64_t half_radius) {
  std::int64_t count = 0;
  for (ProcId p = 0; p < topo.size(); ++p) {
    if (HalfDistToCenter(topo, p) <= half_radius) ++count;
  }
  return count;
}

CenterRegion::CenterRegion(const BlockGrid& grid, std::int64_t count,
                           bool mirror_closed)
    : grid_(&grid) {
  assert(count >= 1 && count <= grid.num_blocks());
  const auto m = grid.num_blocks();
  const int d = grid.topo().dim();
  const int n = grid.topo().side();

  // Center distance of each block's center, in exact half units:
  // sum_i |2*center_i - (n-1)| where center_i = bc_i*b + (b-1)/2.
  std::vector<std::int64_t> half_dist(static_cast<std::size_t>(m));
  for (BlockId blk = 0; blk < m; ++blk) {
    Point bc = grid.BlockCoords(blk);
    std::int64_t total = 0;
    for (int i = 0; i < d; ++i) {
      std::int64_t twice_center =
          2 * static_cast<std::int64_t>(bc[static_cast<std::size_t>(i)]) *
              grid.block_side() +
          (grid.block_side() - 1);
      total += AbsDiff(twice_center, n - 1);
    }
    half_dist[static_cast<std::size_t>(blk)] = total;
  }

  std::vector<BlockId> order;
  if (!mirror_closed) {
    order.resize(static_cast<std::size_t>(m));
    std::iota(order.begin(), order.end(), BlockId{0});
    std::stable_sort(order.begin(), order.end(), [&](BlockId a, BlockId b) {
      auto da = half_dist[static_cast<std::size_t>(a)];
      auto db = half_dist[static_cast<std::size_t>(b)];
      return da != db ? da < db : a < b;
    });
  } else {
    assert(count % 2 == 0);
    // Reflection through the center has no fixed blocks when g is even
    // (g-1-c = c has no integer solution), so blocks pair up exactly.
    std::vector<std::pair<BlockId, BlockId>> pairs;
    for (BlockId blk = 0; blk < m; ++blk) {
      BlockId mb = grid.MirrorBlock(blk);
      assert(mb != blk && "mirror-closed region needs an even g");
      if (blk < mb) pairs.emplace_back(blk, mb);
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [&](const auto& a, const auto& b) {
                       auto da = half_dist[static_cast<std::size_t>(a.first)];
                       auto db = half_dist[static_cast<std::size_t>(b.first)];
                       return da != db ? da < db : a.first < b.first;
                     });
    for (const auto& [x, y] : pairs) {
      order.push_back(x);
      order.push_back(y);
    }
  }

  blocks_.assign(order.begin(), order.begin() + count);
  // Stable numbering: by (center distance, block id) within the chosen set.
  std::stable_sort(blocks_.begin(), blocks_.end(), [&](BlockId a, BlockId b) {
    auto da = half_dist[static_cast<std::size_t>(a)];
    auto db = half_dist[static_cast<std::size_t>(b)];
    return da != db ? da < db : a < b;
  });
  number_of_.assign(static_cast<std::size_t>(m), -1);
  for (std::int64_t c = 0; c < count; ++c) {
    number_of_[static_cast<std::size_t>(blocks_[static_cast<std::size_t>(c)])] = c;
  }
  radius_ = static_cast<double>(
                half_dist[static_cast<std::size_t>(blocks_.back())]) /
            2.0;
}

std::int64_t CenterRegion::MaxDistToAnywhere() const {
  std::int64_t worst = 0;
  for (BlockId c_block : blocks_) {
    for (BlockId other = 0; other < grid_->num_blocks(); ++other) {
      worst = std::max(worst, grid_->MaxProcDist(c_block, other));
    }
  }
  return worst;
}

}  // namespace mdmesh
