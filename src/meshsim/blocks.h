// Block decomposition of the mesh (paper, Sections 1 and 2.1).
//
// All algorithms in the paper partition the network into g^d blocks of side
// b = n/g (the paper writes b = n^alpha) and address packets by
// (block, within-block position) under the blocked snake-like indexing
// scheme. BlockGrid precomputes the two-way mapping
//
//     processor id  <->  (block snake index, within-block snake offset)
//
// so that the sorting algorithms' rank arithmetic (DESIGN.md §2) is table
// lookups. Blocks are identified by their snake index throughout mdmesh.
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/indexing.h"
#include "meshsim/topology.h"

namespace mdmesh {

using BlockId = std::int64_t;

class BlockGrid {
 public:
  /// `g` = blocks per side; requires n % g == 0.
  BlockGrid(const Topology& topo, int g);

  const Topology& topo() const { return *topo_; }
  int blocks_per_side() const { return g_; }
  int block_side() const { return b_; }
  std::int64_t num_blocks() const { return m_; }      ///< g^d
  std::int64_t block_volume() const { return vol_; }  ///< b^d

  BlockId BlockOf(ProcId p) const {
    return proc_block_[static_cast<std::size_t>(p)];
  }
  std::int64_t OffsetOf(ProcId p) const {
    return proc_offset_[static_cast<std::size_t>(p)];
  }
  ProcId ProcAt(BlockId block, std::int64_t offset) const {
    return proc_at_[static_cast<std::size_t>(block * vol_ + offset)];
  }

  /// Block coordinates in [g]^d of a block snake index.
  Point BlockCoords(BlockId block) const;
  BlockId BlockAtCoords(const Point& bc) const;

  /// Geometric center of a block in processor coordinates (may be half-odd).
  /// Only the first d entries are meaningful.
  std::array<double, kMaxDim> BlockCenter(BlockId block) const;

  /// L1 distance between block centers; ring distance per dimension on tori.
  double CenterDist(BlockId a, BlockId b) const;

  /// Max over processor pairs (one in each block) of Topology::Dist — i.e.
  /// the worst-case travel between the two blocks. Used for bound audits.
  std::int64_t MaxProcDist(BlockId a, BlockId b) const;

  /// Block whose coordinates are mirrored through the grid center
  /// (c -> g-1-c in every dimension).
  BlockId MirrorBlock(BlockId block) const;

  /// Torus antipodal block (coordinates shifted by g/2 mod g).
  BlockId AntipodeBlock(BlockId block) const;

  /// Blocks adjacent in block snake order, as (left, right) pairs for the
  /// given parity (0: pairs (0,1),(2,3),... ; 1: pairs (1,2),(3,4),...).
  std::vector<std::pair<BlockId, BlockId>> SnakeNeighborPairs(int parity) const;

  /// The blocked snake-like indexing scheme induced by this grid.
  const BlockedIndexing& indexing() const { return indexing_; }

 private:
  const Topology* topo_;
  int g_;
  int b_;
  std::int64_t m_;
  std::int64_t vol_;
  SnakeIndexing block_snake_;   // over [g]^d
  BlockedIndexing indexing_;    // over [n]^d
  std::vector<BlockId> proc_block_;
  std::vector<std::int64_t> proc_offset_;
  std::vector<ProcId> proc_at_;
};

}  // namespace mdmesh
