// The d-dimensional mesh / torus topology (paper, Section 1).
//
// A d-dimensional mesh of side length n has N = n^d processors identified by
// d-tuples in [n]^d; processors differing by exactly 1 in one coordinate are
// joined by a bidirectional link. The torus adds wraparound links. This class
// owns the coordinate arithmetic used by every other layer: flat processor
// ids, neighbor lookup, and L1 / ring distances.
//
// Coordinate convention: dimension 0 is least significant in the flat id,
// i.e. id = p[0] + n*p[1] + n^2*p[2] + ...
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/math.h"

namespace mdmesh {

/// Maximum supported dimension. The paper's high-dimensional theorems are
/// exercised at d <= 10 (n^d must stay simulable); bound *calculators* in
/// mdmesh_bounds work for arbitrary d and do not use this type.
inline constexpr int kMaxDim = 10;

/// Flat processor id in [0, n^d).
using ProcId = std::int64_t;

/// A coordinate tuple; only the first d entries are meaningful.
using Point = std::array<std::int32_t, kMaxDim>;

enum class Wrap : std::uint8_t {
  kMesh,   ///< no wraparound edges
  kTorus,  ///< wraparound in every dimension
};

class Topology {
 public:
  /// Requires 1 <= d <= kMaxDim and n >= 2.
  Topology(int d, int n, Wrap wrap);

  int dim() const { return d_; }
  int side() const { return n_; }
  Wrap wrap() const { return wrap_; }
  bool torus() const { return wrap_ == Wrap::kTorus; }
  ProcId size() const { return size_; }

  /// Network diameter D: d(n-1) for the mesh, d*floor(n/2) for the torus.
  std::int64_t Diameter() const;

  Point Coords(ProcId p) const;
  ProcId Id(const Point& c) const;

  /// Neighbor of p along `dim` in direction `dir` (0 = decreasing,
  /// 1 = increasing). Returns -1 if the link does not exist (mesh boundary).
  ProcId Neighbor(ProcId p, int dim, int dir) const;

  /// L1 distance (mesh) or sum of ring distances (torus).
  std::int64_t Dist(ProcId a, ProcId b) const;
  std::int64_t DistCoords(const Point& a, const Point& b) const;

  /// Signed unit step in one dimension that moves `from` toward `to` along a
  /// shortest path (+1/-1), or 0 if already equal. On the torus the shorter
  /// way is chosen; an exact tie (distance n/2) resolves to +1 so that a
  /// packet's direction never flips mid-route.
  int StepToward(int from, int to) const;

  /// coords(p)[dim] for all p, flattened as table[p * d + dim]. Built once by
  /// the engine so the hot loop avoids div/mod chains.
  std::vector<std::int32_t> BuildCoordTable() const;

  /// Processor obtained by reflecting p through the network center,
  /// i.e. each coordinate c -> n-1-c.
  ProcId Mirror(ProcId p) const;

  /// Torus antipode: each coordinate shifted by floor(n/2) mod n. On a ring,
  /// dist(x, c) + dist(x, antipode(c)) >= floor(n/2) with equality for even n,
  /// which is what makes TorusSort's Lemma 3.4 exact (DESIGN.md §2).
  ProcId Antipode(ProcId p) const;

 private:
  int d_;
  int n_;
  Wrap wrap_;
  ProcId size_;
  std::array<std::int64_t, kMaxDim + 1> stride_;
};

}  // namespace mdmesh
