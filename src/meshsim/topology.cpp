#include "meshsim/topology.h"

#include <cassert>

namespace mdmesh {

Topology::Topology(int d, int n, Wrap wrap) : d_(d), n_(n), wrap_(wrap) {
  assert(d >= 1 && d <= kMaxDim);
  assert(n >= 2);
  stride_[0] = 1;
  for (int i = 0; i < d_; ++i) stride_[static_cast<std::size_t>(i) + 1] = stride_[static_cast<std::size_t>(i)] * n_;
  size_ = stride_[static_cast<std::size_t>(d_)];
}

std::int64_t Topology::Diameter() const {
  return torus() ? static_cast<std::int64_t>(d_) * (n_ / 2)
                 : static_cast<std::int64_t>(d_) * (n_ - 1);
}

Point Topology::Coords(ProcId p) const {
  assert(p >= 0 && p < size_);
  Point c{};
  for (int i = 0; i < d_; ++i) {
    c[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(p % n_);
    p /= n_;
  }
  return c;
}

ProcId Topology::Id(const Point& c) const {
  ProcId p = 0;
  for (int i = d_ - 1; i >= 0; --i) {
    auto v = c[static_cast<std::size_t>(i)];
    assert(v >= 0 && v < n_);
    p = p * n_ + v;
  }
  return p;
}

ProcId Topology::Neighbor(ProcId p, int dim, int dir) const {
  assert(dim >= 0 && dim < d_);
  assert(dir == 0 || dir == 1);
  auto coord = static_cast<std::int32_t>((p / stride_[static_cast<std::size_t>(dim)]) % n_);
  std::int32_t next = coord + (dir == 1 ? 1 : -1);
  if (next < 0 || next >= n_) {
    if (!torus()) return -1;
    next = next < 0 ? n_ - 1 : 0;
  }
  return p + static_cast<std::int64_t>(next - coord) * stride_[static_cast<std::size_t>(dim)];
}

std::int64_t Topology::DistCoords(const Point& a, const Point& b) const {
  std::int64_t total = 0;
  for (int i = 0; i < d_; ++i) {
    auto x = a[static_cast<std::size_t>(i)];
    auto y = b[static_cast<std::size_t>(i)];
    total += torus() ? RingDist(x, y, n_) : AbsDiff(x, y);
  }
  return total;
}

std::int64_t Topology::Dist(ProcId a, ProcId b) const {
  std::int64_t total = 0;
  for (int i = 0; i < d_; ++i) {
    auto x = static_cast<std::int32_t>(a % n_);
    auto y = static_cast<std::int32_t>(b % n_);
    a /= n_;
    b /= n_;
    total += torus() ? RingDist(x, y, n_) : AbsDiff(x, y);
  }
  return total;
}

int Topology::StepToward(int from, int to) const {
  if (from == to) return 0;
  if (!torus()) return to > from ? 1 : -1;
  const int forward = static_cast<int>(Mod(to - from, n_));  // steps going +1
  // Ties (forward == n - forward) resolve to +1.
  return forward <= n_ - forward ? 1 : -1;
}

std::vector<std::int32_t> Topology::BuildCoordTable() const {
  std::vector<std::int32_t> table(static_cast<std::size_t>(size_) * static_cast<std::size_t>(d_));
  Point c{};
  for (ProcId p = 0; p < size_; ++p) {
    for (int i = 0; i < d_; ++i) {
      table[static_cast<std::size_t>(p) * static_cast<std::size_t>(d_) + static_cast<std::size_t>(i)] =
          c[static_cast<std::size_t>(i)];
    }
    // increment mixed-radix counter
    for (int i = 0; i < d_; ++i) {
      auto& v = c[static_cast<std::size_t>(i)];
      if (++v < n_) break;
      v = 0;
    }
  }
  return table;
}

ProcId Topology::Mirror(ProcId p) const {
  Point c = Coords(p);
  for (int i = 0; i < d_; ++i) {
    auto& v = c[static_cast<std::size_t>(i)];
    v = n_ - 1 - v;
  }
  return Id(c);
}

ProcId Topology::Antipode(ProcId p) const {
  Point c = Coords(p);
  for (int i = 0; i < d_; ++i) {
    auto& v = c[static_cast<std::size_t>(i)];
    v = static_cast<std::int32_t>(Mod(v + n_ / 2, n_));
  }
  return Id(c);
}

}  // namespace mdmesh
