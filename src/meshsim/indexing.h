// Indexing schemes (paper, Section 1).
//
// An indexing scheme is a bijection I : [n]^d -> [n^d] that defines what
// "sorted" means: the key of rank i must end at the processor with index i.
// We implement the schemes the paper's lower bound covers (all are
// "compatible" in the Section 4 sense, verified in mdmesh_bounds):
//
//   * row-major            — dimension d-1 varies slowest
//   * snake-like           — boustrophedon: a coordinate's direction reverses
//                            with the parity of the (snaked) digits above it
//   * blocked row-major    — blocks of side b ordered row-major, row-major
//                            inside each block
//   * blocked snake-like   — the scheme all sorting algorithms in the paper
//                            assume: snake order of blocks, snake inside
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "meshsim/topology.h"

namespace mdmesh {

class IndexingScheme {
 public:
  virtual ~IndexingScheme() = default;

  virtual std::int64_t Index(const Point& p) const = 0;
  virtual Point PointAt(std::int64_t index) const = 0;
  virtual std::string Name() const = 0;

  int dim() const { return d_; }
  int side() const { return n_; }
  std::int64_t size() const { return size_; }

  std::int64_t IndexOf(const Topology& topo, ProcId p) const {
    return Index(topo.Coords(p));
  }

  /// table[proc_id] = index; a full bijection check is a unit test.
  std::vector<std::int64_t> IndexTable(const Topology& topo) const;

 protected:
  IndexingScheme(int d, int n);
  int d_;
  int n_;
  std::int64_t size_;
};

class RowMajorIndexing final : public IndexingScheme {
 public:
  RowMajorIndexing(int d, int n) : IndexingScheme(d, n) {}
  std::int64_t Index(const Point& p) const override;
  Point PointAt(std::int64_t index) const override;
  std::string Name() const override { return "row-major"; }
};

class SnakeIndexing final : public IndexingScheme {
 public:
  SnakeIndexing(int d, int n) : IndexingScheme(d, n) {}
  std::int64_t Index(const Point& p) const override;
  Point PointAt(std::int64_t index) const override;
  std::string Name() const override { return "snake"; }
};

/// Shared blocked layout: block side b must divide n. Index is
/// outer(block coords over side n/b) * b^d + inner(offset coords over side b).
class BlockedIndexing final : public IndexingScheme {
 public:
  enum class Order : std::uint8_t { kRowMajor, kSnake };

  /// `b` is the block side length; n % b == 0.
  BlockedIndexing(int d, int n, int b, Order order);

  std::int64_t Index(const Point& p) const override;
  Point PointAt(std::int64_t index) const override;
  std::string Name() const override;

  int block_side() const { return b_; }

 private:
  int b_;
  Order order_;
  std::unique_ptr<IndexingScheme> outer_;  // over block coordinates, side n/b
  std::unique_ptr<IndexingScheme> inner_;  // over offsets, side b
  std::int64_t block_volume_;
};

/// Morton (Z-order) indexing: interleaves the bits of the coordinates.
/// Requires n to be a power of two. NOT used by any algorithm in the paper —
/// it serves as the contrast case for the Section 4 compatibility checker:
/// its hyperplanes are smeared across the whole index range, so the minimal
/// joker-zone window is near n^d (bounds/compatibility.h).
class MortonIndexing final : public IndexingScheme {
 public:
  MortonIndexing(int d, int n);
  std::int64_t Index(const Point& p) const override;
  Point PointAt(std::int64_t index) const override;
  std::string Name() const override { return "morton"; }

 private:
  int bits_;
};

/// Hilbert curve indexing (2D only; n a power of two). Like the snake it is
/// a Hamiltonian path (consecutive indices are mesh neighbors) but with
/// better locality: every aligned subsquare is one contiguous index range.
/// Not used by the paper; included as the classic locality-preserving
/// contrast for the compatibility checker and the scheme-remapping API.
class HilbertIndexing final : public IndexingScheme {
 public:
  HilbertIndexing(int d, int n);
  std::int64_t Index(const Point& p) const override;
  Point PointAt(std::int64_t index) const override;
  std::string Name() const override { return "hilbert"; }
};

/// Factory by name: "row-major" | "snake" | "blocked-row-major" |
/// "blocked-snake" (blocked forms require b > 0) | "morton" | "hilbert".
std::unique_ptr<IndexingScheme> MakeIndexing(const std::string& name, int d,
                                             int n, int b = 0);

}  // namespace mdmesh
