#include "meshsim/blocks.h"


#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mdmesh {

BlockGrid::BlockGrid(const Topology& topo, int g)
    : topo_(&topo),
      g_(g),
      b_(topo.side() / g),
      m_(IPow(g, topo.dim())),
      vol_(IPow(topo.side() / g, topo.dim())),
      block_snake_(topo.dim(), g),
      indexing_(topo.dim(), topo.side(), topo.side() / g,
                BlockedIndexing::Order::kSnake) {
  if (g <= 0 || topo.side() % g != 0) {
    throw std::invalid_argument("BlockGrid: g must divide n");
  }
  const auto N = static_cast<std::size_t>(topo.size());
  proc_block_.resize(N);
  proc_offset_.resize(N);
  proc_at_.resize(N);
  for (ProcId p = 0; p < topo.size(); ++p) {
    // Blocked snake index = block_snake(block) * vol + inner_snake(offset);
    // reuse the blocked indexing and split it.
    std::int64_t idx = indexing_.Index(topo.Coords(p));
    BlockId block = idx / vol_;
    std::int64_t offset = idx % vol_;
    proc_block_[static_cast<std::size_t>(p)] = block;
    proc_offset_[static_cast<std::size_t>(p)] = offset;
    proc_at_[static_cast<std::size_t>(block * vol_ + offset)] = p;
  }
}

Point BlockGrid::BlockCoords(BlockId block) const {
  assert(block >= 0 && block < m_);
  return block_snake_.PointAt(block);
}

BlockId BlockGrid::BlockAtCoords(const Point& bc) const {
  return block_snake_.Index(bc);
}

std::array<double, kMaxDim> BlockGrid::BlockCenter(BlockId block) const {
  Point bc = BlockCoords(block);
  std::array<double, kMaxDim> center{};
  for (int i = 0; i < topo_->dim(); ++i) {
    center[static_cast<std::size_t>(i)] =
        static_cast<double>(bc[static_cast<std::size_t>(i)]) * b_ +
        (b_ - 1) / 2.0;
  }
  return center;
}

double BlockGrid::CenterDist(BlockId a, BlockId b) const {
  auto ca = BlockCenter(a);
  auto cb = BlockCenter(b);
  const int n = topo_->side();
  double total = 0.0;
  for (int i = 0; i < topo_->dim(); ++i) {
    double diff = std::abs(ca[static_cast<std::size_t>(i)] - cb[static_cast<std::size_t>(i)]);
    if (topo_->torus()) diff = std::min(diff, n - diff);
    total += diff;
  }
  return total;
}

std::int64_t BlockGrid::MaxProcDist(BlockId a, BlockId b) const {
  Point ca = BlockCoords(a);
  Point cb = BlockCoords(b);
  const int n = topo_->side();
  std::int64_t total = 0;
  for (int i = 0; i < topo_->dim(); ++i) {
    // Coordinate intervals covered by each block in this dimension.
    std::int64_t a1 = static_cast<std::int64_t>(ca[static_cast<std::size_t>(i)]) * b_;
    std::int64_t a2 = a1 + b_ - 1;
    std::int64_t b1 = static_cast<std::int64_t>(cb[static_cast<std::size_t>(i)]) * b_;
    std::int64_t b2 = b1 + b_ - 1;
    // |x - y| over the two intervals ranges over [tlo, thi] (every integer in
    // between is achievable).
    std::int64_t tlo = std::max<std::int64_t>({b1 - a2, a1 - b2, 0});
    std::int64_t thi = std::max(AbsDiff(a1, b2), AbsDiff(a2, b1));
    std::int64_t best;
    if (!topo_->torus()) {
      best = thi;
    } else {
      // Ring distance min(t, n-t) peaks at t = floor(n/2).
      std::int64_t peak = n / 2;
      if (tlo <= peak && peak <= thi) {
        best = std::min(peak, static_cast<std::int64_t>(n) - peak);
      } else {
        best = std::max(std::min(tlo, n - tlo), std::min(thi, n - thi));
      }
    }
    total += best;
  }
  return total;
}

BlockId BlockGrid::MirrorBlock(BlockId block) const {
  Point bc = BlockCoords(block);
  for (int i = 0; i < topo_->dim(); ++i) {
    auto& v = bc[static_cast<std::size_t>(i)];
    v = g_ - 1 - v;
  }
  return block_snake_.Index(bc);
}

BlockId BlockGrid::AntipodeBlock(BlockId block) const {
  Point bc = BlockCoords(block);
  for (int i = 0; i < topo_->dim(); ++i) {
    auto& v = bc[static_cast<std::size_t>(i)];
    v = static_cast<std::int32_t>(Mod(v + g_ / 2, g_));
  }
  return block_snake_.Index(bc);
}

std::vector<std::pair<BlockId, BlockId>> BlockGrid::SnakeNeighborPairs(
    int parity) const {
  assert(parity == 0 || parity == 1);
  std::vector<std::pair<BlockId, BlockId>> pairs;
  for (BlockId s = parity; s + 1 < m_; s += 2) {
    pairs.emplace_back(s, s + 1);
  }
  return pairs;
}

}  // namespace mdmesh
