// Center-region geometry (paper, Sections 3.1 and 4).
//
// The sorting algorithms concentrate packets into the set C of processors
// within L1 distance D/4 of the network center; the lower bounds reason
// about diamonds C_{d,gamma} of radius (1-gamma)D/4. Distances to the center
// point ((n-1)/2, ..., (n-1)/2) can be half-integral, so all center
// distances here are measured in HALF UNITS (i.e. 2x the L1 distance) to
// stay in exact integer arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/blocks.h"
#include "meshsim/topology.h"

namespace mdmesh {

/// 2 * L1-distance from p to the center point of the mesh. Always integral.
std::int64_t HalfDistToCenter(const Topology& topo, ProcId p);

/// Number of processors within half-distance <= 2r of the center, i.e.
/// |C(r)| for real radius r given as half-units (see bounds/diamond.h for
/// the large-d counting DP; this is the direct enumeration).
std::int64_t CountWithinHalfDist(const Topology& topo, std::int64_t half_radius);

/// The center region used by the sorting algorithms: a fixed numbering of
/// `count` blocks chosen closest to the network center (ties by block snake
/// index — this realizes the paper's "arbitrary fixed numbering of the
/// blocks located in C").
class CenterRegion {
 public:
  /// Chooses `count` blocks of `grid` by increasing center distance.
  /// Requires 1 <= count <= grid.num_blocks().
  ///
  /// With `mirror_closed` (CopySort, Lemma 3.3), the region is closed under
  /// reflection through the network center: blocks are chosen as mirror
  /// PAIRS ordered by center distance, so count must be even. (Mirroring
  /// preserves center distance, so this only changes tie-breaking at the
  /// region boundary.)
  CenterRegion(const BlockGrid& grid, std::int64_t count,
               bool mirror_closed = false);

  std::int64_t count() const { return static_cast<std::int64_t>(blocks_.size()); }

  /// C-number -> block snake index.
  BlockId BlockAt(std::int64_t c_number) const {
    return blocks_[static_cast<std::size_t>(c_number)];
  }

  /// block snake index -> C-number, or -1 if the block is not in C.
  std::int64_t NumberOf(BlockId block) const {
    return number_of_[static_cast<std::size_t>(block)];
  }

  bool Contains(BlockId block) const { return NumberOf(block) >= 0; }

  /// Max center distance (block centers, L1, full units) among chosen blocks.
  double radius() const { return radius_; }

  /// Max over chosen blocks of the farthest processor-to-processor distance
  /// from that block to any other block of the grid. The paper's Section 3.1
  /// claim is that this is <= 3D/4 (+O(b)) when count = m/2 on a mesh.
  std::int64_t MaxDistToAnywhere() const;

  const std::vector<BlockId>& blocks() const { return blocks_; }

 private:
  const BlockGrid* grid_;
  std::vector<BlockId> blocks_;
  std::vector<std::int64_t> number_of_;
  double radius_ = 0.0;
};

}  // namespace mdmesh
