#include "meshsim/indexing.h"

#include <cassert>
#include <stdexcept>

namespace mdmesh {

IndexingScheme::IndexingScheme(int d, int n) : d_(d), n_(n) {
  assert(d >= 1 && d <= kMaxDim && n >= 1);
  size_ = IPow(n, d);
}

std::vector<std::int64_t> IndexingScheme::IndexTable(const Topology& topo) const {
  assert(topo.dim() == d_ && topo.side() == n_);
  std::vector<std::int64_t> table(static_cast<std::size_t>(size_));
  for (ProcId p = 0; p < size_; ++p) {
    table[static_cast<std::size_t>(p)] = Index(topo.Coords(p));
  }
  return table;
}

std::int64_t RowMajorIndexing::Index(const Point& p) const {
  std::int64_t idx = 0;
  for (int i = d_ - 1; i >= 0; --i) {
    auto v = p[static_cast<std::size_t>(i)];
    assert(v >= 0 && v < n_);
    idx = idx * n_ + v;
  }
  return idx;
}

Point RowMajorIndexing::PointAt(std::int64_t index) const {
  assert(index >= 0 && index < size_);
  Point p{};
  for (int i = 0; i < d_; ++i) {
    p[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(index % n_);
    index /= n_;
  }
  return p;
}

std::int64_t SnakeIndexing::Index(const Point& p) const {
  // Boustrophedon product order: dimension i's digit is reflected when the
  // parity of the RAW coordinates of all higher dimensions is odd (the
  // d-dimensional generalization of "odd rows run right-to-left"). Using the
  // raw parity — not the reflected digit's — is what makes consecutive
  // indices mesh neighbors across carries.
  std::int64_t idx = 0;
  bool flip = false;
  for (int i = d_ - 1; i >= 0; --i) {
    auto raw = p[static_cast<std::size_t>(i)];
    assert(raw >= 0 && raw < n_);
    std::int32_t v = flip ? n_ - 1 - raw : raw;
    idx = idx * n_ + v;
    flip ^= (raw & 1) != 0;
  }
  return idx;
}

Point SnakeIndexing::PointAt(std::int64_t index) const {
  assert(index >= 0 && index < size_);
  Point p{};
  bool flip = false;
  std::int64_t divisor = size_;
  for (int i = d_ - 1; i >= 0; --i) {
    divisor /= n_;
    auto v = static_cast<std::int32_t>(index / divisor);
    index %= divisor;
    const std::int32_t raw = flip ? n_ - 1 - v : v;
    p[static_cast<std::size_t>(i)] = raw;
    flip ^= (raw & 1) != 0;
  }
  return p;
}

BlockedIndexing::BlockedIndexing(int d, int n, int b, Order order)
    : IndexingScheme(d, n), b_(b), order_(order) {
  if (b <= 0 || n % b != 0) {
    throw std::invalid_argument("BlockedIndexing: block side must divide n");
  }
  const int g = n / b;
  if (order == Order::kSnake) {
    outer_ = std::make_unique<SnakeIndexing>(d, g);
    inner_ = std::make_unique<SnakeIndexing>(d, b);
  } else {
    outer_ = std::make_unique<RowMajorIndexing>(d, g);
    inner_ = std::make_unique<RowMajorIndexing>(d, b);
  }
  block_volume_ = IPow(b, d);
}

std::int64_t BlockedIndexing::Index(const Point& p) const {
  Point block{};
  Point offset{};
  for (int i = 0; i < d_; ++i) {
    auto v = p[static_cast<std::size_t>(i)];
    assert(v >= 0 && v < n_);
    block[static_cast<std::size_t>(i)] = v / b_;
    offset[static_cast<std::size_t>(i)] = v % b_;
  }
  return outer_->Index(block) * block_volume_ + inner_->Index(offset);
}

Point BlockedIndexing::PointAt(std::int64_t index) const {
  assert(index >= 0 && index < size_);
  Point block = outer_->PointAt(index / block_volume_);
  Point offset = inner_->PointAt(index % block_volume_);
  Point p{};
  for (int i = 0; i < d_; ++i) {
    p[static_cast<std::size_t>(i)] =
        block[static_cast<std::size_t>(i)] * b_ + offset[static_cast<std::size_t>(i)];
  }
  return p;
}

std::string BlockedIndexing::Name() const {
  return order_ == Order::kSnake ? "blocked-snake(b=" + std::to_string(b_) + ")"
                                 : "blocked-row-major(b=" + std::to_string(b_) + ")";
}

MortonIndexing::MortonIndexing(int d, int n) : IndexingScheme(d, n) {
  if (n < 2 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("MortonIndexing: n must be a power of two");
  }
  bits_ = 0;
  while ((1 << bits_) < n) ++bits_;
}

std::int64_t MortonIndexing::Index(const Point& p) const {
  std::int64_t idx = 0;
  // Bit t of coordinate i lands at position t*d + i.
  for (int t = 0; t < bits_; ++t) {
    for (int i = 0; i < d_; ++i) {
      const auto v = p[static_cast<std::size_t>(i)];
      assert(v >= 0 && v < n_);
      idx |= static_cast<std::int64_t>((v >> t) & 1) << (t * d_ + i);
    }
  }
  return idx;
}

Point MortonIndexing::PointAt(std::int64_t index) const {
  assert(index >= 0 && index < size_);
  Point p{};
  for (int t = 0; t < bits_; ++t) {
    for (int i = 0; i < d_; ++i) {
      p[static_cast<std::size_t>(i)] |=
          static_cast<std::int32_t>((index >> (t * d_ + i)) & 1) << t;
    }
  }
  return p;
}

HilbertIndexing::HilbertIndexing(int d, int n) : IndexingScheme(d, n) {
  if (d != 2) throw std::invalid_argument("HilbertIndexing: 2D only");
  if (n < 2 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("HilbertIndexing: n must be a power of two");
  }
}

std::int64_t HilbertIndexing::Index(const Point& p) const {
  // Classic xy -> d conversion with quadrant rotation at each level.
  std::int64_t x = p[0];
  std::int64_t y = p[1];
  assert(x >= 0 && x < n_ && y >= 0 && y < n_);
  std::int64_t idx = 0;
  for (std::int64_t s = n_ / 2; s > 0; s /= 2) {
    const std::int64_t rx = (x & s) > 0 ? 1 : 0;
    const std::int64_t ry = (y & s) > 0 ? 1 : 0;
    idx += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant so the curve's entry/exit line up.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return idx;
}

Point HilbertIndexing::PointAt(std::int64_t index) const {
  assert(index >= 0 && index < size_);
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t t = index;
  for (std::int64_t s = 1; s < n_; s *= 2) {
    const std::int64_t rx = 1 & (t / 2);
    const std::int64_t ry = 1 & (t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  Point p{};
  p[0] = static_cast<std::int32_t>(x);
  p[1] = static_cast<std::int32_t>(y);
  return p;
}

std::unique_ptr<IndexingScheme> MakeIndexing(const std::string& name, int d,
                                             int n, int b) {
  if (name == "row-major") return std::make_unique<RowMajorIndexing>(d, n);
  if (name == "snake") return std::make_unique<SnakeIndexing>(d, n);
  if (name == "morton") return std::make_unique<MortonIndexing>(d, n);
  if (name == "hilbert") return std::make_unique<HilbertIndexing>(d, n);
  if (name == "blocked-row-major") {
    return std::make_unique<BlockedIndexing>(d, n, b, BlockedIndexing::Order::kRowMajor);
  }
  if (name == "blocked-snake") {
    return std::make_unique<BlockedIndexing>(d, n, b, BlockedIndexing::Order::kSnake);
  }
  throw std::invalid_argument("unknown indexing scheme: " + name);
}

}  // namespace mdmesh
