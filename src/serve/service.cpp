#include "serve/service.h"

#include <cstdlib>
#include <sstream>

namespace mdmesh {
namespace {

SchedulerOptions WithMetrics(SchedulerOptions opts, MetricsRegistry* fallback) {
  if (opts.metrics == nullptr) opts.metrics = fallback;
  return opts;
}

HttpResponse JsonResponse(int status, const std::string& body) {
  return {status, "application/json", body};
}

HttpResponse JsonError(int status, const std::string& message) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("error").String(message);
  w.EndObject();
  os << '\n';
  return JsonResponse(status, os.str());
}

}  // namespace

ExperimentService::ExperimentService(const ServiceOptions& opts)
    : opts_(opts), scheduler_(WithMetrics(opts.scheduler, &metrics_)) {}

bool ExperimentService::Start(std::string* error) {
  if (!scheduler_.Start(error)) return false;
  if (!http_.Start(opts_.port, [this](const HttpRequest& req) {
        metrics_.counter("serve.http_requests").Increment();
        return Handle(req);
      },
                   error)) {
    scheduler_.Drain();
    return false;
  }
  return true;
}

void ExperimentService::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Drain first, listener second: /runs and /metrics stay live while
  // in-flight runs checkpoint, so a drain is observable from outside.
  scheduler_.Drain();
  http_.Stop();
}

HttpResponse ExperimentService::Handle(const HttpRequest& req) {
  if (req.path == "/runs") {
    if (req.method == "POST") return HandleSubmit(req);
    if (req.method == "GET") return HandleList();
    return JsonError(405, "use GET or POST on /runs");
  }
  if (req.path.rfind("/runs/", 0) == 0) {
    if (req.method != "GET") return JsonError(405, "use GET on /runs/<id>");
    char* end = nullptr;
    const long long id = std::strtoll(req.path.c_str() + 6, &end, 10);
    if (end == req.path.c_str() + 6 || *end != '\0') {
      return JsonError(400, "run id must be an integer");
    }
    return HandleGet(id);
  }
  if (req.path == "/metrics" && req.method == "GET") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            metrics_.ToPrometheus()};
  }
  if (req.path == "/status" && req.method == "GET") return HandleStatus();
  if (req.path == "/healthz" && req.method == "GET") {
    return {200, "text/plain", "ok\n"};
  }
  return JsonError(404, "no such route: " + req.path);
}

HttpResponse ExperimentService::HandleSubmit(const HttpRequest& req) {
  RunSpec spec;
  std::string error;
  if (!RunSpec::FromJsonText(req.body, &spec, &error)) {
    return JsonError(400, error);
  }
  const RunScheduler::SubmitOutcome outcome = scheduler_.Submit(spec);
  if (!outcome.accepted) {
    // Queue-full is the 429 shed path; a draining service is 503 so
    // clients know to retry against the restarted instance.
    const int status = scheduler_.draining() ? 503 : 429;
    return JsonError(status, outcome.error);
  }
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("id").Int(outcome.id);
  w.Key("deduped").Bool(outcome.deduped);
  w.Key("location").String("/runs/" + std::to_string(outcome.id));
  w.EndObject();
  os << '\n';
  return JsonResponse(202, os.str());
}

HttpResponse ExperimentService::HandleList() const {
  const std::vector<RunRecord> runs = scheduler_.Snapshot();
  const RunScheduler::Counts counts = scheduler_.CountByState();
  std::ostringstream os;
  JsonWriter w(os, 1);
  w.BeginObject();
  w.Key("counts").BeginObject();
  w.Key("queued").Int(counts.queued);
  w.Key("running").Int(counts.running);
  w.Key("interrupted").Int(counts.interrupted);
  w.Key("done").Int(counts.done);
  w.Key("failed").Int(counts.failed);
  w.EndObject();
  w.Key("runs").BeginArray();
  for (const RunRecord& rec : runs) WriteRunRecordJson(rec, w);
  w.EndArray();
  w.EndObject();
  os << '\n';
  return JsonResponse(200, os.str());
}

HttpResponse ExperimentService::HandleGet(std::int64_t id) const {
  RunRecord rec;
  if (!scheduler_.Get(id, &rec)) {
    return JsonError(404, "no run " + std::to_string(id));
  }
  std::ostringstream os;
  JsonWriter w(os, 1);
  WriteRunRecordJson(rec, w);
  os << '\n';
  return JsonResponse(200, os.str());
}

HttpResponse ExperimentService::HandleStatus() const {
  const RunScheduler::Counts counts = scheduler_.CountByState();
  std::ostringstream os;
  JsonWriter w(os, 1);
  w.BeginObject();
  w.Key("service").String("mdmesh-experiment-server");
  w.Key("draining").Bool(scheduler_.draining());
  w.Key("resumed_runs").Int(scheduler_.resumed_runs());
  w.Key("http_requests").Int(http_.requests_served());
  w.Key("accept_backoffs").Int(http_.accept_backoffs());
  w.Key("counts").BeginObject();
  w.Key("queued").Int(counts.queued);
  w.Key("running").Int(counts.running);
  w.Key("interrupted").Int(counts.interrupted);
  w.Key("done").Int(counts.done);
  w.Key("failed").Int(counts.failed);
  w.EndObject();
  w.EndObject();
  os << '\n';
  return JsonResponse(200, os.str());
}

}  // namespace mdmesh
