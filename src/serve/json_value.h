// Minimal JSON document model + recursive-descent parser for the experiment
// service's request bodies and persisted queue files.
//
// The repo has always been able to *write* JSON (obs/json.h streams it); the
// service is the first component that must *read* it — run requests arrive
// as JSON over HTTP, and the drained queue is re-read on restart. This
// parser is deliberately small and strict: RFC 8259 values only (no
// comments, no trailing commas, no NaN/Infinity), a hard nesting-depth cap
// so hostile input cannot exhaust the stack, and structured errors carrying
// the byte offset so a rejected request names its first bad byte.
//
// Numbers are held in both int64 and double form: JSON does not distinguish
// them, but the service's specs mix genuine integers (side lengths, step
// counts, seeds — seeds exercise the full uint64 range and round-trip
// losslessly through the int64 slot) with genuine doubles (rates,
// thresholds). AsInt()/AsDouble() convert between them, so "0.5" and "1"
// both work wherever a number is expected.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdmesh {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< number that parsed as a (u)int64 with no fraction/exponent
    kDouble,  ///< any other number
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; calling the wrong one returns a zero value rather
  /// than crashing (spec readers validate types explicitly first).
  bool AsBool() const { return type_ == Type::kBool && int_ != 0; }
  std::int64_t AsInt() const;
  std::uint64_t AsUInt() const;
  double AsDouble() const;
  const std::string& AsString() const { return str_; }

  const std::vector<JsonValue>& Items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  /// Array element; out-of-range returns a shared null value.
  const JsonValue& At(std::size_t i) const;

  /// Object member lookup; a missing key returns a shared null value, so
  /// readers chain lookups without null checks: v["a"]["b"].AsInt().
  const JsonValue& operator[](const std::string& key) const;
  bool Has(const std::string& key) const { return members_.count(key) != 0; }
  const std::map<std::string, JsonValue>& Members() const { return members_; }

  // Builders (used by tests and by the queue writer's round-trip checks).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeInt(std::int64_t v);
  static JsonValue MakeDouble(double v);
  static JsonValue MakeString(std::string v);

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  bool int_is_unsigned_ = false;  ///< int_ holds a reinterpreted uint64
  std::string str_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parse outcome: `ok` plus either the document or an error with the byte
/// offset of the first offending character.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
  std::size_t offset = 0;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed;
/// trailing garbage is an error). `max_depth` caps container nesting.
JsonParseResult ParseJson(const std::string& text, int max_depth = 64);

}  // namespace mdmesh
