// ExperimentService: the always-on control plane. Owns the scheduler, the
// service-level MetricsRegistry, and the HTTP server, and maps the routes:
//
//   POST /runs       submit a RunSpec (JSON body) → 202 {id, state, deduped,
//                    location} | 400 invalid | 429 queue full | 503 draining
//   GET  /runs       all run records + state counts
//   GET  /runs/<id>  one record: status, spec, result JSON, artifact paths
//   GET  /metrics    Prometheus text (serve.* plus anything else registered)
//   GET  /status     service snapshot JSON (counts, ports, drain flag)
//   GET  /healthz    liveness probe ("ok")
//
// Stop() drains before closing the listener, so clients can watch a drain
// finish; the binary wires SIGTERM to Stop() for the graceful-shutdown path
// (examples/experiment_server.cpp).
#pragma once

#include <string>

#include "obs/registry.h"
#include "serve/http.h"
#include "serve/scheduler.h"

namespace mdmesh {

struct ServiceOptions {
  /// HTTP port on 127.0.0.1 (0 = ephemeral, readable via port()).
  int port = 0;
  SchedulerOptions scheduler;
};

class ExperimentService {
 public:
  explicit ExperimentService(const ServiceOptions& opts);
  ~ExperimentService() { Stop(); }

  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  /// Starts scheduler (restoring any persisted queue) then HTTP listener.
  bool Start(std::string* error);

  /// Graceful shutdown: scheduler drain (checkpoints in-flight runs,
  /// persists the queue) while the HTTP surface stays up, then listener
  /// teardown. Idempotent.
  void Stop();

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  MetricsRegistry& metrics() { return metrics_; }
  RunScheduler& scheduler() { return scheduler_; }

 private:
  HttpResponse Handle(const HttpRequest& req);
  HttpResponse HandleSubmit(const HttpRequest& req);
  HttpResponse HandleList() const;
  HttpResponse HandleGet(std::int64_t id) const;
  HttpResponse HandleStatus() const;

  ServiceOptions opts_;
  MetricsRegistry metrics_;
  RunScheduler scheduler_;
  HttpServer http_;
  bool stopped_ = false;
};

}  // namespace mdmesh
