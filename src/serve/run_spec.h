// RunSpec: one validated experiment request — the unit of work the
// experiment service queues, dedupes, executes, and persists.
//
// A spec names everything that determines an open-loop run's results:
// topology shape, traffic pattern (+ its seed and hot-spot shape), the
// driver's injection windows, and the routing-relevant EngineOptions knobs.
// Deliberately excluded: thread counts, storage layout aside, observability
// sinks, checkpoint cadence — none of those change a delivery trace (the
// engine's byte-identity contracts), so two requests differing only there
// are the *same experiment* and dedupe to one execution.
//
// Fingerprint() is the dedup key: FNV-1a over the instance fields chained
// with HashEngineOptions over the spec's engine configuration. Any field
// that can change results must move the fingerprint — the field-sensitivity
// tests pin that for both layers of the hash.
#pragma once

#include <cstdint>
#include <string>

#include "net/engine.h"
#include "obs/json.h"
#include "serve/json_value.h"
#include "workload/driver.h"
#include "workload/patterns.h"

namespace mdmesh {

struct RunSpec {
  /// Optional human label, echoed into listings and artifacts.
  std::string name;
  /// Scheduling priority: higher runs first; FIFO within a priority.
  int priority = 0;

  // Topology.
  int d = 2;
  int n = 8;
  bool torus = false;

  // Traffic.
  PatternKind pattern = PatternKind::kUniform;
  std::uint64_t pattern_seed = 1;
  PatternOptions pattern_opts;

  // Open-loop driver windows (workload/driver.h).
  DriverOptions driver;

  // Routing-relevant engine knobs (the HashEngineOptions half of the
  // fingerprint). Kept as the enum/scalar fields rather than a whole
  // EngineOptions so the spec stays a plain serializable value.
  std::int64_t step_cap = 0;
  std::int64_t stall_window = 0;
  SparseMode sparse = SparseMode::kAuto;
  LayoutMode layout = LayoutMode::kAuto;
  double sparse_threshold = 0.5;

  /// Largest topology a request may name (n^d processors); requests above
  /// it are rejected at validation so one hostile POST cannot OOM the
  /// server. 2^24 matches the bench baseline's largest routine fixture.
  static constexpr std::int64_t kMaxProcs = std::int64_t{1} << 24;

  /// Shape check; fills `error` and returns false on the first violation.
  bool Validate(std::string* error) const;

  /// EngineOptions carrying exactly this spec's routing-relevant knobs.
  /// The caller owns pool/injector/observability wiring.
  EngineOptions MakeEngineOptions() const;

  /// Dedup key over everything that determines the delivery trace.
  std::uint64_t Fingerprint() const;

  /// Serialization (the same shape FromJson reads).
  void WriteJson(JsonWriter& w) const;
  std::string ToJson() const;

  /// Parses the POST /runs request shape:
  ///   {"name"?, "priority"?, "topology": {"d","n","torus"?},
  ///    "pattern": {"kind", "seed"?, "hot_count"?, "hot_skew"?},
  ///    "driver": {"rate","warmup","measure","drain"?,"seed"?},
  ///    "engine"?: {"sparse"?,"layout"?,"sparse_threshold"?,"step_cap"?,
  ///                "stall_window"?}}
  /// Unknown keys inside these objects are rejected (a typoed knob must not
  /// silently fall back to a default and then dedupe against the wrong
  /// run). Returns false with `error` set on any shape/validation problem.
  static bool FromJson(const JsonValue& v, RunSpec* out, std::string* error);

  /// Convenience: ParseJson + FromJson + Validate in one call.
  static bool FromJsonText(const std::string& text, RunSpec* out,
                           std::string* error);
};

/// Parse helpers shared with the CLI surfaces ("auto"/"always"/"never",
/// "auto"/"legacy"/"tiled"). Return false on an unknown name.
bool ParseSparseMode(const std::string& name, SparseMode* out);
bool ParseLayoutMode(const std::string& name, LayoutMode* out);

}  // namespace mdmesh
