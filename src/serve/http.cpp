#include "serve/http.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "util/net.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mdmesh {
namespace {

// Per-connection read deadline. Requests are loopback JSON blobs; anything
// that takes longer than this to arrive is a stuck client, and the server
// must not let it stall every other request behind the single-thread loop.
constexpr int kReadTimeoutMs = 2000;

std::string FormatResponse(const HttpResponse& resp) {
  std::ostringstream os;
  os << "HTTP/1.1 " << resp.status << ' ' << HttpStatusText(resp.status)
     << "\r\nContent-Type: " << resp.content_type
     << "\r\nContent-Length: " << resp.body.size()
     << "\r\nConnection: close\r\n\r\n"
     << resp.body;
  return os.str();
}

// Parses "METHOD /path?query HTTP/1.1" and the Content-Length header out of
// a raw header block. Returns false on a malformed request line.
bool ParseHead(const std::string& head, HttpRequest* req,
               std::size_t* content_length) {
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q != std::string::npos) {
    req->query = target.substr(q + 1);
    target.resize(q);
  }
  req->path = std::move(target);

  *content_length = 0;
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string h = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = h.find(':');
    if (colon == std::string::npos) continue;
    std::string key = h.substr(0, colon);
    for (char& c : key) {
      c = static_cast<char>(
          c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    }
    if (key == "content-length") {
      std::size_t v = colon + 1;
      while (v < h.size() && h[v] == ' ') ++v;
      *content_length = static_cast<std::size_t>(
          std::strtoull(h.c_str() + v, nullptr, 10));
    }
  }
  return true;
}

}  // namespace

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool HttpServer::Start(int port, Handler handler, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  std::string bind_error;
  listen_fd_ = ListenLoopback(port, kListenBacklog, &port_, &bind_error);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = bind_error;
    port_ = -1;
    return false;
  }
  handler_ = std::move(handler);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

void HttpServer::Run() {
#if !defined(_WIN32)
  // Escalating backoff under fd exhaustion: start small so a transient
  // spike recovers fast, cap at 1 s so the listener keeps draining.
  int backoff_ms = 10;
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 50);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int client = -1;
    std::string diag;
    switch (AcceptClient(listen_fd_, &client, &diag)) {
      case AcceptStatus::kAccepted:
        backoff_ms = 10;
        ServeOne(client);
        CloseFd(client);
        break;
      case AcceptStatus::kRetry:
        break;
      case AcceptStatus::kExhausted:
        accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "http server: %s\n", diag.c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        if (backoff_ms < 1000) backoff_ms *= 2;
        break;
      case AcceptStatus::kFatal:
        std::fprintf(stderr, "http server: %s; stopping listener\n",
                     diag.c_str());
        return;
    }
  }
#endif
}

void HttpServer::ServeOne(int client_fd) {
  // Frame the request: headers up to the blank line, then Content-Length
  // bytes of body.
  std::string data;
  std::size_t head_end = std::string::npos;
  std::size_t content_length = 0;
  HttpRequest req;
  char buf[4096];
  bool parsed = false;
  for (;;) {
    if (head_end == std::string::npos) {
      head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        if (!ParseHead(data.substr(0, head_end), &req, &content_length)) {
          SendAll(client_fd,
                  FormatResponse({400, "text/plain", "malformed request\n"}));
          return;
        }
        parsed = true;
      }
    }
    if (parsed) {
      const std::size_t have = data.size() - (head_end + 4);
      if (content_length > kMaxRequestBytes) {
        SendAll(client_fd,
                FormatResponse({413, "text/plain", "request too large\n"}));
        return;
      }
      if (have >= content_length) break;
    }
    if (data.size() > kMaxRequestBytes) {
      SendAll(client_fd,
              FormatResponse({413, "text/plain", "request too large\n"}));
      return;
    }
    const int n = RecvSome(client_fd, buf, sizeof(buf), kReadTimeoutMs);
    if (n <= 0) {
      if (parsed) break;  // peer closed after headers with a short body
      return;             // nothing parseable arrived
    }
    data.append(buf, static_cast<std::size_t>(n));
  }
  req.body = data.substr(head_end + 4, content_length);

  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    resp = {500, "text/plain", std::string("internal error: ") + e.what() +
                                   "\n"};
  }
  SendAll(client_fd, FormatResponse(resp));
  requests_.fetch_add(1, std::memory_order_relaxed);
}

HttpResult HttpFetch(int port, const std::string& method,
                     const std::string& target, const std::string& body,
                     int timeout_ms) {
  HttpResult result;
#if defined(_WIN32)
  result.error = "POSIX sockets unavailable on this platform";
  return result;
#else
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    result.error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno);
    ::close(fd);
    return result;
  }

  std::ostringstream os;
  os << method << ' ' << target << " HTTP/1.1\r\n"
     << "Host: 127.0.0.1:" << port << "\r\n"
     << "Content-Type: application/json\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  if (!SendAll(fd, os.str())) {
    result.error = "send failed";
    ::close(fd);
    return result;
  }

  std::string data;
  char buf[4096];
  for (;;) {
    const int n = RecvSome(fd, buf, sizeof(buf), timeout_ms);
    if (n == 0) break;  // orderly close: response complete
    if (n < 0) {
      result.error = n == -1 ? "response timeout" : "recv failed";
      ::close(fd);
      return result;
    }
    data.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 NNN ..." then headers then body.
  if (data.rfind("HTTP/1.", 0) != 0 || data.size() < 12) {
    result.error = "malformed response";
    return result;
  }
  result.status = std::atoi(data.c_str() + 9);
  const std::size_t head_end = data.find("\r\n\r\n");
  result.body =
      head_end == std::string::npos ? "" : data.substr(head_end + 4);
  result.ok = true;
  return result;
#endif
}

}  // namespace mdmesh
