// Tiny loopback HTTP/1.1 server + client for the experiment service.
//
// The server generalizes obs/MetricsPublisher's poll()-based listener into a
// route-agnostic control plane: one background thread, one connection at a
// time (requests are short — JSON in, JSON out — and the scheduler does the
// real work on its own threads), hardened accept via util/net.h (EINTR
// retry, fd-exhaustion backoff, backlog sized for bursts of submitting
// clients). Handlers run on the server thread and must be thread-safe
// against the rest of the process.
//
// HttpFetch is the matching client used by tests and by workload_demo's
// --server mode: loopback-only, Connection: close framing, so one call is
// one socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mdmesh {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< decoded target without the query string
  std::string query;   ///< raw query string (no leading '?'), may be empty
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Standard reason phrase for the handful of statuses the service emits.
const char* HttpStatusText(int status);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving thread.
  /// Returns false with *error set on bind failure or non-POSIX platforms.
  bool Start(int port, Handler handler, std::string* error = nullptr);

  /// Stops the serving thread and closes the listener. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actually-bound port (for port = 0), or -1 when not running.
  int port() const { return port_; }

  std::int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Accept attempts that hit fd exhaustion and backed off — visible so the
  /// service can export it as a metric.
  std::int64_t accept_backoffs() const {
    return accept_backoffs_.load(std::memory_order_relaxed);
  }

  /// Largest request (headers + body) the server will read; bigger requests
  /// get 413. Specs are a few hundred bytes; 1 MiB leaves headroom for
  /// batch submissions without letting a client balloon server memory.
  static constexpr std::size_t kMaxRequestBytes = 1 << 20;

 private:
  void Run();
  void ServeOne(int client_fd);

  Handler handler_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> accept_backoffs_{0};
  int listen_fd_ = -1;
  int port_ = -1;
};

/// One loopback HTTP exchange (blocking, Connection: close).
struct HttpResult {
  bool ok = false;     ///< transport succeeded and a status line parsed
  int status = 0;      ///< HTTP status when ok
  std::string body;
  std::string error;   ///< transport/parse failure reason when !ok
};

HttpResult HttpFetch(int port, const std::string& method,
                     const std::string& target, const std::string& body = "",
                     int timeout_ms = 5000);

}  // namespace mdmesh
