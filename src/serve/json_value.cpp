#include "serve/json_value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mdmesh {

namespace {
const JsonValue& SharedNull() {
  static const JsonValue null;
  return null;
}
}  // namespace

std::int64_t JsonValue::AsInt() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(dbl_);
  return 0;
}

std::uint64_t JsonValue::AsUInt() const {
  if (type_ == Type::kInt) return static_cast<std::uint64_t>(int_);
  if (type_ == Type::kDouble && dbl_ >= 0.0) {
    return static_cast<std::uint64_t>(dbl_);
  }
  return 0;
}

double JsonValue::AsDouble() const {
  if (type_ == Type::kDouble) return dbl_;
  if (type_ == Type::kInt) {
    return int_is_unsigned_
               ? static_cast<double>(static_cast<std::uint64_t>(int_))
               : static_cast<double>(int_);
  }
  return 0.0;
}

const JsonValue& JsonValue::At(std::size_t i) const {
  return i < items_.size() ? items_[i] : SharedNull();
}

const JsonValue& JsonValue::operator[](const std::string& key) const {
  const auto it = members_.find(key);
  return it != members_.end() ? it->second : SharedNull();
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue j;
  j.type_ = Type::kBool;
  j.int_ = v ? 1 : 0;
  return j;
}

JsonValue JsonValue::MakeInt(std::int64_t v) {
  JsonValue j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::MakeDouble(double v) {
  JsonValue j;
  j.type_ = Type::kDouble;
  j.dbl_ = v;
  return j;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult Run() {
    JsonParseResult out;
    SkipWs();
    if (!ParseValue(&out.value, 0)) {
      out.error = error_;
      out.offset = pos_;
      return out;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      out.error = "trailing characters after the document";
      out.offset = pos_;
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  bool Fail(const char* msg) {
    error_ = msg;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->str_);
      case 't':
        *out = JsonValue::MakeBool(true);
        return Literal("true", 4);
      case 'f':
        *out = JsonValue::MakeBool(false);
        return Literal("false", 5);
      case 'n':
        *out = JsonValue();
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      out->members_[std::move(key)] = std::move(member);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue item;
      if (!ParseValue(&item, depth + 1)) return false;
      out->items_.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool HexDigit(char c, unsigned* out) {
    if (c >= '0' && c <= '9') {
      *out = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *out = static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      *out = static_cast<unsigned>(c - 'A' + 10);
    } else {
      return false;
    }
    return true;
  }

  void AppendUtf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      unsigned digit;
      if (!HexDigit(text_[pos_ + static_cast<std::size_t>(i)], &digit)) {
        return Fail("invalid \\u escape");
      }
      cp = (cp << 4) | digit;
    }
    pos_ += 4;
    *out = cp;
    return true;
  }

  bool ParseString(std::string* out) {
    out->clear();
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp;
          if (!ParseHex4(&cp)) return false;
          // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned lo;
            if (!ParseHex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return Fail("invalid number");
    }
    // Leading-zero rule: 0 may not be followed by another digit.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Fail("leading zero in number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      // Try int64 first, then uint64 (seeds use the full unsigned range);
      // overflow falls through to double.
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::MakeInt(static_cast<std::int64_t>(v));
        return true;
      }
      if (token[0] != '-') {
        errno = 0;
        const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          *out = JsonValue::MakeInt(
              static_cast<std::int64_t>(static_cast<std::uint64_t>(u)));
          out->int_is_unsigned_ = true;
          return true;
        }
      }
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      pos_ = start;
      return Fail("number out of range");
    }
    *out = JsonValue::MakeDouble(d);
    return true;
  }

  const std::string& text_;
  const int max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonParseResult ParseJson(const std::string& text, int max_depth) {
  return JsonParser(text, max_depth).Run();
}

}  // namespace mdmesh
