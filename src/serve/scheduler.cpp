#include "serve/scheduler.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/manager.h"
#include "meshsim/topology.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/journey.h"
#include "obs/probe.h"
#include "serve/json_value.h"
#include "util/atomic_file.h"
#include "util/thread_pool.h"

namespace mdmesh {
namespace {

const char* StallReasonLabel(StallReason reason) {
  switch (reason) {
    case StallReason::kStepCap: return "step_cap";
    case StallReason::kWatchdog: return "watchdog";
    case StallReason::kInterrupt: return "interrupt";
  }
  return "unknown";
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream os;
  os << is.rdbuf();
  *out = os.str();
  return true;
}

}  // namespace

const char* RunStateName(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kInterrupted: return "interrupted";
    case RunState::kDone: return "done";
    case RunState::kFailed: return "failed";
  }
  return "unknown";
}

bool ParseRunState(const std::string& name, RunState* out) {
  for (RunState s :
       {RunState::kQueued, RunState::kRunning, RunState::kInterrupted,
        RunState::kDone, RunState::kFailed}) {
    if (name == RunStateName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void WriteRunRecordJson(const RunRecord& rec, JsonWriter& w) {
  w.BeginObject();
  w.Key("id").Int(rec.id);
  if (!rec.spec.name.empty()) w.Key("name").String(rec.spec.name);
  w.Key("state").String(RunStateName(rec.state));
  w.Key("fingerprint").UInt(rec.fingerprint);
  w.Key("dedup_hits").Int(rec.dedup_hits);
  w.Key("resume_pending").Bool(rec.resume_pending);
  w.Key("resumed").Bool(rec.resumed);
  if (!rec.error.empty()) w.Key("error").String(rec.error);
  if (rec.evicted) w.Key("evicted").Bool(true);
  if (!rec.artifact_dir.empty()) {
    w.Key("artifact_dir").String(rec.artifact_dir);
    w.Key("artifacts").BeginObject();
    w.Key("result").String(rec.artifact_dir + "/result.json");
    w.Key("metrics").String(rec.artifact_dir + "/metrics.prom");
    w.Key("trace").String(rec.artifact_dir + "/trace.json");
    w.Key("journeys").String(rec.artifact_dir + "/journeys.jsonl");
    w.Key("checkpoints").String(rec.artifact_dir + "/ckpt");
    w.EndObject();
  }
  w.Key("delivery_hash").UInt(rec.delivery_hash);
  w.Key("spec");
  rec.spec.WriteJson(w);
  if (rec.has_result) {
    w.Key("result");
    rec.result.WriteJson(w);
  }
  w.EndObject();
}

RunScheduler::RunScheduler(const SchedulerOptions& opts) : opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.queue_limit < 1) opts_.queue_limit = 1;
}

RunScheduler::~RunScheduler() { Drain(); }

bool RunScheduler::Start(std::string* error) {
  if (started_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "scheduler already started";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(opts_.artifacts_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + opts_.artifacts_dir + ": " + ec.message();
    }
    return false;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!RestoreLocked(error)) return false;
    EvictOldArtifactsLocked();
    // Pre-register the scheduler gauges so the very first /metrics scrape
    // sees them at their true values instead of omitting the series.
    if (opts_.metrics != nullptr) {
      opts_.metrics->gauge("serve.queued")
          .Set(static_cast<std::int64_t>(queue_.size()));
      opts_.metrics->gauge("serve.running").Set(0);
      opts_.metrics->gauge("serve.dedup_hits").Set(dedup_hits_total_);
    }
  }
  started_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return true;
}

RunScheduler::SubmitOutcome RunScheduler::Submit(const RunSpec& spec) {
  SubmitOutcome out;
  const std::uint64_t fp = spec.Fingerprint();
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire)) {
    out.error = "service is draining";
    return out;
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("serve.submitted").Increment();
  }
  const auto dup = dedup_.find(fp);
  if (dup != dedup_.end()) {
    RunRecord& primary = records_[dup->second];
    ++primary.dedup_hits;
    ++dedup_hits_total_;
    out.accepted = true;
    out.deduped = true;
    out.id = primary.id;
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("serve.deduped").Increment();
      opts_.metrics->gauge("serve.dedup_hits").Set(dedup_hits_total_);
    }
    PersistLocked();
    return out;
  }
  if (queue_.size() >= opts_.queue_limit) {
    out.error = "queue full (" + std::to_string(opts_.queue_limit) +
                " pending runs)";
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("serve.rejected").Increment();
    }
    return out;
  }
  const std::int64_t id = next_id_++;
  RunRecord rec;
  rec.id = id;
  rec.spec = spec;
  rec.fingerprint = fp;
  rec.artifact_dir = opts_.artifacts_dir + "/run-" + std::to_string(id);
  records_[id] = std::move(rec);
  dedup_[fp] = id;
  EnqueueLocked(id);
  PersistLocked();
  out.accepted = true;
  out.id = id;
  lock.unlock();
  cv_.notify_one();
  return out;
}

std::vector<RunRecord> RunScheduler::Snapshot() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<RunRecord> out;
  out.reserve(records_.size());
  for (const auto& kv : records_) out.push_back(kv.second);
  return out;
}

bool RunScheduler::Get(std::int64_t id, RunRecord* out) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  *out = it->second;
  return true;
}

RunScheduler::Counts RunScheduler::CountByState() const {
  std::unique_lock<std::mutex> lock(mu_);
  Counts c;
  for (const auto& kv : records_) {
    switch (kv.second.state) {
      case RunState::kQueued: ++c.queued; break;
      case RunState::kRunning: ++c.running; break;
      case RunState::kInterrupted: ++c.interrupted; break;
      case RunState::kDone: ++c.done; break;
      case RunState::kFailed: ++c.failed; break;
    }
  }
  return c;
}

bool RunScheduler::WaitIdle(std::int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_until(lock, deadline, [this] {
    return queue_.empty() && busy_.load(std::memory_order_acquire) == 0;
  });
}

void RunScheduler::Drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_.load(std::memory_order_acquire)) return;
    draining_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  // Pump the interrupt flag until every in-flight run has aborted: the
  // engine *consumes* the flag when a Route call aborts, so with several
  // runs in flight a single request could be eaten by the first one.
  while (busy_.load(std::memory_order_acquire) > 0) {
    FlightRecorder::RequestInterrupt();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Leave no stale flag behind for the next scheduler in this process.
  FlightRecorder::ClearInterrupt();
  std::unique_lock<std::mutex> lock(mu_);
  PersistLocked();
  started_.store(false, std::memory_order_release);
}

void RunScheduler::EnqueueLocked(std::int64_t id) {
  const RunRecord& rec = records_[id];
  queue_.insert({-rec.spec.priority, id});
  if (opts_.metrics != nullptr) {
    opts_.metrics->gauge("serve.queued")
        .Set(static_cast<std::int64_t>(queue_.size()));
  }
}

void RunScheduler::WorkerLoop(int worker_index) {
  // Each worker owns its engine thread pool: ThreadPool is single-job and
  // must not take concurrent ParallelFor calls from several runs.
  ThreadPool pool(static_cast<unsigned>(
      opts_.threads_per_run > 0 ? opts_.threads_per_run : 0));
  (void)worker_index;
  for (;;) {
    std::int64_t id = -1;
    bool try_resume = false;
    RunSpec spec;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return draining_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (draining_.load(std::memory_order_acquire)) return;
      const auto it = queue_.begin();
      id = it->second;
      queue_.erase(it);
      RunRecord& rec = records_[id];
      try_resume = rec.resume_pending;
      rec.resume_pending = false;
      rec.state = RunState::kRunning;
      spec = rec.spec;
      busy_.fetch_add(1, std::memory_order_acq_rel);
      if (opts_.metrics != nullptr) {
        opts_.metrics->gauge("serve.queued")
            .Set(static_cast<std::int64_t>(queue_.size()));
        opts_.metrics->gauge("serve.running")
            .Set(busy_.load(std::memory_order_acquire));
      }
    }
    Execute(id, spec, try_resume, &pool);
    {
      std::unique_lock<std::mutex> lock(mu_);
      busy_.fetch_sub(1, std::memory_order_acq_rel);
      if (opts_.metrics != nullptr) {
        opts_.metrics->gauge("serve.running")
            .Set(busy_.load(std::memory_order_acquire));
      }
      PersistLocked();
    }
    cv_.notify_all();
  }
}

void RunScheduler::Execute(std::int64_t id, const RunSpec& spec,
                           bool try_resume, ThreadPool* pool) {
  const std::string artifact_dir =
      opts_.artifacts_dir + "/run-" + std::to_string(id);
  std::error_code ec;
  std::filesystem::create_directories(artifact_dir, ec);

  Topology topo(spec.d, spec.n, spec.torus ? Wrap::kTorus : Wrap::kMesh);
  TrafficPattern pattern(topo, spec.pattern, spec.pattern_seed,
                         spec.pattern_opts);

  MetricsRegistry run_metrics;
  CongestionTrace trace;
  CheckpointOptions copts;
  copts.dir = artifact_dir + "/ckpt";
  copts.every_steps = opts_.checkpoint_every_steps;
  copts.keep = opts_.checkpoint_keep;
  copts.metrics = &run_metrics;
  CheckpointManager ckpt(copts);

  EngineOptions eopts = spec.MakeEngineOptions();
  eopts.pool = pool;
  eopts.metrics = &run_metrics;
  eopts.probe = &trace;
  // Journey tracing on every run: the sampler is seeded by the spec
  // fingerprint, so re-submissions (and resumed executions) of the same
  // spec trace the same packet ids.
  JourneyTracer::Options jopts;
  jopts.sample_rate =
      static_cast<double>(opts_.journey_rate_pm) / 1000.0;
  jopts.seed = spec.Fingerprint();
  JourneyTracer journeys(jopts);
  if (opts_.journey_rate_pm > 0) eopts.journeys = &journeys;
  // Always attached: gives every run crash-safe state *and* arms the
  // engine's per-step interrupt polling, which is what makes graceful
  // drain able to stop this run mid-flight.
  eopts.checkpoint = &ckpt;

  EngineCheckpointState resume_state;
  bool resuming = false;
  if (try_resume) {
    std::string loaded_path;
    std::string log;
    const CkptStatus status = CheckpointManager::LoadNewestValid(
        copts.dir, &resume_state, /*expected_options_hash=*/nullptr,
        &loaded_path, &log);
    resuming = status == CkptStatus::kOk;
    if (!resuming && !log.empty()) {
      std::fprintf(stderr, "run %lld: no resumable checkpoint, running "
                           "fresh:\n%s",
                   static_cast<long long>(id), log.c_str());
    }
  }

  WorkloadResult res;
  std::string failure;
  try {
    res = RunOpenLoop(topo, pattern, spec.driver, eopts,
                      resuming ? &resume_state : nullptr);
  } catch (const std::exception& e) {
    failure = e.what();
  }
  if (resuming && failure.empty()) {
    resumed_runs_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("serve.resumed").Increment();
    }
  }

  RunState state;
  std::string error;
  if (!failure.empty()) {
    state = RunState::kFailed;
    error = failure;
  } else if (res.route.stall_report != nullptr &&
             res.route.stall_report->reason == StallReason::kInterrupt) {
    state = RunState::kInterrupted;
  } else if (res.route.stall_report != nullptr) {
    state = RunState::kFailed;
    error = std::string("run aborted: ") +
            StallReasonLabel(res.route.stall_report->reason) + " at step " +
            std::to_string(res.route.stall_report->step);
  } else {
    state = RunState::kDone;
  }

  // Artifact emission for finished runs (done or failed — a failed run's
  // partial counters are exactly what postmortems need). Interrupted runs
  // leave only their checkpoints; they are not results.
  if (state != RunState::kInterrupted && failure.empty()) {
    std::string werr;
    {
      std::ostringstream os;
      JsonWriter w(os, 1);
      w.BeginObject();
      w.Key("id").Int(id);
      w.Key("state").String(RunStateName(state));
      w.Key("spec");
      spec.WriteJson(w);
      w.Key("result");
      res.WriteJson(w);
      w.Key("route").Raw(res.route.ToJson());
      w.EndObject();
      os << '\n';
      if (!WriteFileAtomic(artifact_dir + "/result.json", os.str(), &werr)) {
        std::fprintf(stderr, "run %lld: %s\n", static_cast<long long>(id),
                     werr.c_str());
      }
    }
    if (!WriteFileAtomic(artifact_dir + "/metrics.prom",
                         run_metrics.ToPrometheus(), &werr)) {
      std::fprintf(stderr, "run %lld: %s\n", static_cast<long long>(id),
                   werr.c_str());
    }
    {
      RunManifest manifest = res.route.manifest != nullptr
                                 ? *res.route.manifest
                                 : MakeRunManifest(topo, eopts);
      ChromeTraceWriter writer(manifest);
      writer.AddCounters(trace);
      std::ostringstream os;
      writer.Write(os);
      if (!WriteFileAtomic(artifact_dir + "/trace.json", os.str(), &werr)) {
        std::fprintf(stderr, "run %lld: %s\n", static_cast<long long>(id),
                     werr.c_str());
      }
    }
    if (res.route.journeys != nullptr) {
      std::ostringstream os;
      WriteJourneysJsonl(*res.route.journeys, topo.dim(), os);
      if (!WriteFileAtomic(artifact_dir + "/journeys.jsonl", os.str(),
                           &werr)) {
        std::fprintf(stderr, "run %lld: %s\n", static_cast<long long>(id),
                     werr.c_str());
      }
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  RunRecord& rec = records_[id];
  rec.state = state;
  rec.error = error;
  rec.resumed = resuming || rec.resumed;
  if (state == RunState::kInterrupted) {
    // Still resumable: keep the dedup entry and ask the next execution (in
    // this process after a queue re-add, or after a restart) to resume.
    rec.resume_pending = true;
  } else if (failure.empty()) {
    rec.has_result = true;
    rec.result = res;
    rec.delivery_hash = res.delivery_hash;
  }
  if (state == RunState::kFailed) {
    // A failed fingerprint is retryable: drop it from the dedup table so a
    // re-submission runs fresh instead of sharing the failure.
    const auto it = dedup_.find(rec.fingerprint);
    if (it != dedup_.end() && it->second == id) dedup_.erase(it);
  }
  if (opts_.metrics != nullptr) {
    switch (state) {
      case RunState::kDone:
        opts_.metrics->counter("serve.completed").Increment();
        break;
      case RunState::kFailed:
        opts_.metrics->counter("serve.failed").Increment();
        break;
      case RunState::kInterrupted:
        opts_.metrics->counter("serve.interrupted").Increment();
        break;
      default:
        break;
    }
  }
  EvictOldArtifactsLocked();
}

void RunScheduler::EvictOldArtifactsLocked() {
  if (opts_.keep_completed_runs <= 0) return;
  // records_ is keyed by ascending id, so this collects completed runs
  // oldest-first; everything past the newest K gets reclaimed.
  std::vector<std::int64_t> finished;
  for (const auto& kv : records_) {
    const RunRecord& rec = kv.second;
    if ((rec.state == RunState::kDone || rec.state == RunState::kFailed) &&
        !rec.evicted && !rec.artifact_dir.empty()) {
      finished.push_back(kv.first);
    }
  }
  const std::size_t keep =
      static_cast<std::size_t>(opts_.keep_completed_runs);
  if (finished.size() <= keep) return;
  const std::size_t evict_n = finished.size() - keep;
  std::ofstream log(opts_.artifacts_dir + "/evictions.log",
                    std::ios::app);
  for (std::size_t i = 0; i < evict_n; ++i) {
    RunRecord& rec = records_[finished[i]];
    std::error_code ec;
    std::filesystem::remove_all(rec.artifact_dir, ec);
    if (ec) {
      std::fprintf(stderr, "run %lld: eviction failed: %s\n",
                   static_cast<long long>(rec.id), ec.message().c_str());
      continue;  // keep the record pointing at whatever survived
    }
    if (log) {
      log << "evicted run-" << rec.id << " state=" << RunStateName(rec.state)
          << " dir=" << rec.artifact_dir << '\n';
    }
    rec.evicted = true;
    rec.artifact_dir.clear();
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("serve.evicted").Increment();
    }
  }
}

void RunScheduler::PersistLocked() {
  std::ostringstream os;
  JsonWriter w(os, 1);
  w.BeginObject();
  w.Key("next_id").Int(next_id_);
  w.Key("runs").BeginArray();
  for (const auto& kv : records_) {
    WriteRunRecordJson(kv.second, w);
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
  std::string error;
  if (!WriteFileAtomic(opts_.artifacts_dir + "/" + kQueueFile, os.str(),
                       &error)) {
    std::fprintf(stderr, "scheduler: persist failed: %s\n", error.c_str());
  }
}

bool RunScheduler::RestoreLocked(std::string* error) {
  const std::string path = opts_.artifacts_dir + "/" + kQueueFile;
  std::string text;
  if (!ReadWholeFile(path, &text)) return true;  // fresh start
  const JsonParseResult parsed = ParseJson(text);
  if (!parsed.ok) {
    if (error != nullptr) {
      *error = path + ": " + parsed.error + " (byte " +
               std::to_string(parsed.offset) + ")";
    }
    return false;
  }
  const JsonValue& root = parsed.value;
  next_id_ = root["next_id"].is_number() ? root["next_id"].AsInt() : 1;
  if (next_id_ < 1) next_id_ = 1;
  for (const JsonValue& rv : root["runs"].Items()) {
    RunRecord rec;
    std::string spec_error;
    if (!RunSpec::FromJson(rv["spec"], &rec.spec, &spec_error)) {
      if (error != nullptr) {
        *error = path + ": run " + std::to_string(rv["id"].AsInt()) + ": " +
                 spec_error;
      }
      return false;
    }
    rec.id = rv["id"].AsInt();
    if (rec.id < 1) continue;
    RunState state = RunState::kQueued;
    if (!ParseRunState(rv["state"].AsString(), &state)) {
      if (error != nullptr) {
        *error = path + ": run " + std::to_string(rec.id) +
                 ": unknown state \"" + rv["state"].AsString() + "\"";
      }
      return false;
    }
    rec.fingerprint = rec.spec.Fingerprint();
    rec.dedup_hits = rv["dedup_hits"].AsInt();
    dedup_hits_total_ += rec.dedup_hits;
    rec.error = rv["error"].AsString();
    rec.evicted = rv["evicted"].AsBool();
    rec.artifact_dir = rv["artifact_dir"].AsString();
    if (rec.artifact_dir.empty() && !rec.evicted) {
      rec.artifact_dir =
          opts_.artifacts_dir + "/run-" + std::to_string(rec.id);
    }
    rec.delivery_hash = rv["delivery_hash"].AsUInt();
    rec.resumed = rv["resumed"].AsBool();
    switch (state) {
      case RunState::kQueued:
        rec.state = RunState::kQueued;
        rec.resume_pending = rv["resume_pending"].AsBool();
        break;
      case RunState::kRunning:
      case RunState::kInterrupted:
        // Interrupted by drain, or torn down hard while running: either
        // way the newest checkpoint (if any survived) carries the run
        // forward; otherwise it restarts from scratch — same results
        // either way, by the engine's byte-identity contract.
        rec.state = RunState::kQueued;
        rec.resume_pending = true;
        break;
      case RunState::kDone:
      case RunState::kFailed:
        rec.state = state;  // history; full result lives in result.json
        break;
    }
    if (rec.id >= next_id_) next_id_ = rec.id + 1;
    const std::int64_t id = rec.id;
    const bool enqueue = rec.state == RunState::kQueued;
    const bool dedupable = rec.state != RunState::kFailed;
    records_[id] = std::move(rec);
    if (dedupable) dedup_[records_[id].fingerprint] = id;
    if (enqueue) EnqueueLocked(id);
  }
  return true;
}

}  // namespace mdmesh
