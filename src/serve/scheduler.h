// RunScheduler: the experiment service's execution core. Owns the bounded
// priority queue of validated RunSpecs, a small pool of worker threads that
// execute them through RunOpenLoop, the fingerprint dedup table, per-run
// artifact emission, and the drain/restore lifecycle:
//
//   submit   → reject (queue full / draining), dedupe (same fingerprint →
//              shared record), or enqueue by (priority desc, id asc)
//   execute  → each worker owns a private ThreadPool (ThreadPool is not
//              reentrant across concurrent ParallelFor callers) and always
//              attaches a CheckpointManager, which both gives crash safety
//              and arms the engine's per-step interrupt polling
//   drain    → stop dequeuing, then pump FlightRecorder::RequestInterrupt()
//              until every in-flight run has aborted through the engine's
//              interrupt path (each abort saves a checkpoint and *consumes*
//              the process-wide flag, hence the pump), persist the queue
//   restore  → Start() reloads queue.json: queued entries re-enqueue,
//              running/interrupted entries re-enqueue with resume_pending
//              and continue from their newest valid checkpoint via
//              Engine::Resume — byte-identical to an uninterrupted run
//
// Determinism note: results do not depend on worker count or per-run thread
// count (the engine's delivery traces are thread-count-invariant), so any
// scheduler configuration reproduces the same delivery_hash for a spec.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "serve/run_spec.h"
#include "workload/driver.h"

namespace mdmesh {

enum class RunState : std::uint8_t {
  kQueued,
  kRunning,
  kInterrupted,  ///< aborted by drain; resumable from its checkpoint
  kDone,
  kFailed,
};

const char* RunStateName(RunState state);
bool ParseRunState(const std::string& name, RunState* out);

struct RunRecord {
  std::int64_t id = -1;
  RunSpec spec;
  RunState state = RunState::kQueued;
  std::uint64_t fingerprint = 0;
  /// Submissions that deduped onto this record (0 = unique so far).
  std::int64_t dedup_hits = 0;
  /// Next execution should try to continue from the newest checkpoint.
  bool resume_pending = false;
  /// This record's last execution continued from a checkpoint.
  bool resumed = false;
  std::string error;         ///< failure reason (kFailed)
  std::string artifact_dir;  ///< per-run artifact directory ("" once evicted)
  /// Artifacts reclaimed by retention GC; the record itself survives as
  /// history (and its in-memory result, when present, stays queryable).
  bool evicted = false;
  bool has_result = false;
  WorkloadResult result;  ///< valid when has_result
  /// Survives restarts even though `result` does not (the full result lives
  /// in <artifact_dir>/result.json): the cross-restart identity key.
  std::uint64_t delivery_hash = 0;
};

/// Serializes a record for GET /runs[/<id>] and the persisted queue.
void WriteRunRecordJson(const RunRecord& rec, JsonWriter& w);

struct SchedulerOptions {
  /// Root for queue.json and the per-run run-<id>/ artifact directories.
  std::string artifacts_dir = "serve-artifacts";
  /// Concurrent runs (worker threads). Each worker owns its own ThreadPool.
  int workers = 2;
  /// Inner engine threads per run (0 = serial engine).
  int threads_per_run = 0;
  /// Queued-run bound; submissions beyond it are rejected (HTTP 429).
  std::size_t queue_limit = 64;
  /// Checkpoint cadence for every run (steps); the abort path saves
  /// regardless, so this only bounds repeated work after a hard crash.
  std::int64_t checkpoint_every_steps = 256;
  int checkpoint_keep = 2;
  /// Artifact retention: keep the newest K completed (done or failed)
  /// run-<id>/ directories and reclaim older ones, logging each eviction
  /// to <artifacts_dir>/evictions.log. 0 = keep everything.
  std::int64_t keep_completed_runs = 0;
  /// Journey-trace sample rate for every run, in per-mille of packet ids
  /// (10 = 1%; 0 disables tracing; 1000 traces every packet). Traced runs
  /// emit a journeys.jsonl artifact next to result.json.
  std::int64_t journey_rate_pm = 10;
  /// Service-level registry (serve.* counters/gauges); may be null.
  MetricsRegistry* metrics = nullptr;
};

class RunScheduler {
 public:
  explicit RunScheduler(const SchedulerOptions& opts);
  ~RunScheduler();

  RunScheduler(const RunScheduler&) = delete;
  RunScheduler& operator=(const RunScheduler&) = delete;

  /// Creates the artifact root, restores queue.json if present (re-enqueuing
  /// interrupted work), and starts the workers. False + *error on failure.
  bool Start(std::string* error);

  struct SubmitOutcome {
    bool accepted = false;
    bool deduped = false;
    std::int64_t id = -1;   ///< record id (the primary's id when deduped)
    std::string error;      ///< rejection reason when !accepted
  };
  /// Validates nothing (callers validate specs); applies dedup, the queue
  /// bound, and the draining gate.
  SubmitOutcome Submit(const RunSpec& spec);

  /// Snapshot copies (records are small; results include the full
  /// WorkloadResult).
  std::vector<RunRecord> Snapshot() const;
  bool Get(std::int64_t id, RunRecord* out) const;

  struct Counts {
    std::int64_t queued = 0;
    std::int64_t running = 0;
    std::int64_t interrupted = 0;
    std::int64_t done = 0;
    std::int64_t failed = 0;
  };
  Counts CountByState() const;

  /// Graceful shutdown: stops dequeuing, interrupts in-flight runs (each
  /// checkpoints through the engine's abort path), joins the workers, and
  /// persists the queue. Idempotent; the scheduler cannot be restarted
  /// afterwards (construct a new one — that is the restart path).
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Executions that continued from a checkpoint since Start().
  std::int64_t resumed_runs() const {
    return resumed_runs_.load(std::memory_order_relaxed);
  }

  /// Blocks until no run is queued or in flight (test helper), up to
  /// `timeout_ms`. Returns true when idle was reached.
  bool WaitIdle(std::int64_t timeout_ms);

  static constexpr const char* kQueueFile = "queue.json";

 private:
  void WorkerLoop(int worker_index);
  void Execute(std::int64_t id, const RunSpec& spec, bool try_resume,
               ThreadPool* pool);
  void PersistLocked();
  bool RestoreLocked(std::string* error);
  void EnqueueLocked(std::int64_t id);
  /// Retention GC: evicts the oldest completed run directories beyond
  /// opts_.keep_completed_runs (no-op when the knob is 0).
  void EvictOldArtifactsLocked();

  SchedulerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::int64_t, RunRecord> records_;
  /// Pending ids ordered by (-priority, id): begin() is the next run.
  std::set<std::pair<int, std::int64_t>> queue_;
  std::unordered_map<std::uint64_t, std::int64_t> dedup_;
  std::vector<std::thread> workers_;
  std::int64_t next_id_ = 1;
  /// Sum of dedup_hits across all records; mirrored to the
  /// serve.dedup_hits gauge so /metrics can plot collapse pressure.
  std::int64_t dedup_hits_total_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> busy_{0};
  std::atomic<std::int64_t> resumed_runs_{0};
};

}  // namespace mdmesh
