#include "serve/run_spec.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "meshsim/topology.h"

namespace mdmesh {
namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void Mix(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffu;
    *h *= kFnvPrime;
  }
}

void MixDouble(std::uint64_t* h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  Mix(h, bits);
}

// Field readers: each checks the member's JSON type, converts, and reports
// a path-qualified error ("driver.rate: expected a number") so a rejected
// request names the exact field.
bool ReadInt(const JsonValue& obj, const char* section, const char* key,
             std::int64_t* out, std::string* error) {
  const JsonValue& v = obj[key];
  if (v.is_null()) return true;  // keep default
  if (!v.is_number()) {
    *error = std::string(section) + "." + key + ": expected a number";
    return false;
  }
  *out = v.AsInt();
  return true;
}

bool ReadUInt(const JsonValue& obj, const char* section, const char* key,
              std::uint64_t* out, std::string* error) {
  const JsonValue& v = obj[key];
  if (v.is_null()) return true;
  if (!v.is_number()) {
    *error = std::string(section) + "." + key + ": expected a number";
    return false;
  }
  *out = v.AsUInt();
  return true;
}

bool ReadDouble(const JsonValue& obj, const char* section, const char* key,
                double* out, std::string* error) {
  const JsonValue& v = obj[key];
  if (v.is_null()) return true;
  if (!v.is_number()) {
    *error = std::string(section) + "." + key + ": expected a number";
    return false;
  }
  *out = v.AsDouble();
  return true;
}

bool ReadBool(const JsonValue& obj, const char* section, const char* key,
              bool* out, std::string* error) {
  const JsonValue& v = obj[key];
  if (v.is_null()) return true;
  if (!v.is_bool()) {
    *error = std::string(section) + "." + key + ": expected true or false";
    return false;
  }
  *out = v.AsBool();
  return true;
}

// Rejects unknown keys in a section: a typoed knob must fail the request,
// not silently run (and dedupe as) the default configuration.
bool CheckKeys(const JsonValue& obj, const char* section,
               std::initializer_list<const char*> allowed,
               std::string* error) {
  for (const auto& kv : obj.Members()) {
    bool known = false;
    for (const char* k : allowed) {
      if (kv.first == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      *error = std::string(section) + ": unknown key \"" + kv.first + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace

bool ParseSparseMode(const std::string& name, SparseMode* out) {
  if (name == "auto") {
    *out = SparseMode::kAuto;
  } else if (name == "always") {
    *out = SparseMode::kAlways;
  } else if (name == "never") {
    *out = SparseMode::kNever;
  } else {
    return false;
  }
  return true;
}

bool ParseLayoutMode(const std::string& name, LayoutMode* out) {
  if (name == "auto") {
    *out = LayoutMode::kAuto;
  } else if (name == "legacy") {
    *out = LayoutMode::kLegacy;
  } else if (name == "tiled") {
    *out = LayoutMode::kTiled;
  } else {
    return false;
  }
  return true;
}

bool RunSpec::Validate(std::string* error) const {
  if (d < 1 || d > kMaxDim) {
    *error = "topology.d must be in [1, " + std::to_string(kMaxDim) + "]";
    return false;
  }
  if (n < 2) {
    *error = "topology.n must be >= 2";
    return false;
  }
  // Overflow-safe n^d bound.
  std::int64_t procs = 1;
  for (int i = 0; i < d; ++i) {
    if (procs > kMaxProcs / n) {
      *error = "topology exceeds " + std::to_string(kMaxProcs) +
               " processors";
      return false;
    }
    procs *= n;
  }
  if (!(driver.rate >= 0.0 && driver.rate <= 1.0)) {
    *error = "driver.rate must be in [0, 1]";
    return false;
  }
  if (driver.warmup_steps < 0) {
    *error = "driver.warmup must be >= 0";
    return false;
  }
  if (driver.measure_steps < 1) {
    *error = "driver.measure must be >= 1";
    return false;
  }
  if (pattern_opts.hot_count < 1) {
    *error = "pattern.hot_count must be >= 1";
    return false;
  }
  if (!(pattern_opts.hot_skew >= 0.0 && pattern_opts.hot_skew <= 1.0)) {
    *error = "pattern.hot_skew must be in [0, 1]";
    return false;
  }
  if (step_cap < 0) {
    *error = "engine.step_cap must be >= 0";
    return false;
  }
  if (!(sparse_threshold >= 0.0 && sparse_threshold <= 1.0)) {
    *error = "engine.sparse_threshold must be in [0, 1]";
    return false;
  }
  return true;
}

EngineOptions RunSpec::MakeEngineOptions() const {
  EngineOptions eopts;
  eopts.step_cap = step_cap;
  eopts.stall_window = stall_window;
  eopts.sparse = sparse;
  eopts.layout = layout;
  eopts.sparse_threshold = sparse_threshold;
  return eopts;
}

std::uint64_t RunSpec::Fingerprint() const {
  std::uint64_t h = kFnvBasis;
  Mix(&h, static_cast<std::uint64_t>(d));
  Mix(&h, static_cast<std::uint64_t>(n));
  Mix(&h, torus ? 1 : 0);
  Mix(&h, static_cast<std::uint64_t>(pattern));
  Mix(&h, pattern_seed);
  Mix(&h, static_cast<std::uint64_t>(pattern_opts.hot_count));
  MixDouble(&h, pattern_opts.hot_skew);
  MixDouble(&h, driver.rate);
  Mix(&h, static_cast<std::uint64_t>(driver.warmup_steps));
  Mix(&h, static_cast<std::uint64_t>(driver.measure_steps));
  Mix(&h, driver.drain ? 1 : 0);
  Mix(&h, driver.seed);
  // Chain the engine-options hash so the two layers stay in lockstep: any
  // field HashEngineOptions learns to see moves the dedup key too.
  Mix(&h, HashEngineOptions(MakeEngineOptions()));
  return h;
}

void RunSpec::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  if (!name.empty()) w.Key("name").String(name);
  w.Key("priority").Int(priority);
  w.Key("topology").BeginObject();
  w.Key("d").Int(d);
  w.Key("n").Int(n);
  w.Key("torus").Bool(torus);
  w.EndObject();
  w.Key("pattern").BeginObject();
  w.Key("kind").String(PatternName(pattern));
  w.Key("seed").UInt(pattern_seed);
  w.Key("hot_count").Int(pattern_opts.hot_count);
  w.Key("hot_skew").Double(pattern_opts.hot_skew);
  w.EndObject();
  w.Key("driver").BeginObject();
  w.Key("rate").Double(driver.rate);
  w.Key("warmup").Int(driver.warmup_steps);
  w.Key("measure").Int(driver.measure_steps);
  w.Key("drain").Bool(driver.drain);
  w.Key("seed").UInt(driver.seed);
  w.EndObject();
  w.Key("engine").BeginObject();
  w.Key("sparse").String(SparseModeName(sparse));
  w.Key("layout").String(LayoutModeName(layout));
  w.Key("sparse_threshold").Double(sparse_threshold);
  w.Key("step_cap").Int(step_cap);
  w.Key("stall_window").Int(stall_window);
  w.EndObject();
  w.EndObject();
}

std::string RunSpec::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  return os.str();
}

bool RunSpec::FromJson(const JsonValue& v, RunSpec* out, std::string* error) {
  if (!v.is_object()) {
    *error = "request body must be a JSON object";
    return false;
  }
  RunSpec spec;
  if (!CheckKeys(v, "request",
                 {"name", "priority", "topology", "pattern", "driver",
                  "engine"},
                 error)) {
    return false;
  }
  if (v.Has("name")) {
    if (!v["name"].is_string()) {
      *error = "name: expected a string";
      return false;
    }
    spec.name = v["name"].AsString();
  }
  std::int64_t priority = 0;
  if (!ReadInt(v, "request", "priority", &priority, error)) return false;
  spec.priority = static_cast<int>(priority);

  const JsonValue& topo = v["topology"];
  if (!topo.is_object()) {
    *error = "topology: expected an object with d and n";
    return false;
  }
  if (!CheckKeys(topo, "topology", {"d", "n", "torus"}, error)) return false;
  std::int64_t d = spec.d;
  std::int64_t n = spec.n;
  if (!ReadInt(topo, "topology", "d", &d, error)) return false;
  if (!ReadInt(topo, "topology", "n", &n, error)) return false;
  if (!ReadBool(topo, "topology", "torus", &spec.torus, error)) return false;
  if (d < 1 || d > kMaxDim) {
    *error = "topology.d must be in [1, " + std::to_string(kMaxDim) + "]";
    return false;
  }
  spec.d = static_cast<int>(d);
  if (n < 2 || n > (std::int64_t{1} << 30)) {
    *error = "topology.n must be in [2, 2^30]";
    return false;
  }
  spec.n = static_cast<int>(n);

  const JsonValue& pat = v["pattern"];
  if (!pat.is_object()) {
    *error = "pattern: expected an object with kind";
    return false;
  }
  if (!CheckKeys(pat, "pattern", {"kind", "seed", "hot_count", "hot_skew"},
                 error)) {
    return false;
  }
  if (!pat["kind"].is_string()) {
    *error = "pattern.kind: expected a string";
    return false;
  }
  if (!ParsePattern(pat["kind"].AsString(), &spec.pattern)) {
    *error = "pattern.kind: unknown pattern \"" + pat["kind"].AsString() +
             "\"";
    return false;
  }
  if (!ReadUInt(pat, "pattern", "seed", &spec.pattern_seed, error)) {
    return false;
  }
  if (!ReadInt(pat, "pattern", "hot_count", &spec.pattern_opts.hot_count,
               error)) {
    return false;
  }
  if (!ReadDouble(pat, "pattern", "hot_skew", &spec.pattern_opts.hot_skew,
                  error)) {
    return false;
  }

  const JsonValue& drv = v["driver"];
  if (!drv.is_object()) {
    *error = "driver: expected an object with rate";
    return false;
  }
  if (!CheckKeys(drv, "driver", {"rate", "warmup", "measure", "drain", "seed"},
                 error)) {
    return false;
  }
  if (!ReadDouble(drv, "driver", "rate", &spec.driver.rate, error)) {
    return false;
  }
  if (!ReadInt(drv, "driver", "warmup", &spec.driver.warmup_steps, error)) {
    return false;
  }
  if (!ReadInt(drv, "driver", "measure", &spec.driver.measure_steps, error)) {
    return false;
  }
  if (!ReadBool(drv, "driver", "drain", &spec.driver.drain, error)) {
    return false;
  }
  if (!ReadUInt(drv, "driver", "seed", &spec.driver.seed, error)) {
    return false;
  }

  const JsonValue& eng = v["engine"];
  if (!eng.is_null()) {
    if (!eng.is_object()) {
      *error = "engine: expected an object";
      return false;
    }
    if (!CheckKeys(eng, "engine",
                   {"sparse", "layout", "sparse_threshold", "step_cap",
                    "stall_window"},
                   error)) {
      return false;
    }
    if (eng.Has("sparse")) {
      if (!eng["sparse"].is_string() ||
          !ParseSparseMode(eng["sparse"].AsString(), &spec.sparse)) {
        *error = "engine.sparse: expected \"auto\", \"always\", or \"never\"";
        return false;
      }
    }
    if (eng.Has("layout")) {
      if (!eng["layout"].is_string() ||
          !ParseLayoutMode(eng["layout"].AsString(), &spec.layout)) {
        *error = "engine.layout: expected \"auto\", \"legacy\", or \"tiled\"";
        return false;
      }
    }
    if (!ReadDouble(eng, "engine", "sparse_threshold",
                    &spec.sparse_threshold, error)) {
      return false;
    }
    if (!ReadInt(eng, "engine", "step_cap", &spec.step_cap, error)) {
      return false;
    }
    if (!ReadInt(eng, "engine", "stall_window", &spec.stall_window, error)) {
      return false;
    }
  }

  if (!spec.Validate(error)) return false;
  *out = spec;
  return true;
}

bool RunSpec::FromJsonText(const std::string& text, RunSpec* out,
                           std::string* error) {
  JsonParseResult parsed = ParseJson(text);
  if (!parsed.ok) {
    *error = "invalid JSON at byte " + std::to_string(parsed.offset) + ": " +
             parsed.error;
    return false;
  }
  return FromJson(parsed.value, out, error);
}

}  // namespace mdmesh
