// Live telemetry publisher: a background thread that snapshots a
// MetricsRegistry on a fixed cadence and exposes it two ways —
//
//   * an embedded POSIX HTTP listener serving Prometheus text exposition at
//     GET /metrics (and the registry's JSON at GET /status), enabled with
//     --metrics-port=N (0 asks the OS for an ephemeral port; port() reports
//     the bound one, which is how parallel tests avoid collisions), and
//   * an atomically-renamed status JSON file (--status-file=F) for
//     environments where opening a port is unwelcome — watchers can
//     `watch cat` it and never observe a torn write.
//
// The publisher only ever *reads* the registry (sharded atomics — no
// coordination with the engine), so attaching it cannot perturb routing;
// the determinism test pins that delivery traces are byte-identical with
// the publisher attached. The HTTP server is deliberately tiny: blocking
// accept with a poll() timeout so Stop() is prompt, one request per
// connection (Connection: close), GET only.
//
// ProgressMeter is the human-facing sibling: a rate-limited stderr
// heartbeat (step, in-flight, steps/sec, ETA against the step cap) shaped
// to slot into EngineOptions::observer. It auto-disables when stderr is not
// a TTY so piped/CI runs stay clean unless forced.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/manifest.h"
#include "obs/registry.h"

namespace mdmesh {

class MetricsPublisher {
 public:
  struct Options {
    /// Registry to snapshot. Required.
    const MetricsRegistry* registry = nullptr;
    /// TCP port for the HTTP listener: -1 disables HTTP, 0 binds an
    /// ephemeral OS-assigned port, > 0 binds that port (loopback only).
    int port = -1;
    /// Path for the periodic status JSON file; empty disables it.
    std::string status_file;
    /// Snapshot cadence for the status file (the HTTP endpoint renders on
    /// demand and ignores this).
    std::int64_t interval_ms = 1000;
    /// Optional manifest echoed into /status and the status file.
    const RunManifest* manifest = nullptr;
  };

  MetricsPublisher() = default;
  ~MetricsPublisher() { Stop(); }

  MetricsPublisher(const MetricsPublisher&) = delete;
  MetricsPublisher& operator=(const MetricsPublisher&) = delete;

  /// Binds the listener (when requested) and starts the background thread.
  /// Returns false — with a stderr diagnostic, and with no thread running —
  /// if the registry is missing or the port cannot be bound.
  bool Start(const Options& opts);

  /// Stops the thread and closes the listener. Writes one final status-file
  /// snapshot so the file reflects end-of-run state. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound HTTP port (resolves 0 to the OS-assigned port); -1 when HTTP is
  /// disabled or Start has not succeeded.
  int port() const { return port_; }

  /// Snapshots served / status files written so far (tests poll these to
  /// avoid sleeping on the cadence).
  std::int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::int64_t snapshots_written() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  /// accept() attempts that hit fd exhaustion (EMFILE/ENFILE) and backed
  /// off instead of dropping the listener.
  std::int64_t accept_backoffs() const {
    return accept_backoffs_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void WriteStatusFile();
  void ServeOne(int client_fd);
  std::string StatusJson() const;

  Options opts_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> snapshots_{0};
  std::atomic<std::int64_t> accept_backoffs_{0};
  int listen_fd_ = -1;
  int port_ = -1;
};

/// Rate-limited stderr heartbeat for long runs. Construct with the run's
/// step cap (0 = unknown), then install Observer() as (or inside)
/// EngineOptions::observer. Emits at most one line per `interval_ms` of
/// wall time, plus a final newline-terminated line on Finish().
///
/// `enabled` defaults to "stderr is a TTY" so redirected output and CI logs
/// are not flooded; pass force=true to emit regardless (tests, --progress).
class ProgressMeter {
 public:
  explicit ProgressMeter(std::int64_t step_cap = 0,
                         std::int64_t interval_ms = 500, bool force = false);

  /// True when heartbeat lines will actually be written.
  bool enabled() const { return enabled_; }

  /// Call once per step: (step, packets in flight, arrivals this step).
  void Step(std::int64_t step, std::int64_t in_flight, std::int64_t arrivals);

  /// Adapter matching EngineOptions::observer.
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> Observer();

  /// Emits a final summary line (if enabled) and stops further output.
  void Finish();

  /// Exposed for tests: the last line that would have been printed.
  const std::string& last_line() const { return last_line_; }
  std::int64_t lines_emitted() const { return lines_; }

  /// True when stderr is an interactive terminal (POSIX isatty).
  static bool StderrIsTty();

 private:
  void Emit(std::int64_t step, std::int64_t in_flight, double steps_per_sec);

  std::int64_t step_cap_;
  std::int64_t interval_ms_;
  bool enabled_;
  bool finished_ = false;
  std::int64_t lines_ = 0;
  std::int64_t last_emit_ms_ = 0;   ///< steady-clock ms of last heartbeat
  std::int64_t last_emit_step_ = 0;
  std::int64_t start_ms_ = 0;
  std::int64_t delivered_total_ = 0;
  std::string last_line_;
};

}  // namespace mdmesh
