#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>

#include "bounds/bisection.h"
#include "obs/json.h"
#include "util/math.h"

namespace mdmesh {
namespace {

void WriteJourneyJson(const PacketJourney& j, JsonWriter& w) {
  w.BeginObject();
  w.Key("id").Int(j.id);
  w.Key("injected_step").Int(j.injected_step);
  w.Key("delivery_step").Int(j.delivery_step);
  w.Key("latency").Int(j.delivered() && j.complete() ? j.latency() : -1);
  w.Key("dist0").Int(j.dist0);
  w.Key("moves").Int(j.moves);
  w.Key("detour_moves").Int(j.detour_moves);
  w.Key("waits_lost_bid").Int(j.waits_lost_bid);
  w.Key("waits_links_dead").Int(j.waits_links_dead);
  w.Key("dim_moves").BeginArray();
  for (std::int64_t m : j.dim_moves) w.Int(m);
  w.EndArray();
  w.Key("dim_waits").BeginArray();
  for (std::int64_t m : j.dim_waits) w.Int(m);
  w.EndArray();
  w.EndObject();
}

}  // namespace

CriticalPathReport BuildCriticalPathReport(const JourneyLog& log,
                                           const Topology& topo,
                                           std::int64_t run_steps,
                                           std::int64_t packets,
                                           std::int64_t max_distance) {
  CriticalPathReport rep;
  rep.dims = topo.dim();
  rep.run_steps = run_steps;
  rep.dim_moves.assign(static_cast<std::size_t>(rep.dims), 0);
  rep.dim_waits.assign(static_cast<std::size_t>(rep.dims), 0);

  const std::vector<PacketJourney> journeys = DecomposeJourneys(log, rep.dims);
  rep.traced = static_cast<std::int64_t>(journeys.size());

  // (latency, id) pairs of complete delivered journeys, for the p99 order
  // statistic; the id tiebreak keeps the pick deterministic.
  std::vector<std::pair<std::int64_t, std::int64_t>> latencies;
  latencies.reserve(journeys.size());
  const PacketJourney* last = nullptr;
  for (const PacketJourney& j : journeys) {
    if (!j.delivered()) continue;
    if (last == nullptr || j.delivery_step > last->delivery_step) last = &j;
    if (!j.complete()) continue;  // resumed-run partial: latency unknown
    ++rep.traced_delivered;
    if (!j.IdentityHolds()) ++rep.identity_violations;
    latencies.emplace_back(j.latency(), j.id);
    rep.total_moves += j.moves;
    rep.total_detour_moves += j.detour_moves;
    rep.total_waits_lost_bid += j.waits_lost_bid;
    rep.total_waits_links_dead += j.waits_links_dead;
    for (std::size_t d = 0; d < rep.dim_moves.size(); ++d) {
      rep.dim_moves[d] += d < j.dim_moves.size() ? j.dim_moves[d] : 0;
      rep.dim_waits[d] += d < j.dim_waits.size() ? j.dim_waits[d] : 0;
    }
  }
  if (last != nullptr) {
    rep.have_last = true;
    rep.last = *last;
    rep.critical_traced = last->delivery_step == run_steps;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const std::size_t idx =
        std::min(latencies.size() - 1, (latencies.size() * 99) / 100);
    const std::int64_t want = latencies[idx].second;
    for (const PacketJourney& j : journeys) {
      if (j.id == want) {
        rep.have_p99 = true;
        rep.p99 = j;
        break;
      }
    }
  }

  rep.distance_lb = max_distance;
  // The k-k bisection bound for the offered load: k = max packets per
  // processor needed to source the instance. A worst-case-model bound, not
  // a per-instance one — context for the gap, with the distance term as
  // the hard floor.
  const std::int64_t k =
      topo.size() > 0 ? CeilDiv(std::max<std::int64_t>(packets, 0),
                                static_cast<std::int64_t>(topo.size()))
                      : 0;
  rep.bisection_lb =
      k > 0 ? static_cast<std::int64_t>(std::ceil(KkBisectionBound(topo, k)))
            : 0;
  rep.lower_bound = std::max(rep.distance_lb, rep.bisection_lb);
  rep.bound_gap = run_steps - rep.lower_bound;
  return rep;
}

std::shared_ptr<const CriticalPathReport> BuildCriticalPathReportShared(
    const JourneyLog& log, const Topology& topo, std::int64_t run_steps,
    std::int64_t packets, std::int64_t max_distance) {
  return std::make_shared<const CriticalPathReport>(BuildCriticalPathReport(
      log, topo, run_steps, packets, max_distance));
}

void CriticalPathReport::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("run_steps").Int(run_steps);
  w.Key("traced").Int(traced);
  w.Key("traced_delivered").Int(traced_delivered);
  w.Key("identity_violations").Int(identity_violations);
  w.Key("critical_traced").Bool(critical_traced);
  if (have_last) {
    w.Key("last");
    WriteJourneyJson(last, w);
  }
  if (have_p99) {
    w.Key("p99");
    WriteJourneyJson(p99, w);
  }
  w.Key("total_moves").Int(total_moves);
  w.Key("total_detour_moves").Int(total_detour_moves);
  w.Key("total_waits_lost_bid").Int(total_waits_lost_bid);
  w.Key("total_waits_links_dead").Int(total_waits_links_dead);
  w.Key("dim_moves").BeginArray();
  for (std::int64_t m : dim_moves) w.Int(m);
  w.EndArray();
  w.Key("dim_waits").BeginArray();
  for (std::int64_t m : dim_waits) w.Int(m);
  w.EndArray();
  w.Key("bound_gap").BeginObject();
  w.Key("distance_lb").Int(distance_lb);
  w.Key("bisection_lb").Int(bisection_lb);
  w.Key("lower_bound").Int(lower_bound);
  w.Key("gap").Int(bound_gap);
  w.EndObject();
  w.EndObject();
}

}  // namespace mdmesh
