// Chrome Trace Event JSON sink: one artifact that lays the span tree, the
// per-step congestion counters, and the thread-pool worker activity on a
// shared timeline, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. This is the unified view the separate JSON/CSV sinks
// cannot give: phase spans over the congestion curve over worker
// utilization, with the run manifest embedded so the file is
// self-describing.
//
// Track layout (Chrome-trace "processes" are track groups):
//   pid 1  "phases (wall clock)"   one track per top-level algorithm phase;
//                                  B/E duration events at steady_clock
//                                  offsets from the TraceContext origin
//   pid 2  "phases (step clock)"   the same span tree on the simulated-step
//                                  axis (1 simulated step = 1 us of trace
//                                  time), so phase extents can be read in
//                                  steps and compared with the paper's
//                                  cD + o(n) decompositions
//   pid 3  "engine counters"       one counter track per congestion series
//                                  (in_flight, arrivals, moves, queue
//                                  quantiles, per-dim/dir moves, active
//                                  procs, injected), on the step clock
//   pid 4  "thread pool"           one track per worker lane (lane 0 =
//                                  coordinator) with a duration event per
//                                  dispatched shard, wall clock
//   pid 5  "packet journeys"       one async span per traced packet
//                                  (injection to delivery) on the step
//                                  clock, emitted from a JourneyLog
//
// Wall-clock and step-clock track groups share one trace-time axis; the
// step-clock groups are placed at 1 us per step starting at 0, so the two
// clock families are internally consistent but not mutually aligned —
// compare within a family, not across.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/probe.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace mdmesh {

class ChromeTraceWriter {
 public:
  static constexpr int kPidPhasesWall = 1;
  static constexpr int kPidPhasesSteps = 2;
  static constexpr int kPidCounters = 3;
  static constexpr int kPidWorkers = 4;
  static constexpr int kPidJourneys = 5;

  explicit ChromeTraceWriter(RunManifest manifest);

  /// Emits every span of `ctx` as matched B/E duration events on both the
  /// wall-clock and step-clock phase groups. Each top-level span gets its
  /// own named track; nested spans share the parent's track (Perfetto
  /// nests them by time). Also adopts ctx.origin() as the wall-clock zero
  /// for worker activity added later.
  void AddSpanTree(const TraceContext& ctx);

  /// Emits one counter event per retained congestion sample per series —
  /// in_flight, arrivals, moves, queue_p50/p99/max, injected, active_procs
  /// (dense steps, where the set is not tracked, are skipped), and one
  /// series per directed dimension link class ("moves.dim0-", ...).
  void AddCounters(const CongestionTrace& trace);

  /// Emits one duration event per dispatched shard per worker lane. Wall
  /// clock, aligned to the span tree's origin when AddSpanTree was called
  /// first (otherwise to the earliest recorded interval).
  void AddWorkerActivity(const ThreadPoolActivity& activity);

  /// Emits a thin instant event (e.g. a marker for a fault event or a
  /// phase boundary) on the given track group.
  void AddInstant(const std::string& name, double ts_us, int pid, int tid);

  /// Emits a matched async begin/end pair (ph "b"/"e") keyed by `id` —
  /// async events may overlap freely on one track, which duration events
  /// cannot, so they fit per-packet journey spans. `args_json`, when
  /// non-empty, must be a pre-serialized JSON object; it rides on the
  /// begin event.
  void AddAsyncSpan(const std::string& name, const char* cat, std::int64_t id,
                    double begin_us, double end_us, int pid, int tid,
                    const std::string& args_json = std::string());

  /// Emits one sample on a named counter track (pid kPidCounters). This is
  /// the escape hatch for replaying counter series that did not come from a
  /// live CongestionTrace — e.g. trace_viewer re-exporting a --trace-csv
  /// file.
  void AddCounter(const std::string& series, double ts_us, std::int64_t value);

  std::size_t event_count() const { return events_.size(); }
  /// Distinct counter-series names emitted so far.
  std::size_t counter_track_count() const { return counter_names_.size(); }

  /// Writes {"displayTimeUnit", "metadata": {"manifest": ...},
  /// "traceEvents": [...]}.
  void Write(std::ostream& os) const;
  /// Write() to `path` via OpenOutputFile (loud failure, exit 1).
  void WriteFile(const std::string& path) const;

 private:
  void AddMeta(const char* kind, int pid, int tid, const std::string& name);
  void AddDuration(const std::string& name, double begin_us, double end_us,
                   int pid, int tid);
  void AddSpanNode(const TraceContext& ctx, std::size_t node, int tid);

  RunManifest manifest_;
  std::vector<std::string> events_;  ///< serialized event objects
  std::set<std::string> counter_names_;
  bool have_wall_origin_ = false;
  std::chrono::steady_clock::time_point wall_origin_;
};

}  // namespace mdmesh
