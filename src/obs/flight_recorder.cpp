#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"

namespace mdmesh {

void FlightRecord::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("step").Int(step);
  w.Key("in_flight").Int(in_flight);
  w.Key("arrivals").Int(arrivals);
  w.Key("moves").Int(moves);
  w.Key("injected").Int(injected);
  w.Key("active_procs").Int(active_procs);
  w.Key("queue_max").Int(queue_max);
  if (dims > 0) {
    w.Key("dir_moves").BeginArray();
    for (int i = 0; i < 2 * dims; ++i) w.Int(dir_moves[i]);
    w.EndArray();
  }
  w.EndObject();
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

void FlightRecorder::Append(const FlightRecord& rec) {
  ring_[head_] = rec;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++total_;
}

std::size_t FlightRecorder::size() const {
  return total_ < static_cast<std::int64_t>(ring_.size())
             ? static_cast<std::size_t>(total_)
             : ring_.size();
}

std::int64_t FlightRecorder::dropped() const {
  return total_ - static_cast<std::int64_t>(size());
}

std::vector<FlightRecord> FlightRecorder::Tail(std::size_t k) const {
  const std::size_t have = size();
  if (k > have) k = have;
  std::vector<FlightRecord> out;
  out.reserve(k);
  // Oldest of the requested tail sits k slots behind the write head.
  std::size_t idx = (head_ + ring_.size() - k) % ring_.size();
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(ring_[idx]);
    idx = idx + 1 == ring_.size() ? 0 : idx + 1;
  }
  return out;
}

const FlightRecord& FlightRecorder::Last() const {
  return ring_[(head_ + ring_.size() - 1) % ring_.size()];
}

void FlightRecorder::Clear() {
  head_ = 0;
  total_ = 0;
}

void FlightRecorder::WriteJson(JsonWriter& w, const std::string& reason) const {
  w.BeginObject();
  w.Key("manifest");
  manifest_.WriteJson(w);
  w.Key("reason").String(reason);
  w.Key("step").Int(total_ > 0 ? Last().step : 0);
  w.Key("total_records").Int(total_);
  w.Key("dropped").Int(dropped());
  w.Key("records").BeginArray();
  for (const FlightRecord& rec : Tail(size())) rec.WriteJson(w);
  w.EndArray();
  w.EndObject();
}

std::string FlightRecorder::ToJson(const std::string& reason) const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w, reason);
  return os.str();
}

bool FlightRecorder::Dump(const std::string& reason) const {
  if (dump_path_.empty()) return false;
  std::ostringstream os;
  JsonWriter w(os, 1);
  WriteJson(w, reason);
  os << '\n';
  // Atomic rename (shared util/atomic_file.h): a crash or a concurrent
  // reader can only ever see the previous complete dump, never a torn one.
  std::string error;
  if (!WriteFileAtomic(dump_path_, os.str(), &error)) {
    std::fprintf(stderr, "flight recorder: %s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "flight recorder: dumped %zu record(s) to %s (%s)\n",
               size(), dump_path_.c_str(), reason.c_str());
  return true;
}

std::atomic<bool>& FlightRecorder::interrupt_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace {
extern "C" void FlightRecorderSignalHandler(int) {
  FlightRecorder::RequestInterrupt();
}
}  // namespace

void FlightRecorder::InstallSignalHandlers() {
  std::signal(SIGINT, FlightRecorderSignalHandler);
  std::signal(SIGTERM, FlightRecorderSignalHandler);
}

}  // namespace mdmesh
