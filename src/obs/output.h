// Shared machine-readable-output flags, registered identically by every
// bench binary and example:
//
//   --json=<path>       write experiment records (JSON array, or JSONL when
//                       the path ends in .jsonl)
//   --trace-csv=<path>  write the per-step congestion trace as CSV
//   --quick             smallest configuration only (CI smoke runs)
//
// Examples register them on their Cli via AddOutputFlags/GetOutputFlags.
// Bench binaries cannot use Cli (google-benchmark parses argv itself), so
// ParseOutputFlags extracts just these flags from argc/argv in place and
// leaves everything else for benchmark::Initialize.
#pragma once

#include <fstream>
#include <string>

#include "util/cli.h"

namespace mdmesh {

struct OutputFlags {
  std::string json;       ///< empty = no JSON output
  std::string trace_csv;  ///< empty = no congestion-trace CSV
  bool quick = false;

  bool WantsJson() const { return !json.empty(); }
  bool WantsTrace() const { return !trace_csv.empty(); }
};

/// Registers --json, --trace-csv, and --quick on `cli`.
void AddOutputFlags(Cli& cli);

/// Reads the flags registered by AddOutputFlags back from a parsed Cli.
OutputFlags GetOutputFlags(const Cli& cli);

/// Extracts --json(=)/--trace-csv(=)/--quick from argv (both `--flag=value`
/// and `--flag value` forms), compacting argv and updating *argc so that
/// unrecognized flags survive for a downstream parser.
OutputFlags ParseOutputFlags(int* argc, char** argv);

/// Opens `path` for writing. On failure, prints a clear error naming the
/// responsible flag (e.g. "--json") to stderr and exits with status 1 —
/// a CI run pointing its output at an unwritable path must fail, not
/// silently produce nothing.
std::ofstream OpenOutputFile(const std::string& path, const char* flag);

}  // namespace mdmesh
