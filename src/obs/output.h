// Shared machine-readable-output flags, registered identically by every
// bench binary and example:
//
//   --json=<path>           write experiment records (JSON array, or JSONL
//                           when the path ends in .jsonl)
//   --trace-csv=<path>      write the per-step congestion trace as CSV
//   --perfetto=<path>       write a Chrome Trace Event JSON timeline (open
//                           in ui.perfetto.dev or chrome://tracing)
//   --metrics-port=<n>      serve Prometheus text at 127.0.0.1:<n>/metrics
//                           while the run executes (0 = ephemeral port)
//   --status-file=<path>    periodically write a status JSON snapshot
//                           (atomic rename; `watch cat` safe)
//   --flight-recorder=<path> dump the engine's black-box step ring there on
//                           stall/step-cap/invariant/interrupt aborts
//   --checkpoint=<dir>      write engine checkpoints into this directory
//                           (versioned, CRC-checksummed, atomically renamed)
//   --checkpoint-every=<n>  checkpoint cadence in steps
//   --checkpoint-keep=<k>   checkpoint generations to keep (default 3)
//   --resume                resume from the newest valid checkpoint in
//                           --checkpoint instead of starting fresh
//   --journeys=<path>       write per-packet journey records (JSONL, one
//                           traced packet per line) after the run
//   --journey-rate-pm=<n>   journey sample rate in per-mille (default 10 =
//                           1%; 1000 traces every packet)
//   --journey-seed=<n>      seed for the deterministic journey sampler
//   --journey-watch=<ids>   comma-separated packet ids to always trace,
//                           regardless of the sample rate
//   --progress              stderr heartbeat (auto-off when not a TTY
//                           unless the flag is given explicitly)
//   --perf                  per-phase hardware counters (Linux
//                           perf_event_open; silently degrades elsewhere)
//   --quick                 smallest configuration only (CI smoke runs)
//   --mega                  additionally run the mega-mesh fixtures (e.g.
//                           bench_engine's n=4096 2D tiled-layout record;
//                           several GB of RSS, minutes of wall time)
//
// Examples register them on their Cli via AddOutputFlags/GetOutputFlags.
// Bench binaries cannot use Cli (google-benchmark parses argv itself), so
// ParseOutputFlags extracts just these flags from argc/argv in place and
// leaves everything else for benchmark::Initialize. Every value flag
// accepts both `--flag=value` and `--flag value`; a trailing value flag
// with no value is a usage error (exit 2).
#pragma once

#include <fstream>
#include <string>

#include "obs/journey.h"
#include "util/cli.h"

namespace mdmesh {

struct OutputFlags {
  std::string json;       ///< empty = no JSON output
  std::string trace_csv;  ///< empty = no congestion-trace CSV
  std::string perfetto;   ///< empty = no Chrome-trace timeline
  /// HTTP port for the live /metrics endpoint: -1 (default) disabled,
  /// 0 ephemeral, > 0 fixed. Parsed from --metrics-port.
  std::int64_t metrics_port = -1;
  std::string status_file;       ///< empty = no periodic status JSON
  std::string flight_recorder;   ///< empty = no black-box dump path
  /// Checkpoint directory (--checkpoint): empty = checkpointing disabled.
  std::string checkpoint;
  /// Checkpoint cadence in steps (--checkpoint-every; 0 keeps the
  /// example's default).
  std::int64_t checkpoint_every = 0;
  /// Generations to keep in the checkpoint dir (--checkpoint-keep).
  std::int64_t checkpoint_keep = 3;
  /// Resume from the newest valid checkpoint in --checkpoint (--resume).
  bool resume = false;
  /// Journey-trace JSONL output path (--journeys): empty = tracing off.
  std::string journeys;
  /// Journey sample rate in per-mille (--journey-rate-pm): 10 = 1% of
  /// packet ids, 1000 = every packet.
  std::int64_t journey_rate_pm = 10;
  /// Seed for the deterministic journey sampler (--journey-seed).
  std::int64_t journey_seed = 0;
  /// Comma-separated packet ids to always trace (--journey-watch).
  std::string journey_watch;
  bool progress = false;         ///< force the stderr heartbeat on
  bool perf = false;             ///< per-phase hardware counters
  bool quick = false;
  /// Opt into the mega-mesh fixtures (multi-GB RSS, minutes of wall time);
  /// off by default so CI smoke loops stay cheap.
  bool mega = false;

  bool WantsJson() const { return !json.empty(); }
  bool WantsTrace() const { return !trace_csv.empty(); }
  bool WantsPerfetto() const { return !perfetto.empty(); }
  bool WantsMetricsEndpoint() const { return metrics_port >= 0; }
  bool WantsStatusFile() const { return !status_file.empty(); }
  bool WantsFlightRecorder() const { return !flight_recorder.empty(); }
  bool WantsCheckpoint() const { return !checkpoint.empty(); }
  bool WantsJourneys() const { return !journeys.empty(); }
  /// True when either live-publisher sink is requested.
  bool WantsPublisher() const {
    return WantsMetricsEndpoint() || WantsStatusFile();
  }
};

/// Registers --json, --trace-csv, --perfetto, --metrics-port,
/// --status-file, --flight-recorder, --checkpoint, --checkpoint-every,
/// --checkpoint-keep, --resume, --progress, --perf, and --quick on `cli`.
void AddOutputFlags(Cli& cli);

/// Reads the flags registered by AddOutputFlags back from a parsed Cli.
OutputFlags GetOutputFlags(const Cli& cli);

/// Builds JourneyTracer::Options from the journey flags: per-mille rate to
/// a [0, 1] fraction, the seed verbatim, and the comma-separated watch
/// list parsed into ids (malformed entries are skipped).
JourneyTracer::Options JourneyOptionsFromFlags(const OutputFlags& flags);

/// Extracts --json/--trace-csv/--perfetto/--quick from argv (uniformly
/// both `--flag=value` and `--flag value` forms for every value flag),
/// compacting argv and updating *argc so that unrecognized flags survive
/// for a downstream parser. A value flag at the end of argv with no value
/// prints an error and exits with status 2.
OutputFlags ParseOutputFlags(int* argc, char** argv);

/// Opens `path` for writing. On failure, prints a clear error naming the
/// responsible flag (e.g. "--json") to stderr and exits with status 1 —
/// a CI run pointing its output at an unwritable path must fail, not
/// silently produce nothing.
std::ofstream OpenOutputFile(const std::string& path, const char* flag);

}  // namespace mdmesh
