#include "obs/probe.h"

namespace mdmesh {

CongestionTrace::CongestionTrace(std::size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {
  samples_.reserve(capacity_);
}

void CongestionTrace::OnStep(const StepSnapshot& snapshot) {
  ++tick_;
  dims_ = snapshot.dims;
  if (tick_ < next_sample_) return;

  Sample s;
  s.step = tick_;
  s.run_step = snapshot.step;
  s.in_flight = snapshot.in_flight;
  s.arrivals = snapshot.arrivals;
  s.moves = snapshot.moves;
  if (snapshot.queue_hist != nullptr) {
    s.queue_p50 = snapshot.queue_hist->Quantile(0.5);
    s.queue_p99 = snapshot.queue_hist->Quantile(0.99);
    s.queue_max = snapshot.queue_hist->Quantile(1.0);
  }
  s.active_procs = snapshot.active_procs;
  s.injected = snapshot.injected;
  if (snapshot.dim_dir_moves != nullptr && snapshot.dims > 0) {
    s.dim_dir_moves.assign(snapshot.dim_dir_moves,
                           snapshot.dim_dir_moves + 2 * snapshot.dims);
  }
  samples_.push_back(std::move(s));
  next_sample_ = tick_ + stride_;

  if (samples_.size() >= capacity_) {
    // Downsample: keep every other sample, double the stride. The retained
    // set still spans the full time axis at half the resolution.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2) {
      if (w != r) samples_[w] = std::move(samples_[r]);  // r==w would self-move
      ++w;
    }
    samples_.resize(w);
    stride_ *= 2;
    next_sample_ = samples_.back().step + stride_;
  }
}

void CongestionTrace::WriteCsv(std::ostream& os) const {
  os << "step,run_step,in_flight,arrivals,moves,queue_p50,queue_p99,queue_max";
  for (int dim = 0; dim < dims_; ++dim) {
    os << ",dim" << dim << "_dec,dim" << dim << "_inc";
  }
  os << ",active_procs,injected\n";
  for (const Sample& s : samples_) {
    os << s.step << ',' << s.run_step << ',' << s.in_flight << ','
       << s.arrivals << ',' << s.moves << ',' << s.queue_p50 << ','
       << s.queue_p99 << ',' << s.queue_max;
    for (int i = 0; i < 2 * dims_; ++i) {
      const std::int64_t v =
          i < static_cast<int>(s.dim_dir_moves.size())
              ? s.dim_dir_moves[static_cast<std::size_t>(i)]
              : 0;
      os << ',' << v;
    }
    os << ',' << s.active_procs << ',' << s.injected << '\n';
  }
}

void CongestionTrace::Clear() {
  samples_.clear();
  stride_ = 1;
  next_sample_ = 1;
  tick_ = 0;
  dims_ = 0;
}

}  // namespace mdmesh
