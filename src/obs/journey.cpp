#include "obs/journey.h"

#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/json.h"

namespace mdmesh {

const char* JourneyEventKindName(std::uint8_t kind) {
  switch (kind) {
    case JourneyEvent::kInjected:
      return "injected";
    case JourneyEvent::kMove:
      return "move";
    case JourneyEvent::kWaitLostBid:
      return "wait_lost_bid";
    case JourneyEvent::kWaitLinksDead:
      return "wait_links_dead";
    default:
      return "unknown";
  }
}

JourneyTracer::JourneyTracer(Options opts) : opts_(std::move(opts)) {
  seed_ = opts_.seed;
  if (opts_.sample_rate >= 1.0) {
    all_ = true;
  } else if (opts_.sample_rate > 0.0) {
    threshold_ = static_cast<std::uint64_t>(
        opts_.sample_rate * 18446744073709551616.0 /* 2^64 */);
  }
  watch_ = opts_.watch;
  std::sort(watch_.begin(), watch_.end());
  watch_.erase(std::unique(watch_.begin(), watch_.end()), watch_.end());
  opts_.max_events = std::max<std::int64_t>(opts_.max_events, 1);
}

void JourneyTracer::RecordInjected(std::int64_t id, std::int64_t proc,
                                   std::int64_t step, std::int32_t dist0,
                                   bool delivered) {
  if (!Sampled(id)) return;
  if (static_cast<std::int64_t>(log_.size()) >= opts_.max_events) {
    truncated_ = true;
    return;
  }
  JourneyEvent ev;
  ev.id = id;
  ev.proc = proc;
  ev.step = step;
  ev.aux = dist0;
  ev.kind = JourneyEvent::kInjected;
  if (delivered) ev.flags = JourneyEvent::kDelivered;
  log_.push_back(ev);
}

void JourneyTracer::BeginRun() {
  log_.clear();
  truncated_ = false;
}

void JourneyTracer::Drain(std::vector<JourneyEvent>* buf) {
  if (!buf->empty()) {
    const std::int64_t room =
        opts_.max_events - static_cast<std::int64_t>(log_.size());
    const std::int64_t take =
        std::min<std::int64_t>(room, static_cast<std::int64_t>(buf->size()));
    if (take < static_cast<std::int64_t>(buf->size())) truncated_ = true;
    if (take > 0) {
      log_.insert(log_.end(), buf->begin(), buf->begin() + take);
    }
    buf->clear();
  }
}

std::shared_ptr<const JourneyLog> JourneyTracer::Finalize(
    std::int64_t final_step) {
  auto out = std::make_shared<JourneyLog>();
  out->final_step = final_step;
  out->truncated = truncated_;
  out->sample_rate = all_ ? 1.0 : opts_.sample_rate;
  out->sample_seed = opts_.seed;
  out->events = std::move(log_);
  log_.clear();
  truncated_ = false;
  // The fused pipeline bids one step past the last commit, so an aborted
  // run carries speculative wait events beyond its final step; dropping
  // them keeps the per-step accounting exact.
  out->events.erase(
      std::remove_if(out->events.begin(), out->events.end(),
                     [final_step](const JourneyEvent& ev) {
                       return ev.step > final_step;
                     }),
      out->events.end());
  // (id, step) is unique — a packet is injected once and thereafter moves
  // xor waits exactly once per step — so this sort is a total order and
  // the result is byte-identical regardless of worker count, drain order,
  // or engine layout.
  std::sort(out->events.begin(), out->events.end(),
            [](const JourneyEvent& a, const JourneyEvent& b) {
              return a.id != b.id ? a.id < b.id : a.step < b.step;
            });
  std::int64_t traced = 0;
  std::int64_t prev = -1;
  for (const JourneyEvent& ev : out->events) {
    if (traced == 0 || ev.id != prev) {
      ++traced;
      prev = ev.id;
    }
  }
  out->traced_packets = traced;
  return out;
}

std::vector<PacketJourney> DecomposeJourneys(const JourneyLog& log, int dims) {
  std::vector<PacketJourney> out;
  const std::size_t n = log.events.size();
  std::size_t i = 0;
  while (i < n) {
    PacketJourney j;
    j.id = log.events[i].id;
    j.first_event = i;
    j.dim_moves.assign(static_cast<std::size_t>(std::max(dims, 0)), 0);
    j.dim_waits.assign(static_cast<std::size_t>(std::max(dims, 0)), 0);
    for (; i < n && log.events[i].id == j.id; ++i) {
      const JourneyEvent& ev = log.events[i];
      j.proc_final = ev.proc;
      switch (ev.kind) {
        case JourneyEvent::kInjected:
          j.injected_step = ev.step;
          j.proc_injected = ev.proc;
          j.dist0 = ev.aux;
          break;
        case JourneyEvent::kMove:
          ++j.moves;
          if ((ev.flags & JourneyEvent::kDetour) != 0) ++j.detour_moves;
          if ((ev.flags & JourneyEvent::kRetarget) != 0) ++j.retargets;
          if (ev.dim >= 0 && ev.dim < dims) {
            ++j.dim_moves[static_cast<std::size_t>(ev.dim)];
          }
          break;
        case JourneyEvent::kWaitLostBid:
          ++j.waits_lost_bid;
          if (ev.dim >= 0 && ev.dim < dims) {
            ++j.dim_waits[static_cast<std::size_t>(ev.dim)];
          }
          break;
        case JourneyEvent::kWaitLinksDead:
        default:
          ++j.waits_links_dead;
          break;
      }
      if ((ev.flags & JourneyEvent::kDelivered) != 0) j.delivery_step = ev.step;
    }
    j.event_count = i - j.first_event;
    out.push_back(std::move(j));
  }
  return out;
}

void WriteJourneysJsonl(const JourneyLog& log, int dims, std::ostream& os) {
  for (const PacketJourney& j : DecomposeJourneys(log, dims)) {
    JsonWriter w(os);
    w.BeginObject();
    w.Key("id").Int(j.id);
    w.Key("injected_step").Int(j.injected_step);
    w.Key("delivery_step").Int(j.delivery_step);
    w.Key("delivered").Bool(j.delivered());
    w.Key("proc_injected").Int(j.proc_injected);
    w.Key("proc_final").Int(j.proc_final);
    w.Key("dist0").Int(j.dist0);
    w.Key("moves").Int(j.moves);
    w.Key("detour_moves").Int(j.detour_moves);
    w.Key("retargets").Int(j.retargets);
    w.Key("dim_moves").BeginArray();
    for (std::int64_t m : j.dim_moves) w.Int(m);
    w.EndArray();
    w.Key("dim_waits").BeginArray();
    for (std::int64_t m : j.dim_waits) w.Int(m);
    w.EndArray();
    w.Key("waits").BeginObject();
    w.Key("lost_bid").Int(j.waits_lost_bid);
    w.Key("links_dead").Int(j.waits_links_dead);
    w.EndObject();
    // Compact per-step record: [step, kind, proc, dim, dir, flags].
    w.Key("events").BeginArray();
    for (std::size_t e = j.first_event; e < j.first_event + j.event_count;
         ++e) {
      const JourneyEvent& ev = log.events[e];
      w.BeginArray();
      w.Int(ev.step);
      w.String(JourneyEventKindName(ev.kind));
      w.Int(ev.proc);
      w.Int(ev.dim);
      w.Int(ev.dir);
      w.Int(ev.flags);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    os << '\n';
  }
}

void ExportJourneysToChromeTrace(const JourneyLog& log, int dims,
                                 ChromeTraceWriter* writer) {
  for (const PacketJourney& j : DecomposeJourneys(log, dims)) {
    // Step clock (1 step = 1 us), matching the "phases (step clock)" and
    // "engine counters" groups. Undelivered journeys span to the run end.
    const double begin_us =
        static_cast<double>(j.complete() ? j.injected_step : 0);
    const double end_us = static_cast<double>(
        j.delivered() ? j.delivery_step : log.final_step);
    std::ostringstream args_os;
    JsonWriter args(args_os);
    args.BeginObject();
    args.Key("dist0").Int(j.dist0);
    args.Key("moves").Int(j.moves);
    args.Key("detour_moves").Int(j.detour_moves);
    args.Key("waits_lost_bid").Int(j.waits_lost_bid);
    args.Key("waits_links_dead").Int(j.waits_links_dead);
    args.Key("delivered").Bool(j.delivered());
    args.EndObject();
    writer->AddAsyncSpan("packet " + std::to_string(j.id), "journey", j.id,
                         begin_us, end_us, ChromeTraceWriter::kPidJourneys, 0,
                         args_os.str());
  }
}

}  // namespace mdmesh
