// Packet-journey tracing: an opt-in, deterministically sampled per-packet
// hop log recorded by the routing engine from all three of its paths
// (legacy fused, unfused checker, tiled/sharded arena).
//
// Suel's step bounds are statements about the worst-case *packet*, but the
// aggregate observability layers (spans, congestion counters, flight
// recorder) cannot say which packet finished last or where it waited. The
// tracer closes that gap: for every traced packet it keeps one compact
// event per step of its life —
//
//   kInjected       the packet entered the network (aux = initial distance)
//   kMove           it crossed a link (dim/dir; kDetour when fault-detoured,
//                   kRetarget on a two-leg midpoint retarget, kDelivered on
//                   the final hop)
//   kWaitLostBid    it bid for a link and lost the farthest-first contention
//                   (dim/dir = the contested link)
//   kWaitLinksDead  every useful outgoing link was dead this step
//
// Because a packet in flight either moves or waits exactly once per step,
// the decomposition is exact:
//
//   delivery_step - injection_step = sum(moves) + sum(waits)
//
// which splits the measured latency into distance terms (per dimension)
// and contention/fault terms (per wait reason) — the identity the
// critical-path analyzer (obs/critical_path.h) and the CI validator
// (scripts/check_perf_regression.py validate-journeys) both pin.
//
// Determinism: sampling is a pure function of (packet id, seed), events
// carry unique (id, step) keys, and Finalize sorts by that key — so the
// trace is byte-identical for any thread count, any engine layout, and
// both traversal modes. Recording is allocation-free in steady state: hot
// paths push into per-worker buffers (EngineWorkerScratch::events) that
// the coordinator drains between steps, so buffers stay small and warm.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace mdmesh {

class ChromeTraceWriter;

/// One step of one traced packet's life. 32 bytes; (id, step) is unique.
struct JourneyEvent {
  enum Kind : std::uint8_t {
    kInjected = 0,       ///< entered the network (aux = initial distance)
    kMove = 1,           ///< crossed link (dim, dir)
    kWaitLostBid = 2,    ///< lost the farthest-first bid on link (dim, dir)
    kWaitLinksDead = 3,  ///< all useful outgoing links dead this step
  };
  enum Flag : std::uint8_t {
    kDetour = 1,     ///< this move was a fault detour (off the greedy path)
    kRetarget = 2,   ///< two-leg midpoint reached; dest retargeted
    kDelivered = 4,  ///< the packet reached its destination on this event
  };

  std::int64_t id = 0;    ///< packet id
  std::int64_t proc = 0;  ///< processor (kMove: arrival proc; waits: holder)
  std::int64_t step = 0;  ///< engine step (kInjected: normalized t0)
  std::int32_t aux = 0;   ///< kInjected: initial distance to destination
  std::uint8_t kind = kInjected;
  std::int8_t dim = -1;  ///< mesh dimension (-1: injected / no live link)
  std::int8_t dir = 0;   ///< 1 = +, 0 = -
  std::uint8_t flags = 0;
};

const char* JourneyEventKindName(std::uint8_t kind);

/// A finished run's trace: events sorted by (id, step), plus run framing.
struct JourneyLog {
  std::vector<JourneyEvent> events;
  std::int64_t final_step = 0;      ///< the run's last completed step
  std::int64_t traced_packets = 0;  ///< distinct packet ids in `events`
  /// The max_events cap fired: the tail of the run is missing, and the
  /// cross-thread-count byte-identity guarantee is forfeited for this log.
  bool truncated = false;
  double sample_rate = 0.0;
  std::uint64_t sample_seed = 0;
};

/// The recording side. One tracer serves one Engine::Route call at a time
/// (BeginRun ... Drain* ... Finalize); Sampled/Record* are safe to call
/// concurrently from worker threads as long as each thread records into
/// its own buffer.
class JourneyTracer {
 public:
  struct Options {
    /// Fraction of packet ids traced (deterministic hash of id ^ seed).
    /// >= 1 traces everything; <= 0 traces only the watch list.
    double sample_rate = 0.01;
    std::uint64_t seed = 0;
    /// Packet ids always traced regardless of the sample rate — the
    /// two-run forensics workflow: run once sampled, find the critical
    /// packet id, re-run with it watched for its full journey.
    std::vector<std::int64_t> watch;
    /// Hard cap on recorded events (memory safety valve). When it fires
    /// the log is marked truncated.
    std::int64_t max_events = std::int64_t{1} << 22;
  };

  explicit JourneyTracer(Options opts);

  /// Pure function of (id, seed, watch): identical across threads, runs,
  /// and engine layouts.
  bool Sampled(std::int64_t id) const {
    if (all_) return true;
    if (Mix(static_cast<std::uint64_t>(id) ^ seed_) < threshold_) return true;
    return !watch_.empty() &&
           std::binary_search(watch_.begin(), watch_.end(), id);
  }

  /// Worker-side: the packet held still this step. `buf` is the calling
  /// worker's private event buffer.
  void RecordWait(std::vector<JourneyEvent>& buf, std::int64_t id,
                  std::int64_t proc, std::int64_t step, std::uint8_t kind,
                  int dim, int dir) const {
    if (!Sampled(id)) return;
    JourneyEvent ev;
    ev.id = id;
    ev.proc = proc;
    ev.step = step;
    ev.kind = kind;
    ev.dim = static_cast<std::int8_t>(dim);
    ev.dir = static_cast<std::int8_t>(dir);
    buf.push_back(ev);
  }

  /// Worker-side: the packet crossed a link this step, arriving at `proc`.
  void RecordMove(std::vector<JourneyEvent>& buf, std::int64_t id,
                  std::int64_t proc, std::int64_t step, int dim, int dir,
                  std::uint8_t flags) const {
    if (!Sampled(id)) return;
    JourneyEvent ev;
    ev.id = id;
    ev.proc = proc;
    ev.step = step;
    ev.kind = JourneyEvent::kMove;
    ev.dim = static_cast<std::int8_t>(dim);
    ev.dir = static_cast<std::int8_t>(dir);
    ev.flags = flags;
    buf.push_back(ev);
  }

  /// Coordinator-side: the packet entered the network. `step` is the
  /// normalized injection time t0 (0 for preloads, injection step - 1 for
  /// injector-driven packets), so delivery - t0 = moves + waits uniformly.
  void RecordInjected(std::int64_t id, std::int64_t proc, std::int64_t step,
                      std::int32_t dist0, bool delivered);

  /// Clears run state; called by the engine at the top of every route.
  void BeginRun();

  /// Coordinator-side, between steps: appends a worker buffer's events to
  /// the run log (subject to max_events) and clears the buffer.
  void Drain(std::vector<JourneyEvent>* buf);

  /// Sorts by (id, step), drops events recorded past `final_step` (the
  /// fused pipeline bids one step ahead, so an aborted run has speculative
  /// wait events beyond its last completed step), and returns the log.
  std::shared_ptr<const JourneyLog> Finalize(std::int64_t final_step);

  const Options& options() const { return opts_; }

 private:
  // splitmix64 finalizer: full-avalanche 64-bit mix.
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  Options opts_;
  std::uint64_t seed_ = 0;
  std::uint64_t threshold_ = 0;  ///< sample iff Mix(id ^ seed) < threshold
  bool all_ = false;
  std::vector<std::int64_t> watch_;  ///< sorted for binary_search
  std::vector<JourneyEvent> log_;
  bool truncated_ = false;
};

/// One traced packet's journey, decomposed from its event slice.
struct PacketJourney {
  std::int64_t id = 0;
  /// Normalized injection time t0; -1 when the log has no kInjected event
  /// for this packet (a resumed run traces only post-resume steps).
  std::int64_t injected_step = -1;
  std::int64_t delivery_step = -1;  ///< -1 = not delivered in this run
  std::int64_t proc_injected = -1;
  std::int64_t proc_final = -1;  ///< last proc seen (dest when delivered)
  std::int32_t dist0 = -1;       ///< initial distance (-1 without injection)
  std::int64_t moves = 0;
  std::int64_t detour_moves = 0;
  std::int64_t retargets = 0;
  std::int64_t waits_lost_bid = 0;
  std::int64_t waits_links_dead = 0;
  std::vector<std::int64_t> dim_moves;  ///< per-dimension move counts
  std::vector<std::int64_t> dim_waits;  ///< per-dimension lost-bid waits
  std::size_t first_event = 0;  ///< slice into JourneyLog::events
  std::size_t event_count = 0;

  bool delivered() const { return delivery_step >= 0; }
  bool complete() const { return injected_step >= 0; }
  std::int64_t waits() const { return waits_lost_bid + waits_links_dead; }
  std::int64_t latency() const { return delivery_step - injected_step; }
  /// The exact decomposition the subsystem exists to provide. Vacuously
  /// true for partial (resumed) or undelivered journeys.
  bool IdentityHolds() const {
    return !complete() || !delivered() || latency() == moves + waits();
  }
};

/// Groups a finalized log into per-packet journeys (one pass; the log is
/// already sorted by id). `dims` sizes the per-dimension vectors.
std::vector<PacketJourney> DecomposeJourneys(const JourneyLog& log, int dims);

/// JSONL export: one JSON object per traced packet (decomposition plus the
/// compact event list) — the format validate-journeys checks.
void WriteJourneysJsonl(const JourneyLog& log, int dims, std::ostream& os);

/// Joins the Perfetto timeline: one async span per traced packet (pid 5,
/// "packet journeys") from injection to delivery on the step clock, with
/// the decomposition attached as args.
void ExportJourneysToChromeTrace(const JourneyLog& log, int dims,
                                 ChromeTraceWriter* writer);

}  // namespace mdmesh
