// Hardware phase profiling via Linux perf_event_open: cycles, instructions,
// cache misses, and branch misses, read as running totals and differenced
// around TraceContext spans so every algorithm phase reports IPC and miss
// rates next to its wall time.
//
// Design constraints, in order:
//   * Zero dependencies — raw perf_event_open syscall, no libpfm.
//   * Graceful degradation — off Linux this compiles to a stub; on Linux
//     without perf permissions (perf_event_paranoid, seccomp'd containers,
//     VMs without a PMU) Open() simply reports false and every consumer
//     carries on without hardware columns. Nothing in the repo *requires*
//     the counters to exist.
//   * Robust to partial availability — each event gets its own fd rather
//     than one perf group, so a machine that exposes cycles but not cache
//     misses (common on VMs) still yields the events it has. Reads use
//     PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING and scale for multiplexing.
//
// Counters measure the calling thread (the engine coordinator). Workers'
// cycles are not attributed — the point is per-*phase* comparison (which
// pipeline stage is memory-bound), not whole-process accounting.
#pragma once

#include <cstdint>
#include <string>

namespace mdmesh {

/// One reading (or delta) of the hardware counters. -1 means the event was
/// unavailable; consumers must treat each field independently.
struct PerfSample {
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t cache_misses = -1;
  std::int64_t branch_misses = -1;

  /// True when at least one event carries data.
  bool any() const {
    return cycles >= 0 || instructions >= 0 || cache_misses >= 0 ||
           branch_misses >= 0;
  }

  /// Instructions per cycle; -1 when either input is unavailable or cycles
  /// is zero.
  double ipc() const {
    if (cycles <= 0 || instructions < 0) return -1.0;
    return static_cast<double>(instructions) / static_cast<double>(cycles);
  }

  /// this - base, per event; an event missing on either side stays -1.
  PerfSample DeltaFrom(const PerfSample& base) const;
};

class PerfCounters {
 public:
  PerfCounters() = default;
  ~PerfCounters() { Close(); }

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// Compile-time support (true only on Linux). Runtime availability is
  /// what Open() answers.
  static bool Supported();

  /// Opens the per-event fds for the calling thread. Returns true when at
  /// least one event opened; false (silently — callers decide whether to
  /// warn) when none could. Idempotent: re-opening while active is a no-op
  /// returning active().
  bool Open();

  void Close();

  /// True when at least one event fd is live.
  bool active() const { return active_; }

  /// Current running totals (multiplex-scaled). Events that failed to open
  /// or fail to read report -1.
  PerfSample Read() const;

  /// Human-readable one-liner for why counters are unavailable ("" when
  /// active or never opened).
  const std::string& error() const { return error_; }

 private:
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
  bool active_ = false;
  std::string error_;
};

}  // namespace mdmesh
