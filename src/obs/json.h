// Minimal streaming JSON writer (no external deps), used by the tracing and
// bench-output sinks. Emits RFC 8259 JSON: the writer tracks the container
// stack and inserts commas, so callers only describe structure:
//
//   JsonWriter w(os);
//   w.BeginObject().Key("steps").Int(190).Key("phases").BeginArray()
//    .EndArray().EndObject();
//
// Doubles that are NaN or infinite are emitted as null (JSON has no literal
// for them); all strings are escaped.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mdmesh {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  /// indent = 0 writes compact JSON; > 0 pretty-prints with that many
  /// spaces per nesting level.
  explicit JsonWriter(std::ostream& os, int indent = 0);

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices a pre-serialized JSON value verbatim (caller guarantees
  /// validity) — used to nest independently built fragments.
  JsonWriter& Raw(std::string_view json);

  /// True once every opened container has been closed and a value written.
  bool Done() const { return stack_.empty() && wrote_value_; }

 private:
  void BeforeValue();
  void NewlineIndent();

  std::ostream* os_;
  int indent_;
  struct Level {
    bool is_object;
    bool empty = true;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
  bool wrote_value_ = false;
};

}  // namespace mdmesh
