// Critical-path analysis over a finalized JourneyLog: which packet made
// the run as long as it was, and why.
//
// For every traced journey the decomposition (obs/journey.h) splits the
// measured latency exactly into per-dimension moves and per-reason waits.
// This module aggregates those decompositions into a run-level report:
//
//   - the last-delivered traced packet (the measured critical path): its
//     full distance-vs-contention split, and whether it *is* the run's
//     critical packet (its delivery step equals the run's step count — at
//     sample rates < 1 the true last packet may not have been traced)
//   - the p99-latency traced packet — the "why" behind the latency report's
//     p99 number
//   - a bound_gap block comparing the measured step count against the
//     instance's lower bounds (reusing src/bounds/): the realized maximum
//     source-destination distance and the k-k bisection bound. The gap is
//     then attributable: the critical journey's wait terms say how much of
//     it was contention (lost bids) vs faults (dead-link holds and detour
//     hops) vs scheduling slack.
//
// Everything here is derived data — deterministic given the log, cheap
// (one pass over the events), and safe to compute on the engine epilogue.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "meshsim/topology.h"
#include "obs/journey.h"

namespace mdmesh {

class JsonWriter;

struct CriticalPathReport {
  int dims = 0;
  std::int64_t run_steps = 0;

  std::int64_t traced = 0;            ///< journeys decomposed
  std::int64_t traced_delivered = 0;  ///< of those, delivered with injection
  /// Journeys violating delivery - injection = moves + waits. Always 0 on
  /// a healthy engine; surfaced so the validator can pin it.
  std::int64_t identity_violations = 0;

  bool have_last = false;
  PacketJourney last;  ///< latest delivery among traced (ties: smaller id)
  /// True when `last` finished on the run's final step, i.e. the measured
  /// critical packet was inside the sample.
  bool critical_traced = false;

  bool have_p99 = false;
  PacketJourney p99;  ///< the p99 order statistic of traced latencies

  // Aggregates over traced delivered journeys.
  std::int64_t total_moves = 0;
  std::int64_t total_detour_moves = 0;
  std::int64_t total_waits_lost_bid = 0;
  std::int64_t total_waits_links_dead = 0;
  std::vector<std::int64_t> dim_moves;
  std::vector<std::int64_t> dim_waits;

  // Bound gap: measured steps vs the instance's lower bounds.
  std::int64_t distance_lb = 0;   ///< max source-destination distance
  std::int64_t bisection_lb = 0;  ///< ceil of the k-k bisection bound
  std::int64_t lower_bound = 0;   ///< max of the above
  std::int64_t bound_gap = 0;     ///< run_steps - lower_bound

  void WriteJson(JsonWriter& w) const;
};

/// Builds the report. `packets` and `max_distance` describe the whole
/// instance (RouteResult::packets / max_distance), not just the traced
/// sample: they anchor the lower bounds even when sampling is sparse.
CriticalPathReport BuildCriticalPathReport(const JourneyLog& log,
                                           const Topology& topo,
                                           std::int64_t run_steps,
                                           std::int64_t packets,
                                           std::int64_t max_distance);

/// Convenience used by the engine epilogue.
std::shared_ptr<const CriticalPathReport> BuildCriticalPathReportShared(
    const JourneyLog& log, const Topology& topo, std::int64_t run_steps,
    std::int64_t packets, std::int64_t max_distance);

}  // namespace mdmesh
