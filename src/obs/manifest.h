// Run manifest: the self-description embedded at the top of every JSON and
// Chrome-trace artifact so an output file alone identifies the run that
// produced it — topology shape, seed, thread count, build type, engine
// traversal mode, and a hash of the engine options that influence routing.
//
// The manifest is a plain value type (ints and strings) so it can live in
// the obs layer without depending on the mesh or engine headers; the engine
// provides MakeRunManifest(topo, opts) (net/engine.h) to fill it from live
// options, and benches overwrite seed/binary with their own run parameters.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"

namespace mdmesh {

struct RunManifest {
  int schema_version = 1;
  std::string tool = "mdmesh";

  // Topology shape; d == 0 means "no single topology" (e.g. a bench that
  // sweeps several specs under one artifact).
  int d = 0;
  int n = 0;
  bool torus = false;

  std::uint64_t seed = 0;
  unsigned threads = 0;       ///< worker threads (0 = serial coordinator)
  std::string build_type;     ///< "debug" or "release" (from NDEBUG)
  std::string sparse_mode;    ///< "auto", "always", or "never"
  std::string layout;         ///< packet storage: "auto", "legacy", "tiled"
  /// FNV-1a hex digest over the routing-relevant engine options (step cap,
  /// sparse policy, fault plan presence, ...). Empty when unknown.
  std::string engine_options_hash;
  std::string binary;         ///< producing binary, e.g. "bench_workloads"

  /// Serializes every field as one JSON object.
  void WriteJson(JsonWriter& w) const;
  std::string ToJson() const;
};

/// "debug" when NDEBUG is undefined, "release" otherwise — recorded so a
/// trace artifact is never mistaken for a perf-comparable run when it came
/// out of a debug build.
const char* BuildTypeName();

}  // namespace mdmesh
