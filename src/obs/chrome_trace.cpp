#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "obs/output.h"

namespace mdmesh {
namespace {

/// Serializes one event through a JsonWriter; every event carries ph, ts,
/// pid, and tid so downstream schema checks can be uniform.
class EventBuilder {
 public:
  EventBuilder(const char* ph, double ts_us, int pid, int tid) : w_(os_) {
    w_.BeginObject();
    w_.Key("ph").String(ph);
    w_.Key("ts").Double(ts_us);
    w_.Key("pid").Int(pid);
    w_.Key("tid").Int(tid);
  }

  EventBuilder& Name(const std::string& name) {
    w_.Key("name").String(name);
    return *this;
  }

  EventBuilder& Cat(const char* cat) {
    w_.Key("cat").String(cat);
    return *this;
  }

  EventBuilder& Dur(double us) {
    w_.Key("dur").Double(us);
    return *this;
  }

  EventBuilder& Id(std::int64_t id) {
    w_.Key("id").Int(id);
    return *this;
  }

  EventBuilder& RawArgs(const std::string& args_json) {
    w_.Key("args").Raw(args_json);
    return *this;
  }

  JsonWriter& Args() {
    w_.Key("args").BeginObject();
    args_open_ = true;
    return w_;
  }

  std::string Finish() {
    if (args_open_) w_.EndObject();
    w_.EndObject();
    return os_.str();
  }

 private:
  std::ostringstream os_;
  JsonWriter w_;
  bool args_open_ = false;
};

const char* StageName(std::uint8_t stage) {
  switch (stage) {
    case 1:
      return "stage1";
    case 2:
      return "stage2";
    default:
      return "parallel_for";
  }
}

double ToUs(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(RunManifest manifest)
    : manifest_(std::move(manifest)) {
  AddMeta("process_name", kPidPhasesWall, 0, "phases (wall clock)");
  AddMeta("process_name", kPidPhasesSteps, 0, "phases (step clock)");
  AddMeta("process_name", kPidCounters, 0, "engine counters");
  AddMeta("process_name", kPidWorkers, 0, "thread pool");
  AddMeta("process_name", kPidJourneys, 0, "packet journeys");
}

void ChromeTraceWriter::AddMeta(const char* kind, int pid, int tid,
                                const std::string& name) {
  EventBuilder ev("M", 0.0, pid, tid);
  ev.Name(kind);
  JsonWriter& args = ev.Args();
  args.Key("name").String(name);
  events_.push_back(ev.Finish());
}

void ChromeTraceWriter::AddDuration(const std::string& name, double begin_us,
                                    double end_us, int pid, int tid) {
  if (end_us < begin_us) end_us = begin_us;
  EventBuilder begin("B", begin_us, pid, tid);
  begin.Name(name).Cat("phase");
  events_.push_back(begin.Finish());
  EventBuilder end("E", end_us, pid, tid);
  end.Name(name).Cat("phase");
  events_.push_back(end.Finish());
}

void ChromeTraceWriter::AddInstant(const std::string& name, double ts_us,
                                   int pid, int tid) {
  EventBuilder ev("i", ts_us, pid, tid);
  ev.Name(name).Cat("marker");
  JsonWriter& args = ev.Args();
  // Instant scope "t" keeps the marker on its own track instead of
  // spanning the whole group.
  args.Key("s").String("t");
  events_.push_back(ev.Finish());
}

void ChromeTraceWriter::AddAsyncSpan(const std::string& name, const char* cat,
                                     std::int64_t id, double begin_us,
                                     double end_us, int pid, int tid,
                                     const std::string& args_json) {
  if (end_us < begin_us) end_us = begin_us;
  EventBuilder begin("b", begin_us, pid, tid);
  begin.Name(name).Cat(cat).Id(id);
  if (!args_json.empty()) begin.RawArgs(args_json);
  events_.push_back(begin.Finish());
  EventBuilder end("e", end_us, pid, tid);
  end.Name(name).Cat(cat).Id(id);
  events_.push_back(end.Finish());
}

void ChromeTraceWriter::AddCounter(const std::string& series, double ts_us,
                                   std::int64_t value) {
  EventBuilder ev("C", ts_us, kPidCounters, 0);
  ev.Name(series);
  JsonWriter& args = ev.Args();
  args.Key(series).Int(value);
  events_.push_back(ev.Finish());
  counter_names_.insert(series);
}

void ChromeTraceWriter::AddSpanNode(const TraceContext& ctx, std::size_t node,
                                    int tid) {
  const TraceContext::Node& n = ctx.nodes()[node];
  if (n.perf.any()) {
    // Hardware-counter deltas ride on the wall-clock B event's args, where
    // Perfetto's span details pane surfaces them.
    double begin_us = n.begin_ms * 1000.0;
    double end_us = std::max(n.end_ms * 1000.0, begin_us);
    EventBuilder begin("B", begin_us, kPidPhasesWall, tid);
    begin.Name(n.name).Cat("phase");
    JsonWriter& args = begin.Args();
    if (n.perf.cycles >= 0) args.Key("cycles").Int(n.perf.cycles);
    if (n.perf.instructions >= 0) {
      args.Key("instructions").Int(n.perf.instructions);
    }
    if (n.perf.cache_misses >= 0) {
      args.Key("cache_misses").Int(n.perf.cache_misses);
    }
    if (n.perf.branch_misses >= 0) {
      args.Key("branch_misses").Int(n.perf.branch_misses);
    }
    if (n.perf.ipc() >= 0) args.Key("ipc").Double(n.perf.ipc());
    events_.push_back(begin.Finish());
    EventBuilder end("E", end_us, kPidPhasesWall, tid);
    end.Name(n.name).Cat("phase");
    events_.push_back(end.Finish());
  } else {
    AddDuration(n.name, n.begin_ms * 1000.0, n.end_ms * 1000.0,
                kPidPhasesWall, tid);
  }
  AddDuration(n.name, static_cast<double>(n.begin_steps),
              static_cast<double>(n.end_steps), kPidPhasesSteps, tid);
  for (const std::size_t child : n.children) AddSpanNode(ctx, child, tid);
}

void ChromeTraceWriter::AddSpanTree(const TraceContext& ctx) {
  if (!have_wall_origin_) {
    wall_origin_ = ctx.origin();
    have_wall_origin_ = true;
  }
  int tid = 1;
  for (const std::size_t top : ctx.nodes()[0].children) {
    const std::string& name = ctx.nodes()[top].name;
    AddMeta("thread_name", kPidPhasesWall, tid, name);
    AddMeta("thread_name", kPidPhasesSteps, tid, name);
    AddSpanNode(ctx, top, tid);
    ++tid;
  }
}

void ChromeTraceWriter::AddCounters(const CongestionTrace& trace) {
  const int dims = trace.dims();
  for (const CongestionTrace::Sample& s : trace.samples()) {
    const double ts = static_cast<double>(s.step);
    AddCounter("in_flight", ts, s.in_flight);
    AddCounter("arrivals", ts, s.arrivals);
    AddCounter("moves", ts, s.moves);
    AddCounter("queue_p50", ts, s.queue_p50);
    AddCounter("queue_p99", ts, s.queue_p99);
    AddCounter("queue_max", ts, s.queue_max);
    AddCounter("injected", ts, s.injected);
    if (s.active_procs >= 0) AddCounter("active_procs", ts, s.active_procs);
    for (int dim = 0; dim < dims; ++dim) {
      for (int dir = 0; dir < 2; ++dir) {
        const std::size_t idx = static_cast<std::size_t>(dim * 2 + dir);
        if (idx >= s.dim_dir_moves.size()) continue;
        std::ostringstream name;
        name << "moves.dim" << dim << (dir == 0 ? "-" : "+");
        AddCounter(name.str(), ts, s.dim_dir_moves[idx]);
      }
    }
  }
}

void ChromeTraceWriter::AddWorkerActivity(const ThreadPoolActivity& activity) {
  // Without a span tree to align against, zero the axis at the earliest
  // recorded interval.
  if (!have_wall_origin_) {
    bool first = true;
    for (const auto& lane : activity.lanes()) {
      for (const ThreadPoolActivity::Interval& iv : lane) {
        if (first || iv.t0 < wall_origin_) wall_origin_ = iv.t0;
        first = false;
      }
    }
    if (first) return;  // nothing recorded
    have_wall_origin_ = true;
  }
  for (std::size_t lane = 0; lane < activity.lanes().size(); ++lane) {
    const int tid = static_cast<int>(lane);
    AddMeta("thread_name", kPidWorkers, tid,
            lane == 0 ? "coordinator" : "worker " + std::to_string(lane));
    for (const ThreadPoolActivity::Interval& iv : activity.lanes()[lane]) {
      const double begin_us = ToUs(iv.t0 - wall_origin_);
      const double end_us = ToUs(iv.t1 - wall_origin_);
      EventBuilder ev("X", begin_us, kPidWorkers, tid);
      ev.Name(StageName(iv.stage))
          .Cat("dispatch")
          .Dur(std::max(0.0, end_us - begin_us));
      JsonWriter& args = ev.Args();
      args.Key("items").Int(iv.end - iv.begin);
      args.Key("begin").Int(iv.begin);
      events_.push_back(ev.Finish());
    }
  }
  if (activity.dropped() > 0) {
    AddInstant("activity_log_capped", 0.0, kPidWorkers, 0);
  }
}

void ChromeTraceWriter::Write(std::ostream& os) const {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"metadata\": {\"manifest\": "
     << manifest_.ToJson() << "},\n\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    os << events_[i];
    if (i + 1 < events_.size()) os << ',';
    os << '\n';
  }
  os << "]}\n";
}

void ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::ofstream out = OpenOutputFile(path, "--perfetto");
  Write(out);
  out.flush();
  if (!out) {
    std::cerr << "error: failed writing --perfetto=" << path << '\n';
    std::exit(1);
  }
  std::cerr << "ChromeTraceWriter: wrote " << events_.size()
            << " event(s) to " << path << '\n';
}

}  // namespace mdmesh
