#include "obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace mdmesh {

void SpanStats::Merge(const SpanStats& other) {
  steps += other.steps;
  local_steps += other.local_steps;
  moves += other.moves;
  max_queue = std::max(max_queue, other.max_queue);
  max_overshoot = std::max(max_overshoot, other.max_overshoot);
  wall_ms += other.wall_ms;
}

Span::Span(Span&& other) noexcept : ctx_(other.ctx_), node_(other.node_) {
  other.ctx_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Close();
    ctx_ = other.ctx_;
    node_ = other.node_;
    other.ctx_ = nullptr;
  }
  return *this;
}

Span::~Span() { Close(); }

void Span::Record(const SpanStats& stats) {
  if (ctx_ == nullptr) return;
  ctx_->nodes_[node_].stats.Merge(stats);
  // Advance the context's simulated-step clock: recorded steps (and charged
  // local steps) extend the timeline, so the span's close stamps an
  // end_steps that places the phase on the step axis.
  ctx_->step_cursor_ += stats.steps + stats.local_steps;
}

void Span::RecordRouting(std::int64_t steps, std::int64_t moves,
                         std::int64_t max_queue, std::int64_t max_overshoot) {
  SpanStats s;
  s.steps = steps;
  s.moves = moves;
  s.max_queue = max_queue;
  s.max_overshoot = max_overshoot;
  Record(s);
}

void Span::RecordLocal(std::int64_t local_steps, std::int64_t max_queue) {
  SpanStats s;
  s.local_steps = local_steps;
  s.max_queue = max_queue;
  Record(s);
}

void Span::Close() {
  if (ctx_ == nullptr) return;
  TraceContext* ctx = ctx_;
  ctx_ = nullptr;
  // Wall time is measured open-to-close; Record() only adds counters.
  const auto now = std::chrono::steady_clock::now();
  double ms = 0.0;
  for (std::size_t i = ctx->open_.size(); i-- > 1;) {
    if (ctx->open_[i] == node_) {
      ms = std::chrono::duration<double, std::milli>(now -
                                                     ctx->open_start_[i])
               .count();
      break;
    }
  }
  ctx->CloseNode(node_, ms, now);
}

TraceContext::TraceContext() : origin_(std::chrono::steady_clock::now()) {
  nodes_.push_back(Node{});
  open_.push_back(0);
  open_start_.push_back(origin_);
  open_perf_.push_back(PerfSample{});
}

bool TraceContext::EnablePerfCounters() {
  if (perf_ == nullptr) perf_ = std::make_unique<PerfCounters>();
  return perf_->Open();
}

Span TraceContext::Open(std::string name) {
  const std::size_t idx = nodes_.size();
  const auto now = std::chrono::steady_clock::now();
  Node node;
  node.name = std::move(name);
  node.parent = open_.back();
  node.begin_ms = std::chrono::duration<double, std::milli>(now - origin_).count();
  node.begin_steps = step_cursor_;
  nodes_.push_back(std::move(node));
  nodes_[open_.back()].children.push_back(idx);
  open_.push_back(idx);
  open_start_.push_back(now);
  open_perf_.push_back(perf_enabled() ? perf_->Read() : PerfSample{});
  return Span(this, idx);
}

void TraceContext::CloseNode(std::size_t node, double wall_ms,
                             std::chrono::steady_clock::time_point now) {
  nodes_[node].stats.wall_ms += wall_ms;
  nodes_[node].end_ms =
      std::chrono::duration<double, std::milli>(now - origin_).count();
  nodes_[node].end_steps = step_cursor_;
  // Well-nested RAII spans close in LIFO order; tolerate out-of-order
  // closes by popping through (inner spans were already abandoned).
  while (open_.size() > 1) {
    const std::size_t top = open_.back();
    const PerfSample at_open = open_perf_.back();
    open_.pop_back();
    open_start_.pop_back();
    open_perf_.pop_back();
    if (top == node) {
      if (perf_enabled()) {
        nodes_[node].perf = perf_->Read().DeltaFrom(at_open);
      }
      break;
    }
  }
}

SpanStats TraceContext::Totals() const {
  SpanStats total;
  for (std::size_t i = 1; i < nodes_.size(); ++i) total.Merge(nodes_[i].stats);
  return total;
}

SpanStats TraceContext::Rollup(std::size_t node) const {
  SpanStats total = nodes_[node].stats;
  for (const std::size_t child : nodes_[node].children) {
    SpanStats sub = Rollup(child);
    total.steps += sub.steps;
    total.local_steps += sub.local_steps;
    total.moves += sub.moves;
    total.max_queue = std::max(total.max_queue, sub.max_queue);
    total.max_overshoot = std::max(total.max_overshoot, sub.max_overshoot);
    // Child wall time nests inside the parent's open-to-close window; do
    // not double count it.
  }
  return total;
}

std::string TraceContext::RenderTree(std::int64_t diameter) const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %8s %8s %10s %6s %7s %8s%s\n",
                "span", "steps", "local", "moves", "max_q", "oversh",
                "wall_ms", diameter > 0 ? "  steps/D" : "");
  os << line;
  // Depth-first over the explicit child lists keeps sibling order.
  struct Frame {
    std::size_t node;
    int depth;
  };
  std::vector<Frame> stack;
  const auto& top = nodes_[0].children;
  for (std::size_t i = top.size(); i-- > 0;) stack.push_back({top[i], 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    const SpanStats roll = Rollup(f.node);
    std::string label(static_cast<std::size_t>(2 * f.depth), ' ');
    label += node.name;
    if (label.size() > 32) label.resize(32);
    std::snprintf(line, sizeof(line), "%-32s %8lld %8lld %10lld %6lld %7lld %8.1f",
                  label.c_str(), static_cast<long long>(roll.steps),
                  static_cast<long long>(roll.local_steps),
                  static_cast<long long>(roll.moves),
                  static_cast<long long>(roll.max_queue),
                  static_cast<long long>(roll.max_overshoot), roll.wall_ms);
    os << line;
    if (diameter > 0) {
      std::snprintf(line, sizeof(line), "  %7.3f",
                    static_cast<double>(roll.steps) /
                        static_cast<double>(diameter));
      os << line;
    }
    os << '\n';
    for (std::size_t i = node.children.size(); i-- > 0;) {
      stack.push_back({node.children[i], f.depth + 1});
    }
  }
  return os.str();
}

void TraceContext::WriteNode(JsonWriter& w, std::size_t node) const {
  const Node& n = nodes_[node];
  w.BeginObject();
  w.Key("name").String(n.name);
  w.Key("steps").Int(n.stats.steps);
  w.Key("local_steps").Int(n.stats.local_steps);
  w.Key("moves").Int(n.stats.moves);
  w.Key("max_queue").Int(n.stats.max_queue);
  w.Key("max_overshoot").Int(n.stats.max_overshoot);
  w.Key("wall_ms").Double(n.stats.wall_ms);
  w.Key("begin_ms").Double(n.begin_ms);
  w.Key("end_ms").Double(n.end_ms);
  w.Key("begin_steps").Int(n.begin_steps);
  w.Key("end_steps").Int(n.end_steps);
  if (n.perf.any()) {
    w.Key("perf").BeginObject();
    if (n.perf.cycles >= 0) w.Key("cycles").Int(n.perf.cycles);
    if (n.perf.instructions >= 0) {
      w.Key("instructions").Int(n.perf.instructions);
    }
    if (n.perf.cache_misses >= 0) {
      w.Key("cache_misses").Int(n.perf.cache_misses);
    }
    if (n.perf.branch_misses >= 0) {
      w.Key("branch_misses").Int(n.perf.branch_misses);
    }
    if (n.perf.ipc() >= 0) w.Key("ipc").Double(n.perf.ipc());
    w.EndObject();
  }
  if (!n.children.empty()) {
    w.Key("children").BeginArray();
    for (const std::size_t child : n.children) WriteNode(w, child);
    w.EndArray();
  }
  w.EndObject();
}

void TraceContext::WriteJson(JsonWriter& w) const {
  w.BeginArray();
  for (const std::size_t child : nodes_[0].children) WriteNode(w, child);
  w.EndArray();
}

std::string TraceContext::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  return os.str();
}

void TraceContext::Clear() {
  nodes_.clear();
  open_.clear();
  open_start_.clear();
  open_perf_.clear();
  origin_ = std::chrono::steady_clock::now();
  step_cursor_ = 0;
  nodes_.push_back(Node{});
  open_.push_back(0);
  open_start_.push_back(origin_);
  open_perf_.push_back(PerfSample{});
}

}  // namespace mdmesh
