// MetricsRegistry: named counters, gauges, and histograms shared by the
// engine, the workload driver, and the fault paths, so subsystems stop
// growing ad-hoc result fields for every new measurement.
//
// Counters are built for the engine's threading model: Add() goes to one of
// kShards cache-line-padded cells selected by a process-wide thread index,
// so concurrent workers almost never touch the same line, and the rare
// collision is still safe (relaxed atomics — counters are commutative
// sums, no ordering needed). Total() folds the shards on read. Gauges are
// coordinator-side last-write-wins values. Histograms shard a
// QuantileHistogram per cell behind a per-cell mutex (uncontended in
// practice; the engine only records histograms from the coordinator).
//
// Registration (counter()/gauge()/histogram()) takes a registry-wide mutex
// and returns a stable reference — callers look a metric up once and hold
// the reference across the hot loop. A null MetricsRegistry* anywhere in
// the engine options costs nothing: every recording site is behind a
// pointer check evaluated once per Route call, not per step.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.h"
#include "util/stats.h"

namespace mdmesh {

class MetricsRegistry {
 public:
  static constexpr std::size_t kShards = 16;  // power of two (mask select)

  /// Sharded monotonic counter. Thread-safe; totals fold on read.
  class Counter {
   public:
    void Add(std::int64_t v);
    void Increment() { Add(1); }
    std::int64_t Total() const;

   private:
    struct alignas(64) Cell {
      std::atomic<std::int64_t> v{0};
    };
    std::array<Cell, kShards> cells_;
  };

  /// Last-write-wins value (peaks, configuration echoes). Thread-safe via
  /// relaxed atomics; intended for coordinator-side writes.
  class Gauge {
   public:
    void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void Max(std::int64_t v);  ///< monotone raise (peak tracking)
    std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<std::int64_t> v_{0};
  };

  /// Sharded quantile histogram (constant memory, see util/stats.h).
  class Hist {
   public:
    void Add(std::int64_t value);
    /// Folds a whole pre-built histogram in (e.g. a driver's latency
    /// histogram at end of run).
    void Merge(const QuantileHistogram& other);
    /// Snapshot of all shards merged.
    QuantileHistogram Merged() const;

   private:
    struct alignas(64) Cell {
      mutable std::mutex mu;
      QuantileHistogram hist;
    };
    std::array<Cell, kShards> cells_;
  };

  /// Lookup-or-create by name; the returned reference stays valid for the
  /// registry's lifetime. Takes the registry mutex — resolve once, not in
  /// hot loops.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Hist& histogram(const std::string& name);

  /// One JSON object, keys sorted: counters/gauges as integers, histograms
  /// as {count, min, max, mean, p50, p95, p99}.
  void WriteJson(JsonWriter& w) const;
  std::string ToJson() const;

  /// Prometheus text exposition (format 0.0.4): counters as `<prefix>_<name>`
  /// counter samples, gauges as gauges, histograms as summaries (quantile
  /// labels + _sum-less _count). Metric names are sanitized (`.` and any
  /// other non-[a-zA-Z0-9_] byte become `_`). The /metrics endpoint and the
  /// status-file publisher both render through here.
  void WritePrometheus(std::ostream& os,
                       const std::string& prefix = "mdmesh") const;
  std::string ToPrometheus(const std::string& prefix = "mdmesh") const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Hist>> hists_;
};

}  // namespace mdmesh
