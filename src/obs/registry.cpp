#include "obs/registry.h"

#include <sstream>

namespace mdmesh {
namespace {

/// Process-wide dense thread index: each thread that ever records into a
/// sharded metric gets the next integer, so up to kShards concurrent
/// threads map to distinct cells (beyond that, cells are shared but stay
/// correct through the atomics).
std::size_t ShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx & (MetricsRegistry::kShards - 1);
}

}  // namespace

void MetricsRegistry::Counter::Add(std::int64_t v) {
  cells_[ShardIndex()].v.fetch_add(v, std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::Counter::Total() const {
  std::int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void MetricsRegistry::Gauge::Max(std::int64_t v) {
  std::int64_t cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::Hist::Add(std::int64_t value) {
  Cell& cell = cells_[ShardIndex()];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.hist.Add(value);
}

void MetricsRegistry::Hist::Merge(const QuantileHistogram& other) {
  Cell& cell = cells_[ShardIndex()];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.hist.Merge(other);
}

QuantileHistogram MetricsRegistry::Hist::Merged() const {
  QuantileHistogram out;
  for (const Cell& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell.mu);
    out.Merge(cell.hist);
  }
  return out;
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

MetricsRegistry::Hist& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = hists_[name];
  if (slot == nullptr) slot = std::make_unique<Hist>();
  return *slot;
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).Int(counter->Total());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Int(gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : hists_) {
    const QuantileHistogram merged = hist->Merged();
    w.Key(name).BeginObject();
    w.Key("count").Int(merged.count());
    w.Key("min").Int(merged.min());
    w.Key("max").Int(merged.max());
    w.Key("mean").Double(merged.mean());
    w.Key("p50").Double(merged.Quantile(0.5));
    w.Key("p95").Double(merged.Quantile(0.95));
    w.Key("p99").Double(merged.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; the registry
/// uses dotted names, so map every out-of-alphabet byte to '_'.
std::string PromName(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& os,
                                      const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PromName(prefix, name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << ' ' << counter->Total() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PromName(prefix, name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << ' ' << gauge->Value() << '\n';
  }
  for (const auto& [name, hist] : hists_) {
    const QuantileHistogram merged = hist->Merged();
    const std::string prom = PromName(prefix, name);
    os << "# TYPE " << prom << " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      os << prom << "{quantile=\"" << q << "\"} " << merged.Quantile(q)
         << '\n';
    }
    os << prom << "_count " << merged.count() << '\n';
  }
}

std::string MetricsRegistry::ToPrometheus(const std::string& prefix) const {
  std::ostringstream os;
  WritePrometheus(os, prefix);
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  return os.str();
}

}  // namespace mdmesh
