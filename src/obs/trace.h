// Phase spans: hierarchical attribution of a run's step counts.
//
// Every theorem in the paper has the form cD + o(n), proved by decomposing
// the algorithm into named phases whose step counts add up. A TraceContext
// captures that decomposition at runtime: algorithms open an RAII Span
// around each routing/compute phase ("local-sort", "phase_a_route", ...),
// record the phase's measurements into it, and the context keeps the spans
// as a tree. RenderTree() prints the tree with per-span steps/D so measured
// totals can be checked phase-by-phase against the proof's decomposition;
// WriteJson() serializes the same tree for the bench JSON sink.
//
// A default-constructed (null) Span ignores every call, so algorithms thread
// an optional TraceContext* through their options and pay nothing when it is
// absent. Spans must be closed in LIFO order (the RAII handle guarantees
// this); a TraceContext is not thread-safe — open spans from one thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/perf_counters.h"

namespace mdmesh {

class TraceContext;

/// What a phase span accumulates. Step counts follow the sorting layer's
/// split: `steps` are synchronous routing steps (the Theta(D) leading term),
/// `local_steps` are charged local-computation steps (the o(n) term).
struct SpanStats {
  std::int64_t steps = 0;
  std::int64_t local_steps = 0;
  std::int64_t moves = 0;
  std::int64_t max_queue = 0;
  std::int64_t max_overshoot = 0;
  double wall_ms = 0.0;

  /// Adds counters; maxima take the max, wall times add.
  void Merge(const SpanStats& other);
};

/// RAII handle for one open phase. Move-only; the destructor closes the
/// span (stamping wall-clock time) if Close() was not called explicitly.
class Span {
 public:
  Span() = default;  ///< null span: every operation is a no-op
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  explicit operator bool() const { return ctx_ != nullptr; }

  /// Folds measurements into the span (counters add, maxima max).
  void Record(const SpanStats& stats);
  void RecordRouting(std::int64_t steps, std::int64_t moves,
                     std::int64_t max_queue, std::int64_t max_overshoot);
  void RecordLocal(std::int64_t local_steps, std::int64_t max_queue);

  /// Closes the span now (idempotent). Children must already be closed.
  void Close();

 private:
  friend class TraceContext;
  Span(TraceContext* ctx, std::size_t node) : ctx_(ctx), node_(node) {}

  TraceContext* ctx_ = nullptr;
  std::size_t node_ = 0;
};

class TraceContext {
 public:
  struct Node {
    std::string name;
    SpanStats stats;
    std::size_t parent = 0;  ///< index into nodes(); 0 is the virtual root
    std::vector<std::size_t> children;
    /// Timeline placement: wall-clock offsets from context creation (ms,
    /// stamped at Open/Close) and the simulated-step clock interval — the
    /// context keeps a running step cursor that each span's recorded
    /// steps + local_steps advance, so phases can be laid out on a
    /// simulated time axis as well. end_ms < 0 means "still open".
    double begin_ms = 0.0;
    double end_ms = -1.0;
    std::int64_t begin_steps = 0;
    std::int64_t end_steps = 0;
    /// Hardware-counter delta across the span's open-to-close window (all
    /// fields -1 unless EnablePerfCounters() succeeded). Nested spans
    /// overlap their parents by construction — the counters are running
    /// thread totals differenced per span, not partitioned.
    PerfSample perf;
  };

  TraceContext();

  /// Opens a span nested under the innermost currently open span.
  Span Open(std::string name);

  /// Null-safe variant: returns a null Span when ctx is null.
  static Span OpenIf(TraceContext* ctx, std::string name) {
    return ctx != nullptr ? ctx->Open(std::move(name)) : Span();
  }

  /// nodes()[0] is a virtual root whose children are the top-level spans.
  const std::vector<Node>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.size() == 1; }

  /// Sum over the whole tree, counting each span's own recorded stats once.
  SpanStats Totals() const;

  /// ASCII tree: one row per span with its rolled-up stats (own + children).
  /// When `diameter` > 0 a steps/D column is included — the number to check
  /// against the paper's per-phase coefficients.
  std::string RenderTree(std::int64_t diameter = 0) const;

  /// Serializes the top-level spans as a JSON array of
  /// {name, steps, local_steps, moves, max_queue, max_overshoot, wall_ms,
  ///  begin_ms, end_ms, begin_steps, end_steps, children:[...]} objects.
  void WriteJson(JsonWriter& w) const;
  std::string ToJson() const;

  /// Drops all recorded spans (open spans must not outlive this).
  void Clear();

  /// Simulated-step clock: total steps + local_steps recorded so far.
  std::int64_t step_cursor() const { return step_cursor_; }

  /// Wall-clock origin every node's begin_ms/end_ms is relative to —
  /// timeline exporters align other clocks (e.g. thread-pool activity)
  /// against it.
  std::chrono::steady_clock::time_point origin() const { return origin_; }

  /// Opt-in hardware counters (obs/perf_counters.h): once enabled, every
  /// subsequently opened span carries a cycles/instructions/cache-miss/
  /// branch-miss delta in its Node. Returns false — leaving the context
  /// fully functional without hardware columns — off Linux or when the
  /// kernel denies perf_event_open; perf_error() says why.
  bool EnablePerfCounters();
  bool perf_enabled() const { return perf_ != nullptr && perf_->active(); }
  std::string perf_error() const { return perf_ ? perf_->error() : ""; }

 private:
  friend class Span;
  void CloseNode(std::size_t node, double wall_ms,
                 std::chrono::steady_clock::time_point now);
  /// Stats of `node` plus all descendants.
  SpanStats Rollup(std::size_t node) const;
  void WriteNode(JsonWriter& w, std::size_t node) const;

  std::vector<Node> nodes_;
  std::vector<std::size_t> open_;  ///< stack of open node indices; [0] = root
  std::vector<std::chrono::steady_clock::time_point> open_start_;
  std::vector<PerfSample> open_perf_;  ///< counter totals at span open
  std::chrono::steady_clock::time_point origin_;  ///< context creation time
  std::int64_t step_cursor_ = 0;  ///< simulated-step clock (steps + local)
  std::unique_ptr<PerfCounters> perf_;  ///< non-null once enabled
};

}  // namespace mdmesh
