// Black-box flight recorder: a constant-memory ring buffer of the most
// recent engine step records, so a run that dies — stall watchdog, step
// cap, invariant failure, or a SIGINT/SIGTERM landing mid-campaign — leaves
// behind the step history that explains it instead of only its final state.
//
// The engine (net/engine.h, EngineOptions::recorder) appends one fixed-size
// FlightRecord per step from the coordinator thread. The ring is allocated
// once up front and Append never allocates or locks, so the recorder is safe
// to leave attached to billion-step runs; when the buffer wraps, the oldest
// records fall off and `dropped()` counts them. Routing behavior is
// untouched: the determinism tests pin that delivery traces are
// byte-identical with and without a recorder attached.
//
// Dumping: Dump()/WriteJson() serialize a self-describing artifact —
// {"manifest": ..., "reason": ..., "step": ..., "records": [...]} — with
// the run manifest heading it, the same convention as every other artifact
// in the repo. Dump writes to a temporary file and renames it into place so
// a half-written artifact is never observed. The engine dumps automatically
// (when a dump path is set) on watchdog abort, step-cap abort, invariant
// failure, and interrupt; `scripts/check_perf_regression.py validate-flight`
// schema-checks the artifact in CI.
//
// Signals: InstallSignalHandlers() registers SIGINT/SIGTERM handlers that
// only set a process-wide flag (the only async-signal-safe thing to do).
// The engine polls InterruptRequested() once per step while a recorder is
// attached and aborts the Route with StallReason::kInterrupt, which
// triggers the dump on the normal (signal-free) code path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"

namespace mdmesh {

/// One engine step, as recorded after delivery. Fixed size — the ring is a
/// flat array of these. `dir_moves` is only populated (dims > 0) when the
/// engine is counting per-direction moves; the recorder asks for them, so
/// recorder-attached runs always fill it.
struct FlightRecord {
  /// Per-dimension move counters cover up to this many dimensions (matches
  /// the topology layer's kMaxDim; static_asserted at the engine).
  static constexpr int kMaxDims = 10;

  std::int64_t step = 0;          ///< 1-based step within the Route call
  std::int64_t in_flight = 0;     ///< packets not yet delivered, post-step
  std::int64_t arrivals = 0;      ///< packets that arrived this step
  std::int64_t moves = 0;         ///< link crossings this step
  std::int64_t injected = 0;      ///< injector arrivals this step
  std::int64_t active_procs = -1; ///< sparse active-set size (-1: dense)
  std::int64_t queue_max = 0;     ///< peak queue among processors committed
  std::int32_t dims = 0;          ///< entries used in dir_moves (2 * dims)
  std::int64_t dir_moves[2 * kMaxDims] = {};  ///< indexed dim * 2 + dir

  void WriteJson(JsonWriter& w) const;
};

class FlightRecorder {
 public:
  /// `capacity` records are retained (most recent wins); the buffer is
  /// allocated here, once.
  explicit FlightRecorder(std::size_t capacity = 4096);

  /// Appends one record, overwriting the oldest when full. Coordinator
  /// thread only; never allocates.
  void Append(const FlightRecord& rec);

  /// Records currently retained (<= capacity).
  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  /// Records appended over the recorder's lifetime.
  std::int64_t total_records() const { return total_; }
  /// Records that fell off the ring (total - retained).
  std::int64_t dropped() const;

  /// The last `k` records (fewer if the ring holds fewer), oldest first.
  std::vector<FlightRecord> Tail(std::size_t k) const;
  /// Most recent record; Append must have run at least once.
  const FlightRecord& Last() const;

  void Clear();

  /// Stamped by the engine at the start of every Route so a dump is
  /// self-describing even when the run dies mid-flight.
  void set_manifest(const RunManifest& m) { manifest_ = m; }
  const RunManifest& manifest() const { return manifest_; }

  /// Where Dump() writes. Empty (the default) disables automatic dumping.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  /// {"manifest": ..., "reason": reason, "step": <last step>, "dropped": n,
  ///  "records": [...]} — records oldest first.
  void WriteJson(JsonWriter& w, const std::string& reason) const;
  std::string ToJson(const std::string& reason) const;

  /// Serializes to `dump_path() + ".tmp"` and renames into place (atomic on
  /// POSIX), so readers never see a torn artifact. Returns false (with a
  /// stderr diagnostic) when no path is set or the write fails — a dying
  /// run must not die harder because its black box could not be written.
  bool Dump(const std::string& reason) const;

  // -- Interrupt flag (SIGINT/SIGTERM) --------------------------------------
  //
  // The handlers only set an atomic flag; everything else happens on the
  // engine coordinator at the next step boundary. Install once per process
  // (idempotent); tests drive the flag directly with RequestInterrupt().

  static void InstallSignalHandlers();
  static bool InterruptRequested() {
    return interrupt_flag().load(std::memory_order_relaxed);
  }
  static void RequestInterrupt() {
    interrupt_flag().store(true, std::memory_order_relaxed);
  }
  static void ClearInterrupt() {
    interrupt_flag().store(false, std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool>& interrupt_flag();

  std::vector<FlightRecord> ring_;
  std::size_t head_ = 0;       ///< next write position
  std::int64_t total_ = 0;     ///< lifetime appends
  RunManifest manifest_;
  std::string dump_path_;
};

}  // namespace mdmesh
