#include "obs/publisher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/atomic_file.h"
#include "util/net.h"

#if defined(_WIN32)
// No POSIX sockets / isatty here; the publisher degrades to status-file
// only and the progress meter defaults off.
#else
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mdmesh {
namespace {

std::int64_t SteadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// MetricsPublisher
// ---------------------------------------------------------------------------

bool MetricsPublisher::Start(const Options& opts) {
  if (running_.load(std::memory_order_acquire)) {
    std::fprintf(stderr, "metrics publisher: already running\n");
    return false;
  }
  if (opts.registry == nullptr) {
    std::fprintf(stderr, "metrics publisher: no registry attached\n");
    return false;
  }
  opts_ = opts;
  listen_fd_ = -1;
  port_ = -1;

#if !defined(_WIN32)
  if (opts_.port >= 0) {
    // Shared helper (util/net.h): loopback bind with the service-grade
    // backlog — the old backlog of 8 was sized for a single scraper and
    // refused connections under concurrent-client bursts.
    std::string bind_error;
    listen_fd_ =
        ListenLoopback(opts_.port, kListenBacklog, &port_, &bind_error);
    if (listen_fd_ < 0) {
      std::fprintf(stderr, "metrics publisher: %s\n", bind_error.c_str());
      return false;
    }
  }
#else
  if (opts_.port >= 0) {
    std::fprintf(stderr,
                 "metrics publisher: HTTP endpoint unavailable on this "
                 "platform; serving status file only\n");
  }
#endif

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void MetricsPublisher::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
#if !defined(_WIN32)
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
#endif
  // Final snapshot so the file shows end-of-run totals, not the last tick.
  WriteStatusFile();
  port_ = -1;
}

std::string MetricsPublisher::StatusJson() const {
  std::ostringstream os;
  JsonWriter w(os, 1);
  w.BeginObject();
  if (opts_.manifest != nullptr) {
    w.Key("manifest");
    opts_.manifest->WriteJson(w);
  }
  w.Key("metrics");
  opts_.registry->WriteJson(w);
  w.EndObject();
  os << '\n';
  return os.str();
}

void MetricsPublisher::WriteStatusFile() {
  if (opts_.status_file.empty() || opts_.registry == nullptr) return;
  // Atomic rename (shared util/atomic_file.h): `watch cat` and scrapers
  // never observe a half-written snapshot.
  std::string error;
  if (!WriteFileAtomic(opts_.status_file, StatusJson(), &error)) {
    std::fprintf(stderr, "metrics publisher: %s\n", error.c_str());
    return;
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

#if !defined(_WIN32)
void MetricsPublisher::ServeOne(int client_fd) {
  char buf[2048];
  const ssize_t n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string request(buf);

  std::string body;
  std::string content_type;
  std::string status = "200 OK";
  if (request.rfind("GET /metrics", 0) == 0) {
    body = opts_.registry->ToPrometheus();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (request.rfind("GET /status", 0) == 0) {
    body = StatusJson();
    content_type = "application/json";
  } else {
    status = "404 Not Found";
    body = "not found\n";
    content_type = "text/plain";
  }

  std::ostringstream resp;
  resp << "HTTP/1.1 " << status << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
  const std::string out = resp.str();
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t k = ::send(client_fd, out.data() + sent, out.size() - sent,
                             0);
    if (k <= 0) break;
    sent += static_cast<std::size_t>(k);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}
#else
void MetricsPublisher::ServeOne(int) {}
#endif

void MetricsPublisher::Run() {
  std::int64_t next_snapshot_ms = SteadyMs();
  // Escalating fd-exhaustion backoff, reset on the next successful accept.
  int backoff_ms = 10;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::int64_t now = SteadyMs();
    if (now >= next_snapshot_ms) {
      WriteStatusFile();
      next_snapshot_ms =
          now + (opts_.interval_ms > 0 ? opts_.interval_ms : 1000);
    }
#if !defined(_WIN32)
    if (listen_fd_ >= 0) {
      pollfd pfd{};
      pfd.fd = listen_fd_;
      pfd.events = POLLIN;
      // Short poll timeout keeps both Stop() and the snapshot cadence
      // responsive without spinning.
      const int r = ::poll(&pfd, 1, 50);
      if (r > 0 && (pfd.revents & POLLIN) != 0) {
        // Hardened accept (util/net.h): EINTR retries inside, fd
        // exhaustion backs off with a diagnostic instead of silently
        // dropping the connection (it stays queued in the backlog), and
        // only a genuinely broken listener tears the endpoint down.
        int client = -1;
        std::string diag;
        switch (AcceptClient(listen_fd_, &client, &diag)) {
          case AcceptStatus::kAccepted:
            backoff_ms = 10;
            ServeOne(client);
            ::close(client);
            break;
          case AcceptStatus::kRetry:
            break;
          case AcceptStatus::kExhausted:
            accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "metrics publisher: %s\n", diag.c_str());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            if (backoff_ms < 1000) backoff_ms *= 2;
            break;
          case AcceptStatus::kFatal:
            std::fprintf(stderr,
                         "metrics publisher: %s; serving status file only\n",
                         diag.c_str());
            ::close(listen_fd_);
            listen_fd_ = -1;
            break;
        }
      }
      continue;
    }
#endif
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

// ---------------------------------------------------------------------------
// ProgressMeter
// ---------------------------------------------------------------------------

bool ProgressMeter::StderrIsTty() {
#if defined(_WIN32)
  return false;
#else
  return ::isatty(2) != 0;
#endif
}

ProgressMeter::ProgressMeter(std::int64_t step_cap, std::int64_t interval_ms,
                             bool force)
    : step_cap_(step_cap),
      interval_ms_(interval_ms > 0 ? interval_ms : 500),
      enabled_(force || StderrIsTty()),
      start_ms_(SteadyMs()) {
  last_emit_ms_ = start_ms_;
}

void ProgressMeter::Emit(std::int64_t step, std::int64_t in_flight,
                         double steps_per_sec) {
  char line[256];
  if (step_cap_ > 0 && steps_per_sec > 0.0) {
    const double eta_s = static_cast<double>(step_cap_ - step) /
                         steps_per_sec;
    std::snprintf(line, sizeof(line),
                  "[progress] step %lld/%lld  in-flight %lld  %.0f steps/s  "
                  "eta %.1fs",
                  static_cast<long long>(step),
                  static_cast<long long>(step_cap_),
                  static_cast<long long>(in_flight), steps_per_sec,
                  eta_s > 0 ? eta_s : 0.0);
  } else {
    std::snprintf(line, sizeof(line),
                  "[progress] step %lld  in-flight %lld  %.0f steps/s",
                  static_cast<long long>(step),
                  static_cast<long long>(in_flight), steps_per_sec);
  }
  last_line_ = line;
  ++lines_;
  if (enabled_) std::fprintf(stderr, "%s\n", line);
}

void ProgressMeter::Step(std::int64_t step, std::int64_t in_flight,
                         std::int64_t arrivals) {
  delivered_total_ += arrivals;
  if (finished_) return;
  const std::int64_t now = SteadyMs();
  if (now - last_emit_ms_ < interval_ms_) return;
  const double dt_s =
      static_cast<double>(now - last_emit_ms_) / 1000.0;
  const double rate =
      dt_s > 0 ? static_cast<double>(step - last_emit_step_) / dt_s : 0.0;
  Emit(step, in_flight, rate);
  last_emit_ms_ = now;
  last_emit_step_ = step;
}

std::function<void(std::int64_t, std::int64_t, std::int64_t)>
ProgressMeter::Observer() {
  return [this](std::int64_t step, std::int64_t in_flight,
                std::int64_t arrivals) { Step(step, in_flight, arrivals); };
}

void ProgressMeter::Finish() {
  if (finished_) return;
  finished_ = true;
  const double total_s =
      static_cast<double>(SteadyMs() - start_ms_) / 1000.0;
  char line[256];
  std::snprintf(line, sizeof(line),
                "[progress] done: %lld delivered in %.2fs",
                static_cast<long long>(delivered_total_), total_s);
  last_line_ = line;
  ++lines_;
  if (enabled_) std::fprintf(stderr, "%s\n", line);
}

}  // namespace mdmesh
