#include "obs/manifest.h"

#include <sstream>

namespace mdmesh {

const char* BuildTypeName() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

void RunManifest::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("schema_version").Int(schema_version);
  w.Key("tool").String(tool);
  w.Key("d").Int(d);
  w.Key("n").Int(n);
  w.Key("wrap").String(torus ? "torus" : "mesh");
  w.Key("seed").UInt(seed);
  w.Key("threads").UInt(threads);
  w.Key("build_type").String(build_type.empty() ? BuildTypeName() : build_type);
  w.Key("sparse_mode").String(sparse_mode);
  if (!layout.empty()) w.Key("layout").String(layout);
  w.Key("engine_options_hash").String(engine_options_hash);
  if (!binary.empty()) w.Key("binary").String(binary);
  w.EndObject();
}

std::string RunManifest::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  return os.str();
}

}  // namespace mdmesh
