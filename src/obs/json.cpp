#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace mdmesh {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(&os), indent_(indent) {}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  *os_ << '\n';
  const auto depth = static_cast<int>(stack_.size());
  for (int i = 0; i < depth * indent_; ++i) *os_ << ' ';
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!stack_.back().empty) *os_ << ',';
    stack_.back().empty = false;
    NewlineIndent();
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  *os_ << '{';
  stack_.push_back(Level{true});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) NewlineIndent();
  *os_ << '}';
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  *os_ << '[';
  stack_.push_back(Level{false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) NewlineIndent();
  *os_ << ']';
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!stack_.empty()) {
    if (!stack_.back().empty) *os_ << ',';
    stack_.back().empty = false;
    NewlineIndent();
  }
  *os_ << '"' << JsonEscape(key) << "\":";
  if (indent_ > 0) *os_ << ' ';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  *os_ << '"' << JsonEscape(value) << '"';
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  *os_ << value;
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  *os_ << value;
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    *os_ << buf;
  } else {
    *os_ << "null";
  }
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  *os_ << (value ? "true" : "false");
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  *os_ << "null";
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  *os_ << json;
  wrote_value_ = true;
  return *this;
}

}  // namespace mdmesh
