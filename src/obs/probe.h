// Per-step engine instrumentation: the StepProbe interface the engine calls
// after every synchronous step, and CongestionTrace, the standard probe that
// keeps a bounded time series of congestion measurements.
//
// The probe sees what the booksim-style simulators export per cycle: packets
// in flight, arrivals, packet-moves split per directed dimension link, and a
// queue-occupancy histogram. A null probe costs the engine nothing; the
// per-dimension counters and the histogram are only collected when a probe
// is attached (and, for the histogram, only when the probe asks for it).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/stats.h"

namespace mdmesh {

/// One synchronous step, as observed after delivery. Pointers are valid only
/// for the duration of the OnStep call.
struct StepSnapshot {
  std::int64_t step = 0;       ///< 1-based step index within this Route call
  std::int64_t in_flight = 0;  ///< packets not yet at their final destination
  std::int64_t arrivals = 0;   ///< packets that arrived during this step
  std::int64_t moves = 0;      ///< packet-moves across links this step
  int dims = 0;                ///< topology dimension d
  /// Moves per directed dimension link class, 2*dims entries indexed
  /// dim*2 + dir (dir 0 = decreasing, 1 = increasing); null if dims == 0.
  const std::int64_t* dim_dir_moves = nullptr;
  /// Queue-occupancy histogram over all processors (bucket = queue length),
  /// or null when the probe did not request it.
  const Histogram* queue_hist = nullptr;
  /// Processors holding in-flight packets, as tracked by the engine's
  /// sparse active-set path; -1 when the step ran the dense full-mesh
  /// sweep (which does not maintain the set).
  std::int64_t active_procs = -1;
  /// Packets injected this step by a StepInjector (0 on one-shot runs).
  std::int64_t injected = 0;
};

class StepProbe {
 public:
  virtual ~StepProbe() = default;

  /// Histograms cost an O(N) pass per step; probes opt in.
  virtual bool WantsQueueHistogram() const { return false; }

  virtual void OnStep(const StepSnapshot& snapshot) = 0;
};

/// Bounded congestion time series. Samples every `stride()` steps; when the
/// buffer fills, every other retained sample is dropped and the stride
/// doubles, so a million-step run still fits in `capacity` samples while
/// covering the whole time axis. Step indices are accumulated across Route
/// calls, so a multi-phase algorithm produces one continuous series.
class CongestionTrace final : public StepProbe {
 public:
  struct Sample {
    std::int64_t step = 0;      ///< cumulative step across all Route calls
    std::int64_t run_step = 0;  ///< step within the Route call that produced it
    std::int64_t in_flight = 0;
    std::int64_t arrivals = 0;
    std::int64_t moves = 0;
    std::int64_t queue_p50 = 0;
    std::int64_t queue_p99 = 0;
    std::int64_t queue_max = 0;
    std::int64_t active_procs = -1;  ///< sparse active-set size (-1: dense)
    std::int64_t injected = 0;       ///< packets injected this step
    std::vector<std::int64_t> dim_dir_moves;  ///< 2*dims entries
  };

  explicit CongestionTrace(std::size_t capacity = 4096);

  bool WantsQueueHistogram() const override { return true; }
  void OnStep(const StepSnapshot& snapshot) override;

  const std::vector<Sample>& samples() const { return samples_; }
  std::int64_t stride() const { return stride_; }
  int dims() const { return dims_; }
  std::int64_t total_steps() const { return tick_; }

  /// CSV dump, one row per retained sample:
  /// step,run_step,in_flight,arrivals,moves,queue_p50,queue_p99,queue_max,
  /// dim0_dec,dim0_inc,dim1_dec,...,active_procs,injected
  void WriteCsv(std::ostream& os) const;

  void Clear();

 private:
  std::size_t capacity_;
  std::int64_t stride_ = 1;
  std::int64_t next_sample_ = 1;  ///< next cumulative step to retain
  std::int64_t tick_ = 0;
  int dims_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace mdmesh
