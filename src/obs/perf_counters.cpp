#include "obs/perf_counters.h"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mdmesh {

PerfSample PerfSample::DeltaFrom(const PerfSample& base) const {
  PerfSample d;
  if (cycles >= 0 && base.cycles >= 0) d.cycles = cycles - base.cycles;
  if (instructions >= 0 && base.instructions >= 0) {
    d.instructions = instructions - base.instructions;
  }
  if (cache_misses >= 0 && base.cache_misses >= 0) {
    d.cache_misses = cache_misses - base.cache_misses;
  }
  if (branch_misses >= 0 && base.branch_misses >= 0) {
    d.branch_misses = branch_misses - base.branch_misses;
  }
  return d;
}

#if defined(__linux__)

namespace {

constexpr std::uint64_t kEventConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int OpenEvent(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // lowers the perf_event_paranoid bar
  attr.exclude_hv = 1;
  // TIME_ENABLED/TIME_RUNNING let us scale away multiplexing when more
  // events are requested than the PMU has counters for.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU. No group leader — each event
  // stands alone so partial PMU support still yields what exists.
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::int64_t ReadScaled(int fd) {
  if (fd < 0) return -1;
  struct {
    std::uint64_t value;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
  } data;
  if (::read(fd, &data, sizeof(data)) != sizeof(data)) return -1;
  if (data.time_running == 0) return 0;
  if (data.time_running >= data.time_enabled) {
    return static_cast<std::int64_t>(data.value);
  }
  const double scale = static_cast<double>(data.time_enabled) /
                       static_cast<double>(data.time_running);
  return static_cast<std::int64_t>(static_cast<double>(data.value) * scale);
}

}  // namespace

bool PerfCounters::Supported() { return true; }

bool PerfCounters::Open() {
  if (active_) return true;
  int opened = 0;
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = OpenEvent(kEventConfigs[i]);
    if (fds_[i] >= 0) {
      ::ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
      ::ioctl(fds_[i], PERF_EVENT_IOC_ENABLE, 0);
      ++opened;
    }
  }
  if (opened == 0) {
    error_ = std::string("perf_event_open failed: ") + std::strerror(errno) +
             " (check /proc/sys/kernel/perf_event_paranoid)";
    return false;
  }
  active_ = true;
  error_.clear();
  return true;
}

void PerfCounters::Close() {
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] >= 0) {
      ::close(fds_[i]);
      fds_[i] = -1;
    }
  }
  active_ = false;
}

PerfSample PerfCounters::Read() const {
  PerfSample s;
  if (!active_) return s;
  s.cycles = ReadScaled(fds_[0]);
  s.instructions = ReadScaled(fds_[1]);
  s.cache_misses = ReadScaled(fds_[2]);
  s.branch_misses = ReadScaled(fds_[3]);
  return s;
}

#else  // !__linux__

bool PerfCounters::Supported() { return false; }

bool PerfCounters::Open() {
  error_ = "hardware counters require Linux perf_event_open";
  return false;
}

void PerfCounters::Close() { active_ = false; }

PerfSample PerfCounters::Read() const { return PerfSample(); }

#endif

}  // namespace mdmesh
