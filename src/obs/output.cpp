#include "obs/output.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mdmesh {

std::ofstream OpenOutputFile(const std::string& path, const char* flag) {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    // ofstream sets errno through the underlying open(2); surfacing its
    // text turns "cannot open" into an actionable message (ENOENT vs
    // EACCES vs EROFS need different fixes).
    std::fprintf(stderr, "error: cannot open %s=%s for writing: %s\n", flag,
                 path.c_str(),
                 errno != 0 ? std::strerror(errno) : "unknown error");
    std::exit(1);
  }
  return out;
}

void AddOutputFlags(Cli& cli) {
  cli.AddString("--json", "",
                "write experiment records to this path (JSON array; .jsonl "
                "for one record per line)");
  cli.AddString("--trace-csv", "",
                "write the per-step congestion trace to this CSV path");
  cli.AddString("--perfetto", "",
                "write a Chrome Trace Event JSON timeline to this path "
                "(open in ui.perfetto.dev)");
  cli.AddInt("--metrics-port", -1,
             "serve Prometheus text at 127.0.0.1:PORT/metrics during the "
             "run (0 = OS-assigned ephemeral port; -1 disables)");
  cli.AddString("--status-file", "",
                "periodically write a status JSON snapshot to this path "
                "(atomically renamed into place)");
  cli.AddString("--flight-recorder", "",
                "dump the engine's black-box step ring to this path when a "
                "run aborts (watchdog, step cap, invariant, interrupt)");
  cli.AddString("--checkpoint", "",
                "write engine checkpoints (versioned, CRC-checksummed, "
                "atomically renamed) into this directory");
  cli.AddInt("--checkpoint-every", 0,
             "checkpoint cadence in completed steps (0 = the example's "
             "default cadence)");
  cli.AddInt("--checkpoint-keep", 3,
             "checkpoint generations to keep before rotating old ones out");
  cli.AddBool("--resume", false,
              "resume from the newest valid checkpoint in --checkpoint "
              "instead of starting fresh");
  cli.AddString("--journeys", "",
                "write per-packet journey records (JSONL, one traced packet "
                "per line) to this path after the run");
  cli.AddInt("--journey-rate-pm", 10,
             "journey sample rate in per-mille of packet ids (10 = 1%, "
             "1000 = every packet)");
  cli.AddInt("--journey-seed", 0,
             "seed for the deterministic journey sampler");
  cli.AddString("--journey-watch", "",
                "comma-separated packet ids to always trace, regardless of "
                "the sample rate");
  cli.AddBool("--progress", false,
              "stderr heartbeat with step, in-flight, and steps/sec");
  cli.AddBool("--perf", false,
              "collect per-phase hardware counters via perf_event_open "
              "(Linux only; degrades gracefully elsewhere)");
  cli.AddBool("--quick", false, "smallest configuration only (CI smoke runs)");
  cli.AddBool("--mega", false,
              "additionally run the mega-mesh fixtures (several GB of RSS, "
              "minutes of wall time)");
}

OutputFlags GetOutputFlags(const Cli& cli) {
  OutputFlags flags;
  flags.json = cli.GetString("json");
  flags.trace_csv = cli.GetString("trace-csv");
  flags.perfetto = cli.GetString("perfetto");
  flags.metrics_port = cli.GetInt("metrics-port");
  flags.status_file = cli.GetString("status-file");
  flags.flight_recorder = cli.GetString("flight-recorder");
  flags.checkpoint = cli.GetString("checkpoint");
  flags.checkpoint_every = cli.GetInt("checkpoint-every");
  flags.checkpoint_keep = cli.GetInt("checkpoint-keep");
  flags.resume = cli.GetBool("resume");
  flags.journeys = cli.GetString("journeys");
  flags.journey_rate_pm = cli.GetInt("journey-rate-pm");
  flags.journey_seed = cli.GetInt("journey-seed");
  flags.journey_watch = cli.GetString("journey-watch");
  flags.progress = cli.GetBool("progress");
  flags.perf = cli.GetBool("perf");
  flags.quick = cli.GetBool("quick");
  flags.mega = cli.GetBool("mega");
  return flags;
}

OutputFlags ParseOutputFlags(int* argc, char** argv) {
  OutputFlags flags;
  // One table drives every value flag so the two accepted forms
  // (--flag=value, --flag value) cannot drift apart between flags.
  // --metrics-port parses through a string staging slot so the table stays
  // uniform; the int conversion happens once at the end.
  std::string metrics_port;
  std::string checkpoint_every;
  std::string checkpoint_keep;
  std::string journey_rate_pm;
  std::string journey_seed;
  struct ValueFlag {
    const char* name;
    std::size_t len;
    std::string* target;
  };
  // "--checkpoint" cannot swallow "--checkpoint-every": a prefix hit only
  // counts when the next character is '\0' or '='.
  const ValueFlag value_flags[] = {
      {"--json", 6, &flags.json},
      {"--trace-csv", 11, &flags.trace_csv},
      {"--perfetto", 10, &flags.perfetto},
      {"--metrics-port", 14, &metrics_port},
      {"--status-file", 13, &flags.status_file},
      {"--flight-recorder", 17, &flags.flight_recorder},
      {"--checkpoint", 12, &flags.checkpoint},
      {"--checkpoint-every", 18, &checkpoint_every},
      {"--checkpoint-keep", 17, &checkpoint_keep},
      {"--journeys", 10, &flags.journeys},
      {"--journey-rate-pm", 17, &journey_rate_pm},
      {"--journey-seed", 14, &journey_seed},
      {"--journey-watch", 15, &flags.journey_watch},
  };
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const char* arg = argv[r];
    const ValueFlag* hit = nullptr;
    for (const ValueFlag& vf : value_flags) {
      if (std::strncmp(arg, vf.name, vf.len) == 0 &&
          (arg[vf.len] == '\0' || arg[vf.len] == '=')) {
        hit = &vf;
        break;
      }
    }
    if (hit == nullptr) {
      if (std::strcmp(arg, "--quick") == 0) {
        flags.quick = true;
      } else if (std::strcmp(arg, "--mega") == 0) {
        flags.mega = true;
      } else if (std::strcmp(arg, "--resume") == 0) {
        flags.resume = true;
      } else if (std::strcmp(arg, "--progress") == 0) {
        flags.progress = true;
      } else if (std::strcmp(arg, "--perf") == 0) {
        flags.perf = true;
      } else {
        argv[w++] = argv[r];
      }
      continue;
    }
    if (arg[hit->len] == '=') {
      *hit->target = arg + hit->len + 1;
    } else if (r + 1 < *argc) {
      *hit->target = argv[++r];
    } else {
      std::fprintf(stderr, "error: %s requires a value (%s=PATH or %s PATH)\n",
                   hit->name, hit->name, hit->name);
      std::exit(2);
    }
  }
  *argc = w;
  if (!metrics_port.empty()) {
    flags.metrics_port = std::strtoll(metrics_port.c_str(), nullptr, 10);
  }
  if (!checkpoint_every.empty()) {
    flags.checkpoint_every =
        std::strtoll(checkpoint_every.c_str(), nullptr, 10);
  }
  if (!checkpoint_keep.empty()) {
    flags.checkpoint_keep = std::strtoll(checkpoint_keep.c_str(), nullptr, 10);
  }
  if (!journey_rate_pm.empty()) {
    flags.journey_rate_pm = std::strtoll(journey_rate_pm.c_str(), nullptr, 10);
  }
  if (!journey_seed.empty()) {
    flags.journey_seed = std::strtoll(journey_seed.c_str(), nullptr, 10);
  }
  return flags;
}

JourneyTracer::Options JourneyOptionsFromFlags(const OutputFlags& flags) {
  JourneyTracer::Options opts;
  opts.sample_rate = static_cast<double>(flags.journey_rate_pm) / 1000.0;
  opts.seed = static_cast<std::uint64_t>(flags.journey_seed);
  const char* s = flags.journey_watch.c_str();
  while (*s != '\0') {
    char* end = nullptr;
    const long long id = std::strtoll(s, &end, 10);
    if (end == s) {
      ++s;  // malformed entry: skip one char and retry
      continue;
    }
    opts.watch.push_back(static_cast<std::int64_t>(id));
    s = *end == ',' ? end + 1 : end;
  }
  return opts;
}

}  // namespace mdmesh
