#include "obs/output.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mdmesh {

std::ofstream OpenOutputFile(const std::string& path, const char* flag) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr,
                 "error: cannot open %s=%s for writing (check that the "
                 "directory exists and is writable)\n",
                 flag, path.c_str());
    std::exit(1);
  }
  return out;
}

void AddOutputFlags(Cli& cli) {
  cli.AddString("--json", "",
                "write experiment records to this path (JSON array; .jsonl "
                "for one record per line)");
  cli.AddString("--trace-csv", "",
                "write the per-step congestion trace to this CSV path");
  cli.AddString("--perfetto", "",
                "write a Chrome Trace Event JSON timeline to this path "
                "(open in ui.perfetto.dev)");
  cli.AddBool("--quick", false, "smallest configuration only (CI smoke runs)");
}

OutputFlags GetOutputFlags(const Cli& cli) {
  OutputFlags flags;
  flags.json = cli.GetString("json");
  flags.trace_csv = cli.GetString("trace-csv");
  flags.perfetto = cli.GetString("perfetto");
  flags.quick = cli.GetBool("quick");
  return flags;
}

OutputFlags ParseOutputFlags(int* argc, char** argv) {
  OutputFlags flags;
  // One table drives every value flag so the two accepted forms
  // (--flag=value, --flag value) cannot drift apart between flags.
  struct ValueFlag {
    const char* name;
    std::size_t len;
    std::string* target;
  };
  const ValueFlag value_flags[] = {
      {"--json", 6, &flags.json},
      {"--trace-csv", 11, &flags.trace_csv},
      {"--perfetto", 10, &flags.perfetto},
  };
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const char* arg = argv[r];
    const ValueFlag* hit = nullptr;
    for (const ValueFlag& vf : value_flags) {
      if (std::strncmp(arg, vf.name, vf.len) == 0 &&
          (arg[vf.len] == '\0' || arg[vf.len] == '=')) {
        hit = &vf;
        break;
      }
    }
    if (hit == nullptr) {
      if (std::strcmp(arg, "--quick") == 0) {
        flags.quick = true;
      } else {
        argv[w++] = argv[r];
      }
      continue;
    }
    if (arg[hit->len] == '=') {
      *hit->target = arg + hit->len + 1;
    } else if (r + 1 < *argc) {
      *hit->target = argv[++r];
    } else {
      std::fprintf(stderr, "error: %s requires a value (%s=PATH or %s PATH)\n",
                   hit->name, hit->name, hit->name);
      std::exit(2);
    }
  }
  *argc = w;
  return flags;
}

}  // namespace mdmesh
