#include "obs/output.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mdmesh {

std::ofstream OpenOutputFile(const std::string& path, const char* flag) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr,
                 "error: cannot open %s=%s for writing (check that the "
                 "directory exists and is writable)\n",
                 flag, path.c_str());
    std::exit(1);
  }
  return out;
}

void AddOutputFlags(Cli& cli) {
  cli.AddString("--json", "",
                "write experiment records to this path (JSON array; .jsonl "
                "for one record per line)");
  cli.AddString("--trace-csv", "",
                "write the per-step congestion trace to this CSV path");
  cli.AddBool("--quick", false, "smallest configuration only (CI smoke runs)");
}

OutputFlags GetOutputFlags(const Cli& cli) {
  OutputFlags flags;
  flags.json = cli.GetString("json");
  flags.trace_csv = cli.GetString("trace-csv");
  flags.quick = cli.GetBool("quick");
  return flags;
}

OutputFlags ParseOutputFlags(int* argc, char** argv) {
  OutputFlags flags;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const char* arg = argv[r];
    std::string* target = nullptr;
    std::size_t name_len = 0;
    if (std::strncmp(arg, "--json", 6) == 0 &&
        (arg[6] == '\0' || arg[6] == '=')) {
      target = &flags.json;
      name_len = 6;
    } else if (std::strncmp(arg, "--trace-csv", 11) == 0 &&
               (arg[11] == '\0' || arg[11] == '=')) {
      target = &flags.trace_csv;
      name_len = 11;
    } else if (std::strcmp(arg, "--quick") == 0) {
      flags.quick = true;
      continue;
    }
    if (target == nullptr) {
      argv[w++] = argv[r];
      continue;
    }
    if (arg[name_len] == '=') {
      *target = arg + name_len + 1;
    } else if (r + 1 < *argc) {
      *target = argv[++r];
    }
  }
  *argc = w;
  return flags;
}

}  // namespace mdmesh
