#include "sorting/local_sort.h"

#include <algorithm>
#include <cassert>

namespace mdmesh {

std::int64_t SortWithinBlock(Network& net, const BlockGrid& grid, BlockId block,
                             const LocalSortSpec& spec) {
  const std::int64_t B = grid.block_volume();
  // Gather matching packets; keep the rest in place.
  std::vector<Packet> gathered;
  for (std::int64_t off = 0; off < B; ++off) {
    const ProcId p = grid.ProcAt(block, off);
    auto& q = net.At(p);
    std::size_t w = 0;
    for (std::size_t r = 0; r < q.size(); ++r) {
      if (!spec.filter || spec.filter(q[r])) {
        gathered.push_back(q[r]);
      } else {
        q[w++] = q[r];
      }
    }
    q.resize(w);
  }
  std::sort(gathered.begin(), gathered.end(), [](const Packet& a, const Packet& b) {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  });
  // Balanced layback: when the load is exactly per_proc * B this is the
  // uniform per_proc-per-processor layout; randomized-spread ablations can
  // over- or under-fill a block, in which case the surplus spreads one
  // packet per leading position (never past the block's last offset).
  const auto count = static_cast<std::int64_t>(gathered.size());
  const std::int64_t base = count / B;
  const std::int64_t extra = count % B;
  std::size_t r = 0;
  for (std::int64_t off = 0; off < B && r < gathered.size(); ++off) {
    const std::int64_t here = base + (off < extra ? 1 : 0);
    auto& q = net.At(grid.ProcAt(block, off));
    for (std::int64_t t = 0; t < here; ++t) q.push_back(gathered[r++]);
  }
  return count;
}

std::int64_t OddEvenTranspositionRounds(
    std::vector<std::pair<std::uint64_t, std::int64_t>> keys) {
  const std::size_t L = keys.size();
  if (L < 2) return 0;
  std::int64_t rounds = 0;
  bool dirty = true;
  int idle = 0;
  while (idle < 2) {
    const std::size_t start = static_cast<std::size_t>(rounds % 2);
    dirty = false;
    for (std::size_t i = start; i + 1 < L; i += 2) {
      if (keys[i + 1] < keys[i]) {
        std::swap(keys[i], keys[i + 1]);
        dirty = true;
      }
    }
    ++rounds;
    idle = dirty ? 0 : idle + 1;
  }
  // The final idle rounds did no work; a real machine still needs one round
  // to detect quiescence, so charge rounds-1 (the last no-op pair is free).
  return rounds - 2;
}

std::int64_t ChargeLocal(const BlockGrid& grid, LocalCostModel model,
                         std::int64_t measured_rounds) {
  switch (model) {
    case LocalCostModel::kOracle:
      return 0;
    case LocalCostModel::kLinear:
      return 4ll * grid.topo().dim() * grid.block_side();
    case LocalCostModel::kMeasured:
      return measured_rounds;
  }
  return 0;
}

namespace {

/// Measured transposition rounds for the current contents of a block
/// region given as a list of (block, per_proc) lanes laid out consecutively.
std::int64_t MeasureRegionRounds(Network& net, const BlockGrid& grid,
                                 const std::vector<BlockId>& blocks,
                                 const LocalSortSpec& spec) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> keys;
  for (BlockId b : blocks) {
    for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
      for (const Packet& pkt : net.At(grid.ProcAt(b, off))) {
        if (!spec.filter || spec.filter(pkt)) keys.emplace_back(pkt.key, pkt.id);
      }
    }
  }
  return OddEvenTranspositionRounds(std::move(keys));
}

}  // namespace

std::int64_t SortBlocksLocally(Network& net, const BlockGrid& grid,
                               const std::vector<BlockId>& blocks,
                               const LocalSortSpec& spec, LocalCostModel model) {
  std::vector<BlockId> all;
  const std::vector<BlockId>* target = &blocks;
  if (blocks.empty()) {
    all.resize(static_cast<std::size_t>(grid.num_blocks()));
    for (BlockId b = 0; b < grid.num_blocks(); ++b) all[static_cast<std::size_t>(b)] = b;
    target = &all;
  }
  std::int64_t measured_max = 0;
  for (BlockId b : *target) {
    if (model == LocalCostModel::kMeasured) {
      measured_max = std::max(
          measured_max, MeasureRegionRounds(net, grid, {b}, spec));
    }
    SortWithinBlock(net, grid, b, spec);
  }
  return ChargeLocal(grid, model, measured_max);
}

std::int64_t MergeAdjacentBlocks(Network& net, const BlockGrid& grid, int parity,
                                 std::int64_t per_proc, LocalCostModel model) {
  std::int64_t measured_max = 0;
  LocalSortSpec spec;
  spec.per_proc = per_proc;
  for (auto [left, right] : grid.SnakeNeighborPairs(parity)) {
    if (model == LocalCostModel::kMeasured) {
      measured_max = std::max(measured_max,
                              MeasureRegionRounds(net, grid, {left, right}, spec));
    }
    // Sort the union of the two blocks: gather both, sort, lay back along
    // left's snake then right's snake.
    const std::int64_t B = grid.block_volume();
    std::vector<Packet> gathered;
    for (BlockId b : {left, right}) {
      for (std::int64_t off = 0; off < B; ++off) {
        auto& q = net.At(grid.ProcAt(b, off));
        gathered.insert(gathered.end(), q.begin(), q.end());
        q.clear();
      }
    }
    std::sort(gathered.begin(), gathered.end(),
              [](const Packet& a, const Packet& b) {
                return a.key != b.key ? a.key < b.key : a.id < b.id;
              });
    // Balanced layback over the pair's 2B positions (left block's snake,
    // then right's): exact loads give per_proc packets per processor;
    // uneven loads diffuse toward balance one merge round at a time.
    const auto count = static_cast<std::int64_t>(gathered.size());
    const std::int64_t base = count / (2 * B);
    const std::int64_t extra = count % (2 * B);
    std::size_t r = 0;
    for (std::int64_t pos = 0; pos < 2 * B && r < gathered.size(); ++pos) {
      const std::int64_t here = base + (pos < extra ? 1 : 0);
      const BlockId b = pos < B ? left : right;
      const std::int64_t off = pos < B ? pos : pos - B;
      auto& q = net.At(grid.ProcAt(b, off));
      for (std::int64_t t = 0; t < here; ++t) q.push_back(gathered[r++]);
    }
  }
  // Charge: merging two adjacent sorted blocks costs O(d*b) (kLinear) or the
  // measured rounds; a factor 2 on kLinear for the doubled region.
  switch (model) {
    case LocalCostModel::kOracle:
      return 0;
    case LocalCostModel::kLinear:
      return 8ll * grid.topo().dim() * grid.block_side();
    case LocalCostModel::kMeasured:
      return measured_max;
  }
  return 0;
}

}  // namespace mdmesh
