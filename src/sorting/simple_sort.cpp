#include "sorting/simple_sort.h"

#include <algorithm>
#include <stdexcept>

#include "meshsim/geometry.h"
#include "sorting/detail.h"
#include "sorting/spread.h"
#include "util/rng.h"

namespace mdmesh {

SortResult SimpleSortRun(Network& net, const BlockGrid& grid,
                         const SortOptions& opts) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  const std::int64_t k = opts.k;
  const int d = grid.topo().dim();
  const std::int64_t mc = opts.center_blocks > 0 ? opts.center_blocks : m / 2;
  if (k < 1) throw std::invalid_argument("SimpleSort: k >= 1");
  if (mc < 1 || mc > m) throw std::invalid_argument("SimpleSort: bad center size");
  if (B % m != 0) {
    throw std::invalid_argument("SimpleSort: needs g | b (m must divide B)");
  }
  if ((k * m) % mc != 0 || (k * B) % mc != 0) {
    throw std::invalid_argument(
        "SimpleSort: center size must divide the load (mc | km and mc | kB)");
  }

  SortResult result;
  CenterRegion center(grid, mc);
  Engine engine(grid.topo(), opts.engine);
  Rng rng(opts.seed);
  LocalSortSpec all_k{k, nullptr};

  // (1) Local sort inside every block.
  result.AddPhase(sort_detail::LocalPhase(net, "local-sort", opts.trace, [&] {
    return SortBlocksLocally(net, grid, {}, all_k, opts.cost);
  }));

  // (2) Concentrate: spread each block evenly over the center blocks.
  for (BlockId j = 0; j < m; ++j) {
    sort_detail::ForEachRanked(
        net, grid, j, nullptr, [&](std::int64_t i, ProcId, Packet& pkt) {
          if (opts.randomized_spread) {
            const auto c = static_cast<std::int64_t>(
                rng.Below(static_cast<std::uint64_t>(mc)));
            const auto off = static_cast<std::int64_t>(
                rng.Below(static_cast<std::uint64_t>(B)));
            pkt.dest = grid.ProcAt(center.BlockAt(c), off);
            pkt.klass = static_cast<std::uint16_t>(
                rng.Below(static_cast<std::uint64_t>(d)));
          } else {
            const BlockDest bd = ConcentrateDest(i, j, m, mc, B);
            pkt.dest = grid.ProcAt(center.BlockAt(bd.block), bd.offset);
            pkt.klass = static_cast<std::uint16_t>(i % d);
          }
        });
  }
  result.AddPhase(sort_detail::RoutePhase(engine, net, "concentrate", opts.trace));

  // (3) Local sort inside the center blocks. Each center processor holds
  // exactly k*m/mc packets after concentration (2k for the paper's mc=m/2).
  result.AddPhase(sort_detail::LocalPhase(net, "center-sort", opts.trace, [&] {
    LocalSortSpec spec{k * m / mc, nullptr};
    return SortBlocksLocally(net, grid, center.blocks(), spec, opts.cost);
  }));

  // (4) Unconcentrate: every packet to its approximate destination block.
  // (Under the randomized-spread ablation a center block may hold a few
  // more packets than its deterministic share; clamp those into range.)
  const std::int64_t per_cblock = k * B * m / mc;
  for (std::int64_t c = 0; c < mc; ++c) {
    sort_detail::ForEachRanked(
        net, grid, center.BlockAt(c), nullptr,
        [&](std::int64_t i, ProcId, Packet& pkt) {
          const BlockDest bd =
              UnconcentrateDest(std::min(i, per_cblock - 1), c, m, mc, B, k);
          pkt.dest = grid.ProcAt(bd.block, bd.offset);
          pkt.klass = static_cast<std::uint16_t>(i % d);
        });
  }
  result.AddPhase(sort_detail::RoutePhase(engine, net, "unconcentrate", opts.trace));

  // (5) Odd-even fix-up merges.
  result.fixup_rounds = sort_detail::RunFixups(net, grid, k, opts, result);
  return result;
}

}  // namespace mdmesh
