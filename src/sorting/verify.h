// Output verification for the sorting algorithms.
//
// "Sorted" means: under the blocked snake indexing, the processor with index
// t holds exactly the keys of ranks [t*k, (t+1)*k) (the k-k sorting
// contract of Section 1). Verification is two-part: the placement is
// non-decreasing along the index order, and the multiset of (key, id) pairs
// equals the input's (no packet lost, duplicated, or mutated).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "meshsim/blocks.h"
#include "net/network.h"

namespace mdmesh {

/// Snapshot of the input taken before sorting: all (key, id) pairs, sorted.
using GroundTruth = std::vector<std::pair<std::uint64_t, std::int64_t>>;

GroundTruth CaptureGroundTruth(const Network& net);

/// True iff traversing processors in blocked-snake index order yields
/// non-decreasing (key, id) ranges with exactly k packets per processor.
/// (Within-processor order is immaterial: a processor holds k consecutive
/// ranks.) Does not check against ground truth.
bool IsGloballySorted(const Network& net, const BlockGrid& grid, std::int64_t k);

/// Full check: IsGloballySorted plus multiset equality with `truth`.
/// On failure a short diagnostic lands in *err (if non-null).
bool VerifySortedPlacement(const Network& net, const BlockGrid& grid,
                           std::int64_t k, const GroundTruth& truth,
                           std::string* err);

/// Routing check: every packet sits at its `dest`.
bool VerifyAllDelivered(const Network& net);

}  // namespace mdmesh
