#include "sorting/spread.h"

#include <cassert>

namespace mdmesh {

BlockDest ConcentrateDest(std::int64_t i, std::int64_t j, std::int64_t m,
                          std::int64_t mc, std::int64_t B) {
  assert(i >= 0 && j >= 0 && j < m && mc > 0 && mc <= m && B % m == 0);
  return BlockDest{i % mc, (j + (i / mc) * m) % B};
}

BlockDest UnconcentrateDest(std::int64_t i, std::int64_t j, std::int64_t m,
                            std::int64_t mc, std::int64_t B, std::int64_t k) {
  assert(k * B % mc == 0);
  const std::int64_t per_block = k * B / mc;  // ranks per destination block
  assert(per_block > 0 && i >= 0 && i < k * B * m / mc && j >= 0 && j < mc);
  (void)m;
  return BlockDest{i / per_block, (j + (i % per_block) * mc) % B};
}

BlockDest UnshuffleDest(std::int64_t i, std::int64_t j, std::int64_t m,
                        std::int64_t B) {
  assert(i >= 0 && j >= 0 && j < m && B % m == 0);
  return BlockDest{i % m, (j + (i / m) * m) % B};
}

BlockDest UnshuffleInvDest(std::int64_t i, std::int64_t j, std::int64_t m,
                           std::int64_t B, std::int64_t k) {
  const std::int64_t per_block = k * B / m;
  assert(per_block > 0 && i >= 0 && i < k * B && j >= 0 && j < m);
  return BlockDest{i / per_block, (j + (i % per_block) * m) % B};
}

}  // namespace mdmesh
