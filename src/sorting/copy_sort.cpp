#include "sorting/copy_sort.h"

#include <algorithm>
#include <stdexcept>

#include "meshsim/geometry.h"
#include "sorting/detail.h"
#include "sorting/spread.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

bool IsOriginal(const Packet& pkt) { return (pkt.flags & Packet::kCopy) == 0; }
bool IsCopy(const Packet& pkt) { return (pkt.flags & Packet::kCopy) != 0; }

}  // namespace

SortResult CopySortRun(Network& net, const BlockGrid& grid,
                       const SortOptions& opts) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  const std::int64_t k = opts.k;
  const int d = grid.topo().dim();
  const std::int64_t mc = opts.center_blocks > 0 ? opts.center_blocks : m / 2;
  if (k < 1) throw std::invalid_argument("CopySort: k >= 1");
  if (B % m != 0) throw std::invalid_argument("CopySort: needs g | b");
  if (mc % 2 != 0) {
    throw std::invalid_argument("CopySort: center block count must be even");
  }
  if ((k * m) % mc != 0 || (k * B) % mc != 0) {
    throw std::invalid_argument("CopySort: mc must divide km and kB");
  }
  if (grid.blocks_per_side() % 2 != 0) {
    throw std::invalid_argument("CopySort: g must be even (mirror pairing)");
  }

  SortResult result;
  CenterRegion center(grid, mc, /*mirror_closed=*/true);
  Engine engine(grid.topo(), opts.engine);
  LocalSortSpec all_k{k, nullptr};

  // (1) Local sort inside every block.
  result.AddPhase(sort_detail::LocalPhase(net, "local-sort", opts.trace, [&] {
    return SortBlocksLocally(net, grid, {}, all_k, opts.cost);
  }));

  // (2) Concentrate originals; route a copy of each to the mirrored center
  // block. The mirror pairing survives the randomized-spread ablation
  // because the copy's block is always the mirror of the original's, so the
  // copy population of mirror(beta) stays exactly the originals of beta.
  // Copies are staged per source processor and injected afterwards so the
  // rank enumeration is not disturbed mid-walk.
  {
    Rng rng(opts.seed ^ 0xc0bbull);
    std::vector<std::pair<ProcId, Packet>> copies;
    copies.reserve(static_cast<std::size_t>(grid.topo().size()) *
                   static_cast<std::size_t>(k));
    for (BlockId j = 0; j < m; ++j) {
      sort_detail::ForEachRanked(
          net, grid, j, nullptr, [&](std::int64_t i, ProcId src, Packet& pkt) {
            BlockDest bd;
            if (opts.randomized_spread) {
              bd.block = static_cast<std::int64_t>(
                  rng.Below(static_cast<std::uint64_t>(mc)));
              bd.offset = static_cast<std::int64_t>(
                  rng.Below(static_cast<std::uint64_t>(B)));
            } else {
              bd = ConcentrateDest(i, j, m, mc, B);
            }
            const BlockId orig_block = center.BlockAt(bd.block);
            pkt.dest = grid.ProcAt(orig_block, bd.offset);
            pkt.klass = static_cast<std::uint16_t>((2 * i) % d);

            Packet copy = pkt;
            copy.flags |= Packet::kCopy;
            copy.dest = grid.ProcAt(grid.MirrorBlock(orig_block), bd.offset);
            copy.klass = static_cast<std::uint16_t>((2 * i + 1) % d);
            // Stage at the same source processor as the original.
            copies.emplace_back(src, copy);
          });
    }
    for (auto& [src, copy] : copies) net.Add(src, copy);
  }
  result.AddPhase(
      sort_detail::RoutePhase(engine, net, "concentrate+copies", opts.trace));

  // (3) Sort originals and copies separately inside each center block.
  // Both populations are identical multisets of (key, id) in mirrored
  // blocks, so their local ranks coincide pairwise.
  result.AddPhase(sort_detail::LocalPhase(net, "center-sort", opts.trace, [&] {
    const std::int64_t per_proc = k * m / mc;
    LocalSortSpec originals{per_proc, IsOriginal};
    LocalSortSpec copies{per_proc, IsCopy};
    const std::int64_t originals_steps =
        SortBlocksLocally(net, grid, center.blocks(), originals, opts.cost);
    return std::max(
        originals_steps,
        SortBlocksLocally(net, grid, center.blocks(), copies, opts.cost));
  }));

  // (3.5 + 4) Keep whichever of original/copy is closer to the estimated
  // destination block (ties keep the original), then route the survivors.
  {
    const std::int64_t per_cblock = k * B * m / mc;
    std::vector<std::vector<Packet>> survivors(
        static_cast<std::size_t>(grid.topo().size()));
    // After the mirrored block sorts, the rank-i copy sits at the SAME
    // within-block offset of the mirrored center block as its original, so
    // both sides can evaluate the keep-the-closer rule on exact processor
    // positions (consistent by construction; ties keep the original). This
    // realizes Lemma 3.3 with only the within-block O(b) slack.
    const Topology& topo = grid.topo();
    for (std::int64_t c = 0; c < mc; ++c) {
      const BlockId beta = center.BlockAt(c);
      const BlockId mirror_beta = grid.MirrorBlock(beta);
      // Originals in beta: their copies live in mirror(beta).
      sort_detail::ForEachRanked(
          net, grid, beta, IsOriginal,
          [&](std::int64_t i, ProcId p_orig, Packet& pkt) {
            const BlockDest bd =
                UnconcentrateDest(std::min(i, per_cblock - 1), c, m, mc, B, k);
            const ProcId dest = grid.ProcAt(bd.block, bd.offset);
            const ProcId p_copy =
                grid.ProcAt(mirror_beta, grid.OffsetOf(p_orig));
            if (topo.Dist(p_orig, dest) <= topo.Dist(p_copy, dest)) {
              Packet kept = pkt;
              kept.dest = dest;
              kept.klass = static_cast<std::uint16_t>(i % d);
              survivors[static_cast<std::size_t>(p_orig)].push_back(kept);
            }
          });
      // Copies in beta: their originals live in mirror(beta), whose
      // C-number drives the destination estimate.
      const std::int64_t c_orig = center.NumberOf(mirror_beta);
      sort_detail::ForEachRanked(
          net, grid, beta, IsCopy,
          [&](std::int64_t i, ProcId p_copy, Packet& pkt) {
            const BlockDest bd = UnconcentrateDest(std::min(i, per_cblock - 1),
                                                   c_orig, m, mc, B, k);
            const ProcId dest = grid.ProcAt(bd.block, bd.offset);
            const ProcId p_orig =
                grid.ProcAt(mirror_beta, grid.OffsetOf(p_copy));
            if (topo.Dist(p_copy, dest) < topo.Dist(p_orig, dest)) {
              Packet kept = pkt;
              kept.flags &= static_cast<std::uint16_t>(~Packet::kCopy);
              kept.dest = dest;
              kept.klass = static_cast<std::uint16_t>(i % d);
              survivors[static_cast<std::size_t>(p_copy)].push_back(kept);
            }
          });
    }
    net.Clear();
    for (ProcId p = 0; p < grid.topo().size(); ++p) {
      for (Packet& pkt : survivors[static_cast<std::size_t>(p)]) net.Add(p, pkt);
    }
  }
  result.AddPhase(
      sort_detail::RoutePhase(engine, net, "route-survivors", opts.trace));

  // (5) Odd-even fix-up merges.
  result.fixup_rounds = sort_detail::RunFixups(net, grid, k, opts, result);
  return result;
}

}  // namespace mdmesh
