// Sorting harness: input generation, algorithm dispatch, verification.
//
// This is the single entry point the examples, tests, and benches use:
// fill a network with a k-k input, run a named algorithm, verify the output
// against ground truth, and report the step accounting. The k-k corollaries
// (3.1.1: k <= floor(d/4) on the mesh; 3.3.1: k = d on the torus) are just
// parameter choices here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "meshsim/blocks.h"
#include "sorting/common.h"
#include "sorting/verify.h"

namespace mdmesh {

enum class SortAlgo : std::uint8_t {
  kSimple,  ///< Theorem 3.1: 3D/2, mesh, no copies
  kCopy,    ///< Theorem 3.2: 5D/4, mesh, one copy (d >= 8 for the bound)
  kTorus,   ///< Theorem 3.3: 3D/2, torus, one copy
  kFull,    ///< baseline: 2D sort-and-unshuffle over the whole network
  kSnake,   ///< classical baseline: odd-even transposition, Theta(N) steps
};

const char* SortAlgoName(SortAlgo algo);

/// Parses "simple" | "copy" | "torus" | "full" | "snake" (throws otherwise).
SortAlgo ParseSortAlgo(const std::string& name);

enum class InputKind : std::uint8_t {
  kRandom,    ///< uniform random 64-bit keys
  kSortedAsc, ///< already sorted along the snake
  kSortedDesc,///< reverse sorted — every packet crosses the network
  kAllEqual,  ///< one key value (stresses tie handling)
  kFewValues, ///< keys drawn from {0..7} (heavy duplicates)
};

/// Fills `net` (cleared first) with k packets per processor, keys chosen by
/// `kind`, ids unique and deterministic.
void FillInput(Network& net, const BlockGrid& grid, std::int64_t k,
               InputKind kind, std::uint64_t seed);

/// Fills from explicit keys (keys.size() == N*k; key t*k+r goes to the
/// processor with blocked-snake index t).
void FillExplicit(Network& net, const BlockGrid& grid, std::int64_t k,
                  const std::vector<std::uint64_t>& keys);

/// Runs `algo` on the current contents of `net` and verifies the result
/// against ground truth captured up front. SortResult::sorted is set.
SortResult RunSort(SortAlgo algo, Network& net, const BlockGrid& grid,
                   const SortOptions& opts);

}  // namespace mdmesh
