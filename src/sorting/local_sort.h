// Local (within-block) sorting phases and their cost accounting.
//
// A local phase rearranges packets inside one block only — every packet
// moves at most O(d*b) hops — and is charged to the LocalCostModel rather
// than simulated hop-by-hop (see common.h). The primitive is: gather the
// block's packets (optionally filtered), sort by (key, id), and lay them
// back along the within-block snake with a fixed number per processor.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "meshsim/blocks.h"
#include "net/network.h"
#include "sorting/common.h"

namespace mdmesh {

/// Packets per processor after a local sort: position r of the sorted order
/// goes to within-block snake offset r / per_proc.
struct LocalSortSpec {
  std::int64_t per_proc = 1;
  /// Only packets matching the filter participate (others stay put).
  /// Default: all packets.
  std::function<bool(const Packet&)> filter;
};

/// Sorts the packets of `block` by (key, id) and redistributes them along
/// the block snake. Returns the number of packets placed.
std::int64_t SortWithinBlock(Network& net, const BlockGrid& grid, BlockId block,
                             const LocalSortSpec& spec);

/// Runs SortWithinBlock on every block in `blocks` (all blocks if empty) —
/// conceptually in parallel, so the charged cost is the max over blocks.
/// Returns the charged local steps under `model`.
std::int64_t SortBlocksLocally(Network& net, const BlockGrid& grid,
                               const std::vector<BlockId>& blocks,
                               const LocalSortSpec& spec, LocalCostModel model);

/// Number of parallel odd-even transposition rounds needed to sort `keys`
/// in place on a line (each round is one synchronous communication step).
/// Used by LocalCostModel::kMeasured.
std::int64_t OddEvenTranspositionRounds(std::vector<std::pair<std::uint64_t, std::int64_t>> keys);

/// One round of the step-5 fix-up: merges the packets of each pair of
/// blocks adjacent in block snake order (parity 0: (0,1),(2,3),...;
/// parity 1: (1,2),(3,4),...) by sorting each union. Returns charged steps.
std::int64_t MergeAdjacentBlocks(Network& net, const BlockGrid& grid, int parity,
                                 std::int64_t per_proc, LocalCostModel model);

/// The charged cost of one local phase under `model`, given the block grid
/// and the measured transposition rounds (only used for kMeasured).
std::int64_t ChargeLocal(const BlockGrid& grid, LocalCostModel model,
                         std::int64_t measured_rounds);

}  // namespace mdmesh
