#include "sorting/verify.h"

#include <algorithm>
#include <sstream>

namespace mdmesh {

GroundTruth CaptureGroundTruth(const Network& net) {
  GroundTruth truth;
  net.ForEach([&](ProcId, const Packet& pkt) {
    truth.emplace_back(pkt.key, pkt.id);
  });
  std::sort(truth.begin(), truth.end());
  return truth;
}

bool IsGloballySorted(const Network& net, const BlockGrid& grid, std::int64_t k) {
  const std::int64_t B = grid.block_volume();
  std::pair<std::uint64_t, std::int64_t> prev_max{0, 0};
  bool first = true;
  std::vector<std::pair<std::uint64_t, std::int64_t>> here;
  for (BlockId blk = 0; blk < grid.num_blocks(); ++blk) {
    for (std::int64_t off = 0; off < B; ++off) {
      const auto& q = net.At(grid.ProcAt(blk, off));
      if (static_cast<std::int64_t>(q.size()) != k) return false;
      here.clear();
      for (const Packet& pkt : q) here.emplace_back(pkt.key, pkt.id);
      std::sort(here.begin(), here.end());
      if (!first && here.front() < prev_max) return false;
      prev_max = here.back();
      first = false;
    }
  }
  return true;
}

bool VerifySortedPlacement(const Network& net, const BlockGrid& grid,
                           std::int64_t k, const GroundTruth& truth,
                           std::string* err) {
  GroundTruth now = CaptureGroundTruth(net);
  if (now != truth) {
    if (err != nullptr) {
      std::ostringstream os;
      os << "multiset mismatch: have " << now.size() << " packets, expected "
         << truth.size();
      *err = os.str();
    }
    return false;
  }
  if (!IsGloballySorted(net, grid, k)) {
    if (err != nullptr) *err = "placement not sorted along the snake index";
    return false;
  }
  return true;
}

bool VerifyAllDelivered(const Network& net) {
  bool ok = true;
  net.ForEach([&](ProcId p, const Packet& pkt) {
    if (pkt.dest != p) ok = false;
  });
  return ok;
}

}  // namespace mdmesh
