#include "sorting/kk_sort.h"

#include <stdexcept>

#include "sorting/copy_sort.h"
#include "sorting/full_sort.h"
#include "sorting/simple_sort.h"
#include "sorting/snake_sort.h"
#include "sorting/torus_sort.h"
#include "util/rng.h"

namespace mdmesh {

const char* SortAlgoName(SortAlgo algo) {
  switch (algo) {
    case SortAlgo::kSimple: return "SimpleSort";
    case SortAlgo::kCopy: return "CopySort";
    case SortAlgo::kTorus: return "TorusSort";
    case SortAlgo::kFull: return "FullSort";
    case SortAlgo::kSnake: return "SnakeSort";
  }
  return "?";
}

SortAlgo ParseSortAlgo(const std::string& name) {
  if (name == "simple") return SortAlgo::kSimple;
  if (name == "copy") return SortAlgo::kCopy;
  if (name == "torus") return SortAlgo::kTorus;
  if (name == "full") return SortAlgo::kFull;
  if (name == "snake") return SortAlgo::kSnake;
  throw std::invalid_argument("unknown sort algorithm: " + name);
}

void FillInput(Network& net, const BlockGrid& grid, std::int64_t k,
               InputKind kind, std::uint64_t seed) {
  const std::int64_t N = grid.topo().size();
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(N * k));
  Rng rng(seed);
  switch (kind) {
    case InputKind::kRandom:
      for (auto& key : keys) key = rng.Next();
      break;
    case InputKind::kSortedAsc:
      for (std::size_t t = 0; t < keys.size(); ++t) keys[t] = t;
      break;
    case InputKind::kSortedDesc:
      for (std::size_t t = 0; t < keys.size(); ++t) keys[t] = keys.size() - t;
      break;
    case InputKind::kAllEqual:
      for (auto& key : keys) key = 42;
      break;
    case InputKind::kFewValues:
      for (auto& key : keys) key = rng.Below(8);
      break;
  }
  FillExplicit(net, grid, k, keys);
}

void FillExplicit(Network& net, const BlockGrid& grid, std::int64_t k,
                  const std::vector<std::uint64_t>& keys) {
  const std::int64_t N = grid.topo().size();
  if (keys.size() != static_cast<std::size_t>(N * k)) {
    throw std::invalid_argument("FillExplicit: need exactly N*k keys");
  }
  net.Clear();
  const std::int64_t B = grid.block_volume();
  std::int64_t t = 0;
  for (BlockId blk = 0; blk < grid.num_blocks(); ++blk) {
    for (std::int64_t off = 0; off < B; ++off) {
      const ProcId p = grid.ProcAt(blk, off);
      for (std::int64_t r = 0; r < k; ++r, ++t) {
        Packet pkt;
        pkt.key = keys[static_cast<std::size_t>(t)];
        pkt.id = t;
        pkt.dest = p;
        net.Add(p, pkt);
      }
    }
  }
}

SortResult RunSort(SortAlgo algo, Network& net, const BlockGrid& grid,
                   const SortOptions& opts) {
  const GroundTruth truth = CaptureGroundTruth(net);
  // Root span named after the algorithm; each phase nests under it.
  Span root = TraceContext::OpenIf(opts.trace, SortAlgoName(algo));
  SortResult result;
  switch (algo) {
    case SortAlgo::kSimple:
      result = SimpleSortRun(net, grid, opts);
      break;
    case SortAlgo::kCopy:
      result = CopySortRun(net, grid, opts);
      break;
    case SortAlgo::kTorus:
      result = TorusSortRun(net, grid, opts);
      break;
    case SortAlgo::kFull:
      result = FullSortRun(net, grid, opts);
      break;
    case SortAlgo::kSnake:
      result = SnakeSortRun(net, grid, opts);
      break;
  }
  std::string err;
  result.sorted = VerifySortedPlacement(net, grid, opts.k, truth, &err);
  return result;
}

}  // namespace mdmesh
