// Algorithm CopySort (paper, Section 3.2, Theorem 3.2).
//
// 5D/4 + o(n) sorting on the d-dimensional mesh by making ONE copy of each
// packet. Identical to SimpleSort except:
//
//   * Step (2) also routes a copy of each packet to the center block that
//     is the reflection (through the network center) of the original's
//     center block. The center region is chosen mirror-closed, so the
//     reflection is again a center block. The phase routes four partial
//     unshuffle permutations, which is why the theorem needs d >= 8
//     (Lemma 2.3 routes floor(d/2) permutations distance-optimally).
//   * After step (3), Lemma 3.3 guarantees every processor is within
//     D/2 + o(n) of the original OR the copy of every packet. The farther
//     of the two is deleted; survivors route <= D/2 (+o(n)) in step (4).
//
// The keep/delete decision is communication-free and provably consistent:
// the copies residing in a center block beta are exactly the copies of the
// originals residing in mirror(beta), so sorting copies inside beta by
// (key, id) reproduces the originals' local ranks, and both sides evaluate
// the same closer-block rule (ties keep the original). See DESIGN.md §2.
#pragma once

#include "meshsim/blocks.h"
#include "sorting/common.h"

namespace mdmesh {

/// Requirements (checked): g even, g | b, m/2 even (mirror-closed center),
/// k >= 1. Fills everything in SortResult except `sorted`.
SortResult CopySortRun(Network& net, const BlockGrid& grid,
                       const SortOptions& opts);

}  // namespace mdmesh
