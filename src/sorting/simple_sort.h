// Algorithm SimpleSort (paper, Section 3.2, Theorem 3.1).
//
// Deterministic 1-1 (and k-k, Corollary 3.1.1) sorting on the d-dimensional
// mesh in 3D/2 + o(n) steps without copying packets:
//
//   (1) sort each block of side b locally;
//   (2) spread every block's packets evenly over the m/2 center blocks C
//       (two partial unshuffle permutations; no packet travels more than
//       ~3D/4 because every processor is within 3D/4 of the center region);
//   (3) sort each center block locally — local ranks now approximate global
//       ranks to within one block (Lemma 3.1, which needs m^2 <= 2B, the
//       finite-n form of the paper's alpha >= 2/3);
//   (4) route every packet to its approximate destination block (the
//       inverse unshuffle; again <= ~3D/4);
//   (5) fix up with odd-even merges of snake-adjacent blocks.
//
// Corollary 3.1.2 (shrunken center region, running time D + 2r) is obtained
// via SortOptions::center_blocks.
#pragma once

#include "meshsim/blocks.h"
#include "sorting/common.h"

namespace mdmesh {

/// Sorts the k packets per processor in `net` with respect to the blocked
/// snake indexing of `grid`. Requirements (checked): g even (unless
/// center_blocks is set), g | b, k >= 1. The caller verifies the output
/// (see RunSort in kk_sort.h); this function fills everything in SortResult
/// except `sorted`.
SortResult SimpleSortRun(Network& net, const BlockGrid& grid,
                         const SortOptions& opts);

}  // namespace mdmesh
