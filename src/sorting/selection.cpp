#include "sorting/selection.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "meshsim/geometry.h"
#include "sorting/detail.h"
#include "sorting/spread.h"

namespace mdmesh {

SelectResult SelectAtCenter(Network& net, const BlockGrid& grid,
                            const SortOptions& opts, std::int64_t target) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  const std::int64_t k = opts.k;
  const int d = grid.topo().dim();
  const std::int64_t mc = opts.center_blocks > 0 ? opts.center_blocks : m / 2;
  if (B % m != 0) throw std::invalid_argument("SelectAtCenter: needs g | b");
  if ((k * m) % mc != 0) {
    throw std::invalid_argument("SelectAtCenter: mc must divide km");
  }
  const std::int64_t total = grid.topo().size() * k;
  if (target < 0 || target >= total) {
    throw std::invalid_argument("SelectAtCenter: target rank out of range");
  }

  SelectResult result;
  CenterRegion center(grid, mc);
  Engine engine(grid.topo(), opts.engine);
  LocalSortSpec all_k{k, nullptr};

  // (1) Local sort + (2) concentrate, as in SimpleSort.
  result.local_steps += SortBlocksLocally(net, grid, {}, all_k, opts.cost);
  for (BlockId j = 0; j < m; ++j) {
    sort_detail::ForEachRanked(
        net, grid, j, nullptr, [&](std::int64_t i, ProcId, Packet& pkt) {
          const BlockDest bd = ConcentrateDest(i, j, m, mc, B);
          pkt.dest = grid.ProcAt(center.BlockAt(bd.block), bd.offset);
          pkt.klass = static_cast<std::uint16_t>(i % d);
        });
  }
  {
    RouteResult r = engine.Route(net);
    result.routing_steps += r.steps;
    result.max_queue = std::max(result.max_queue, r.max_queue);
    result.completed = result.completed && r.completed;
  }

  // (3) Sort the center blocks.
  {
    LocalSortSpec spec{k * m / mc, nullptr};
    result.local_steps +=
        SortBlocksLocally(net, grid, center.blocks(), spec, opts.cost);
  }

  // Rank estimation: local rank i in C-block c => est = i*mc + c, error
  // strictly below (m+1)*mc (see header). Margin (m+2)*mc is safe.
  result.margin = (m + 2) * mc;
  result.degenerate_margin = 2 * result.margin >= total / 2;
  const std::int64_t lo = target - result.margin;
  const std::int64_t hi = target + result.margin;

  // Every non-candidate with est < lo is certainly below the target.
  std::int64_t below = 0;
  std::int64_t cand_counter = 0;
  const BlockId home = center.BlockAt(0);  // closest block to the center
  for (std::int64_t c = 0; c < mc; ++c) {
    sort_detail::ForEachRanked(
        net, grid, center.BlockAt(c), nullptr,
        [&](std::int64_t i, ProcId, Packet& pkt) {
          const std::int64_t est = i * mc + c;
          if (est < lo) {
            ++below;
            pkt.tag = 0;  // not a candidate
          } else if (est > hi) {
            pkt.tag = 0;
          } else {
            pkt.tag = 1;  // candidate: route to the home block
            pkt.dest = grid.ProcAt(home, cand_counter % B);
            pkt.klass = static_cast<std::uint16_t>(cand_counter % d);
            ++cand_counter;
          }
        });
  }
  result.candidates = cand_counter;

  // Drop non-candidates (they have served their purpose: `below` is exact)
  // and route the candidates to the home block.
  for (ProcId p = 0; p < grid.topo().size(); ++p) {
    auto& q = net.At(p);
    std::size_t w = 0;
    for (std::size_t r = 0; r < q.size(); ++r) {
      if (q[r].tag == 1) q[w++] = q[r];
    }
    q.resize(w);
  }
  {
    RouteResult r = engine.Route(net);
    result.routing_steps += r.steps;
    result.max_queue = std::max(result.max_queue, r.max_queue);
    result.completed = result.completed && r.completed;
  }

  // Local selection at the home block: the (target - below)-th smallest
  // candidate. Charge one more local phase (the gather to the center
  // processor is an o(n) walk inside one block).
  std::vector<std::pair<std::uint64_t, std::int64_t>> cands;
  for (std::int64_t off = 0; off < B; ++off) {
    for (const Packet& pkt : net.At(grid.ProcAt(home, off))) {
      cands.emplace_back(pkt.key, pkt.id);
    }
  }
  std::sort(cands.begin(), cands.end());
  result.local_steps += ChargeLocal(grid, opts.cost, 0);
  const std::int64_t want = target - below;
  if (want >= 0 && want < static_cast<std::int64_t>(cands.size())) {
    result.found = true;
    result.selected_key = cands[static_cast<std::size_t>(want)].first;
  }
  result.total_steps = result.routing_steps + result.local_steps;
  return result;
}

}  // namespace mdmesh
