#include "sorting/full_sort.h"

#include <algorithm>
#include <stdexcept>

#include "sorting/detail.h"
#include "sorting/spread.h"
#include "util/rng.h"

namespace mdmesh {

SortResult FullSortRun(Network& net, const BlockGrid& grid,
                       const SortOptions& opts) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  const std::int64_t k = opts.k;
  const int d = grid.topo().dim();
  if (k < 1) throw std::invalid_argument("FullSort: k >= 1");
  if (B % m != 0) throw std::invalid_argument("FullSort: needs g | b");

  SortResult result;
  Engine engine(grid.topo(), opts.engine);
  Rng rng(opts.seed);
  LocalSortSpec all_k{k, nullptr};

  // (1) Local sort inside every block.
  result.AddPhase(sort_detail::LocalPhase(net, "local-sort", opts.trace, [&] {
    return SortBlocksLocally(net, grid, {}, all_k, opts.cost);
  }));

  // (2) Unshuffle over the whole network.
  for (BlockId j = 0; j < m; ++j) {
    sort_detail::ForEachRanked(
        net, grid, j, nullptr, [&](std::int64_t i, ProcId, Packet& pkt) {
          if (opts.randomized_spread) {
            pkt.dest = static_cast<ProcId>(
                rng.Below(static_cast<std::uint64_t>(grid.topo().size())));
            pkt.klass = static_cast<std::uint16_t>(
                rng.Below(static_cast<std::uint64_t>(d)));
          } else {
            const BlockDest bd = UnshuffleDest(i, j, m, B);
            pkt.dest = grid.ProcAt(bd.block, bd.offset);
            pkt.klass = static_cast<std::uint16_t>(i % d);
          }
        });
  }
  result.AddPhase(sort_detail::RoutePhase(engine, net, "unshuffle", opts.trace));

  // (3) Local sort inside every block.
  result.AddPhase(sort_detail::LocalPhase(net, "block-sort", opts.trace, [&] {
    return SortBlocksLocally(net, grid, {}, all_k, opts.cost);
  }));

  // (4) Inverse distribution: consecutive local-rank windows to consecutive
  // blocks of the snake. (Randomized spread can overfill a block slightly;
  // clamp those ranks into range.)
  for (BlockId j = 0; j < m; ++j) {
    sort_detail::ForEachRanked(
        net, grid, j, nullptr, [&](std::int64_t i, ProcId, Packet& pkt) {
          const BlockDest bd =
              UnshuffleInvDest(std::min(i, k * B - 1), j, m, B, k);
          pkt.dest = grid.ProcAt(bd.block, bd.offset);
          pkt.klass = static_cast<std::uint16_t>(i % d);
        });
  }
  result.AddPhase(
      sort_detail::RoutePhase(engine, net, "route-to-dest", opts.trace));

  // (5) Odd-even fix-up merges.
  result.fixup_rounds = sort_detail::RunFixups(net, grid, k, opts, result);
  return result;
}

}  // namespace mdmesh
