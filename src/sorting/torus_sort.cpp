#include "sorting/torus_sort.h"

#include <algorithm>
#include <stdexcept>

#include "sorting/detail.h"
#include "sorting/spread.h"

namespace mdmesh {
namespace {

bool IsOriginal(const Packet& pkt) { return (pkt.flags & Packet::kCopy) == 0; }
bool IsCopy(const Packet& pkt) { return (pkt.flags & Packet::kCopy) != 0; }

}  // namespace

SortResult TorusSortRun(Network& net, const BlockGrid& grid,
                        const SortOptions& opts) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  const std::int64_t k = opts.k;
  const int d = grid.topo().dim();
  if (!grid.topo().torus()) {
    throw std::invalid_argument("TorusSort: needs a torus topology");
  }
  if (k < 1) throw std::invalid_argument("TorusSort: k >= 1");
  if (B % m != 0) throw std::invalid_argument("TorusSort: needs g | b");
  if (grid.blocks_per_side() % 2 != 0) {
    throw std::invalid_argument("TorusSort: g must be even (antipodal pairing)");
  }

  SortResult result;
  Engine engine(grid.topo(), opts.engine);
  LocalSortSpec all_k{k, nullptr};

  // (1) Local sort inside every block.
  result.AddPhase(sort_detail::LocalPhase(net, "local-sort", opts.trace, [&] {
    return SortBlocksLocally(net, grid, {}, all_k, opts.cost);
  }));

  // (2) Full unshuffle of originals over all blocks; copies to the antipodal
  // block of the original's destination.
  {
    std::vector<std::pair<ProcId, Packet>> copies;
    copies.reserve(static_cast<std::size_t>(grid.topo().size()) *
                   static_cast<std::size_t>(k));
    for (BlockId j = 0; j < m; ++j) {
      sort_detail::ForEachRanked(
          net, grid, j, nullptr, [&](std::int64_t i, ProcId src, Packet& pkt) {
            const BlockDest bd = UnshuffleDest(i, j, m, B);
            pkt.dest = grid.ProcAt(bd.block, bd.offset);
            pkt.klass = static_cast<std::uint16_t>((2 * i) % d);

            Packet copy = pkt;
            copy.flags |= Packet::kCopy;
            copy.dest = grid.ProcAt(grid.AntipodeBlock(bd.block), bd.offset);
            copy.klass = static_cast<std::uint16_t>((2 * i + 1) % d);
            copies.emplace_back(src, copy);
          });
    }
    for (auto& [src, copy] : copies) net.Add(src, copy);
  }
  result.AddPhase(
      sort_detail::RoutePhase(engine, net, "unshuffle+copies", opts.trace));

  // (3) Sort originals and copies separately inside each block.
  result.AddPhase(sort_detail::LocalPhase(net, "block-sort", opts.trace, [&] {
    LocalSortSpec originals{k, IsOriginal};
    LocalSortSpec copies{k, IsCopy};
    const std::int64_t originals_steps =
        SortBlocksLocally(net, grid, {}, originals, opts.cost);
    return std::max(originals_steps,
                    SortBlocksLocally(net, grid, {}, copies, opts.cost));
  }));

  // (3.5 + 4) Keep the closer of original/copy (ties keep the original);
  // route survivors to their estimated destinations.
  {
    std::vector<std::vector<Packet>> survivors(
        static_cast<std::size_t>(grid.topo().size()));
    const Topology& topo = grid.topo();
    // After the mirrored block sorts, the rank-i copy sits at the SAME
    // within-block offset as its rank-i original — and on a torus that is
    // the exact antipodal processor. Deciding on processor-level distances
    // therefore guarantees min(d_orig, d_copy) <= ceil(D/2) with no block
    // slack: per ring, dist(p, x) + dist(p, x + n/2) = n/2.
    for (BlockId beta = 0; beta < m; ++beta) {
      const BlockId anti = grid.AntipodeBlock(beta);
      sort_detail::ForEachRanked(
          net, grid, beta, IsOriginal,
          [&](std::int64_t i, ProcId p_orig, Packet& pkt) {
            const BlockDest bd = UnshuffleInvDest(i, beta, m, B, k);
            const ProcId dest = grid.ProcAt(bd.block, bd.offset);
            const ProcId p_copy = topo.Antipode(p_orig);
            if (topo.Dist(p_orig, dest) <= topo.Dist(p_copy, dest)) {
              Packet kept = pkt;
              kept.dest = dest;
              kept.klass = static_cast<std::uint16_t>(i % d);
              survivors[static_cast<std::size_t>(p_orig)].push_back(kept);
            }
          });
      // Copies in beta belong to originals in antipode(beta).
      sort_detail::ForEachRanked(
          net, grid, beta, IsCopy,
          [&](std::int64_t i, ProcId p_copy, Packet& pkt) {
            const BlockDest bd = UnshuffleInvDest(i, anti, m, B, k);
            const ProcId dest = grid.ProcAt(bd.block, bd.offset);
            const ProcId p_orig = topo.Antipode(p_copy);
            if (topo.Dist(p_copy, dest) < topo.Dist(p_orig, dest)) {
              Packet kept = pkt;
              kept.flags &= static_cast<std::uint16_t>(~Packet::kCopy);
              kept.dest = dest;
              kept.klass = static_cast<std::uint16_t>(i % d);
              survivors[static_cast<std::size_t>(p_copy)].push_back(kept);
            }
          });
    }
    net.Clear();
    for (ProcId p = 0; p < grid.topo().size(); ++p) {
      for (Packet& pkt : survivors[static_cast<std::size_t>(p)]) net.Add(p, pkt);
    }
  }
  result.AddPhase(
      sort_detail::RoutePhase(engine, net, "route-survivors", opts.trace));

  // (5) Odd-even fix-up merges.
  result.fixup_rounds = sort_detail::RunFixups(net, grid, k, opts, result);
  return result;
}

}  // namespace mdmesh
