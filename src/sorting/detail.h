// Internal helpers shared by the sorting algorithm implementations.
// Not part of the public API.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "meshsim/blocks.h"
#include "net/engine.h"
#include "sorting/common.h"
#include "sorting/local_sort.h"
#include "sorting/verify.h"

namespace mdmesh::sort_detail {

/// Visits the packets of `block` in local-rank order — the layout produced
/// by SortWithinBlock (ascending within-block offsets, queue order within a
/// processor), restricted to packets matching `filter` (all if empty).
/// fn receives (rank, current processor, packet&); the processor is the
/// packet's actual position, which uneven (randomized-spread) loads can
/// shift away from the uniform rank/per_proc layout.
template <typename Fn>
void ForEachRanked(Network& net, const BlockGrid& grid, BlockId block,
                   const std::function<bool(const Packet&)>& filter, Fn&& fn) {
  std::int64_t rank = 0;
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    const ProcId proc = grid.ProcAt(block, off);
    for (Packet& pkt : net.At(proc)) {
      if (filter && !filter(pkt)) continue;
      fn(rank++, proc, pkt);
    }
  }
}

/// Runs the engine until delivery and wraps the outcome as a PhaseStats.
inline PhaseStats RoutePhase(Engine& engine, Network& net, std::string name) {
  RouteResult r = engine.Route(net);
  PhaseStats stats;
  stats.name = std::move(name);
  stats.routing_steps = r.steps;
  stats.max_queue = r.max_queue;
  stats.max_distance = r.max_distance;
  stats.completed = r.completed;
  return stats;
}

/// Step 5: odd-even merges of snake-adjacent blocks until globally sorted
/// (Lemma 3.1 predicts at most 2 rounds). Appends one PhaseStats covering
/// all rounds; returns the number of merge rounds used, or -1 if the cap
/// was exceeded (result left unsorted).
inline std::int64_t RunFixups(Network& net, const BlockGrid& grid,
                              std::int64_t k, const SortOptions& opts,
                              SortResult& result) {
  PhaseStats stats;
  stats.name = "fixup-merges";
  const std::int64_t cap = opts.max_fixup_rounds > 0
                               ? opts.max_fixup_rounds
                               : 2 * grid.num_blocks() + 4;
  std::int64_t rounds = 0;
  bool sorted = IsGloballySorted(net, grid, k);
  while (!sorted && rounds < cap) {
    const int parity = static_cast<int>(rounds % 2);
    stats.local_steps += MergeAdjacentBlocks(net, grid, parity, k, opts.cost);
    stats.max_queue = std::max(stats.max_queue, net.MaxQueue());
    ++rounds;
    sorted = IsGloballySorted(net, grid, k);
  }
  stats.completed = sorted;
  result.AddPhase(std::move(stats));
  return sorted ? rounds : -1;
}

}  // namespace mdmesh::sort_detail
