// Internal helpers shared by the sorting algorithm implementations.
// Not part of the public API.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "meshsim/blocks.h"
#include "net/engine.h"
#include "sorting/common.h"
#include "sorting/local_sort.h"
#include "sorting/verify.h"

namespace mdmesh::sort_detail {

/// Visits the packets of `block` in local-rank order — the layout produced
/// by SortWithinBlock (ascending within-block offsets, queue order within a
/// processor), restricted to packets matching `filter` (all if empty).
/// fn receives (rank, current processor, packet&); the processor is the
/// packet's actual position, which uneven (randomized-spread) loads can
/// shift away from the uniform rank/per_proc layout.
template <typename Fn>
void ForEachRanked(Network& net, const BlockGrid& grid, BlockId block,
                   const std::function<bool(const Packet&)>& filter, Fn&& fn) {
  std::int64_t rank = 0;
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    const ProcId proc = grid.ProcAt(block, off);
    for (Packet& pkt : net.At(proc)) {
      if (filter && !filter(pkt)) continue;
      fn(rank++, proc, pkt);
    }
  }
}

inline double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs the engine until delivery and wraps the outcome as a PhaseStats.
/// When `trace` is set, a span of the same name records the phase.
inline PhaseStats RoutePhase(Engine& engine, Network& net, std::string name,
                             TraceContext* trace = nullptr) {
  Span span = TraceContext::OpenIf(trace, name);
  const auto t0 = std::chrono::steady_clock::now();
  RouteResult r = engine.Route(net);
  PhaseStats stats;
  stats.name = std::move(name);
  stats.routing_steps = r.steps;
  stats.moves = r.moves;
  stats.max_queue = r.max_queue;
  stats.max_distance = r.max_distance;
  stats.max_overshoot = r.max_overshoot;
  stats.wall_ms = MsSince(t0);
  stats.completed = r.completed;
  r.RecordTo(span);
  return stats;
}

/// Runs a local (within-block) phase: `body()` returns the charged local
/// step count. Mirrors RoutePhase for the o(n)-term phases.
template <typename Fn>
PhaseStats LocalPhase(Network& net, std::string name, TraceContext* trace,
                      Fn&& body) {
  Span span = TraceContext::OpenIf(trace, name);
  const auto t0 = std::chrono::steady_clock::now();
  PhaseStats stats;
  stats.name = std::move(name);
  stats.local_steps = body();
  stats.max_queue = net.MaxQueue();
  stats.wall_ms = MsSince(t0);
  span.RecordLocal(stats.local_steps, stats.max_queue);
  return stats;
}

/// Step 5: odd-even merges of snake-adjacent blocks until globally sorted
/// (Lemma 3.1 predicts at most 2 rounds). Appends one PhaseStats covering
/// all rounds; returns the number of merge rounds used, or -1 if the cap
/// was exceeded (result left unsorted).
inline std::int64_t RunFixups(Network& net, const BlockGrid& grid,
                              std::int64_t k, const SortOptions& opts,
                              SortResult& result) {
  Span span = TraceContext::OpenIf(opts.trace, "fixup-merges");
  const auto t0 = std::chrono::steady_clock::now();
  PhaseStats stats;
  stats.name = "fixup-merges";
  const std::int64_t cap = opts.max_fixup_rounds > 0
                               ? opts.max_fixup_rounds
                               : 2 * grid.num_blocks() + 4;
  std::int64_t rounds = 0;
  bool sorted = IsGloballySorted(net, grid, k);
  while (!sorted && rounds < cap) {
    const int parity = static_cast<int>(rounds % 2);
    stats.local_steps += MergeAdjacentBlocks(net, grid, parity, k, opts.cost);
    stats.max_queue = std::max(stats.max_queue, net.MaxQueue());
    ++rounds;
    sorted = IsGloballySorted(net, grid, k);
  }
  stats.completed = sorted;
  stats.wall_ms = MsSince(t0);
  span.RecordLocal(stats.local_steps, stats.max_queue);
  result.AddPhase(std::move(stats));
  return sorted ? rounds : -1;
}

}  // namespace mdmesh::sort_detail
