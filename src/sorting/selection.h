// Selection (median finding) at the center of the mesh
// (paper, Section 4.3: lower bound (9/16-eps)D, upper bound D + o(n)).
//
// The upper bound reuses SimpleSort's concentration machinery:
//
//   1. steps (1)-(3) of SimpleSort: concentrate all packets evenly into the
//      center region C and sort each center block (<= 3D/4 + o(n) routing);
//   2. the local rank i inside C-block c now estimates the global rank as
//      est = i*mc + c, with provable error < (m+1)*mc (every C-block holds
//      every mc-th local rank of every source block, so the counts of
//      smaller keys per source block are off by at most 1 each);
//   3. CANDIDATES — packets with |est - target| <= (m+2)*mc — route to the
//      center block (<= D/4 + o(n): they start inside C, whose radius is
//      D/4). All non-candidates are decisively above or below the target,
//      so the exact below-count is known without moving them;
//   4. the center block locally selects the (target - below_count)-th
//      smallest candidate: the exact order statistic.
//
// Total routing: <= 3D/4 + D/4 + o(n) = D + o(n).
#pragma once

#include <cstdint>

#include "meshsim/blocks.h"
#include "sorting/common.h"

namespace mdmesh {

struct SelectResult {
  std::uint64_t selected_key = 0;
  bool found = false;            ///< candidate window contained the target
  std::int64_t candidates = 0;   ///< packets routed to the center block
  std::int64_t margin = 0;       ///< rank window half-width used
  /// True when the rank-estimate margin (m+2)*mc is not small relative to
  /// the input (the grid is too fine for this N): the result is still exact
  /// but most packets become candidates and the D/4 collection argument
  /// degenerates. Choose a coarser grid (smaller g).
  bool degenerate_margin = false;
  std::int64_t routing_steps = 0;
  std::int64_t local_steps = 0;
  std::int64_t total_steps = 0;
  std::int64_t max_queue = 0;
  bool completed = true;

  double RatioToDiameter(std::int64_t D) const {
    return static_cast<double>(routing_steps) / static_cast<double>(D);
  }
};

/// Selects the key of global rank `target` (0-based; the median is
/// target = (N*k-1)/2) and reports it at the center block. Consumes the
/// packets in `net`. Requirements as SimpleSort (g even, g | b).
SelectResult SelectAtCenter(Network& net, const BlockGrid& grid,
                            const SortOptions& opts, std::int64_t target);

}  // namespace mdmesh
