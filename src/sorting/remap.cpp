#include "sorting/remap.h"

#include <algorithm>

#include "net/engine.h"
#include "sorting/verify.h"

namespace mdmesh {

RouteResult RemapToScheme(Network& net, const BlockGrid& grid,
                          const IndexingScheme& scheme, std::int64_t k,
                          const EngineOptions& engine_opts) {
  const Topology& topo = grid.topo();
  const std::int64_t B = grid.block_volume();
  const int d = topo.dim();
  // The rank-t group sits at snake position t; it must move to the
  // processor the scheme assigns index t.
  std::int64_t t = 0;
  for (BlockId blk = 0; blk < grid.num_blocks(); ++blk) {
    for (std::int64_t off = 0; off < B; ++off, ++t) {
      const ProcId target = topo.Id(scheme.PointAt(t));
      std::int64_t lane = 0;
      for (Packet& pkt : net.At(grid.ProcAt(blk, off))) {
        pkt.dest = target;
        pkt.klass = static_cast<std::uint16_t>((t + lane++) % d);
      }
    }
  }
  (void)k;
  Engine engine(topo, engine_opts);
  return engine.Route(net);
}

bool IsSortedUnderScheme(const Network& net, const Topology& topo,
                         const IndexingScheme& scheme, std::int64_t k) {
  // Traverse processors in scheme-index order; (key, id) ranges must be
  // non-decreasing with exactly k packets per processor.
  std::pair<std::uint64_t, std::int64_t> prev_max{0, 0};
  bool first = true;
  std::vector<std::pair<std::uint64_t, std::int64_t>> here;
  for (std::int64_t t = 0; t < topo.size(); ++t) {
    const ProcId p = topo.Id(scheme.PointAt(t));
    const auto& q = net.At(p);
    if (static_cast<std::int64_t>(q.size()) != k) return false;
    here.clear();
    for (const Packet& pkt : q) here.emplace_back(pkt.key, pkt.id);
    std::sort(here.begin(), here.end());
    if (!first && here.front() < prev_max) return false;
    prev_max = here.back();
    first = false;
  }
  return true;
}

SortResult SortIntoScheme(SortAlgo algo, Network& net, const BlockGrid& grid,
                          const IndexingScheme& scheme, const SortOptions& opts) {
  const GroundTruth truth = CaptureGroundTruth(net);
  SortResult result = RunSort(algo, net, grid, opts);
  if (!result.sorted) return result;

  Span span = TraceContext::OpenIf(opts.trace, "remap");
  RouteResult remap = RemapToScheme(net, grid, scheme, opts.k, opts.engine);
  remap.RecordTo(span);
  span.Close();
  PhaseStats stats;
  stats.name = "remap";
  stats.routing_steps = remap.steps;
  stats.moves = remap.moves;
  stats.max_queue = remap.max_queue;
  stats.max_distance = remap.max_distance;
  stats.max_overshoot = remap.max_overshoot;
  stats.completed = remap.completed;
  result.AddPhase(std::move(stats));

  result.sorted = remap.completed &&
                  CaptureGroundTruth(net) == truth &&
                  IsSortedUnderScheme(net, grid.topo(), scheme, opts.k);
  return result;
}

}  // namespace mdmesh
