// Shared types for the sorting algorithms (paper, Section 3).
//
// Every algorithm alternates LOCAL phases (rank computation inside blocks —
// the o(n) term, charged via LocalCostModel; see DESIGN.md §1) with ROUTING
// phases (executed packet-by-packet on the engine — the Theta(D) leading
// term the theorems bound).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/engine.h"

namespace mdmesh {

/// How local (within-block) sorting is charged. The paper's block sorts cost
/// o(n) by citation to known block-sorting results; at simulable n a literal
/// in-simulator sort would swamp the leading term, so the charge is a model.
enum class LocalCostModel : std::uint8_t {
  kOracle,    ///< charge 0 steps; report separately (default)
  kLinear,    ///< charge 4*d*b steps per local phase (an optimal block sort)
  kMeasured,  ///< run odd-even transposition over the block snake and charge
              ///  the measured parallel round count
};

struct SortOptions {
  int g = 2;  ///< blocks per side (m = g^d blocks); SimpleSort needs m even
  int k = 1;  ///< k-k sorting: packets per processor
  LocalCostModel cost = LocalCostModel::kOracle;
  std::uint64_t seed = 1;
  /// Ablation (DESIGN.md E18): spread with random intermediate destinations
  /// instead of the deterministic unshuffle (the Valiant-Brebner style the
  /// sort-and-unshuffle derandomizes).
  bool randomized_spread = false;
  /// Cap on step-5 fix-up merge rounds. Lemma 3.1 predicts 2 in the paper's
  /// alpha >= 2/3 regime (finite-n form: m^2 <= 2B); outside it the rank
  /// estimate can be off by several blocks and the odd-even block merges
  /// need up to m rounds. 0 means auto (2m + 4, always sufficient);
  /// exceeding the cap marks the result unsorted.
  int max_fixup_rounds = 0;
  /// Override the number of center blocks (SimpleSort/CopySort). 0 means the
  /// paper's m/2. Used for the Corollary 3.1.2 shrunken-center ablation.
  std::int64_t center_blocks = 0;
  /// Optional phase-span trace: RunSort opens a root span named after the
  /// algorithm with one child per phase (same names as SortResult::phases).
  TraceContext* trace = nullptr;
  EngineOptions engine;
};

struct PhaseStats {
  std::string name;
  std::int64_t routing_steps = 0;
  std::int64_t local_steps = 0;
  std::int64_t moves = 0;  ///< packet-moves (routing phases only)
  std::int64_t max_queue = 0;
  std::int64_t max_distance = 0;
  std::int64_t max_overshoot = 0;
  double wall_ms = 0.0;
  bool completed = true;
};

struct SortResult {
  std::vector<PhaseStats> phases;
  std::int64_t routing_steps = 0;  ///< sum of routing phases
  std::int64_t local_steps = 0;    ///< sum of charged local phases
  std::int64_t total_steps = 0;
  std::int64_t max_queue = 0;
  std::int64_t fixup_rounds = 0;  ///< step-5 rounds actually used
  bool sorted = false;            ///< verified against ground truth
  bool completed = true;

  void AddPhase(PhaseStats phase);
  /// routing_steps / D — compare to the theorem coefficient (1.5, 1.25, ...).
  double RatioToDiameter(std::int64_t D) const {
    return static_cast<double>(routing_steps) / static_cast<double>(D);
  }
  std::string Summary(std::int64_t D) const;
};

}  // namespace mdmesh
