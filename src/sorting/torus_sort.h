// Algorithm TorusSort (paper, Section 3.3, Theorem 3.3 / Corollary 3.3.1).
//
// 3D/2 + o(n) sorting on the d-dimensional torus (D = d*floor(n/2)) with one
// copy per packet:
//
//   (2) spread packets evenly over ALL m blocks (a full unshuffle; the
//       farthest packet travels ~D, and Lemma 2.1 routes up to 2d such
//       permutations distance-optimally on tori) and route a copy of each
//       packet to the ANTIPODAL block of the original's destination.
//       On a ring dist(p,x) + dist(p, x + n/2) = n/2 per dimension, so every
//       processor is within D/2 of the original or the copy — Lemma 3.4 is
//       exact with the antipodal choice (the paper's "unique block D/2 away
//       from the destination"; see DESIGN.md §2 for the corrected reading).
//   (3) sort originals and copies separately inside each block; copies in
//       block beta are the copies of originals in antipode(beta), so ranks
//       coincide pairwise and the keep/delete rule is communication-free.
//   (4) delete the farther of each pair; survivors travel <= D/2 + o(n).
//   (5) odd-even fix-up merges.
//
// Corollary 3.3.1 (d-d sorting in the same time) is the k = d case.
#pragma once

#include "meshsim/blocks.h"
#include "sorting/common.h"

namespace mdmesh {

/// Requirements (checked): torus topology, g even (antipodal pairing),
/// g | b, k >= 1. Fills everything in SortResult except `sorted`.
SortResult TorusSortRun(Network& net, const BlockGrid& grid,
                        const SortOptions& opts);

}  // namespace mdmesh
