// Baseline: FullSort — sort-and-unshuffle over the WHOLE network.
//
// This is the natural d-dimensional generalization of the 2n + o(n)
// two-dimensional algorithms of [3, 6] (the prior state of the art the
// paper improves on): spread packets evenly over ALL blocks, sort locally,
// route every packet to its estimated destination block, fix up. Both
// routing phases can span the full diameter, so the running time is
// 2D + o(n) on the mesh — the ~2D baseline that SimpleSort (3D/2) and
// CopySort (5D/4) beat by concentrating into the center region.
// Works unchanged on tori (2D + o(n) there as well).
#pragma once

#include "meshsim/blocks.h"
#include "sorting/common.h"

namespace mdmesh {

/// Requirements (checked): g | b, k >= 1. Fills everything in SortResult
/// except `sorted`.
SortResult FullSortRun(Network& net, const BlockGrid& grid,
                       const SortOptions& opts);

}  // namespace mdmesh
