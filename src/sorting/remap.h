// Sorting into arbitrary indexing schemes.
//
// The paper's algorithms sort with respect to the blocked snake-like
// indexing; its Section 4 lower bounds quantify over every COMPATIBLE
// scheme. This adapter closes the gap for the library user: after a blocked
// snake sort, one more permutation-routing phase moves the rank-t packet
// from the snake position to the position the target scheme assigns rank t.
// The remap permutation is fixed (input-independent), costs at most D + o(n)
// routed greedily, and turns any 3D/2 algorithm into a (<= 5D/2)-step sort
// for row-major, Morton, Hilbert, or any other bijective scheme.
#pragma once

#include "meshsim/blocks.h"
#include "meshsim/indexing.h"
#include "net/metrics.h"
#include "sorting/common.h"
#include "sorting/kk_sort.h"

namespace mdmesh {

/// Routes every packet from its blocked-snake rank position to the target
/// scheme's position for the same rank (k packets per processor throughout).
/// Requires net to be sorted w.r.t. grid's blocked snake (as produced by
/// RunSort); schemes must match the topology.
RouteResult RemapToScheme(Network& net, const BlockGrid& grid,
                          const IndexingScheme& scheme, std::int64_t k,
                          const EngineOptions& engine = {});

/// Sortedness check against an arbitrary scheme: processor with scheme
/// index t holds exactly the keys of ranks [t*k, (t+1)*k).
bool IsSortedUnderScheme(const Network& net, const Topology& topo,
                         const IndexingScheme& scheme, std::int64_t k);

/// Convenience: RunSort into the blocked snake, then remap into `scheme`.
/// SortResult gains one extra routing phase ("remap").
SortResult SortIntoScheme(SortAlgo algo, Network& net, const BlockGrid& grid,
                          const IndexingScheme& scheme, const SortOptions& opts);

}  // namespace mdmesh
