#include "sorting/common.h"

#include <algorithm>
#include <sstream>

namespace mdmesh {

void SortResult::AddPhase(PhaseStats phase) {
  routing_steps += phase.routing_steps;
  local_steps += phase.local_steps;
  total_steps = routing_steps + local_steps;
  max_queue = std::max(max_queue, phase.max_queue);
  completed = completed && phase.completed;
  phases.push_back(std::move(phase));
}

std::string SortResult::Summary(std::int64_t D) const {
  std::ostringstream os;
  os << "routing=" << routing_steps << " (" << RatioToDiameter(D) << "D)"
     << " local=" << local_steps << " total=" << total_steps
     << " max_queue=" << max_queue << " fixups=" << fixup_rounds
     << (sorted ? " SORTED" : " UNSORTED") << (completed ? "" : " INCOMPLETE");
  return os.str();
}

}  // namespace mdmesh
