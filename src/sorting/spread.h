// Rank-to-destination arithmetic for the distribution phases
// (paper, Algorithm SimpleSort steps 2 and 4, and Section 2.1).
//
// These pure functions map (local rank i, source block number j) to
// (destination block number, within-block offset). They generalize the
// paper's formulas to k-k sorting by wrapping offsets modulo the block
// volume B; for k = 1 the occupancy they produce is identical to the
// paper's (exactly 2 packets per center processor after concentration,
// exactly 1 per processor after unconcentration). The balance proofs are in
// DESIGN.md §2 and are unit-tested exhaustively in tests/test_spread.cpp.
//
// Numbering conventions:
//   * "block number" for Concentrate's destination is the C-number of a
//     center block (the CenterRegion's fixed numbering);
//   * for Unconcentrate/Unshuffle it is the block snake index — which is
//     also the block's position in the global sorted order, making
//     `dest_block = i / (ranks per block)` route rank windows to their
//     final blocks.
#pragma once

#include <cstdint>

namespace mdmesh {

struct BlockDest {
  std::int64_t block = 0;   ///< destination block number (see above)
  std::int64_t offset = 0;  ///< within-block snake offset
};

/// Step 2 (concentration): rank i in [k*B] of source block j in [m] moves to
/// C-block (i mod mc) at offset (j + (i/mc)*m) mod B. Every processor of the
/// center region receives exactly 2k packets.
BlockDest ConcentrateDest(std::int64_t i, std::int64_t j, std::int64_t m,
                          std::int64_t mc, std::int64_t B);

/// Step 4 (unconcentration): after concentration each C-block holds
/// P = k*B*m/mc packets — a 1/mc sample of the global order. Rank i in [P]
/// of C-block j in [mc] moves to block i/(kB/mc) at offset
/// (j + (i mod (kB/mc))*mc) mod B. Every processor of the network receives
/// exactly k packets; consecutive rank windows fill consecutive blocks of
/// the snake. Requires mc | kB. (For the paper's mc = m/2 this is the
/// formula of SimpleSort step 4 with per-block window 2kB/m.)
BlockDest UnconcentrateDest(std::int64_t i, std::int64_t j, std::int64_t m,
                            std::int64_t mc, std::int64_t B, std::int64_t k);

/// Full unshuffle over all m blocks (TorusSort/FullSort step 2): rank i in
/// [k*B] of block j moves to block (i mod m) at offset (j + (i/m)*m) mod B.
/// Every processor receives exactly k packets.
BlockDest UnshuffleDest(std::int64_t i, std::int64_t j, std::int64_t m,
                        std::int64_t B);

/// Inverse distribution (TorusSort/FullSort step 4): rank i in [k*B] of
/// block j moves to block i/(kB/m) at offset (j + (i mod (kB/m))*m) mod B.
BlockDest UnshuffleInvDest(std::int64_t i, std::int64_t j, std::int64_t m,
                           std::int64_t B, std::int64_t k);

}  // namespace mdmesh
