#include "sorting/snake_sort.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sorting/verify.h"

namespace mdmesh {

SortResult SnakeSortRun(Network& net, const BlockGrid& grid,
                        const SortOptions& opts) {
  const std::int64_t k = opts.k;
  if (k < 1) throw std::invalid_argument("SnakeSort: k >= 1");
  const Topology& topo = grid.topo();
  const std::int64_t N = topo.size();
  const std::int64_t B = grid.block_volume();

  // Chain position t <-> processor (for exchanges between chain neighbors,
  // which are mesh neighbors by the snake property).
  std::vector<ProcId> chain(static_cast<std::size_t>(N));
  for (std::int64_t t = 0; t < N; ++t) {
    chain[static_cast<std::size_t>(t)] = grid.ProcAt(t / B, t % B);
  }

  auto sort_one = [](auto& q) {
    std::sort(q.begin(), q.end(), [](const Packet& a, const Packet& b) {
      return a.key != b.key ? a.key < b.key : a.id < b.id;
    });
  };
  // Pre-sort each processor's own packets (internal computation, free).
  for (ProcId p = 0; p < N; ++p) sort_one(net.At(p));

  SortResult result;
  Span span = TraceContext::OpenIf(opts.trace, "odd-even-transposition");
  PhaseStats stats;
  stats.name = "odd-even-transposition";
  std::int64_t max_queue = net.MaxQueue();

  // Compare-exchange rounds: each round, position pairs (even,odd) or
  // (odd,even) merge their 2k packets and split low/high. One synchronous
  // step per round (each bidirectional link carries k packets each way; for
  // k > 1 a round costs k steps of the unit-capacity links).
  const std::int64_t rounds_cap = N + 2;
  std::int64_t rounds = 0;
  bool sorted = IsGloballySorted(net, grid, k);
  std::vector<Packet> merged;
  while (!sorted && rounds < rounds_cap) {
    const std::int64_t parity = rounds % 2;
    for (std::int64_t t = parity; t + 1 < N; t += 2) {
      auto& lo = net.At(chain[static_cast<std::size_t>(t)]);
      auto& hi = net.At(chain[static_cast<std::size_t>(t + 1)]);
      merged.clear();
      merged.insert(merged.end(), lo.begin(), lo.end());
      merged.insert(merged.end(), hi.begin(), hi.end());
      sort_one(merged);
      const std::size_t half = lo.size();
      lo.assign(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(half));
      hi.assign(merged.begin() + static_cast<std::ptrdiff_t>(half), merged.end());
    }
    ++rounds;
    // Each round moves at most k packets per direction over each chain
    // link: k unit-capacity steps.
    stats.routing_steps += k;
    sorted = IsGloballySorted(net, grid, k);
  }
  stats.max_queue = max_queue;
  stats.completed = sorted;
  span.RecordRouting(stats.routing_steps, 0, stats.max_queue, 0);
  result.AddPhase(std::move(stats));
  result.fixup_rounds = rounds;
  return result;
}

}  // namespace mdmesh
