// Classical baseline: odd-even transposition sort along the global snake.
//
// The pre-1977 straw man the mesh-sorting literature (Orcutt [16],
// Thompson/Kung [18]) starts from: treat the whole network as one
// Hamiltonian chain (the blocked snake) and run odd-even transposition —
// each round compare-exchanges adjacent chain positions, one synchronous
// communication step per round, and sorting needs up to N = n^d rounds.
// Against the paper's 3D/2 = O(dn) algorithms this is slower by a factor
// ~n^(d-1)/d, which is exactly the gap Sections 3 and 5 close.
//
// Unlike the block-sort phases elsewhere, every round here IS a real
// communication step (exchanges happen between mesh neighbors), so
// routing_steps carries the full cost with no oracle charge.
#pragma once

#include "meshsim/blocks.h"
#include "sorting/common.h"

namespace mdmesh {

/// Sorts k packets per processor by odd-even transposition over the global
/// snake (granularity: processor contents; a round merges each adjacent
/// pair's 2k packets). steps = rounds until sorted; max N rounds.
SortResult SnakeSortRun(Network& net, const BlockGrid& grid,
                        const SortOptions& opts);

}  // namespace mdmesh
