// Exact lattice-point counting for center diamonds (paper, Section 4).
//
// C_{d,gamma} is the set of processors within L1 distance (1-gamma)*D/4 of
// the center of a d-dimensional mesh of side n. Its volume V and surface S
// drive every lower bound in Section 4 (Lemma 4.1 gives analytic upper
// bounds for both). Distances to the center are half-integral, so counts
// are indexed by HALF-distance h = 2 * L1 distance (an integer in
// [0, d*(n-1)]).
//
// The per-coordinate half-distance |2c - (n-1)| takes each even value in
// {0,2,...,n-1} (n odd) or odd value in {1,3,...,n-1} (n even) a known
// number of times; the d-dimensional distribution is the d-fold convolution,
// computed by a simple DP in doubles (counts up to n^d fit a double's range
// for every d we tabulate; exactness at small sizes is unit-tested against
// direct enumeration).
#pragma once

#include <cstdint>
#include <vector>

namespace mdmesh {

/// dist[h] = number of points of [n]^d whose half-distance to the center is
/// exactly h; size d*(n-1)+1. Entries sum to n^d.
std::vector<double> CenterDistanceDistribution(int d, int n);

/// Number of points with half-distance <= 2*radius (radius in full units,
/// possibly fractional). This is |C(radius)|.
double DiamondVolume(int d, int n, double radius);

/// Number of points on the "surface": half-distance in
/// (2*(radius-1), 2*radius] — the outermost unit shell of the diamond.
/// At most d*S packets can cross into the diamond per step.
double DiamondSurface(int d, int n, double radius);

/// Radius of C_{d,gamma}: (1-gamma) * D/4 with D = d*(n-1).
double DiamondRadius(int d, int n, double gamma);

/// V_{d,gamma} and S_{d,gamma} of the paper.
double VolumeDdGamma(int d, int n, double gamma);
double SurfaceDdGamma(int d, int n, double gamma);

/// Distance distribution to an arbitrary reference point x whose coordinates
/// all sit at half-offset `half_offset` from the center (i.e.
/// x_i = (n-1)/2 + half_offset/2 in every dimension). dist[h] = number of
/// points at half-distance exactly h from x. Used by the selection bound,
/// whose reference point lies on the boundary of a diamond.
std::vector<double> PointDistanceDistribution(int d, int n,
                                              std::int64_t half_offset);

/// Fraction of [n]^d within (full-unit) `radius` of the reference point
/// above.
double BallFractionAround(int d, int n, std::int64_t half_offset, double radius);

/// Incrementally-built center-distance distributions for d = 1..max — the
/// cheap way to sweep d (each step is one more convolution, not a rebuild).
class CenterDistanceSweep {
 public:
  explicit CenterDistanceSweep(int n);

  /// Distribution for dimension d (>= 1). Grows the cache as needed.
  const std::vector<double>& Distribution(int d);

  double VolumeNormalized(int d, double gamma);
  double SurfaceNormalized(int d, double gamma);

 private:
  int n_;
  std::vector<std::vector<double>> dists_;  // dists_[d-1]
};

}  // namespace mdmesh
