// Lower bounds for sorting in the multi-packet model
// (paper, Section 4: Lemma 4.2, Theorems 4.1-4.4).
//
// The joker-zone argument: run any sorting algorithm up to time
// T = (1/2 + (1-gamma)/4)*D - d*n^beta. The diamond C_{d,gamma} admits at
// most d*S_{d,gamma} packets per step (edge capacity; no limit on queue
// sizes), so if
//
//     d * S_{d,gamma} * T < n^d - V_{d,gamma}                (Lemma 4.2)
//
// some packet is still outside the diamond, hence at distance >= T from
// some corner; a joker zone of n^(beta*d) keys in that corner can (under
// any compatible indexing scheme) force its destination to be ~T away
// again, giving total time >= D + (1-gamma)*D/2 - n - d*n^beta.
//
// These are pure counting computations; this module evaluates them exactly
// (via the diamond DP) and tabulates the resulting bounds and the d0(eps)
// thresholds of Theorems 4.1, 4.3 and 4.4.
#pragma once

#include <cstdint>

namespace mdmesh {

struct Lemma42Eval {
  bool condition_holds = false;  ///< the capacity inequality above
  double lhs = 0.0;              ///< d*S*T, normalized by n^d
  double rhs = 0.0;              ///< (n^d - V), normalized by n^d
  double bound_steps = 0.0;      ///< D + (1-gamma)D/2 - n - d n^beta
  double bound_over_D = 0.0;     ///< bound_steps / D
};

/// Evaluates Lemma 4.2 for concrete (d, n, gamma, beta).
Lemma42Eval EvalLemma42(int d, int n, double gamma, double beta);

/// Theorem 4.1: smallest d such that sorting without copying needs
/// >= (3/2 - eps) * D steps, found by searching d with gamma = 3*eps/2
/// shrinking until both the Lemma 4.2 condition and the bound target hold
/// at side length n. Returns -1 if none is found up to max_d.
int FindD0NoCopy(double eps, double beta, int n, int max_d = 4096);

/// Theorem 4.2 witness: the strongest Lemma 4.2 bound (in units of D)
/// available at dimension d, maximized over a gamma grid, counting exactly
/// at side length n. A value > 1 certifies that sorting without copying
/// cannot asymptotically match the diameter at this d (the theorem asserts
/// this for every d >= 5). Returns 0 if the capacity condition fails for
/// every gamma.
double BestNoCopyBoundOverD(int d, int n, double beta);

/// Asymptotic (n -> infinity) form of the witness: the additive -n and
/// -d*n^beta terms of Lemma 4.2 vanish relative to D (the first like 1/d,
/// the second like n^(beta-1)), leaving bound/D = 1 + (1-gamma)/2 - 1/d for
/// every gamma whose capacity condition holds. The condition is evaluated
/// with exact counts at side `n_proxy` (the normalized V/n^d and S/n^(d-1)
/// converge quickly in n). This is the quantity Theorem 4.2 asserts exceeds
/// 1 for every d >= 5.
double BestNoCopyBoundOverDAsymptotic(int d, int n_proxy = 65);

/// Theorem 4.3 / 4.4 premise: with copying allowed the argument needs the
/// diamond to hold only a vanishing fraction of the packets and the
/// broadcast-tree capacity not to help; the tabulated premise is
/// V_{d,gamma}/n^d <= delta. Smallest d achieving it for gamma = eps.
int FindD0Copying(double eps, double delta, int n, int max_d = 4096);

/// The asymptotic coefficients claimed by the theorems (for tables).
inline double NoCopyCoefficient(double eps) { return 1.5 - eps; }      // Thm 4.1
inline double CopyMeshCoefficient(double eps) { return 1.25 - eps; }   // Thm 4.3
inline double CopyTorusCoefficient(double eps) { return 1.5 - eps; }   // Thm 4.4

}  // namespace mdmesh
