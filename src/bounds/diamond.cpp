#include "bounds/diamond.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mdmesh {

std::vector<double> CenterDistanceDistribution(int d, int n) {
  assert(d >= 1 && n >= 1);
  // One coordinate: half-distance |2c - (n-1)| for c in [n]; values range
  // over [0, n-1].
  std::vector<double> single(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < n; ++c) {
    int h = std::abs(2 * c - (n - 1));
    single[static_cast<std::size_t>(h)] += 1.0;
  }

  // d-fold convolution.
  std::vector<double> dist = single;
  for (int i = 1; i < d; ++i) {
    std::vector<double> next(dist.size() + static_cast<std::size_t>(n) - 1, 0.0);
    for (std::size_t a = 0; a < dist.size(); ++a) {
      if (dist[a] == 0.0) continue;
      for (std::size_t b = 0; b < single.size(); ++b) {
        if (single[b] == 0.0) continue;
        next[a + b] += dist[a] * single[b];
      }
    }
    dist.swap(next);
  }
  assert(dist.size() == static_cast<std::size_t>(d) * static_cast<std::size_t>(n - 1) + 1);
  return dist;
}

double DiamondVolume(int d, int n, double radius) {
  if (radius < 0) return 0.0;
  const auto dist = CenterDistanceDistribution(d, n);
  const auto cap = static_cast<std::int64_t>(std::floor(2.0 * radius + 1e-9));
  double total = 0.0;
  for (std::size_t h = 0; h < dist.size(); ++h) {
    if (static_cast<std::int64_t>(h) <= cap) total += dist[h];
  }
  return total;
}

double DiamondSurface(int d, int n, double radius) {
  if (radius < 0) return 0.0;
  const auto dist = CenterDistanceDistribution(d, n);
  const auto hi = static_cast<std::int64_t>(std::floor(2.0 * radius + 1e-9));
  const std::int64_t lo = hi - 2;  // outermost unit shell (two half-units)
  double total = 0.0;
  for (std::size_t h = 0; h < dist.size(); ++h) {
    const auto hh = static_cast<std::int64_t>(h);
    if (hh > lo && hh <= hi) total += dist[h];
  }
  return total;
}

double DiamondRadius(int d, int n, double gamma) {
  return (1.0 - gamma) * static_cast<double>(d) * (n - 1) / 4.0;
}

double VolumeDdGamma(int d, int n, double gamma) {
  return DiamondVolume(d, n, DiamondRadius(d, n, gamma));
}

double SurfaceDdGamma(int d, int n, double gamma) {
  return DiamondSurface(d, n, DiamondRadius(d, n, gamma));
}

namespace {

std::vector<double> ConvolveOnce(const std::vector<double>& dist,
                                 const std::vector<double>& single) {
  std::vector<double> next(dist.size() + single.size() - 1, 0.0);
  for (std::size_t a = 0; a < dist.size(); ++a) {
    if (dist[a] == 0.0) continue;
    for (std::size_t b = 0; b < single.size(); ++b) {
      if (single[b] == 0.0) continue;
      next[a + b] += dist[a] * single[b];
    }
  }
  return next;
}

}  // namespace

std::vector<double> PointDistanceDistribution(int d, int n,
                                              std::int64_t half_offset) {
  // Per coordinate: half-distance |2u - (n-1) - half_offset| for u in [n].
  std::int64_t max_h = 0;
  for (int u = 0; u < n; ++u) {
    max_h = std::max<std::int64_t>(
        max_h, std::llabs(2ll * u - (n - 1) - half_offset));
  }
  std::vector<double> single(static_cast<std::size_t>(max_h) + 1, 0.0);
  for (int u = 0; u < n; ++u) {
    auto h = static_cast<std::size_t>(std::llabs(2ll * u - (n - 1) - half_offset));
    single[h] += 1.0;
  }
  std::vector<double> dist = single;
  for (int i = 1; i < d; ++i) dist = ConvolveOnce(dist, single);
  return dist;
}

double BallFractionAround(int d, int n, std::int64_t half_offset,
                          double radius) {
  if (radius < 0) return 0.0;
  const auto dist = PointDistanceDistribution(d, n, half_offset);
  const auto cap = static_cast<std::int64_t>(std::floor(2.0 * radius + 1e-9));
  double total = 0.0;
  for (std::size_t h = 0; h < dist.size(); ++h) {
    if (static_cast<std::int64_t>(h) <= cap) total += dist[h];
  }
  return total / std::pow(static_cast<double>(n), d);
}

CenterDistanceSweep::CenterDistanceSweep(int n) : n_(n) {
  std::vector<double> single(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < n; ++c) {
    single[static_cast<std::size_t>(std::abs(2 * c - (n - 1)))] += 1.0;
  }
  dists_.push_back(std::move(single));
}

const std::vector<double>& CenterDistanceSweep::Distribution(int d) {
  assert(d >= 1);
  while (static_cast<int>(dists_.size()) < d) {
    dists_.push_back(ConvolveOnce(dists_.back(), dists_.front()));
  }
  return dists_[static_cast<std::size_t>(d) - 1];
}

double CenterDistanceSweep::VolumeNormalized(int d, double gamma) {
  const auto& dist = Distribution(d);
  const auto cap = static_cast<std::int64_t>(
      std::floor(2.0 * DiamondRadius(d, n_, gamma) + 1e-9));
  double total = 0.0;
  for (std::size_t h = 0; h < dist.size(); ++h) {
    if (static_cast<std::int64_t>(h) <= cap) total += dist[h];
  }
  return total / std::pow(static_cast<double>(n_), d);
}

double CenterDistanceSweep::SurfaceNormalized(int d, double gamma) {
  const auto& dist = Distribution(d);
  const auto hi = static_cast<std::int64_t>(
      std::floor(2.0 * DiamondRadius(d, n_, gamma) + 1e-9));
  const std::int64_t lo = hi - 2;
  double total = 0.0;
  for (std::size_t h = 0; h < dist.size(); ++h) {
    const auto hh = static_cast<std::int64_t>(h);
    if (hh > lo && hh <= hi) total += dist[h];
  }
  return total / std::pow(static_cast<double>(n_), d - 1);
}

}  // namespace mdmesh
