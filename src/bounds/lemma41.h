// Lemma 4.1 (paper): analytic bounds on diamond volume and surface.
//
//   V_{d,gamma} <= exp(-gamma^2 d / 4)  * n^d
//   S_{d,gamma} <= (8/gamma) * exp(-gamma^2 d / 16) * n^(d-1)
//
// These are Chernoff-style tail bounds on the sum of d independent
// per-coordinate distances. The bench table E10 compares them against the
// exact counts of bounds/diamond.h; to keep the comparison overflow-free for
// large d everything is exposed in NORMALIZED form (divided by n^d resp.
// n^(d-1)).
#pragma once

namespace mdmesh {

/// exp(-gamma^2 d/4): the claimed bound on V_{d,gamma} / n^d.
double Lemma41VolumeBoundNormalized(int d, double gamma);

/// (8/gamma) exp(-gamma^2 d/16): the claimed bound on S_{d,gamma} / n^(d-1).
double Lemma41SurfaceBoundNormalized(int d, double gamma);

/// Exact V_{d,gamma} / n^d from the counting DP.
double ExactVolumeNormalized(int d, int n, double gamma);

/// Exact S_{d,gamma} / n^(d-1) from the counting DP.
double ExactSurfaceNormalized(int d, int n, double gamma);

/// True iff the exact counts satisfy both Lemma 4.1 inequalities.
bool CheckLemma41(int d, int n, double gamma);

}  // namespace mdmesh
