// Compatible indexing schemes (paper, Section 4 definition).
//
// An indexing scheme I is COMPATIBLE if there is beta < 1 such that every
// index window {i, ..., i + n^(beta d) - 1} contains a complete
// (d-1)-dimensional subnetwork of side n (an axis-aligned hyperplane
// x_j = c). Intuition: a joker zone of n^(beta d) keys can steer a packet's
// destination anywhere within such a hyperplane — the teeth of the Section 4
// lower bounds.
//
// The checker computes the MINIMAL window size w* for which the property
// holds: a hyperplane H "fits" a window starting at i iff
// i <= min(I(H)) and max(I(H)) < i + w, i.e. i in
// [max(I(H)) - w + 1, min(I(H))]; the scheme satisfies the property for w
// iff these intervals cover every window start in [0, n^d - w]. w* is found
// by binary search (coverage is monotone in w) and reported together with
// the induced beta* = log(w*) / (d log n). Compatible <=> w* < n^d
// (beta* < 1); the paper's schemes all give w* ~ 2 n^(d-1).
#pragma once

#include <cstdint>

#include "meshsim/indexing.h"
#include "meshsim/topology.h"

namespace mdmesh {

struct CompatibilityResult {
  bool compatible = false;
  std::int64_t min_window = 0;  ///< w*: smallest window size that works
  double beta = 1.0;            ///< log(w*) / (d log n)
};

CompatibilityResult CheckCompatibility(const Topology& topo,
                                       const IndexingScheme& scheme);

/// Whether windows of size `w` suffice (the raw predicate behind w*).
bool WindowsContainHyperplane(const Topology& topo,
                              const IndexingScheme& scheme, std::int64_t w);

}  // namespace mdmesh
