#include "bounds/compatibility.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace mdmesh {
namespace {

struct Span {
  std::int64_t min_idx = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_idx = -1;
};

/// Index span of every hyperplane (dim j, value c), laid out as spans[j*n+c].
std::vector<Span> HyperplaneSpans(const Topology& topo,
                                  const IndexingScheme& scheme) {
  const int d = topo.dim();
  const int n = topo.side();
  std::vector<Span> spans(static_cast<std::size_t>(d) * static_cast<std::size_t>(n));
  for (ProcId p = 0; p < topo.size(); ++p) {
    const Point c = topo.Coords(p);
    const std::int64_t idx = scheme.Index(c);
    for (int j = 0; j < d; ++j) {
      Span& s = spans[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(c[static_cast<std::size_t>(j)])];
      s.min_idx = std::min(s.min_idx, idx);
      s.max_idx = std::max(s.max_idx, idx);
    }
  }
  return spans;
}

bool Covered(const std::vector<Span>& spans, std::int64_t N, std::int64_t w) {
  // A hyperplane H fits windows starting at i in [max-w+1, min]; the union
  // of these intervals must cover [0, N-w].
  std::vector<std::pair<std::int64_t, std::int64_t>> intervals;
  intervals.reserve(spans.size());
  for (const Span& s : spans) {
    const std::int64_t lo = std::max<std::int64_t>(0, s.max_idx - w + 1);
    const std::int64_t hi = s.min_idx;
    if (lo <= hi) intervals.emplace_back(lo, hi);
  }
  std::sort(intervals.begin(), intervals.end());
  std::int64_t reach = -1;  // highest start covered so far (contiguously)
  for (const auto& [lo, hi] : intervals) {
    if (lo > reach + 1) break;
    reach = std::max(reach, hi);
    if (reach >= N - w) return true;
  }
  return reach >= N - w;
}

}  // namespace

bool WindowsContainHyperplane(const Topology& topo,
                              const IndexingScheme& scheme, std::int64_t w) {
  return Covered(HyperplaneSpans(topo, scheme), topo.size(), w);
}

CompatibilityResult CheckCompatibility(const Topology& topo,
                                       const IndexingScheme& scheme) {
  const auto spans = HyperplaneSpans(topo, scheme);
  const std::int64_t N = topo.size();
  std::int64_t lo = 1;
  std::int64_t hi = N;
  // Coverage is monotone in w: larger windows only widen every interval and
  // shrink the range that must be covered.
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (Covered(spans, N, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  CompatibilityResult result;
  result.min_window = lo;
  result.compatible = lo < N;
  result.beta = std::log(static_cast<double>(lo)) /
                (topo.dim() * std::log(static_cast<double>(topo.side())));
  return result;
}

}  // namespace mdmesh
