// Broadcast-tree lower bounds (paper, Section 4.2 proof sketch).
//
// Theorem 4.3's argument needs: "the number of communication steps required
// to route copies of a packet to a number of locations is lower-bounded by
// the length of a minimal 'broadcast tree' connecting these locations."
// A minimal broadcast tree in the L1 mesh is a rectilinear Steiner tree;
// computing its exact length is NP-hard, so the bound is applied through
// two classic, efficiently computable lower bounds:
//
//   * bounding-box semi-perimeter — any connected subgraph touching all
//     terminals spans their coordinate ranges in every dimension;
//   * the star/count bound — a tree with t terminals has >= t-1 edges, and
//     every edge is one unit of communication.
//
// The edge-capacity form of the theorem then says: a packet that must leave
// copies at locations L pays at least SteinerLowerBound(L) packet-moves in
// total, so the network-wide move budget (links * steps) caps how many
// well-spread copies every packet can afford.
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/topology.h"

namespace mdmesh {

/// max(semi-perimeter of the bounding box, |terminals| - 1); 0 for fewer
/// than two terminals. A valid lower bound on the rectilinear Steiner tree
/// length over the given processors (mesh metric; on tori the box is taken
/// the short way around per dimension).
std::int64_t SteinerLowerBound(const Topology& topo,
                               const std::vector<ProcId>& terminals);

/// The aggregate form used by Theorem 4.3: if every one of the N packets
/// spreads copies over terminals that pairwise span distance >= spread, the
/// total packet-moves are >= N * spread, so
///     steps >= N * spread / links.
/// Returns that step bound.
double CopySpreadStepBound(const Topology& topo, std::int64_t spread);

}  // namespace mdmesh
