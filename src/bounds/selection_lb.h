// Selection bounds (paper, Section 4.3, Theorem 4.5).
//
// Lower bound: for every eps > 0 there is d0 such that for d >= d0,
// selecting the median at the center processor takes >= (9/16 - eps) * D
// steps. The argument: by Lemma 4.1 only a vanishing fraction of packets
// can enter C_{d,eps} within D/2 steps; a packet x outside the diamond has
// only a small fraction of the network within (5/16 - 2eps) * D of it, so
// up to that time x cannot be ruled out as the median; moving it to the
// center then costs another (1-eps) * D/4.
//
// Upper bounds quoted by the paper: D + o(n) (implemented — see
// sorting/selection.h), improvable to (3/4+eps) * D for large d on meshes
// and (1+eps) * D on tori (vs. the trivial radius bound D/2 resp. D).
#pragma once

namespace mdmesh {

/// The claimed lower-bound coefficient (9/16 - eps).
inline double SelectionLowerCoefficient(double eps) {
  return 9.0 / 16.0 - eps;
}

/// Premise check for Theorem 4.5 at concrete (d, n, eps): the fraction of
/// processors within distance (5/16 - 2 eps) * D of a point x on the
/// boundary of C_{d,eps} plus the diamond fraction must be < 1 (so some
/// packet survives as a median candidate). Evaluated exactly with the
/// counting DP, using the worst case x = center (a ball around any other x
/// contains at most as many processors as the central one of equal radius).
bool CheckSelectionPremise(int d, int n, double eps);

/// Smallest d (up to max_d) whose ANALYTIC Lemma 4.1 bound certifies the
/// premise: e^{-eps^2 d/4} + e^{-c(eps) d} < 1 with room eps; -1 if none.
int FindD0Selection(double eps, int max_d = 4096);

/// The trivial radius lower bound, in units of D: 1/2 (mesh), 1 (torus).
inline double SelectionRadiusCoefficient(bool torus) { return torus ? 1.0 : 0.5; }

}  // namespace mdmesh
