// Bisection lower bounds for k-k routing and sorting (paper, Section 1.1).
//
// Cutting the network across its middle in one dimension leaves two halves
// of N/2 processors joined by n^(d-1) bidirectional links on the mesh (twice
// that on the torus, which also wraps around). A k-k problem may require
// all k*N/2 packets of one half to cross, giving lower bounds of kn/2 steps
// on the mesh and kn/4 on the torus — the bounds that the optimal k-k
// algorithms of [5, 6, 12] match for k >= 4d. Our k-k corollaries
// (3.1.1/3.3.1) live in the small-k regime where the diameter term
// dominates; the calculators below quantify the crossover.
#pragma once

#include <cstdint>

#include "meshsim/topology.h"

namespace mdmesh {

/// Bidirectional links crossing the central bisection of one dimension:
/// n^(d-1) on the mesh, 2*n^(d-1) on the torus.
std::int64_t BisectionWidth(const Topology& topo);

/// The k-k routing/sorting bisection bound in steps: k*N/2 packets over
/// 2 * width directed link-capacity per step => k*n/2 (mesh), k*n/4 (torus).
double KkBisectionBound(const Topology& topo, std::int64_t k);

/// The diameter-type lower bound for the paper's algorithms, for comparison.
inline double DiameterBound(const Topology& topo) {
  return static_cast<double>(topo.Diameter());
}

/// Smallest k at which the bisection bound overtakes c*D (the crossover
/// between the diameter-dominated small-k regime of Corollary 3.1.1 and the
/// bisection-dominated large-k regime of [5, 6, 12]).
std::int64_t BisectionCrossoverK(const Topology& topo, double c);

}  // namespace mdmesh
