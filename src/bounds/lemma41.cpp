#include "bounds/lemma41.h"

#include <cmath>

#include "bounds/diamond.h"

namespace mdmesh {

double Lemma41VolumeBoundNormalized(int d, double gamma) {
  return std::exp(-gamma * gamma * d / 4.0);
}

double Lemma41SurfaceBoundNormalized(int d, double gamma) {
  return (8.0 / gamma) * std::exp(-gamma * gamma * d / 16.0);
}

double ExactVolumeNormalized(int d, int n, double gamma) {
  return VolumeDdGamma(d, n, gamma) / std::pow(static_cast<double>(n), d);
}

double ExactSurfaceNormalized(int d, int n, double gamma) {
  return SurfaceDdGamma(d, n, gamma) / std::pow(static_cast<double>(n), d - 1);
}

bool CheckLemma41(int d, int n, double gamma) {
  return ExactVolumeNormalized(d, n, gamma) <=
             Lemma41VolumeBoundNormalized(d, gamma) &&
         ExactSurfaceNormalized(d, n, gamma) <=
             Lemma41SurfaceBoundNormalized(d, gamma);
}

}  // namespace mdmesh
