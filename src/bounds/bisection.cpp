#include "bounds/bisection.h"

#include <cmath>

namespace mdmesh {

std::int64_t BisectionWidth(const Topology& topo) {
  const std::int64_t face = IPow(topo.side(), topo.dim() - 1);
  return topo.torus() ? 2 * face : face;
}

double KkBisectionBound(const Topology& topo, std::int64_t k) {
  // k*N/2 packets must cross; each step moves at most one packet per
  // directed crossing link (2 * width of them, one per direction... only
  // the direction toward the other half helps, so `width` per step per
  // direction). Worst case: all packets cross one way -> k*N/2 / width.
  const double crossing = static_cast<double>(k) *
                          static_cast<double>(topo.size()) / 2.0;
  return crossing / static_cast<double>(BisectionWidth(topo));
}

std::int64_t BisectionCrossoverK(const Topology& topo, double c) {
  const double target = c * static_cast<double>(topo.Diameter());
  for (std::int64_t k = 1; k <= 1 << 20; ++k) {
    if (KkBisectionBound(topo, k) >= target) return k;
  }
  return -1;
}

}  // namespace mdmesh
