#include "bounds/sorting_lb.h"

#include <algorithm>
#include <cmath>

#include "bounds/diamond.h"
#include "bounds/lemma41.h"

namespace mdmesh {

Lemma42Eval EvalLemma42(int d, int n, double gamma, double beta) {
  Lemma42Eval eval;
  const double D = static_cast<double>(d) * (n - 1);
  const double T =
      (0.5 + (1.0 - gamma) / 4.0) * D - d * std::pow(static_cast<double>(n), beta);
  const double v_norm = ExactVolumeNormalized(d, n, gamma);
  const double s_norm = ExactSurfaceNormalized(d, n, gamma);
  // Normalize both sides of  d * S * T < n^d - V  by n^d.
  eval.lhs = d * s_norm * T / n;
  eval.rhs = 1.0 - v_norm;
  eval.condition_holds = T > 0 && eval.lhs < eval.rhs;
  eval.bound_steps = D + (1.0 - gamma) * D / 2.0 - n -
                     d * std::pow(static_cast<double>(n), beta);
  eval.bound_over_D = eval.bound_steps / D;
  return eval;
}

int FindD0NoCopy(double eps, double beta, int n, int max_d) {
  // gamma = 2*eps makes the asymptotic bound coefficient exactly
  // 1 + (1-gamma)/2 = 3/2 - eps. The capacity condition is checked with the
  // PROVEN analytic bounds of Lemma 4.1 (they only over-estimate S and V, so
  // any d passing here genuinely satisfies Lemma 4.2 asymptotically).
  const double gamma = 2.0 * eps;
  if (gamma <= 0.0 || gamma >= 1.0) return -1;
  for (int d = 2; d <= max_d; ++d) {
    const double s_norm = Lemma41SurfaceBoundNormalized(d, gamma);
    const double v_norm = Lemma41VolumeBoundNormalized(d, gamma);
    // T/n ~ (1/2 + (1-gamma)/4) * d  (the d*n^beta term is o(n) per packet
    // and vanishes in the normalized comparison as n grows).
    const double t_over_n = (0.5 + (1.0 - gamma) / 4.0) * d;
    if (d * s_norm * t_over_n < 1.0 - v_norm) return d;
  }
  (void)beta;
  (void)n;
  return -1;
}

double BestNoCopyBoundOverD(int d, int n, double beta) {
  double best = 0.0;
  for (int t = 1; t < 100; ++t) {
    const double gamma = t / 100.0;
    Lemma42Eval eval = EvalLemma42(d, n, gamma, beta);
    if (eval.condition_holds) best = std::max(best, eval.bound_over_D);
  }
  return best;
}

double BestNoCopyBoundOverDAsymptotic(int d, int n_proxy) {
  double best = 0.0;
  for (int t = 1; t < 100; ++t) {
    const double gamma = t / 100.0;
    const double s_norm = ExactSurfaceNormalized(d, n_proxy, gamma);
    const double v_norm = ExactVolumeNormalized(d, n_proxy, gamma);
    // Capacity: d * S * T < n^d - V with T ~ (1/2 + (1-gamma)/4) * D and
    // D = d * (n-1) ~ d * n, all normalized by n^d.
    const double t_over_n = (0.5 + (1.0 - gamma) / 4.0) * d;
    if (d * s_norm * t_over_n < 1.0 - v_norm) {
      // bound = D + (1-gamma) D/2 - n; the joker-zone term d*n^beta is
      // o(n) per the definition of compatibility (beta < 1).
      best = std::max(best, 1.0 + (1.0 - gamma) / 2.0 - 1.0 / d);
    }
  }
  return best;
}

int FindD0Copying(double eps, double delta, int n, int max_d) {
  const double gamma = eps;
  if (gamma <= 0.0 || gamma >= 1.0) return -1;
  for (int d = 2; d <= max_d; ++d) {
    if (Lemma41VolumeBoundNormalized(d, gamma) <= delta) return d;
  }
  (void)n;
  return -1;
}

}  // namespace mdmesh
