#include "bounds/selection_lb.h"

#include <algorithm>
#include <cmath>

#include "bounds/diamond.h"
#include "bounds/lemma41.h"

namespace mdmesh {

bool CheckSelectionPremise(int d, int n, double eps) {
  // Reference point x: on the boundary of C_{d,eps}, offsets spread evenly
  // over the dimensions — the x with the SMALLEST expected distance to a
  // random processor among boundary points, hence the worst case for the
  // argument. Per-dimension half-offset = (1-eps) * (n-1)/2 / 2.
  const double D = static_cast<double>(d) * (n - 1);
  const auto half_offset = static_cast<std::int64_t>(
      std::llround((1.0 - eps) * (n - 1) / 2.0));
  const double ball =
      BallFractionAround(d, n, half_offset, (5.0 / 16.0 - 2.0 * eps) * D);
  const double diamond = ExactVolumeNormalized(d, n, eps);
  // Some packet must start outside the diamond AND outside the ball.
  return diamond + ball < 1.0;
}

int FindD0Selection(double eps, int max_d) {
  if (eps <= 0.0 || eps >= 0.15) return -1;  // 5/16 - 2eps must stay positive
  for (int d = 2; d <= max_d; ++d) {
    // Analytic premise: diamond fraction e^{-eps^2 d/4} (Lemma 4.1) plus a
    // Hoeffding bound on the ball. dist(U, x) is a sum of d independent
    // terms in [0, n]; its mean for the boundary x is >= (5/16 - O(eps))*D,
    // so P(dist <= (5/16 - 2eps) D) <= exp(-2 (eps D / sqrt(d) n)^2 * d)
    // ~= exp(-2 eps^2 d) for large n.
    const double diamond = Lemma41VolumeBoundNormalized(d, eps);
    const double ball = std::exp(-2.0 * eps * eps * d);
    if (diamond + ball < 0.5) return d;
  }
  return -1;
}

}  // namespace mdmesh
