#include "bounds/broadcast.h"

#include <algorithm>

namespace mdmesh {

std::int64_t SteinerLowerBound(const Topology& topo,
                               const std::vector<ProcId>& terminals) {
  if (terminals.size() < 2) return 0;
  const int d = topo.dim();
  const int n = topo.side();
  std::int64_t semi_perimeter = 0;
  for (int dim = 0; dim < d; ++dim) {
    const std::int64_t stride = IPow(n, dim);
    if (!topo.torus()) {
      std::int32_t lo = n;
      std::int32_t hi = -1;
      for (ProcId p : terminals) {
        const auto c = static_cast<std::int32_t>((p / stride) % n);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      semi_perimeter += hi - lo;
    } else {
      // Ring span: n minus the largest gap between consecutive occupied
      // coordinates (the tree can route around the gap).
      std::vector<std::int32_t> coords;
      coords.reserve(terminals.size());
      for (ProcId p : terminals) {
        coords.push_back(static_cast<std::int32_t>((p / stride) % n));
      }
      std::sort(coords.begin(), coords.end());
      coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
      std::int64_t largest_gap =
          coords.front() + n - coords.back();  // wraparound gap
      for (std::size_t i = 1; i < coords.size(); ++i) {
        largest_gap = std::max<std::int64_t>(largest_gap,
                                             coords[i] - coords[i - 1]);
      }
      semi_perimeter += n - largest_gap;
    }
  }
  const auto star = static_cast<std::int64_t>(terminals.size()) - 1;
  return std::max(semi_perimeter, star);
}

double CopySpreadStepBound(const Topology& topo, std::int64_t spread) {
  const int d = topo.dim();
  const std::int64_t N = topo.size();
  const std::int64_t links =
      topo.torus() ? 2ll * d * N
                   : 2ll * d * N * (topo.side() - 1) / topo.side();
  return static_cast<double>(N) * static_cast<double>(spread) /
         static_cast<double>(links);
}

}  // namespace mdmesh
