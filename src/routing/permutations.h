// Permutation workload generators (paper, Sections 2.1, 2.2, 5).
//
// A routing problem is a destination assignment dest[src]. Besides uniform
// random permutations we provide the structured worst cases used to stress
// the Section 5 router, and the *unshuffle permutation* of Section 2.1 —
// the deterministic stand-in for a random permutation that underlies every
// derandomized algorithm in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/blocks.h"
#include "meshsim/topology.h"
#include "util/rng.h"

namespace mdmesh {

/// dest[p] = p.
std::vector<ProcId> IdentityPermutation(const Topology& topo);

/// Uniformly random permutation of the processors.
std::vector<ProcId> RandomPermutation(const Topology& topo, Rng& rng);

/// Reflection through the network center: every coordinate c -> n-1-c.
/// Every packet travels the full distance profile (corner packets travel D),
/// the classic adversarial input for greedy routing.
std::vector<ProcId> ReversalPermutation(const Topology& topo);

/// Coordinate reversal (p_0,...,p_{d-1}) -> (p_{d-1},...,p_0), the
/// d-dimensional analogue of a matrix transpose. Concentrates load on the
/// main diagonal under dimension-order routing.
std::vector<ProcId> TransposePermutation(const Topology& topo);

/// Torus-only: shift by floor(n/2) in every dimension (the antipodal map).
/// All packets travel exactly d*floor(n/2) = D.
std::vector<ProcId> AntipodalPermutation(const Topology& topo);

/// Per-coordinate bit reversal: every coordinate c is reversed within
/// b = bit_width(n-1) bits; a reversal that lands outside [0, n) leaves the
/// coordinate fixed (cycle-walking), so the map is a bijection — and an
/// involution — for every side length. On power-of-two sides every
/// coordinate is reversed (the classic FFT/butterfly stress pattern, which
/// folds distant address bits together and defeats locality-based routing).
std::vector<ProcId> BitReversalPermutation(const Topology& topo);

/// Hot-spot destination assignment (not a permutation): each source sends
/// to one of `hot_count` fixed hot processors with probability `skew`, and
/// to a uniformly random processor otherwise. The hot set and all draws are
/// deterministic in `rng`. hot_count is clamped to [1, N]; skew to [0, 1].
/// skew = 1 with hot_count = 1 is the pure single-target pile-up.
std::vector<ProcId> HotSpotAssignment(const Topology& topo,
                                      std::int64_t hot_count, double skew,
                                      Rng& rng);

/// The unshuffle permutation of Section 2.1 on the blocked snake layout:
/// the packet at within-block snake offset i of block j moves to block
/// (i mod m) at offset j + floor(i/m)*m, where m is the number of blocks.
/// Requires m | block_volume (i.e. g | b). This is an m-way unshuffle of the
/// processor chain laid out by the blocked snake indexing; its destinations
/// are evenly spread over the whole network, which is what lets it replace a
/// random permutation (Lemmas 2.1-2.3 extend to it).
std::vector<ProcId> UnshufflePermutation(const BlockGrid& grid);

/// Checks dest is a bijection on [0, N).
bool IsPermutation(const std::vector<ProcId>& dest);

}  // namespace mdmesh
