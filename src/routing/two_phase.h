// Near-diameter permutation routing (paper, Section 5).
//
// For a packet with source x and destination y, every processor in
// S_nu(x,y) = { z : dist(x,z) <= D/2+nu and dist(z,y) <= D/2+nu } is a valid
// midpoint: routing x -> z -> y takes at most D + 2*nu (+ lower-order terms)
// if both phases are distance-optimal. The deterministic variant works at
// block granularity: packets sharing (source block X, destination block Y)
// are spread round-robin over S_nu(X,Y) (block-center distances), which
// reduces each phase to a bounded number of unshuffle-like permutations
// (Theorem 5.1: D + n + o(n) on meshes with nu = n/2; Theorem 5.2:
// D + n/8 + o(n) on tori with nu = n/16; Theorem 5.3: nu -> epsilon*n as d
// grows).
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/blocks.h"
#include "net/engine.h"
#include "routing/policy.h"

namespace mdmesh {

struct TwoPhaseOptions {
  int g = 2;                ///< blocks per side for the spreading grid
  double nu = -1.0;         ///< midpoint slack; < 0 picks the paper default
                            ///  (n/2 mesh, n/16 torus)
  bool randomized = false;  ///< random midpoints instead of round-robin
  /// Overlap the two phases (the paper's Section 6 open question): packets
  /// retarget to their final destination the moment they reach their
  /// midpoint, with no barrier between the phases. Farthest-first priority
  /// counts the full remaining path. Measured in bench_routing_mesh; it
  /// consistently removes the phase-boundary idle time.
  bool overlap = false;
  std::uint64_t seed = 1;
  /// Optional phase-span trace: the router opens "two_phase" with children
  /// "assign_midpoints", then "phase_a_route"/"phase_b_route" (sequential)
  /// or "overlapped_route" (overlap = true).
  TraceContext* trace = nullptr;
  EngineOptions engine;
};

struct TwoPhaseResult {
  RouteResult phase1;
  RouteResult phase2;
  std::int64_t total_steps = 0;
  std::int64_t max_queue = 0;
  bool delivered = false;      ///< every packet verified at its destination
  std::int64_t min_s_size = 0; ///< min |S_nu(X,Y)| over occurring pairs
  double nu_used = 0.0;

  double steps_over_diameter(std::int64_t D) const {
    return static_cast<double>(total_steps) / static_cast<double>(D);
  }
};

/// Routes the permutation `dest` with the Section 5 two-phase algorithm.
TwoPhaseResult RouteTwoPhase(const Topology& topo,
                             const std::vector<ProcId>& dest,
                             const TwoPhaseOptions& opts);

/// |S_nu(X,Y)| minimized over all block pairs (X,Y) — the feasibility
/// quantity of Theorem 5.3: each phase reduces to k unshuffle permutations
/// once k * min|S_nu| * block_volume >= N.
std::int64_t MinMidpointSetSize(const BlockGrid& grid, double nu);

}  // namespace mdmesh
