// Extended-greedy class assignment (paper, Section 2.2).
//
// The extended greedy scheme runs d "copies" of dimension-order routing: the
// packets are split into d classes of roughly equal size whose origins and
// destinations are each spread evenly over the network; class i corrects
// dimensions starting at dimension i. The paper gives two ways to split:
//
//   * randomized  — each packet picks a uniform class;
//   * determinstic — sort packets inside blocks of side o(n) (here: the
//     fine grid's blocks) by destination index, class = local rank mod d.
//
// For multi-permutation workloads the paper's Lemma 2.1 proof assigns whole
// permutations to dimensions (2 per dimension for 2d permutations); that is
// the kByPermutation mode.
#pragma once

#include <cstdint>

#include "meshsim/blocks.h"
#include "net/network.h"
#include "util/rng.h"

namespace mdmesh {

enum class ClassMode : std::uint8_t {
  kRandom,         ///< uniform random class per packet
  kLocalRank,      ///< deterministic: local-destination-rank mod d
  kByPermutation,  ///< class = packet.tag mod d (tag = permutation index)
  kZero,           ///< plain greedy: everyone uses dimension order 0,1,...,d-1
};

/// Assigns Packet::klass for every packet in the network.
/// For kLocalRank, `grid` provides the local blocks (may be coarse; the
/// paper only needs side o(n)); packets inside a block are ordered by
/// (destination blocked-snake index, id) and classed round-robin.
void AssignClasses(Network& net, ClassMode mode, const BlockGrid* grid,
                   Rng* rng);

}  // namespace mdmesh
