// Extended-greedy class assignment (paper, Section 2.2).
//
// The extended greedy scheme runs d "copies" of dimension-order routing: the
// packets are split into d classes of roughly equal size whose origins and
// destinations are each spread evenly over the network; class i corrects
// dimensions starting at dimension i. The paper gives two ways to split:
//
//   * randomized  — each packet picks a uniform class;
//   * determinstic — sort packets inside blocks of side o(n) (here: the
//     fine grid's blocks) by destination index, class = local rank mod d.
//
// For multi-permutation workloads the paper's Lemma 2.1 proof assigns whole
// permutations to dimensions (2 per dimension for 2d permutations); that is
// the kByPermutation mode.
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"
#include "meshsim/blocks.h"
#include "net/network.h"
#include "util/rng.h"

namespace mdmesh {

enum class ClassMode : std::uint8_t {
  kRandom,         ///< uniform random class per packet
  kLocalRank,      ///< deterministic: local-destination-rank mod d
  kByPermutation,  ///< class = packet.tag mod d (tag = permutation index)
  kZero,           ///< plain greedy: everyone uses dimension order 0,1,...,d-1
};

/// Assigns Packet::klass for every packet in the network.
/// For kLocalRank, `grid` provides the local blocks (may be coarse; the
/// paper only needs side o(n)); packets inside a block are ordered by
/// (destination blocked-snake index, id) and classed round-robin.
void AssignClasses(Network& net, ClassMode mode, const BlockGrid* grid,
                   Rng* rng);

/// Fault-aware class fixup, applied after AssignClasses when routing under a
/// FaultPlan: any packet whose very first hop (the preferred link of its
/// class's starting dimension) is permanently dead is moved to the next
/// class (in rotated order) whose starting hop leaves the source on an
/// alive link. This keeps the class split balanced at fault rate 0 (no
/// packet moves) while sparing the engine an injection-time detour for
/// every affected packet. Packets with no alive starting hop in any class
/// keep their class. Returns the number of packets reassigned.
std::int64_t ReassignClassesForFaults(Network& net, const FaultPlan& plan);

}  // namespace mdmesh
