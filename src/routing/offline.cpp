#include "routing/offline.h"

#include <algorithm>
#include <cassert>

namespace mdmesh {

OfflineBound ComputeOfflineBound(const Topology& topo,
                                 const std::vector<ProcId>& dest) {
  assert(dest.size() == static_cast<std::size_t>(topo.size()));
  const int d = topo.dim();
  const int n = topo.side();
  const std::int64_t face = IPow(n, d - 1);

  OfflineBound result;
  for (ProcId p = 0; p < topo.size(); ++p) {
    result.distance =
        std::max(result.distance, topo.Dist(p, dest[static_cast<std::size_t>(p)]));
  }

  // Pre-extract per-dimension coordinates once.
  std::vector<std::int32_t> src_coord(dest.size());
  std::vector<std::int32_t> dst_coord(dest.size());
  for (int dim = 0; dim < d; ++dim) {
    const std::int64_t stride = IPow(n, dim);
    for (ProcId p = 0; p < topo.size(); ++p) {
      src_coord[static_cast<std::size_t>(p)] =
          static_cast<std::int32_t>((p / stride) % n);
      dst_coord[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(
          (dest[static_cast<std::size_t>(p)] / stride) % n);
    }
    if (!topo.torus()) {
      // Mesh: cut after coordinate c; directed width = face each way.
      for (int c = 0; c + 1 < n; ++c) {
        std::int64_t lr = 0;
        std::int64_t rl = 0;
        for (std::size_t t = 0; t < dest.size(); ++t) {
          if (src_coord[t] <= c && dst_coord[t] > c) ++lr;
          if (src_coord[t] > c && dst_coord[t] <= c) ++rl;
        }
        const std::int64_t need = CeilDiv(std::max(lr, rl), face);
        if (need > result.congestion) {
          result.congestion = need;
          result.worst_cut_dim = dim;
          result.worst_cut_pos = c;
        }
      }
    } else {
      // Torus: a pair of antipodal seams after c and after c + n/2 splits
      // the ring into two halves; crossing packets share 2*face directed
      // links per direction (a packet may take either way around).
      for (int c = 0; c < n / 2; ++c) {
        auto in_half = [&](std::int32_t x) {
          // Half A: coordinates in (c, c + n/2].
          const std::int64_t shifted = Mod(x - (c + 1), n);
          return shifted < n / 2;
        };
        std::int64_t ab = 0;
        std::int64_t ba = 0;
        for (std::size_t t = 0; t < dest.size(); ++t) {
          const bool sa = in_half(src_coord[t]);
          const bool da = in_half(dst_coord[t]);
          if (sa && !da) ++ab;
          if (!sa && da) ++ba;
        }
        const std::int64_t need = CeilDiv(std::max(ab, ba), 2 * face);
        if (need > result.congestion) {
          result.congestion = need;
          result.worst_cut_dim = dim;
          result.worst_cut_pos = c;
        }
      }
    }
  }
  return result;
}

}  // namespace mdmesh
