// Per-instance lower bounds for routing a given permutation — what even an
// OFFLINE router (full knowledge, unlimited computation) must pay.
//
// The paper notes (Section 1.1) that its near-diameter routing results beat
// everything previously known "even for off-line routing"; these calculators
// make that comparison concrete per instance:
//
//   * distance bound — some packet must travel max_p dist(p, dest[p]);
//   * cut congestion — for every axis-aligned cut, the packets that must
//     cross it divided by the directed links crossing it (each link moves
//     one packet per step toward the far side).
//
// The instance lower bound is the max of the two. Our two-phase router's
// measured times can be compared directly against it.
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/topology.h"

namespace mdmesh {

struct OfflineBound {
  std::int64_t distance = 0;         ///< max source-destination distance
  std::int64_t congestion = 0;       ///< max over cuts of ceil(crossing/width)
  int worst_cut_dim = -1;            ///< dimension of the binding cut
  std::int64_t worst_cut_pos = -1;   ///< cut between coordinate pos and pos+1

  std::int64_t bound() const {
    return distance > congestion ? distance : congestion;
  }
};

/// Evaluates both terms for the permutation `dest` on `topo`. Considers all
/// d*(n-1) axis-aligned cuts (on tori a cut is the pair of opposite seams,
/// with twice the width and the shorter-way crossing rule).
OfflineBound ComputeOfflineBound(const Topology& topo,
                                 const std::vector<ProcId>& dest);

}  // namespace mdmesh
