#include "routing/policy.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace mdmesh {

void AssignClasses(Network& net, ClassMode mode, const BlockGrid* grid,
                   Rng* rng) {
  const int d = net.topo().dim();
  switch (mode) {
    case ClassMode::kZero:
      net.ForEach([](ProcId, Packet& pkt) { pkt.klass = 0; });
      return;
    case ClassMode::kRandom: {
      if (rng == nullptr) throw std::invalid_argument("kRandom needs an Rng");
      net.ForEach([&](ProcId, Packet& pkt) {
        pkt.klass = static_cast<std::uint16_t>(rng->Below(static_cast<std::uint64_t>(d)));
      });
      return;
    }
    case ClassMode::kByPermutation:
      net.ForEach([d](ProcId, Packet& pkt) {
        pkt.klass = static_cast<std::uint16_t>(Mod(pkt.tag, d));
      });
      return;
    case ClassMode::kLocalRank: {
      if (grid == nullptr) throw std::invalid_argument("kLocalRank needs a grid");
      // Per block: order resident packets by (dest snake index, id) and hand
      // out classes round-robin. This spreads each class's destinations
      // evenly, which is all Lemma 2.2/2.3 need from the split.
      const auto m = grid->num_blocks();
      struct Ref {
        std::int64_t dest_idx;
        std::int64_t id;
        Packet* pkt;
      };
      std::vector<std::vector<Ref>> per_block(static_cast<std::size_t>(m));
      const auto& indexing = grid->indexing();
      const Topology& topo = net.topo();
      net.ForEach([&](ProcId p, Packet& pkt) {
        per_block[static_cast<std::size_t>(grid->BlockOf(p))].push_back(
            Ref{indexing.Index(topo.Coords(pkt.dest)), pkt.id, &pkt});
      });
      for (auto& refs : per_block) {
        std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
          return a.dest_idx != b.dest_idx ? a.dest_idx < b.dest_idx : a.id < b.id;
        });
        for (std::size_t r = 0; r < refs.size(); ++r) {
          refs[r].pkt->klass = static_cast<std::uint16_t>(r % static_cast<std::size_t>(d));
        }
      }
      return;
    }
  }
  assert(false && "unreachable");
}

std::int64_t ReassignClassesForFaults(Network& net, const FaultPlan& plan) {
  const Topology& topo = net.topo();
  const int d = topo.dim();
  if (plan.dead_link_count() == 0) return 0;
  std::int64_t reassigned = 0;
  net.ForEach([&](ProcId p, Packet& pkt) {
    if (pkt.dest == p) return;
    const Point src = topo.Coords(p);
    const Point dst = topo.Coords(pkt.dest);
    // First hop of class c: the first dimension in c's rotated order where
    // the packet is uncorrected, stepped the shortest way.
    auto first_hop_alive = [&](int c, bool& exists) {
      for (int t = 0; t < d; ++t) {
        int i = c + t;
        if (i >= d) i -= d;
        const int sgn = topo.StepToward(src[static_cast<std::size_t>(i)],
                                        dst[static_cast<std::size_t>(i)]);
        if (sgn == 0) continue;
        exists = true;
        return !plan.LinkDead(p, i, sgn > 0 ? 1 : 0);
      }
      exists = false;
      return true;  // already home in every dimension
    };
    bool exists = false;
    if (first_hop_alive(pkt.klass, exists) || !exists) return;
    for (int t = 1; t < d; ++t) {
      int c = pkt.klass + t;
      if (c >= d) c -= d;
      if (first_hop_alive(c, exists)) {
        pkt.klass = static_cast<std::uint16_t>(c);
        ++reassigned;
        return;
      }
    }
  });
  return reassigned;
}

}  // namespace mdmesh
