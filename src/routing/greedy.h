// High-level greedy routing experiments (paper, Section 2.2).
//
// These drive the engine for the workloads behind Lemmas 2.1-2.3: j
// simultaneous permutations (random or unshuffle) routed by the extended
// greedy scheme, with distance-optimality measured as the max overshoot
// (arrival time minus source-destination distance).
#pragma once

#include <cstdint>
#include <vector>

#include "net/engine.h"
#include "routing/permutations.h"
#include "routing/policy.h"

namespace mdmesh {

struct GreedyOptions {
  ClassMode class_mode = ClassMode::kByPermutation;
  std::uint64_t seed = 1;
  /// Fine grid for kLocalRank class assignment (blocks per side); 0 picks a
  /// sensible default.
  int class_grid_g = 0;
  /// Optional phase-span trace: each run opens one "greedy_route" span.
  TraceContext* trace = nullptr;
  EngineOptions engine;
};

struct GreedyRun {
  RouteResult route;
  std::int64_t diameter = 0;
  int num_perms = 0;
  /// steps / diameter — diameter-optimality measure.
  double steps_over_diameter() const {
    return static_cast<double>(route.steps) / static_cast<double>(diameter);
  }
  /// max overshoot / n — distance-optimality measure (o(n) ⇔ ratio -> 0).
  double overshoot_over_n(int n) const {
    return static_cast<double>(route.max_overshoot) / static_cast<double>(n);
  }
};

/// Routes `j` simultaneous uniformly random permutations (one packet per
/// (processor, permutation); permutation index lands in Packet::tag).
GreedyRun RouteRandomPermutations(const Topology& topo, int j,
                                  const GreedyOptions& opts);

/// Routes `j` copies of the unshuffle permutation of `grid` simultaneously
/// (the deterministic analogue used by the sorting algorithms).
GreedyRun RouteUnshufflePermutations(const Topology& topo, const BlockGrid& grid,
                                     int j, const GreedyOptions& opts);

/// Routes a single explicit permutation.
GreedyRun RouteOnePermutation(const Topology& topo,
                              const std::vector<ProcId>& dest,
                              const GreedyOptions& opts);

}  // namespace mdmesh
