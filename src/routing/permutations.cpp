#include "routing/permutations.h"

#include <stdexcept>

#include <numeric>

namespace mdmesh {

std::vector<ProcId> IdentityPermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  std::iota(dest.begin(), dest.end(), ProcId{0});
  return dest;
}

std::vector<ProcId> RandomPermutation(const Topology& topo, Rng& rng) {
  return rng.Permutation(topo.size());
}

std::vector<ProcId> ReversalPermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    dest[static_cast<std::size_t>(p)] = topo.Mirror(p);
  }
  return dest;
}

std::vector<ProcId> TransposePermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  const int d = topo.dim();
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    Point t{};
    for (int i = 0; i < d; ++i) {
      t[static_cast<std::size_t>(i)] = c[static_cast<std::size_t>(d - 1 - i)];
    }
    dest[static_cast<std::size_t>(p)] = topo.Id(t);
  }
  return dest;
}

std::vector<ProcId> AntipodalPermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    dest[static_cast<std::size_t>(p)] = topo.Antipode(p);
  }
  return dest;
}

std::vector<ProcId> UnshufflePermutation(const BlockGrid& grid) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  if (B % m != 0) {
    throw std::invalid_argument(
        "UnshufflePermutation: block volume must be a multiple of the block "
        "count (choose g | b)");
  }
  std::vector<ProcId> dest(static_cast<std::size_t>(grid.topo().size()));
  for (BlockId j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < B; ++i) {
      const ProcId src = grid.ProcAt(j, i);
      const BlockId c = i % m;
      const std::int64_t pos = j + (i / m) * m;
      dest[static_cast<std::size_t>(src)] = grid.ProcAt(c, pos);
    }
  }
  return dest;
}

bool IsPermutation(const std::vector<ProcId>& dest) {
  std::vector<bool> seen(dest.size(), false);
  for (ProcId v : dest) {
    if (v < 0 || v >= static_cast<ProcId>(dest.size())) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace mdmesh
