#include "routing/permutations.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include <numeric>

namespace mdmesh {

std::vector<ProcId> IdentityPermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  std::iota(dest.begin(), dest.end(), ProcId{0});
  return dest;
}

std::vector<ProcId> RandomPermutation(const Topology& topo, Rng& rng) {
  return rng.Permutation(topo.size());
}

std::vector<ProcId> ReversalPermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    dest[static_cast<std::size_t>(p)] = topo.Mirror(p);
  }
  return dest;
}

std::vector<ProcId> TransposePermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  const int d = topo.dim();
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    Point t{};
    for (int i = 0; i < d; ++i) {
      t[static_cast<std::size_t>(i)] = c[static_cast<std::size_t>(d - 1 - i)];
    }
    dest[static_cast<std::size_t>(p)] = topo.Id(t);
  }
  return dest;
}

std::vector<ProcId> AntipodalPermutation(const Topology& topo) {
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    dest[static_cast<std::size_t>(p)] = topo.Antipode(p);
  }
  return dest;
}

namespace {

/// Reverses the low `bits` bits of x.
std::uint32_t ReverseBits(std::uint32_t x, int bits) {
  std::uint32_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | ((x >> i) & 1u);
  }
  return r;
}

}  // namespace

std::vector<ProcId> BitReversalPermutation(const Topology& topo) {
  const int d = topo.dim();
  const auto n = static_cast<std::uint32_t>(topo.side());
  const int bits = n > 1 ? static_cast<int>(std::bit_width(n - 1)) : 0;
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    for (int i = 0; i < d; ++i) {
      const auto x = static_cast<std::uint32_t>(c[static_cast<std::size_t>(i)]);
      const std::uint32_t r = ReverseBits(x, bits);
      // Cycle-walk: an out-of-range image keeps the coordinate fixed. Both
      // cases are involutions, so the whole map is one.
      if (r < n) c[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(r);
    }
    dest[static_cast<std::size_t>(p)] = topo.Id(c);
  }
  return dest;
}

std::vector<ProcId> HotSpotAssignment(const Topology& topo,
                                      std::int64_t hot_count, double skew,
                                      Rng& rng) {
  const ProcId N = topo.size();
  hot_count = std::clamp<std::int64_t>(hot_count, 1, N);
  skew = std::clamp(skew, 0.0, 1.0);
  // The hot set is a deterministic draw from the same stream the
  // destination draws use, so one (seed, hot_count, skew) triple names the
  // whole assignment.
  std::vector<ProcId> hot(static_cast<std::size_t>(hot_count));
  for (ProcId& h : hot) {
    h = static_cast<ProcId>(rng.Below(static_cast<std::uint64_t>(N)));
  }
  std::vector<ProcId> dest(static_cast<std::size_t>(N));
  for (ProcId p = 0; p < N; ++p) {
    if (rng.Chance(skew)) {
      dest[static_cast<std::size_t>(p)] =
          hot[static_cast<std::size_t>(
              rng.Below(static_cast<std::uint64_t>(hot_count)))];
    } else {
      dest[static_cast<std::size_t>(p)] =
          static_cast<ProcId>(rng.Below(static_cast<std::uint64_t>(N)));
    }
  }
  return dest;
}

std::vector<ProcId> UnshufflePermutation(const BlockGrid& grid) {
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  if (B % m != 0) {
    throw std::invalid_argument(
        "UnshufflePermutation: block volume must be a multiple of the block "
        "count (choose g | b)");
  }
  std::vector<ProcId> dest(static_cast<std::size_t>(grid.topo().size()));
  for (BlockId j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < B; ++i) {
      const ProcId src = grid.ProcAt(j, i);
      const BlockId c = i % m;
      const std::int64_t pos = j + (i / m) * m;
      dest[static_cast<std::size_t>(src)] = grid.ProcAt(c, pos);
    }
  }
  return dest;
}

bool IsPermutation(const std::vector<ProcId>& dest) {
  std::vector<bool> seen(dest.size(), false);
  for (ProcId v : dest) {
    if (v < 0 || v >= static_cast<ProcId>(dest.size())) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace mdmesh
