#include "routing/two_phase.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/rng.h"

namespace mdmesh {
namespace {

/// Blocks whose centers are within D/2 + nu of both X's and Y's centers,
/// in increasing block id order.
std::vector<BlockId> MidpointBlocks(const BlockGrid& grid, BlockId X, BlockId Y,
                                    double reach) {
  std::vector<BlockId> s;
  for (BlockId w = 0; w < grid.num_blocks(); ++w) {
    if (grid.CenterDist(X, w) <= reach && grid.CenterDist(Y, w) <= reach) {
      s.push_back(w);
    }
  }
  return s;
}

}  // namespace

std::int64_t MinMidpointSetSize(const BlockGrid& grid, double nu) {
  const double reach =
      static_cast<double>(grid.topo().Diameter()) / 2.0 + nu;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (BlockId x = 0; x < grid.num_blocks(); ++x) {
    for (BlockId y = 0; y < grid.num_blocks(); ++y) {
      best = std::min(best, static_cast<std::int64_t>(
                                MidpointBlocks(grid, x, y, reach).size()));
    }
  }
  return best;
}

TwoPhaseResult RouteTwoPhase(const Topology& topo,
                             const std::vector<ProcId>& dest,
                             const TwoPhaseOptions& opts) {
  assert(dest.size() == static_cast<std::size_t>(topo.size()));
  BlockGrid grid(topo, opts.g);
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  const std::int64_t D = topo.Diameter();
  const int d = topo.dim();

  Span root = TraceContext::OpenIf(opts.trace, "two_phase");
  Span assign = TraceContext::OpenIf(opts.trace, "assign_midpoints");

  TwoPhaseResult result;
  result.nu_used =
      opts.nu >= 0.0
          ? opts.nu
          : (topo.torus() ? static_cast<double>(topo.side()) / 16.0
                          : static_cast<double>(topo.side()) / 2.0);
  const double reach = static_cast<double>(D) / 2.0 + result.nu_used;

  // Group sources by (source block, destination block). Sorting a flat list
  // keeps the grouping deterministic.
  struct Entry {
    std::int64_t key;  // X * m + Y
    ProcId src;
  };
  std::vector<Entry> entries;
  entries.reserve(dest.size());
  for (ProcId p = 0; p < topo.size(); ++p) {
    const BlockId X = grid.BlockOf(p);
    const BlockId Y = grid.BlockOf(dest[static_cast<std::size_t>(p)]);
    entries.push_back(Entry{X * m + Y, p});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.src < b.src;
  });

  Rng rng(opts.seed);
  Network net(topo);
  result.min_s_size = std::numeric_limits<std::int64_t>::max();

  // Deterministic within-block spreading: a rotating offset per midpoint
  // block, so packets funneled into the same block by different (X,Y)
  // groups occupy distinct positions. (The paper's deterministic variant
  // gets this balance from sort-and-unshuffle inside each block; a rotating
  // counter realizes the same even occupancy.)
  std::vector<std::int64_t> next_offset(static_cast<std::size_t>(m), 0);
  std::int64_t next_class = 0;

  std::size_t lo = 0;
  while (lo < entries.size()) {
    std::size_t hi = lo;
    while (hi < entries.size() && entries[hi].key == entries[lo].key) ++hi;
    const BlockId X = entries[lo].key / m;
    const BlockId Y = entries[lo].key % m;
    std::vector<BlockId> s = MidpointBlocks(grid, X, Y, reach);
    if (s.empty()) {
      // Degenerate geometry (tiny n with coarse blocks): fall back to the
      // blocks minimizing the max of the two distances so the run still
      // completes; min_s_size = 0 reports the infeasibility.
      double best = std::numeric_limits<double>::max();
      BlockId arg = 0;
      for (BlockId w = 0; w < m; ++w) {
        double v = std::max(grid.CenterDist(X, w), grid.CenterDist(Y, w));
        if (v < best) {
          best = v;
          arg = w;
        }
      }
      s.push_back(arg);
      result.min_s_size = 0;
    } else {
      result.min_s_size =
          std::min(result.min_s_size, static_cast<std::int64_t>(s.size()));
    }
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t r = t - lo;  // rank within the (X,Y) group
      BlockId mid;
      std::int64_t offset;
      if (opts.randomized) {
        mid = s[static_cast<std::size_t>(rng.Below(s.size()))];
        offset = static_cast<std::int64_t>(rng.Below(static_cast<std::uint64_t>(B)));
      } else {
        // Stagger each group's round-robin start so that small groups (the
        // common case for a random permutation: ~B/m packets per (X,Y))
        // don't all pile onto the first blocks of their midpoint sets.
        std::uint64_t stagger_state =
            static_cast<std::uint64_t>(entries[lo].key) * 0x9e3779b97f4a7c15ull;
        const std::size_t stagger =
            static_cast<std::size_t>(SplitMix64(stagger_state) % s.size());
        mid = s[(r + stagger) % s.size()];
        auto& rot = next_offset[static_cast<std::size_t>(mid)];
        offset = rot;
        rot = (rot + 1) % B;
      }
      Packet pkt;
      pkt.id = entries[t].src;
      pkt.key = static_cast<std::uint64_t>(entries[t].src);
      pkt.tag = static_cast<std::int64_t>(
          dest[static_cast<std::size_t>(entries[t].src)]);  // final dest
      pkt.dest = grid.ProcAt(mid, offset);
      pkt.klass = static_cast<std::uint16_t>(next_class);
      if (opts.overlap) pkt.flags |= Packet::kTwoLeg;
      next_class = (next_class + 1) % d;
      net.Add(entries[t].src, pkt);
    }
    lo = hi;
  }
  if (result.min_s_size == std::numeric_limits<std::int64_t>::max()) {
    result.min_s_size = 0;
  }

  assign.Close();

  Engine engine(topo, opts.engine);
  if (opts.overlap) {
    // Single run: packets retarget at their midpoints with no barrier.
    Span span = TraceContext::OpenIf(opts.trace, "overlapped_route");
    result.phase1 = engine.Route(net);
    result.phase1.RecordTo(span);
    result.total_steps = result.phase1.steps;
    result.max_queue = result.phase1.max_queue;
  } else {
    {
      Span span = TraceContext::OpenIf(opts.trace, "phase_a_route");
      result.phase1 = engine.Route(net);
      result.phase1.RecordTo(span);
    }
    // Phase 2: aim every packet at its final destination.
    net.ForEach([](ProcId, Packet& pkt) {
      pkt.dest = static_cast<ProcId>(pkt.tag);
    });
    {
      Span span = TraceContext::OpenIf(opts.trace, "phase_b_route");
      result.phase2 = engine.Route(net);
      result.phase2.RecordTo(span);
    }
    result.total_steps = result.phase1.steps + result.phase2.steps;
    result.max_queue =
        std::max(result.phase1.max_queue, result.phase2.max_queue);
  }

  bool ok = result.phase1.completed && result.phase2.completed;
  if (ok) {
    net.ForEach([&](ProcId p, Packet& pkt) {
      if (static_cast<ProcId>(pkt.tag) != p) ok = false;
    });
  }
  result.delivered = ok;
  return result;
}

}  // namespace mdmesh
