#include "routing/greedy.h"

#include <memory>

namespace mdmesh {
namespace {

GreedyRun RouteLoaded(const Topology& topo, Network& net,
                      const GreedyOptions& opts, int j) {
  Rng rng(opts.seed ^ 0xc1a55ull);
  std::unique_ptr<BlockGrid> grid;
  const BlockGrid* grid_ptr = nullptr;
  if (opts.class_mode == ClassMode::kLocalRank) {
    int g = opts.class_grid_g;
    if (g <= 0) {
      // Default: blocks of side >= 2, at most 4 per side.
      g = topo.side() % 4 == 0 ? 4 : 2;
    }
    grid = std::make_unique<BlockGrid>(topo, g);
    grid_ptr = grid.get();
  }
  AssignClasses(net, opts.class_mode, grid_ptr, &rng);

  Engine engine(topo, opts.engine);
  GreedyRun run;
  {
    Span span = TraceContext::OpenIf(opts.trace, "greedy_route");
    run.route = engine.Route(net);
    run.route.RecordTo(span);
  }
  run.diameter = topo.Diameter();
  run.num_perms = j;
  return run;
}

}  // namespace

GreedyRun RouteRandomPermutations(const Topology& topo, int j,
                                  const GreedyOptions& opts) {
  Network net(topo);
  Rng rng(opts.seed);
  std::int64_t next_id = 0;
  for (int t = 0; t < j; ++t) {
    Rng perm_rng = rng.Split(static_cast<std::uint64_t>(t));
    auto dest = RandomPermutation(topo, perm_rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = next_id++;
      pkt.key = static_cast<std::uint64_t>(pkt.id);
      pkt.tag = t;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      net.Add(p, pkt);
    }
  }
  return RouteLoaded(topo, net, opts, j);
}

GreedyRun RouteUnshufflePermutations(const Topology& topo, const BlockGrid& grid,
                                     int j, const GreedyOptions& opts) {
  Network net(topo);
  auto dest = UnshufflePermutation(grid);
  std::int64_t next_id = 0;
  for (int t = 0; t < j; ++t) {
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = next_id++;
      pkt.key = static_cast<std::uint64_t>(pkt.id);
      pkt.tag = t;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      net.Add(p, pkt);
    }
  }
  return RouteLoaded(topo, net, opts, j);
}

GreedyRun RouteOnePermutation(const Topology& topo,
                              const std::vector<ProcId>& dest,
                              const GreedyOptions& opts) {
  Network net(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.key = static_cast<std::uint64_t>(p);
    pkt.tag = 0;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  return RouteLoaded(topo, net, opts, 1);
}

}  // namespace mdmesh
