#include "net/invariants.h"

#include <sstream>
#include <stdexcept>

namespace mdmesh {

bool InvariantsEnabled(InvariantMode mode) {
  switch (mode) {
    case InvariantMode::kOff:
      return false;
    case InvariantMode::kOn:
      return true;
    case InvariantMode::kAuto:
    default:
#ifdef NDEBUG
      return false;
#else
      return true;
#endif
  }
}

InvariantChecker::InvariantChecker(const Topology& topo) : topo_(&topo) {}

void InvariantChecker::Fail(std::int64_t step, const char* what,
                            ProcId proc) const {
  std::ostringstream os;
  os << "engine invariant violated at step " << step << ": " << what
     << " (processor " << proc << ")";
  throw std::logic_error(os.str());
}

void InvariantChecker::BeginRun(const Network& net) {
  packets_ = net.TotalPackets();
}

void InvariantChecker::CheckSlots(const Network& net,
                                  const std::vector<std::int32_t>& slot,
                                  const std::uint8_t* link_dead,
                                  std::int64_t step) const {
  const auto links = static_cast<std::size_t>(2 * topo_->dim());
  for (ProcId p = 0; p < topo_->size(); ++p) {
    const auto& q = net.At(p);
    const std::size_t base = static_cast<std::size_t>(p) * links;
    int winners = 0;
    for (std::size_t l = 0; l < links; ++l) {
      const std::int32_t k = slot[base + l];
      if (k < 0) continue;
      if (static_cast<std::size_t>(k) >= q.size()) {
        Fail(step, "winner slot references a packet outside the queue", p);
      }
      if (link_dead != nullptr && link_dead[base + l] != 0) {
        Fail(step, "winner selected on a dead link", p);
      }
      if ((q[static_cast<std::size_t>(k)].flags & Packet::kMoving) == 0) {
        Fail(step, "winner packet is not flagged as moving", p);
      }
      // A packet bids on exactly one link, so no queue index may win twice
      // (a duplicate would clone the packet during delivery).
      for (std::size_t m = l + 1; m < links; ++m) {
        if (slot[base + m] == k) {
          Fail(step, "one packet selected on two directed links", p);
        }
      }
      ++winners;
    }
    int moving = 0;
    for (const Packet& pkt : q) {
      if ((pkt.flags & Packet::kMoving) != 0) ++moving;
    }
    if (moving != winners) {
      Fail(step, "moving-flag count disagrees with winner slots", p);
    }
  }
}

void InvariantChecker::CheckActiveSet(const Network& net,
                                      const std::vector<ProcId>& active,
                                      std::int64_t step) const {
  std::vector<std::uint8_t> listed(static_cast<std::size_t>(topo_->size()), 0);
  for (ProcId p : active) {
    if (p < 0 || p >= topo_->size()) {
      Fail(step, "active set lists a processor outside the topology", p);
    }
    if (listed[static_cast<std::size_t>(p)] != 0) {
      Fail(step, "active set lists a processor twice", p);
    }
    listed[static_cast<std::size_t>(p)] = 1;
  }
  for (ProcId p = 0; p < topo_->size(); ++p) {
    bool has_inflight = false;
    for (const Packet& pkt : net.At(p)) {
      if (pkt.arrived < 0) {
        has_inflight = true;
        break;
      }
    }
    if (has_inflight && listed[static_cast<std::size_t>(p)] == 0) {
      Fail(step, "processor with in-flight packets missing from active set",
           p);
    }
    if (!has_inflight && listed[static_cast<std::size_t>(p)] != 0) {
      Fail(step, "idle processor listed in active set", p);
    }
  }
}

void InvariantChecker::CheckStep(const Network& net, std::int64_t step) const {
  std::int64_t total = 0;
  for (ProcId p = 0; p < topo_->size(); ++p) {
    const auto& q = net.At(p);
    total += static_cast<std::int64_t>(q.size());
    for (const Packet& pkt : q) {
      if ((pkt.flags & Packet::kMoving) != 0) {
        Fail(step, "packet still carries the moving flag after delivery", p);
      }
      if (pkt.arrived == step && pkt.dest != p) {
        Fail(step, "packet stamped as arrived away from its destination", p);
      }
    }
  }
  if (total != packets_) {
    Fail(step, "packet count changed (conservation broken)", -1);
  }
}

}  // namespace mdmesh
