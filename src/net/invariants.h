// Opt-in engine invariant checking: per-step structural assertions on the
// simulation state, used to catch engine bugs loudly instead of producing
// silently wrong step counts.
//
// Checked per step:
//   * packet conservation — the total packet count never changes;
//   * <= 1 packet per directed link — winner slots are in-bounds, distinct
//     within a processor, and exactly the packets flagged kMoving;
//   * fault respect — no winner is selected on a dead link;
//   * arrival-coordinate correctness — a packet whose arrival was stamped
//     this step is resident at its destination;
//   * queue-slot consistency — no packet still carries engine scratch flags
//     after delivery.
//
// Violations throw std::logic_error with a description of the first broken
// invariant. The checks are serial O(N * d) per step, so they are meant for
// debug/test builds: InvariantMode::kAuto enables them when NDEBUG is not
// defined and disables them otherwise; tests that must run under release
// flags pass kOn explicitly.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace mdmesh {

enum class InvariantMode : std::uint8_t {
  kAuto,  ///< on in debug builds (NDEBUG undefined), off otherwise
  kOff,
  kOn,
};

/// Resolves kAuto against the build type.
bool InvariantsEnabled(InvariantMode mode);

class InvariantChecker {
 public:
  explicit InvariantChecker(const Topology& topo);

  /// Captures the conserved quantities at the start of a Route call.
  void BeginRun(const Network& net);

  /// After winner selection, before delivery: `slot` is the engine's
  /// N x 2d winner table (queue index or -1); `link_dead` is the current
  /// per-link dead mask (null when no faults are active).
  void CheckSlots(const Network& net, const std::vector<std::int32_t>& slot,
                  const std::uint8_t* link_dead, std::int64_t step) const;

  /// After delivery: conservation, cleared scratch flags, and arrival
  /// coordinates for packets stamped during `step`.
  void CheckStep(const Network& net, std::int64_t step) const;

  /// Sparse-path bookkeeping: `active` must list exactly the processors
  /// holding at least one in-flight packet (arrived < 0), each once. A
  /// stale or duplicated active set silently skips (or double-delivers)
  /// traffic, so the engine validates it before every sparse bid pass.
  void CheckActiveSet(const Network& net, const std::vector<ProcId>& active,
                      std::int64_t step) const;

 private:
  [[noreturn]] void Fail(std::int64_t step, const char* what,
                         ProcId proc) const;

  const Topology* topo_;
  std::int64_t packets_ = 0;
};

}  // namespace mdmesh
