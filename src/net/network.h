// The algorithm-facing packet container: which packets sit at which
// processor between routing phases.
//
// Sorting algorithms alternate local phases (rank computations inside
// blocks, charged to the local cost model) with routing phases (executed by
// the engine). Network is the shared state: a per-processor queue of
// packets. Local phases mutate it directly; Engine::Route consumes and
// rebuilds it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "util/inline_vec.h"

namespace mdmesh {

/// Per-processor queue: small-buffer storage sized for the multi-packet
/// model's O(1) occupancy (measured maxima are single digits almost
/// everywhere; spills to the heap transparently beyond 4).
using PacketQueue = InlineVec<Packet, 4>;

class Network {
 public:
  explicit Network(const Topology& topo);

  const Topology& topo() const { return *topo_; }

  void Add(ProcId at, Packet packet);
  void Clear();

  PacketQueue& At(ProcId p) { return queues_[static_cast<std::size_t>(p)]; }
  const PacketQueue& At(ProcId p) const {
    return queues_[static_cast<std::size_t>(p)];
  }

  std::int64_t TotalPackets() const;
  std::int64_t MaxQueue() const;

  /// Visits every (processor, packet). The packet reference is mutable.
  void ForEach(const std::function<void(ProcId, Packet&)>& fn);
  void ForEach(const std::function<void(ProcId, const Packet&)>& fn) const;

  /// Removes every packet for which `pred(proc, packet)` returns true
  /// (e.g. packets parked on processors a FaultPlan declares dead). Queue
  /// order of the survivors is preserved. Returns the number removed.
  std::int64_t EraseIf(const std::function<bool(ProcId, const Packet&)>& pred);

  /// Flattens to a single vector (processor order, then queue order).
  std::vector<Packet> Gather() const;

  /// Replaces the contents from (proc, packet) pairs.
  void Scatter(const std::vector<std::pair<ProcId, Packet>>& placed);

  /// Internal access for the engine (swap-based queue rebuild).
  std::vector<PacketQueue>& queues() { return queues_; }

 private:
  const Topology* topo_;
  std::vector<PacketQueue> queues_;
};

}  // namespace mdmesh
