// The algorithm-facing packet container: which packets sit at which
// processor between routing phases.
//
// Sorting algorithms alternate local phases (rank computations inside
// blocks, charged to the local cost model) with routing phases (executed by
// the engine). Network is the shared state: a per-processor queue of
// packets. Local phases mutate it directly; Engine::Route consumes and
// rebuilds it.
//
// Occupancy counters: TotalPackets() and MaxQueue() are cached, not
// rescanned per call — phase spans and reports query them repeatedly and
// the O(N) sweeps used to dominate small-phase bookkeeping. The cache is
// invalidated by anything that hands out mutable queue access (non-const
// At(), queues(), EraseIf) and lazily recomputed on the next query; Add and
// Clear maintain it incrementally. Mutating packets in place (ForEach)
// cannot change occupancy and leaves the cache valid.
//
// Storage-layout contract (EngineOptions::layout): Network is the ONLY
// packet container algorithms and tests see. The engine may internally
// route either on per-processor AoS queues mirrored from this class
// (LayoutMode::kLegacy) or on the tiled SoA arena (LayoutMode::kTiled,
// net/tile_arena.h), which materializes 64-processor cache-line tiles on
// demand and keeps its footprint proportional to occupancy rather than
// topology size. Both layouts import from and export back to Network at
// the Route boundary and must produce byte-identical delivery traces —
// same per-queue packet order, same step counts, same overshoot
// statistics (pinned by tests/test_engine_tiled.cpp). Nothing outside
// src/net/ may depend on which layout ran.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/inline_vec.h"

namespace mdmesh {

/// Per-processor queue: small-buffer storage sized for the multi-packet
/// model's O(1) occupancy (measured maxima are single digits almost
/// everywhere; spills to the heap transparently beyond 4).
using PacketQueue = InlineVec<Packet, 4>;

class Network {
 public:
  explicit Network(const Topology& topo);

  const Topology& topo() const { return *topo_; }

  void Add(ProcId at, Packet packet);
  void Clear();

  /// Mutable queue access. Invalidates the cached occupancy counters: the
  /// caller may push/pop packets directly, so the next TotalPackets() or
  /// MaxQueue() call rescans.
  PacketQueue& At(ProcId p) {
    counts_valid_ = false;
    return queues_[static_cast<std::size_t>(p)];
  }
  const PacketQueue& At(ProcId p) const {
    return queues_[static_cast<std::size_t>(p)];
  }

  /// Total resident packets / largest per-processor queue. O(1) while the
  /// cache is valid; one O(N) rescan after a mutable-access invalidation.
  std::int64_t TotalPackets() const {
    if (!counts_valid_) RecomputeCounts();
    return total_packets_;
  }
  std::int64_t MaxQueue() const {
    if (!counts_valid_) RecomputeCounts();
    return max_queue_;
  }

  /// Visits every (processor, packet) with fn(ProcId, Packet&). Statically
  /// dispatched (header-only): the callable is inlined into the loop, so
  /// per-packet visits cost no indirect call. In-place packet mutation
  /// cannot change occupancy, so the counter cache stays valid.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    const ProcId n = static_cast<ProcId>(queues_.size());
    for (ProcId p = 0; p < n; ++p) {
      for (Packet& pkt : queues_[static_cast<std::size_t>(p)]) fn(p, pkt);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const ProcId n = static_cast<ProcId>(queues_.size());
    for (ProcId p = 0; p < n; ++p) {
      for (const Packet& pkt : queues_[static_cast<std::size_t>(p)]) {
        fn(p, pkt);
      }
    }
  }

  /// Removes every packet for which `pred(proc, packet)` returns true
  /// (e.g. packets parked on processors a FaultPlan declares dead). Queue
  /// order of the survivors is preserved. Returns the number removed.
  /// Statically dispatched like ForEach; invalidates the counter cache.
  template <typename Pred>
  std::int64_t EraseIf(Pred&& pred) {
    std::int64_t removed = 0;
    const ProcId n = static_cast<ProcId>(queues_.size());
    for (ProcId p = 0; p < n; ++p) {
      auto& q = queues_[static_cast<std::size_t>(p)];
      std::size_t w = 0;
      for (std::size_t r = 0; r < q.size(); ++r) {
        if (pred(p, static_cast<const Packet&>(q[r]))) {
          ++removed;
          continue;
        }
        if (w != r) q[w] = q[r];
        ++w;
      }
      while (q.size() > w) q.pop_back();
    }
    if (removed != 0) counts_valid_ = false;
    return removed;
  }

  /// Flattens to a single vector (processor order, then queue order).
  std::vector<Packet> Gather() const;

  /// Replaces the contents from (proc, packet) pairs.
  void Scatter(const std::vector<std::pair<ProcId, Packet>>& placed);

  /// Internal access for the engine (swap-based queue rebuild). Invalidates
  /// the cached occupancy counters like non-const At().
  std::vector<PacketQueue>& queues() {
    counts_valid_ = false;
    return queues_;
  }

 private:
  void RecomputeCounts() const;

  const Topology* topo_;
  std::vector<PacketQueue> queues_;
  mutable std::int64_t total_packets_ = 0;
  mutable std::int64_t max_queue_ = 0;
  mutable bool counts_valid_ = true;
};

}  // namespace mdmesh
