// Step machinery for the tiled packet-storage layout (net/tile_arena.h).
//
// TiledEngine runs the same synchronous bid/commit step as the legacy
// engine — the hop selection, contention rule, and detour policy are the
// shared kernels in net/greedy_hop.h — over the tile arena instead of the
// Network's per-processor queues:
//
//  * Bid: one parallel pass over the tiles holding in-flight packets
//    (scheduled from the arena's live bitmap, ascending). Winner selection
//    per slot is the legacy farthest-first loop verbatim; a winning packet
//    whose receiver lives in the *same* tile is written straight into the
//    tile's own mailbox columns (owner-exclusive, race-free), while a
//    cross-tile winner is appended to the worker shard's outbox.
//
//  * Halo exchange: the coordinator drains the shard outboxes in shard
//    order, materializing receiver tiles on demand (first-touch allocation)
//    and writing each message into the receiver's mailbox cell + pending
//    bitmap. This replaces the legacy global parity mailbox (2 x N x 2d
//    entries) with traffic proportional to the packets actually crossing
//    tile boundaries; the byte volume is surfaced as halo_bytes().
//
//  * Commit: a second parallel pass over the union of bid tiles and halo
//    receivers — per slot, compact the stayers, append the mailbox
//    incomers in canonical link order, stamp arrivals. Identical to the
//    legacy CommitProc ordering, so queue contents (including order) match
//    byte-for-byte at every step.
//
// Determinism: shard assignment only partitions work; every mailbox cell
// has a unique writer, the coordinator applies outboxes in a fixed order,
// and physical block indices never leak into results — so traces are
// identical for any thread count, and identical to the legacy layout's
// (pinned by tests/test_engine_tiled.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "meshsim/topology.h"
#include "net/network.h"
#include "net/tile_arena.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace mdmesh {

class StepInjector;
struct EngineWorkerScratch;
class JourneyTracer;

class TiledEngine {
 public:
  TiledEngine(const Topology& topo, ThreadPool* pool);

  /// Arms a Route call: `link_dead` is the engine's per-step dead-link mask
  /// (N x 2d bytes, updated in place by fault events) or nullptr for a
  /// fault-free run. `journeys` is the engine's packet tracer (or nullptr):
  /// bid and commit passes record waits/moves into the same per-worker
  /// scratch event buffers as the legacy paths. Resets the halo-byte
  /// counter.
  void BeginRoute(const std::uint8_t* link_dead, JourneyTracer* journeys);

  /// Rebuilds the arena from the network's queues (queue order preserved).
  /// Only occupied processors materialize tiles.
  void Import(const Network& net);

  /// Writes the arena back into `net` (cleared first): ascending processor
  /// order, queue order within a processor — the exact layout a legacy run
  /// would leave behind.
  void Export(Network& net);

  /// Appends an injected packet to processor `p`'s queue (arrived must be
  /// negative — zero-hop packets are retired by the caller and never enter
  /// the arena).
  void Append(ProcId p, const Packet& pkt);

  /// Runs one synchronous step (bid, halo exchange, commit), accumulating
  /// arrivals/moves/detours/qmax/dir_moves into the per-worker `scratch`
  /// arenas exactly like the legacy paths. Returns the post-commit count of
  /// processors holding an in-flight packet (the legacy sparse path's
  /// active-set size).
  std::int64_t Step(std::int64_t step, std::int32_t now, bool count_dirs,
                    std::vector<EngineWorkerScratch>& scratch);

  /// Post-step bookkeeping: with an injector, retires every delivered
  /// packet (ascending processor order, queue order within a processor —
  /// the OnDeliver contract), folding per-packet overshoot into the
  /// accumulators; always returns fully drained tiles to the arena's free
  /// list, which is what keeps the footprint proportional to in-flight
  /// traffic on continuous runs.
  void FinishStep(StepInjector* injector, std::int64_t step,
                  Accumulator* overshoot, std::int64_t* max_overshoot);

  /// Queue-occupancy snapshot for StepProbe: adds every live tile's valid
  /// slot counts, then the bulk zero tail for the N - covered processors
  /// with no tile.
  void FillQueueHist(Histogram* hist, ProcId nprocs);

  std::int64_t live_tiles() const { return arena_.live_tiles(); }
  std::int64_t peak_tiles() const { return arena_.peak_tiles(); }
  std::int64_t halo_bytes() const { return halo_bytes_; }

  const TileArena& arena() const { return arena_; }

 private:
  /// A packet crossing a tile boundary: receiver processor, the receiver's
  /// mailbox cell (sender link ^ 1), the packet (kMoving set), and its
  /// destination coordinates (first d entries valid).
  struct OutMsg {
    ProcId r;
    std::int32_t cell;
    Packet pkt;
    std::int32_t dc[kMaxDim];
  };

  /// Per-worker shard state: the cross-tile outbox plus reusable gather
  /// buffers for the bid/commit slot loops. Cache-line aligned like the
  /// engine's scratch arenas.
  struct alignas(64) Shard {
    std::vector<OutMsg> outbox;
    std::vector<Packet> qbuf;        // gathered queue of one slot
    std::vector<std::int32_t> cbuf;  // d dest coords per gathered packet
    std::vector<std::int32_t> loc;   // storage location per gathered packet
  };

  // `loc` encoding: lane index k in [0, kTileLanes), or kLocOvf | overflow
  // vector index.
  static constexpr std::int32_t kLocOvf = 1 << 30;

  ProcId NeighborOf(ProcId p, std::int32_t c_along, int dim, int dir) const {
    const std::int64_t stride = strides_[static_cast<std::size_t>(dim)];
    if (dir == 1) {
      return torus_ && c_along + 1 == n_ ? p - stride * (n_ - 1) : p + stride;
    }
    return torus_ && c_along == 0 ? p + stride * (n_ - 1) : p - stride;
  }

  template <bool kFaults>
  void BidTile(std::int64_t tile, std::int32_t ph, std::int64_t step,
               Shard& sh, EngineWorkerScratch& s);

  /// Routes one winning packet (kMoving already set) out of `p` over link
  /// `l`: same-tile receivers get their mailbox cell written directly,
  /// cross-tile winners go to the shard outbox. `c_along` is p's own
  /// coordinate in the link's dimension; `dcoords` the packet's d dest
  /// coordinates.
  void DeliverWinner(std::int64_t tile, std::int32_t ph, ProcId p,
                     std::int32_t c_along, int l, const Packet& pkt,
                     const std::int32_t* dcoords, Shard& sh);

  void CommitTile(std::int64_t tile, std::int32_t ph, std::int32_t now,
                  bool count_dirs, Shard& sh, EngineWorkerScratch& s);

  /// Rewrites slot `slot` of tile block `ph` from a gathered queue (`q`,
  /// with d dest coords per packet in `c`): lanes first, the slot's
  /// overflow entries replaced. `had_ovf` says whether the slot previously
  /// spilled (so stale entries need erasing).
  void RewriteSlot(std::int32_t ph, int slot, const Packet* q,
                   const std::int32_t* c, std::size_t nc, bool had_ovf);

  const Topology* topo_;
  ThreadPool* pool_;
  TileArena arena_;
  int d_;
  int n_;
  bool torus_;
  ProcId nprocs_;
  std::vector<std::int64_t> strides_;  // n^i, dimension 0 least significant

  const std::uint8_t* link_dead_ = nullptr;
  bool have_faults_ = false;
  JourneyTracer* journeys_ = nullptr;
  std::int64_t halo_bytes_ = 0;

  std::vector<Shard> shards_;
  std::vector<std::int64_t> sched_bid_;     // tiles with in-flight packets
  std::vector<std::int64_t> sched_commit_;  // bid tiles + halo receivers
  std::vector<std::uint64_t> commit_bits_;
  // Coordinator-side gather buffers for FinishStep's retirement pass.
  std::vector<Packet> rbuf_;
  std::vector<std::int32_t> rcbuf_;
};

}  // namespace mdmesh
