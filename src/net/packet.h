// The unit of communication (paper, Section 1).
//
// A packet carries a key (for sorting) plus the routing state the engine
// needs: its current destination, its extended-greedy dimension class, and
// bookkeeping for distance-optimality measurements. Algorithms are free to
// use `tag` as scratch between phases (pair ids for CopySort, rank estimates
// for selection, ...).
#pragma once

#include <cstdint>

#include "meshsim/topology.h"

namespace mdmesh {

struct Packet {
  std::uint64_t key = 0;  ///< sort key
  std::int64_t id = 0;    ///< unique identity (priority tie-break)
  std::int64_t tag = 0;   ///< algorithm scratch
  ProcId dest = 0;        ///< current routing destination

  /// Distance from injection point to dest, filled in by the engine at the
  /// start of a run; `arrived - dist0` is the packet's overshoot.
  std::int32_t dist0 = 0;
  /// Step at which the packet reached `dest` in the last run (-1 if unset).
  std::int32_t arrived = -1;

  /// Extended greedy class in [0, d): dimensions are corrected in the order
  /// klass, klass+1 mod d, ..., klass-1 mod d (paper, Section 2.2).
  std::uint16_t klass = 0;
  std::uint16_t flags = 0;

  // Flag bits (engine-internal and algorithm-level).
  static constexpr std::uint16_t kMoving = 1u << 0;  ///< engine scratch
  static constexpr std::uint16_t kCopy = 1u << 1;    ///< CopySort/TorusSort copy
  /// Two-leg route: on reaching `dest` the packet retargets to `tag` (its
  /// final destination) without waiting — the engine-level mechanism behind
  /// the overlapped two-phase router (the paper's Section 6 open question).
  static constexpr std::uint16_t kTwoLeg = 1u << 2;
  /// Engine scratch under fault injection: this step's selected hop deviates
  /// from the fault-free preferred hop (an adaptive detour). Cleared on
  /// delivery like kMoving.
  static constexpr std::uint16_t kDetour = 1u << 3;
  /// Engine scratch under fault injection (bits 8-13): wrong-way commitment.
  /// When a torus packet detours *against* its shortest direction around a
  /// dead link, it locks that (dimension, direction) and keeps walking the
  /// long way around the ring until the dimension is corrected — without
  /// the lock it would bounce back toward the wall as soon as the distance
  /// gradient pointed there again. Bit 8: active; bits 9-12: dimension;
  /// bit 13: direction. Cleared at the start of every Route call.
  static constexpr std::uint16_t kLockActive = 1u << 8;
  static constexpr std::uint16_t kLockMask = 0x3F00;
};

}  // namespace mdmesh
