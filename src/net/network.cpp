#include "net/network.h"

#include <cassert>

namespace mdmesh {

Network::Network(const Topology& topo)
    : topo_(&topo), queues_(static_cast<std::size_t>(topo.size())) {}

void Network::Add(ProcId at, Packet packet) {
  assert(at >= 0 && at < topo_->size());
  auto& q = queues_[static_cast<std::size_t>(at)];
  q.push_back(packet);
  if (counts_valid_) {
    ++total_packets_;
    max_queue_ = std::max(max_queue_, static_cast<std::int64_t>(q.size()));
  }
}

void Network::Clear() {
  for (auto& q : queues_) q.clear();
  total_packets_ = 0;
  max_queue_ = 0;
  counts_valid_ = true;
}

void Network::RecomputeCounts() const {
  std::int64_t total = 0;
  std::size_t mx = 0;
  for (const auto& q : queues_) {
    total += static_cast<std::int64_t>(q.size());
    mx = std::max(mx, q.size());
  }
  total_packets_ = total;
  max_queue_ = static_cast<std::int64_t>(mx);
  counts_valid_ = true;
}

std::vector<Packet> Network::Gather() const {
  std::vector<Packet> all;
  all.reserve(static_cast<std::size_t>(TotalPackets()));
  for (const auto& q : queues_) all.insert(all.end(), q.begin(), q.end());
  return all;
}

void Network::Scatter(const std::vector<std::pair<ProcId, Packet>>& placed) {
  Clear();
  for (const auto& [proc, pkt] : placed) Add(proc, pkt);
}

}  // namespace mdmesh
