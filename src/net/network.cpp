#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace mdmesh {

Network::Network(const Topology& topo)
    : topo_(&topo), queues_(static_cast<std::size_t>(topo.size())) {}

void Network::Add(ProcId at, Packet packet) {
  assert(at >= 0 && at < topo_->size());
  queues_[static_cast<std::size_t>(at)].push_back(packet);
}

void Network::Clear() {
  for (auto& q : queues_) q.clear();
}

std::int64_t Network::TotalPackets() const {
  std::int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<std::int64_t>(q.size());
  return total;
}

std::int64_t Network::MaxQueue() const {
  std::size_t mx = 0;
  for (const auto& q : queues_) mx = std::max(mx, q.size());
  return static_cast<std::int64_t>(mx);
}

void Network::ForEach(const std::function<void(ProcId, Packet&)>& fn) {
  for (ProcId p = 0; p < topo_->size(); ++p) {
    for (Packet& pkt : queues_[static_cast<std::size_t>(p)]) fn(p, pkt);
  }
}

void Network::ForEach(const std::function<void(ProcId, const Packet&)>& fn) const {
  for (ProcId p = 0; p < topo_->size(); ++p) {
    for (const Packet& pkt : queues_[static_cast<std::size_t>(p)]) fn(p, pkt);
  }
}

std::int64_t Network::EraseIf(
    const std::function<bool(ProcId, const Packet&)>& pred) {
  std::int64_t removed = 0;
  for (ProcId p = 0; p < topo_->size(); ++p) {
    auto& q = queues_[static_cast<std::size_t>(p)];
    std::size_t w = 0;
    for (std::size_t r = 0; r < q.size(); ++r) {
      if (pred(p, q[r])) {
        ++removed;
        continue;
      }
      if (w != r) q[w] = q[r];
      ++w;
    }
    while (q.size() > w) q.pop_back();
  }
  return removed;
}

std::vector<Packet> Network::Gather() const {
  std::vector<Packet> all;
  all.reserve(static_cast<std::size_t>(TotalPackets()));
  for (const auto& q : queues_) all.insert(all.end(), q.begin(), q.end());
  return all;
}

void Network::Scatter(const std::vector<std::pair<ProcId, Packet>>& placed) {
  Clear();
  for (const auto& [proc, pkt] : placed) Add(proc, pkt);
}

}  // namespace mdmesh
