// Shared hop-selection kernels for the extended greedy scheme (paper,
// Section 2.2) and the fault-detour policy, used by both packet-storage
// layouts (net/engine.cpp legacy queues, net/engine_tiled.cpp tiled SoA
// arena).
//
// The kernels are templated over two small access abstractions so one
// definition serves both layouts byte-identically:
//
//  * Coordinate accessors (`CP`, `DC`): anything indexable as `c[i]` for
//    dimension i. The legacy engine passes raw `const std::int32_t*` rows of
//    its N x d coordinate table; the tiled engine passes StridedCoords over
//    its per-tile column arrays (stride = lanes * slots), which inlines to
//    the same single load.
//
//  * Link-liveness functor (`AliveFn`, faulted path only): `alive(dim, dir)`
//    must return whether the directed link exists *and* is currently up.
//    The legacy engine closes over its neighbor table plus the per-step
//    dead mask; the tiled engine derives existence from the processor's own
//    coordinates and reads the same dead mask.
//
// Moving the selection here (instead of duplicating it per layout) is what
// keeps the two layouts' delivery traces provably identical: there is one
// contention priority, one dimension-rotation order, and one detour policy.
#pragma once

#include <cstdint>

#include "meshsim/topology.h"
#include "net/packet.h"
#include "util/math.h"

namespace mdmesh {

/// Coordinate accessor over a strided column layout: element i lives at
/// p[i * stride]. With stride 1 this is pointer indexing.
struct StridedCoords {
  const std::int32_t* p;
  std::size_t stride;
  std::int32_t operator[](int i) const {
    return p[static_cast<std::size_t>(i) * stride];
  }
};

/// A packet whose accumulated slack (steps elapsed beyond its ideal
/// shortest-path schedule) exceeds this starts rotating the fallback detour
/// order, so a detour cycle cannot repeat the same two hops forever.
inline constexpr std::int64_t kDetourRotateSlack = 4;

/// Past this much slack the packet is assumed trapped in a cycle the plain
/// fallback order cannot escape (e.g. its class insists on re-correcting a
/// sidestep dimension straight back into the wall); it then makes an
/// occasional hash-randomized choice over *every* alive hop, progress hops
/// included, so any escape edge is eventually tried.
inline constexpr std::int64_t kScrambleSlack = 16;

/// Mixes (step, packet id) into rotation choices for trapped packets. Slack
/// alone is unusable as a rotation source: it can grow by an exact multiple
/// of the candidate count per trap cycle, repeating the same choices forever.
/// The hash sequence never repeats across steps, so a deterministic limit
/// cycle cannot persist — and it stays identical across thread counts.
inline std::uint64_t DetourHash(std::int64_t step, std::int64_t id) {
  std::uint64_t x = (static_cast<std::uint64_t>(step) << 32) ^
                    (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

inline int LockDim(std::uint16_t flags) { return (flags >> 9) & 0xF; }
inline int LockDir(std::uint16_t flags) { return (flags >> 13) & 1; }
inline std::uint16_t MakeLock(int dim, int dir) {
  return static_cast<std::uint16_t>(Packet::kLockActive | (dim << 9) |
                                    (dir << 13));
}

/// Finds the next hop for a packet at coordinates `cp` heading to `dc`,
/// visiting dimensions in the rotated order starting at `klass`. Returns the
/// remaining distance; sets dim/dir to the first uncorrected dimension, or
/// dim = -1 if the packet is at its destination.
template <typename CP, typename DC>
std::int64_t NextHop(const CP& cp, const DC& dc, int d, int n, bool torus,
                     std::uint16_t klass, int& dim, int& dir) {
  std::int64_t rem = 0;
  dim = -1;
  dir = 0;
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    const std::int32_t c = cp[i];
    const std::int32_t g = dc[i];
    if (c == g) continue;
    std::int64_t dist;
    int step;
    if (torus) {
      std::int64_t forward = Mod(g - c, n);
      if (forward <= n - forward) {
        dist = forward;
        step = 1;
      } else {
        dist = n - forward;
        step = -1;
      }
    } else {
      dist = AbsDiff(c, g);
      step = g > c ? 1 : -1;
    }
    rem += dist;
    if (dim < 0) {
      dim = i;
      dir = step > 0 ? 1 : 0;
    }
  }
  return rem;
}

/// Direction-only variant of NextHop for queues that cannot have link
/// contention (a single resident packet): stops at the first uncorrected
/// dimension without accumulating the remaining distance, which is only
/// ever used as a contention priority.
template <typename CP, typename DC>
inline void NextHopDir(const CP& cp, const DC& dc, int d, int n, bool torus,
                       std::uint16_t klass, int& dim, int& dir) {
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    const std::int32_t c = cp[i];
    const std::int32_t g = dc[i];
    if (c == g) continue;
    if (torus) {
      const std::int64_t forward = Mod(g - c, n);
      dir = forward <= n - forward ? 1 : 0;
    } else {
      dir = g > c ? 1 : 0;
    }
    dim = i;
    return;
  }
  dim = -1;
  dir = 0;
}

/// Fault-aware hop selection: like NextHop, but skips dead links. Candidate
/// order — (1) the preferred hop; (2) the other uncorrected dimensions in
/// rotated order (still shortest-path progress, merely out of dimension
/// order); (3) fallbacks that temporarily increase distance: sidesteps
/// through corrected dimensions first (cost 2 around a wall), then the
/// reverse direction of each uncorrected dimension.
///
/// Local information alone livelocks: the node *next to* a dead link sees a
/// healthy shortest-way hop pointing straight back at the wall. Two
/// stateless-per-step escapes handle that, both derived from state the
/// packet already carries:
///  - Wrong-way commitment (torus): taking a reverse fallback locks that
///    (dimension, direction) into the packet's flag bits, and the packet
///    keeps walking the long way around the ring until the dimension is
///    corrected (or the locked path itself dies).
///  - Slack-gated randomization: slack = steps elapsed beyond the packet's
///    ideal shortest-path schedule (from `step` and `dist0`), monotone
///    while stuck. Past kDetourRotateSlack the fallback order rotates by a
///    per-step hash; past kScrambleSlack the packet additionally makes a
///    hash-randomized choice over every alive hop on ~1 in 4 steps. The
///    perturbation is intermittent, so a packet that escapes its trap still
///    drifts home greedily; a trapped one keeps getting kicked until some
///    kick lands on an escape edge.
///
/// `alive(dim, dir)` must answer both link existence (mesh boundaries) and
/// the per-step dead mask; boundary links therefore never get chosen.
///
/// Sets dim = -1 when every outgoing link is dead (the packet cannot bid);
/// `detour` is set when the chosen hop differs from the fault-free one.
/// Returns the remaining first-leg distance, like NextHop.
template <typename CP, typename DC, typename AliveFn>
std::int64_t NextHopFaulted(const CP& cp, const DC& dc, int d, int n,
                            bool torus, std::uint16_t klass, std::int64_t id,
                            std::uint16_t& flags, const AliveFn& alive,
                            std::int64_t step, std::int32_t dist0,
                            std::int64_t twoleg_extra, int& dim, int& dir,
                            bool& detour) {
  int u_dim[kMaxDim], u_dir[kMaxDim];
  int nu = 0;
  std::int64_t rem = 0;
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    const std::int32_t c = cp[i];
    const std::int32_t g = dc[i];
    if (c == g) continue;
    std::int64_t dist;
    int sgn;
    if (torus) {
      std::int64_t forward = Mod(g - c, n);
      if (forward <= n - forward) {
        dist = forward;
        sgn = 1;
      } else {
        dist = n - forward;
        sgn = -1;
      }
    } else {
      dist = AbsDiff(c, g);
      sgn = g > c ? 1 : -1;
    }
    rem += dist;
    u_dim[nu] = i;
    u_dir[nu] = sgn > 0 ? 1 : 0;
    ++nu;
  }
  dim = -1;
  dir = 0;
  detour = false;
  if (nu == 0) {
    flags &= static_cast<std::uint16_t>(~Packet::kLockMask);
    return 0;
  }
  const std::int64_t slack = (step - 1) - (dist0 - (rem + twoleg_extra));
  const std::uint64_t hash =
      slack > kDetourRotateSlack ? DetourHash(step, id) : 0;
  if ((flags & Packet::kLockActive) != 0) {
    const int ld = LockDim(flags);
    const int ldir = LockDir(flags);
    if (cp[ld] == dc[ld]) {
      // Dimension corrected: the commitment paid off.
      flags &= static_cast<std::uint16_t>(~Packet::kLockMask);
    } else if (alive(ld, ldir)) {
      dim = ld;
      dir = ldir;
      detour = ld != u_dim[0] || ldir != u_dir[0];
      return rem;
    } else {
      // The committed ring is blocked here. Sidestep to an adjacent ring
      // and KEEP the lock — the packet rounds the fault block instead of
      // bouncing back toward the distance gradient it committed against.
      const int np = 2 * (d - 1);
      for (int t = 0; t < np; ++t) {
        int k = t + (np > 0 ? static_cast<int>(DetourHash(step, ~id) %
                                               static_cast<std::uint64_t>(np))
                            : 0);
        if (k >= np) k -= np;
        int i = k / 2;
        if (i >= ld) ++i;  // skip the locked dimension
        const int dr = k & 1;
        if (!alive(i, dr)) continue;
        dim = i;
        dir = dr;
        detour = true;
        return rem;
      }
      // Fully cornered on the committed path: give up the lock.
      flags &= static_cast<std::uint16_t>(~Packet::kLockMask);
    }
  }
  const bool scramble_now = slack > kScrambleSlack && (hash & 3) == 0;
  if (!scramble_now) {
    if (alive(u_dim[0], u_dir[0])) {
      dim = u_dim[0];
      dir = u_dir[0];
      return rem;
    }
    for (int k = 1; k < nu; ++k) {
      if (alive(u_dim[k], u_dir[k])) {
        dim = u_dim[k];
        dir = u_dir[k];
        detour = true;
        return rem;
      }
    }
  }
  int c_dim[4 * kMaxDim], c_dir[4 * kMaxDim];
  bool c_rev[4 * kMaxDim];
  int nc = 0;
  if (scramble_now) {
    for (int k = 0; k < nu; ++k) {
      c_dim[nc] = u_dim[k];
      c_dir[nc] = u_dir[k];
      c_rev[nc] = false;
      ++nc;
    }
  }
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    if (cp[i] != dc[i]) continue;
    c_dim[nc] = i;
    c_dir[nc] = 1;
    c_rev[nc] = false;
    ++nc;
    c_dim[nc] = i;
    c_dir[nc] = 0;
    c_rev[nc] = false;
    ++nc;
  }
  for (int k = 0; k < nu; ++k) {
    c_dim[nc] = u_dim[k];
    c_dir[nc] = 1 - u_dir[k];
    c_rev[nc] = true;
    ++nc;
  }
  // Rotate with bits independent of the (hash & 3) scramble gate — reusing
  // the low bits would make every scramble step pick rotation 0.
  const int rot =
      (nc > 0 && slack > kDetourRotateSlack)
          ? static_cast<int>((hash >> 8) % static_cast<std::uint64_t>(nc))
          : 0;
  for (int t = 0; t < nc; ++t) {
    int k = t + rot;
    if (k >= nc) k -= nc;
    if (!alive(c_dim[k], c_dir[k])) continue;
    dim = c_dim[k];
    dir = c_dir[k];
    detour = dim != u_dim[0] || dir != u_dir[0];
    if (torus && c_rev[k]) {
      flags = static_cast<std::uint16_t>(
          (flags & ~Packet::kLockMask) | MakeLock(dim, dir));
    }
    return rem;
  }
  return rem;  // fully walled in: every outgoing link is dead
}

}  // namespace mdmesh
