#include "net/reference_engine.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

namespace mdmesh {
namespace {

/// A packet's full remaining distance (both legs for kTwoLeg) — the
/// farthest-first priority of the model.
std::int64_t RemainingDistance(const Topology& topo, ProcId at,
                               const Packet& pkt) {
  std::int64_t rem = topo.Dist(at, pkt.dest);
  if ((pkt.flags & Packet::kTwoLeg) != 0) {
    rem += topo.Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
  }
  return rem;
}

/// First uncorrected dimension in the rotated order klass, klass+1, ...;
/// returns (dim, dir) or dim = -1 when at the destination.
std::pair<int, int> DesiredHop(const Topology& topo, ProcId at,
                               const Packet& pkt) {
  const Point cur = topo.Coords(at);
  const Point dst = topo.Coords(pkt.dest);
  const int d = topo.dim();
  for (int t = 0; t < d; ++t) {
    const int dim = (pkt.klass + t) % d;
    const int step = topo.StepToward(cur[static_cast<std::size_t>(dim)],
                                     dst[static_cast<std::size_t>(dim)]);
    if (step != 0) return {dim, step > 0 ? 1 : 0};
  }
  return {-1, 0};
}

}  // namespace

ReferenceEngine::ReferenceEngine(const Topology& topo, std::int64_t step_cap)
    : topo_(&topo), step_cap_(step_cap) {}

RouteResult ReferenceEngine::Route(Network& net) {
  RouteResult result;
  const ProcId N = topo_->size();
  const int d = topo_->dim();

  std::int64_t in_flight = 0;
  for (ProcId p = 0; p < N; ++p) {
    for (Packet& pkt : net.At(p)) {
      pkt.flags &= static_cast<std::uint16_t>(~Packet::kMoving);
      pkt.dist0 = static_cast<std::int32_t>(RemainingDistance(*topo_, p, pkt));
      if ((pkt.flags & Packet::kTwoLeg) != 0 && pkt.dest == p) {
        pkt.dest = static_cast<ProcId>(pkt.tag);
        pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
      }
      pkt.arrived = pkt.dest == p ? 0 : -1;
      if (pkt.dest != p) ++in_flight;
      result.max_distance = std::max<std::int64_t>(result.max_distance, pkt.dist0);
      ++result.packets;
    }
  }
  result.max_queue = net.MaxQueue();
  result.links = topo_->torus()
                     ? 2ll * d * N
                     : 2ll * d * N * (topo_->side() - 1) / topo_->side();

  std::int64_t cap = step_cap_;
  if (cap <= 0) {
    const std::int64_t load = std::max<std::int64_t>(1, CeilDiv(result.packets, N));
    cap = 4 * load * (topo_->Diameter() + topo_->side()) + 4096;
  }

  std::int64_t arrivals = 0;
  std::int64_t step = 0;
  while (arrivals < in_flight && step < cap) {
    ++step;
    // 1. Every packet states its desired directed link.
    struct Want {
      ProcId from;
      std::size_t index;   // position in from's queue
      std::int64_t rem;    // remaining distance (priority)
      std::int64_t id;
    };
    std::map<std::pair<ProcId, int>, std::vector<Want>> contenders;
    for (ProcId p = 0; p < N; ++p) {
      const auto& q = net.At(p);
      for (std::size_t i = 0; i < q.size(); ++i) {
        const Packet& pkt = q[i];
        if (pkt.dest == p) continue;
        auto [dim, dir] = DesiredHop(*topo_, p, pkt);
        contenders[{p, dim * 2 + dir}].push_back(
            Want{p, i, RemainingDistance(*topo_, p, pkt), pkt.id});
      }
    }
    // 2. Arbitrate each link: farthest remaining distance, ties to the
    //    smaller id. 3. Apply all moves simultaneously.
    std::vector<std::tuple<ProcId, std::size_t, ProcId>> moves;  // from, idx, to
    for (auto& [link, wants] : contenders) {
      const auto winner = std::max_element(
          wants.begin(), wants.end(), [](const Want& a, const Want& b) {
            return a.rem != b.rem ? a.rem < b.rem : a.id > b.id;
          });
      const ProcId to = topo_->Neighbor(link.first, link.second / 2, link.second % 2);
      moves.emplace_back(winner->from, winner->index, to);
    }
    // Collect moved packets (marking slots), then erase and deliver.
    std::vector<std::pair<ProcId, Packet>> in_transit;
    for (const auto& [from, index, to] : moves) {
      Packet pkt = net.At(from)[index];
      pkt.flags |= Packet::kMoving;  // mark the original for removal
      net.At(from)[index].flags |= Packet::kMoving;
      pkt.flags &= static_cast<std::uint16_t>(~Packet::kMoving);
      in_transit.emplace_back(to, pkt);
    }
    for (ProcId p = 0; p < N; ++p) {
      auto& q = net.At(p);
      q.erase(std::remove_if(q.begin(), q.end(),
                             [](const Packet& pkt) {
                               return (pkt.flags & Packet::kMoving) != 0;
                             }),
              q.end());
    }
    result.moves += static_cast<std::int64_t>(in_transit.size());
    for (auto& [to, pkt] : in_transit) {
      if (pkt.dest == to) {
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          pkt.dest = static_cast<ProcId>(pkt.tag);
          pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
          if (pkt.dest == to) {
            pkt.arrived = static_cast<std::int32_t>(step);
            ++arrivals;
          }
        } else {
          pkt.arrived = static_cast<std::int32_t>(step);
          ++arrivals;
        }
      }
      net.At(to).push_back(pkt);
    }
    result.max_queue = std::max(result.max_queue, net.MaxQueue());
  }

  result.steps = step;
  result.completed = arrivals == in_flight;
  for (ProcId p = 0; p < N; ++p) {
    for (const Packet& pkt : net.At(p)) {
      if (pkt.arrived < 0) continue;
      const std::int64_t over = pkt.arrived - pkt.dist0;
      result.overshoot.Add(static_cast<double>(over));
      result.max_overshoot = std::max(result.max_overshoot, over);
    }
  }
  return result;
}

}  // namespace mdmesh
