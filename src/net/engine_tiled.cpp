#include "net/engine_tiled.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "net/engine.h"
#include "net/greedy_hop.h"
#include "util/math.h"

namespace mdmesh {

namespace {

inline std::uint64_t Bit(int slot) {
  return std::uint64_t{1} << slot;
}

}  // namespace

TiledEngine::TiledEngine(const Topology& topo, ThreadPool* pool)
    : topo_(&topo),
      pool_(pool),
      arena_(topo),
      d_(topo.dim()),
      n_(topo.side()),
      torus_(topo.torus()),
      nprocs_(topo.size()) {
  strides_.resize(static_cast<std::size_t>(d_));
  strides_[0] = 1;
  for (int i = 1; i < d_; ++i) {
    strides_[static_cast<std::size_t>(i)] =
        strides_[static_cast<std::size_t>(i - 1)] * n_;
  }
  commit_bits_.assign(static_cast<std::size_t>((arena_.tiles() + 63) / 64), 0);
}

void TiledEngine::BeginRoute(const std::uint8_t* link_dead,
                             JourneyTracer* journeys) {
  link_dead_ = link_dead;
  have_faults_ = link_dead != nullptr;
  journeys_ = journeys;
  halo_bytes_ = 0;
}

void TiledEngine::Import(const Network& net) {
  arena_.Reset();
  for (ProcId p = 0; p < nprocs_; ++p) {
    const PacketQueue& q = net.At(p);
    if (q.empty()) continue;
    const std::int64_t tile = TileMap::TileOf(p);
    const std::int32_t ph = arena_.Ensure(tile);
    const int slot = TileMap::SlotOf(p);
    const std::size_t c = q.size();
    assert(c < 65536 && "tiled layout caps per-processor queues at 64K");
    bool infl = false;
    for (std::size_t pos = 0; pos < c; ++pos) {
      const Packet& pkt = q[pos];
      if (pkt.arrived < 0) infl = true;
      if (pos < kTileLanes) {
        const Point pt = topo_->Coords(pkt.dest);
        arena_.WriteLane(ph, static_cast<int>(pos), slot, pkt, pt.data());
      } else {
        arena_.ovf(ph).push_back(
            TileOvEntry{pkt, slot, static_cast<std::int32_t>(pos)});
      }
    }
    arena_.cnt(ph)[slot] = static_cast<std::uint16_t>(c);
    *arena_.nonempty(ph) |= Bit(slot);
    if (infl) *arena_.inflight(ph) |= Bit(slot);
  }
}

void TiledEngine::Export(Network& net) {
  net.Clear();
  auto& queues = net.queues();
  const auto& live = arena_.live_bits();
  for (std::size_t w = 0; w < live.size(); ++w) {
    std::uint64_t bits = live[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t tile = static_cast<std::int64_t>(w * 64) + b;
      const std::int32_t ph = arena_.Phys(tile);
      const std::uint16_t* cnt = arena_.cnt(ph);
      for (int low = 0; low < kTileSlots; ++low) {
        const ProcId p = (tile << kTileSlotBits) | low;
        if (p >= nprocs_) break;
        const int slot = TileMap::SlotForLow(tile, low);
        const int c = cnt[slot];
        if (c == 0) continue;
        auto& q = queues[static_cast<std::size_t>(p)];
        const int lanes = std::min<int>(c, kTileLanes);
        for (int k = 0; k < lanes; ++k) {
          Packet pkt;
          arena_.ReadLane(ph, k, slot, &pkt);
          q.push_back(pkt);
        }
        if (c > kTileLanes) {
          for (const TileOvEntry& e : arena_.ovf(ph)) {
            if (e.slot == slot) q.push_back(e.pkt);
          }
        }
      }
    }
  }
}

void TiledEngine::Append(ProcId p, const Packet& pkt) {
  assert(pkt.arrived < 0);
  const std::int64_t tile = TileMap::TileOf(p);
  const std::int32_t ph = arena_.Ensure(tile);
  const int slot = TileMap::SlotOf(p);
  const int c = arena_.cnt(ph)[slot];
  assert(c < 65535);
  if (c < kTileLanes) {
    const Point pt = topo_->Coords(pkt.dest);
    arena_.WriteLane(ph, c, slot, pkt, pt.data());
  } else {
    arena_.ovf(ph).push_back(
        TileOvEntry{pkt, slot, static_cast<std::int32_t>(c)});
  }
  arena_.cnt(ph)[slot] = static_cast<std::uint16_t>(c + 1);
  *arena_.nonempty(ph) |= Bit(slot);
  *arena_.inflight(ph) |= Bit(slot);
}

void TiledEngine::DeliverWinner(std::int64_t tile, std::int32_t ph, ProcId p,
                                std::int32_t c_along, int l, const Packet& pkt,
                                const std::int32_t* dcoords, Shard& sh) {
  const ProcId r = NeighborOf(p, c_along, l >> 1, l & 1);
  // Link l = dim*2+dir lands in the receiver's dim*2+(1-dir) cell (l ^ 1):
  // the entry indexed by the direction the receiver sees the sender in.
  const int cell = l ^ 1;
  const std::int64_t rt = TileMap::TileOf(r);
  if (rt == tile) {
    // Same-tile delivery: this worker owns the tile for the whole bid pass
    // (cross-tile traffic always rides the outbox), so the direct mailbox
    // write is race-free.
    const int rs = TileMap::SlotOf(r);
    arena_.mail(ph)[static_cast<std::size_t>(cell) * kTileSlots +
                    static_cast<std::size_t>(rs)] = pkt;
    std::int32_t* mdc =
        arena_.mail_dc(ph) +
        (static_cast<std::size_t>(cell) * kTileSlots +
         static_cast<std::size_t>(rs)) *
            static_cast<std::size_t>(d_);
    for (int i = 0; i < d_; ++i) mdc[i] = dcoords[i];
    arena_.pend(ph)[cell] |= Bit(rs);
    return;
  }
  sh.outbox.push_back(OutMsg{r, cell, pkt, {}});
  OutMsg& m = sh.outbox.back();
  for (int i = 0; i < d_; ++i) m.dc[i] = dcoords[i];
}

template <bool kFaults>
void TiledEngine::BidTile(std::int64_t tile, std::int32_t ph,
                          std::int64_t step, Shard& sh,
                          EngineWorkerScratch& s) {
  const auto links = static_cast<std::size_t>(2 * d_);
  const std::uint16_t* cnt = arena_.cnt(ph);
  const std::int32_t* ccoord = arena_.ccoord(ph);
  const std::int32_t* dccols = arena_.dc(ph);
  std::uint16_t* flags_col = arena_.flags_col(ph);
  std::uint64_t bits = *arena_.inflight(ph);
  while (bits != 0) {
    const int slot = std::countr_zero(bits);
    bits &= bits - 1;
    const ProcId p = TileMap::ProcOf(tile, slot);
    const int c = cnt[slot];
    const StridedCoords cp{ccoord + slot, kTileSlots};
    if constexpr (!kFaults) {
      if (c == 1) {
        // Singleton fast path (legacy BidProc): a one-packet queue cannot
        // have link contention, and the in-flight bit guarantees the packet
        // is not at its destination.
        const StridedCoords dcs{dccols + slot, kTileLanes * kTileSlots};
        int dim, dir;
        NextHopDir(cp, dcs, d_, n_, torus_, arena_.klass_col(ph)[slot], dim,
                   dir);
        assert(dim >= 0);
        const int l = dim * 2 + dir;
        flags_col[slot] |= Packet::kMoving;  // lane 0 element index == slot
        Packet mpkt;
        arena_.ReadLane(ph, 0, slot, &mpkt);
        std::int32_t tmp[kMaxDim];
        for (int i = 0; i < d_; ++i) tmp[i] = dcs[i];
        DeliverWinner(tile, ph, p, cp[dim], l, mpkt, tmp, sh);
        continue;
      }
    }
    // General path: gather the slot's in-flight packets (lanes in order,
    // then overflow entries in ascending queue position) with their dest
    // coordinates, then run the legacy winner loop over the gather.
    sh.qbuf.clear();
    sh.cbuf.clear();
    sh.loc.clear();
    const int lanes = std::min<int>(c, kTileLanes);
    for (int k = 0; k < lanes; ++k) {
      Packet pkt;
      arena_.ReadLane(ph, k, slot, &pkt);
      if (pkt.arrived >= 0) continue;  // delivered: never bids (dest == p)
      sh.qbuf.push_back(pkt);
      sh.loc.push_back(k);
      for (int i = 0; i < d_; ++i) {
        sh.cbuf.push_back(
            dccols[(static_cast<std::size_t>(i) * kTileLanes +
                    static_cast<std::size_t>(k)) *
                       kTileSlots +
                   static_cast<std::size_t>(slot)]);
      }
    }
    if (c > kTileLanes) {
      auto& ov = arena_.ovf(ph);
      for (std::size_t oi = 0; oi < ov.size(); ++oi) {
        if (ov[oi].slot != slot) continue;
        const Packet& pkt = ov[oi].pkt;
        if (pkt.arrived >= 0) continue;
        sh.qbuf.push_back(pkt);
        sh.loc.push_back(kLocOvf | static_cast<std::int32_t>(oi));
        const Point pt = topo_->Coords(pkt.dest);
        for (int i = 0; i < d_; ++i) sh.cbuf.push_back(pt[static_cast<std::size_t>(i)]);
      }
    }
    const auto store_flags = [&](std::int32_t lc, std::uint16_t f) {
      if ((lc & kLocOvf) != 0) {
        arena_.ovf(ph)[static_cast<std::size_t>(lc & ~kLocOvf)].pkt.flags = f;
      } else {
        flags_col[static_cast<std::size_t>(lc) * kTileSlots +
                  static_cast<std::size_t>(slot)] = f;
      }
    };
    std::int32_t win[2 * kMaxDim];
    std::int64_t prio[2 * kMaxDim];
    std::uint32_t used = 0;
    [[maybe_unused]] const std::uint8_t* dead = nullptr;
    if constexpr (kFaults) {
      dead = link_dead_ + static_cast<std::size_t>(p) * links;
    }
    for (std::size_t j = 0; j < sh.qbuf.size(); ++j) {
      Packet& pkt = sh.qbuf[j];
      if (pkt.dest == p) continue;
      const std::int32_t* dcp = &sh.cbuf[j * static_cast<std::size_t>(d_)];
      int dim, dir;
      std::int64_t rem;
      if constexpr (kFaults) {
        // Farthest-first priority counts the full remaining path of a
        // two-leg packet, not just the current leg.
        std::int64_t extra = 0;
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          extra = topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
        }
        bool is_detour = false;
        const auto alive = [&](int di, int dr) {
          if (dead[di * 2 + dr] != 0) return false;
          if (torus_) return true;
          const std::int32_t ci = cp[di];
          return dr == 1 ? ci + 1 < n_ : ci > 0;
        };
        rem = NextHopFaulted(cp, dcp, d_, n_, torus_, pkt.klass, pkt.id,
                             pkt.flags, alive, step, pkt.dist0, extra, dim,
                             dir, is_detour);
        pkt.flags = is_detour
                        ? static_cast<std::uint16_t>(pkt.flags | Packet::kDetour)
                        : static_cast<std::uint16_t>(pkt.flags &
                                                     ~Packet::kDetour);
        rem += extra;
        // Legacy mutates the stored packet's flags in place; mirror that
        // write-back for every bidding packet, winner or not.
        store_flags(sh.loc[j], pkt.flags);
        if (dim < 0) {
          // Every outgoing link is dead: the packet holds in place (same
          // wait the legacy BidProc records at this point).
          if (journeys_ != nullptr) {
            journeys_->RecordWait(s.events, pkt.id, p, step,
                                  JourneyEvent::kWaitLinksDead, -1, 0);
          }
          continue;
        }
      } else {
        rem = NextHop(cp, dcp, d_, n_, torus_, pkt.klass, dim, dir);
        assert(dim >= 0);
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          rem += topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
        }
      }
      const auto l = static_cast<std::size_t>(dim * 2 + dir);
      // Farthest remaining distance wins; ties to the smaller packet id.
      // Losers are recorded incrementally for the journey tracer, exactly
      // like the legacy BidProc: each bidder loses at most once per step.
      if ((used & (std::uint32_t{1} << l)) == 0) {
        used |= std::uint32_t{1} << l;
        win[l] = static_cast<std::int32_t>(j);
        prio[l] = rem;
      } else if (rem > prio[l] ||
                 (rem == prio[l] &&
                  pkt.id < sh.qbuf[static_cast<std::size_t>(win[l])].id)) {
        if (journeys_ != nullptr) {
          journeys_->RecordWait(s.events,
                                sh.qbuf[static_cast<std::size_t>(win[l])].id,
                                p, step, JourneyEvent::kWaitLostBid, dim, dir);
        }
        win[l] = static_cast<std::int32_t>(j);
        prio[l] = rem;
      } else {
        if (journeys_ != nullptr) {
          journeys_->RecordWait(s.events, pkt.id, p, step,
                                JourneyEvent::kWaitLostBid, dim, dir);
        }
      }
    }
    while (used != 0) {
      const auto l = static_cast<std::size_t>(std::countr_zero(used));
      used &= used - 1;
      const auto j = static_cast<std::size_t>(win[l]);
      Packet& pkt = sh.qbuf[j];
      pkt.flags |= Packet::kMoving;
      store_flags(sh.loc[j], pkt.flags);
      DeliverWinner(tile, ph, p, cp[static_cast<int>(l >> 1)],
                    static_cast<int>(l), pkt,
                    &sh.cbuf[j * static_cast<std::size_t>(d_)], sh);
    }
  }
}

void TiledEngine::RewriteSlot(std::int32_t ph, int slot, const Packet* q,
                              const std::int32_t* c, std::size_t nc,
                              bool had_ovf) {
  const std::size_t lanes = std::min<std::size_t>(nc, kTileLanes);
  for (std::size_t pos = 0; pos < lanes; ++pos) {
    arena_.WriteLane(ph, static_cast<int>(pos), slot, q[pos],
                     c + pos * static_cast<std::size_t>(d_));
  }
  if (had_ovf || nc > kTileLanes) {
    auto& ov = arena_.ovf(ph);
    if (had_ovf) {
      auto* out = ov.begin();
      for (auto* it = ov.begin(); it != ov.end(); ++it) {
        if (it->slot != slot) {
          if (out != it) *out = *it;
          ++out;
        }
      }
      ov.erase(out, ov.end());
    }
    for (std::size_t pos = kTileLanes; pos < nc; ++pos) {
      ov.push_back(TileOvEntry{q[pos], slot, static_cast<std::int32_t>(pos)});
    }
  }
  arena_.cnt(ph)[slot] = static_cast<std::uint16_t>(nc);
}

void TiledEngine::CommitTile(std::int64_t tile, std::int32_t ph,
                             std::int32_t now, bool count_dirs, Shard& sh,
                             EngineWorkerScratch& s) {
  const auto links = static_cast<std::size_t>(2 * d_);
  std::uint64_t* pend = arena_.pend(ph);
  std::uint64_t work = *arena_.inflight(ph);
  std::uint64_t mail_any = 0;
  for (std::size_t l = 0; l < links; ++l) mail_any |= pend[l];
  work |= mail_any;
  std::uint64_t new_nonempty = *arena_.nonempty(ph);
  std::uint64_t new_inflight = *arena_.inflight(ph);
  const std::uint16_t* cnt = arena_.cnt(ph);
  const std::uint16_t* flags_col = arena_.flags_col(ph);
  const std::int32_t* dccols = arena_.dc(ph);
  const Packet* mail = arena_.mail(ph);
  const std::int32_t* mdc = arena_.mail_dc(ph);
  while (work != 0) {
    const int slot = std::countr_zero(work);
    work &= work - 1;
    const ProcId p = TileMap::ProcOf(tile, slot);
    const int c = cnt[slot];
    const bool has_mail = (mail_any & Bit(slot)) != 0;
    // Fast skip: an in-flight slot with no movers and no incoming mail is
    // untouched this step — only its post-commit size feeds qmax (matching
    // the legacy commit, which samples every committed queue).
    bool has_mover = false;
    const int lanes = std::min<int>(c, kTileLanes);
    for (int k = 0; k < lanes; ++k) {
      if ((flags_col[static_cast<std::size_t>(k) * kTileSlots +
                     static_cast<std::size_t>(slot)] &
           Packet::kMoving) != 0) {
        has_mover = true;
        break;
      }
    }
    if (!has_mover && c > kTileLanes) {
      for (const TileOvEntry& e : arena_.ovf(ph)) {
        if (e.slot == slot && (e.pkt.flags & Packet::kMoving) != 0) {
          has_mover = true;
          break;
        }
      }
    }
    if (!has_mover && !has_mail) {
      s.qmax = std::max<std::int64_t>(s.qmax, c);
      continue;
    }
    // Stayers: everything not selected to move out, order preserved.
    sh.qbuf.clear();
    sh.cbuf.clear();
    for (int k = 0; k < lanes; ++k) {
      Packet pkt;
      arena_.ReadLane(ph, k, slot, &pkt);
      if ((pkt.flags & Packet::kMoving) != 0) continue;
      sh.qbuf.push_back(pkt);
      for (int i = 0; i < d_; ++i) {
        sh.cbuf.push_back(
            dccols[(static_cast<std::size_t>(i) * kTileLanes +
                    static_cast<std::size_t>(k)) *
                       kTileSlots +
                   static_cast<std::size_t>(slot)]);
      }
    }
    if (c > kTileLanes) {
      for (const TileOvEntry& e : arena_.ovf(ph)) {
        if (e.slot != slot) continue;
        if ((e.pkt.flags & Packet::kMoving) != 0) continue;
        sh.qbuf.push_back(e.pkt);
        const Point pt = topo_->Coords(e.pkt.dest);
        for (int i = 0; i < d_; ++i) {
          sh.cbuf.push_back(pt[static_cast<std::size_t>(i)]);
        }
      }
    }
    // Incomers: one per directed in-link, consumed in canonical (dim, dir)
    // order — identical to the legacy mailbox-row walk.
    if (has_mail) {
      for (std::size_t l = 0; l < links; ++l) {
        if ((pend[l] & Bit(slot)) == 0) continue;
        Packet pkt = mail[l * kTileSlots + static_cast<std::size_t>(slot)];
        const bool detoured = (pkt.flags & Packet::kDetour) != 0;
        if (have_faults_ && detoured) {
          ++s.detours;
        }
        pkt.flags &= static_cast<std::uint16_t>(
            ~(Packet::kMoving | Packet::kDetour));
        ++s.moves;
        if (count_dirs) {
          // Cell l arrived from p's (dim, dir) neighbor, i.e. it crossed
          // the sender's (dim, 1-dir) directed link — index l ^ 1.
          ++s.dir_moves[l ^ 1];
        }
        const std::int32_t* pdc =
            mdc + (l * kTileSlots + static_cast<std::size_t>(slot)) *
                      static_cast<std::size_t>(d_);
        std::int32_t tmpc[kMaxDim];
        bool retargeted = false;
        if (pkt.dest == p) {
          if ((pkt.flags & Packet::kTwoLeg) != 0) {
            // Midpoint reached: retarget to the final destination and keep
            // going next step.
            pkt.dest = static_cast<ProcId>(pkt.tag);
            pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
            retargeted = true;
            if (pkt.dest == p) {
              pkt.arrived = now;
              ++s.arrivals;
            } else {
              const Point pt = topo_->Coords(pkt.dest);
              for (int i = 0; i < d_; ++i) {
                tmpc[i] = pt[static_cast<std::size_t>(i)];
              }
              pdc = tmpc;
            }
          } else {
            pkt.arrived = now;
            ++s.arrivals;
          }
        }
        if (journeys_ != nullptr) {
          std::uint8_t jflags = 0;
          if (detoured) jflags |= JourneyEvent::kDetour;
          if (retargeted) jflags |= JourneyEvent::kRetarget;
          if (pkt.arrived >= 0) jflags |= JourneyEvent::kDelivered;
          journeys_->RecordMove(s.events, pkt.id, p, now,
                                static_cast<int>(l >> 1),
                                static_cast<int>((l & 1) ^ 1), jflags);
        }
        sh.qbuf.push_back(pkt);
        for (int i = 0; i < d_; ++i) sh.cbuf.push_back(pdc[i]);
      }
    }
    const std::size_t nc = sh.qbuf.size();
    RewriteSlot(ph, slot, sh.qbuf.data(), sh.cbuf.data(), nc,
                c > kTileLanes);
    bool infl = false;
    for (const Packet& pkt : sh.qbuf) {
      if (pkt.arrived < 0) {
        infl = true;
        break;
      }
    }
    if (nc > 0) {
      new_nonempty |= Bit(slot);
    } else {
      new_nonempty &= ~Bit(slot);
    }
    if (infl) {
      new_inflight |= Bit(slot);
    } else {
      new_inflight &= ~Bit(slot);
    }
    s.qmax = std::max<std::int64_t>(s.qmax, static_cast<std::int64_t>(nc));
  }
  *arena_.nonempty(ph) = new_nonempty;
  *arena_.inflight(ph) = new_inflight;
  for (std::size_t l = 0; l < links; ++l) pend[l] = 0;
}

std::int64_t TiledEngine::Step(std::int64_t step, std::int32_t now,
                               bool count_dirs,
                               std::vector<EngineWorkerScratch>& scratch) {
  // Schedule: every live tile holding an in-flight packet, ascending. The
  // live bitmap makes this O(live tiles), independent of N.
  sched_bid_.clear();
  const auto& live = arena_.live_bits();
  for (std::size_t w = 0; w < live.size(); ++w) {
    std::uint64_t bits = live[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t tile = static_cast<std::int64_t>(w * 64) + b;
      if (*arena_.inflight(arena_.Phys(tile)) != 0) {
        sched_bid_.push_back(tile);
      }
    }
  }
  if (shards_.size() < scratch.size()) shards_.resize(scratch.size());
  for (Shard& sh : shards_) sh.outbox.clear();

  const auto nb = static_cast<std::int64_t>(sched_bid_.size());
  if (nb > 0) {
    const std::int64_t chunk =
        CeilDiv(nb, static_cast<std::int64_t>(pool_->ShardsFor(nb)));
    pool_->ParallelFor(nb, [&](std::int64_t b, std::int64_t e) {
      Shard& sh = shards_[static_cast<std::size_t>(b / chunk)];
      EngineWorkerScratch& s = scratch[static_cast<std::size_t>(b / chunk)];
      for (std::int64_t i = b; i < e; ++i) {
        const std::int64_t tile = sched_bid_[static_cast<std::size_t>(i)];
        const std::int32_t ph = arena_.Phys(tile);
        if (have_faults_) {
          BidTile<true>(tile, ph, step, sh, s);
        } else {
          BidTile<false>(tile, ph, step, sh, s);
        }
      }
    });
  }

  // Halo exchange, coordinator-side: drain the shard outboxes in shard
  // order, materializing receiver tiles on demand. Every mailbox cell has a
  // unique writer, so the apply order never changes results — only the
  // free-list recycling order, which is invisible.
  if (commit_bits_.size() !=
      static_cast<std::size_t>((arena_.tiles() + 63) / 64)) {
    commit_bits_.assign(static_cast<std::size_t>((arena_.tiles() + 63) / 64),
                        0);
  }
  for (const std::int64_t tile : sched_bid_) {
    commit_bits_[static_cast<std::size_t>(tile >> 6)] |= Bit(
        static_cast<int>(tile & 63));
  }
  const std::size_t msg_bytes =
      sizeof(Packet) + static_cast<std::size_t>(d_) * sizeof(std::int32_t);
  for (const Shard& sh : shards_) {
    for (const OutMsg& m : sh.outbox) {
      const std::int64_t rt = TileMap::TileOf(m.r);
      const std::int32_t ph = arena_.Ensure(rt);
      const int rs = TileMap::SlotOf(m.r);
      arena_.mail(ph)[static_cast<std::size_t>(m.cell) * kTileSlots +
                      static_cast<std::size_t>(rs)] = m.pkt;
      std::int32_t* mdc =
          arena_.mail_dc(ph) +
          (static_cast<std::size_t>(m.cell) * kTileSlots +
           static_cast<std::size_t>(rs)) *
              static_cast<std::size_t>(d_);
      for (int i = 0; i < d_; ++i) mdc[i] = m.dc[i];
      arena_.pend(ph)[m.cell] |= Bit(rs);
      commit_bits_[static_cast<std::size_t>(rt >> 6)] |=
          Bit(static_cast<int>(rt & 63));
      halo_bytes_ += static_cast<std::int64_t>(msg_bytes);
    }
  }
  sched_commit_.clear();
  for (std::size_t w = 0; w < commit_bits_.size(); ++w) {
    std::uint64_t bits = commit_bits_[w];
    if (bits == 0) continue;
    commit_bits_[w] = 0;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      sched_commit_.push_back(static_cast<std::int64_t>(w * 64) + b);
    }
  }

  const auto nt = static_cast<std::int64_t>(sched_commit_.size());
  if (nt > 0) {
    const std::int64_t chunk =
        CeilDiv(nt, static_cast<std::int64_t>(pool_->ShardsFor(nt)));
    pool_->ParallelFor(nt, [&](std::int64_t b, std::int64_t e) {
      Shard& sh = shards_[static_cast<std::size_t>(b / chunk)];
      EngineWorkerScratch& s = scratch[static_cast<std::size_t>(b / chunk)];
      for (std::int64_t i = b; i < e; ++i) {
        const std::int64_t tile = sched_commit_[static_cast<std::size_t>(i)];
        CommitTile(tile, arena_.Phys(tile), now, count_dirs, sh, s);
      }
    });
  }

  // Post-commit active processors. In-flight packets can only live in
  // committed tiles (every in-flight tile was scheduled for bids, and bids
  // only add receivers), so the popcount sum is exact.
  std::int64_t active = 0;
  for (const std::int64_t tile : sched_commit_) {
    active += std::popcount(*arena_.inflight(arena_.Phys(tile)));
  }
  return active;
}

void TiledEngine::FinishStep(StepInjector* injector, std::int64_t step,
                             Accumulator* overshoot,
                             std::int64_t* max_overshoot) {
  if (injector != nullptr) {
    // Retire delivered packets: ascending processor order (tiles ascending,
    // ascending-id slot iteration inside), queue order within a processor —
    // the OnDeliver contract.
    for (const std::int64_t tile : sched_commit_) {
      const std::int32_t ph = arena_.Phys(tile);
      std::uint16_t* cnt = arena_.cnt(ph);
      const std::int32_t* dccols = arena_.dc(ph);
      for (int low = 0; low < kTileSlots; ++low) {
        const ProcId p = (tile << kTileSlotBits) | low;
        if (p >= nprocs_) break;
        const int slot = TileMap::SlotForLow(tile, low);
        const int c = cnt[slot];
        if (c == 0) continue;
        const std::int32_t* arrived = arena_.arrived_col(ph);
        bool delivered = false;
        const int lanes = std::min<int>(c, kTileLanes);
        for (int k = 0; k < lanes; ++k) {
          if (arrived[static_cast<std::size_t>(k) * kTileSlots +
                      static_cast<std::size_t>(slot)] >= 0) {
            delivered = true;
            break;
          }
        }
        if (!delivered && c > kTileLanes) {
          for (const TileOvEntry& e : arena_.ovf(ph)) {
            if (e.slot == slot && e.pkt.arrived >= 0) {
              delivered = true;
              break;
            }
          }
        }
        if (!delivered) continue;
        rbuf_.clear();
        rcbuf_.clear();
        const auto retire_one = [&](const Packet& pkt) {
          const std::int64_t over =
              (static_cast<std::int64_t>(pkt.arrived) - pkt.tag + 1) -
              pkt.dist0;
          overshoot->Add(static_cast<double>(over));
          *max_overshoot = std::max(*max_overshoot, over);
          injector->OnDeliver(pkt, step);
        };
        for (int k = 0; k < lanes; ++k) {
          Packet pkt;
          arena_.ReadLane(ph, k, slot, &pkt);
          if (pkt.arrived >= 0) {
            retire_one(pkt);
            continue;
          }
          rbuf_.push_back(pkt);
          for (int i = 0; i < d_; ++i) {
            rcbuf_.push_back(
                dccols[(static_cast<std::size_t>(i) * kTileLanes +
                        static_cast<std::size_t>(k)) *
                           kTileSlots +
                       static_cast<std::size_t>(slot)]);
          }
        }
        if (c > kTileLanes) {
          for (const TileOvEntry& e : arena_.ovf(ph)) {
            if (e.slot != slot) continue;
            if (e.pkt.arrived >= 0) {
              retire_one(e.pkt);
              continue;
            }
            rbuf_.push_back(e.pkt);
            const Point pt = topo_->Coords(e.pkt.dest);
            for (int i = 0; i < d_; ++i) {
              rcbuf_.push_back(pt[static_cast<std::size_t>(i)]);
            }
          }
        }
        const std::size_t nk = rbuf_.size();
        RewriteSlot(ph, slot, rbuf_.data(), rcbuf_.data(), nk,
                    c > kTileLanes);
        // Survivors are all in-flight (delivered ones just retired).
        if (nk > 0) {
          *arena_.nonempty(ph) |= Bit(slot);
          *arena_.inflight(ph) |= Bit(slot);
        } else {
          *arena_.nonempty(ph) &= ~Bit(slot);
          *arena_.inflight(ph) &= ~Bit(slot);
        }
      }
    }
  }
  // Return fully drained tiles to the free list — this is what keeps the
  // arena footprint proportional to resident packets on continuous runs.
  for (const std::int64_t tile : sched_commit_) {
    const std::int32_t ph = arena_.Phys(tile);
    if (ph >= 0 && *arena_.nonempty(ph) == 0) arena_.Free(tile);
  }
}

void TiledEngine::FillQueueHist(Histogram* hist, ProcId nprocs) {
  std::int64_t covered = 0;
  const auto& live = arena_.live_bits();
  for (std::size_t w = 0; w < live.size(); ++w) {
    std::uint64_t bits = live[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t tile = static_cast<std::int64_t>(w * 64) + b;
      const std::int32_t ph = arena_.Phys(tile);
      const std::uint16_t* cnt = arena_.cnt(ph);
      for (int low = 0; low < kTileSlots; ++low) {
        const ProcId p = (tile << kTileSlotBits) | low;
        if (p >= nprocs) break;
        hist->Add(cnt[TileMap::SlotForLow(tile, low)]);
        ++covered;
      }
    }
  }
  hist->AddN(0, static_cast<std::int64_t>(nprocs) - covered);
}

}  // namespace mdmesh
