// Reference implementation of the synchronous routing semantics, for
// DIFFERENTIAL TESTING of the optimized Engine.
//
// The paper's model is simple to state (Section 1: one packet per directed
// link per step, farthest-first contention) but the optimized kernel earns
// its speed with per-link winner slots, double buffering, and a parallel
// update — all easy places to hide a semantics bug that unit tests on tiny
// cases would miss. This class re-implements the model as literally as
// possible (gather every packet's desire, arbitrate each contended link by
// explicit sort, apply moves one by one, single-threaded) and must produce
// BIT-IDENTICAL results: same step count, same move count, same queue
// maximum, same final placement, same arrival times. tests/test_differential
// drives both engines over randomized workloads and asserts exactly that.
#pragma once

#include <cstdint>

#include "net/metrics.h"
#include "net/network.h"

namespace mdmesh {

class ReferenceEngine {
 public:
  explicit ReferenceEngine(const Topology& topo, std::int64_t step_cap = 0);

  /// Same contract as Engine::Route, including kTwoLeg retargeting.
  RouteResult Route(Network& net);

 private:
  const Topology* topo_;
  std::int64_t step_cap_;
};

}  // namespace mdmesh
