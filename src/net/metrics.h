// Measurements produced by a routing run. These are the quantities the
// paper's theorems bound: step counts (vs. cD + o(n)), per-packet overshoot
// (arrival time minus source-destination distance, the "distance-optimality"
// of Section 2.2), and queue occupancy (the multi-packet model's O(1)).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "meshsim/topology.h"
#include "obs/flight_recorder.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace mdmesh {

struct JourneyLog;
struct CriticalPathReport;

/// Why a Route call gave up before delivering every packet.
enum class StallReason : std::uint8_t {
  kStepCap,    ///< the hard step cap was reached
  kWatchdog,   ///< no packet moved for the whole watchdog window
  kInterrupt,  ///< SIGINT/SIGTERM landed mid-run (flight recorder attached)
};

/// Structured diagnostic produced when a Route call aborts (watchdog or
/// step cap): which packets are stuck where, what hop each one wants, and
/// which of those wanted links are dead. Serialized through the JSON sink
/// so step-cap/deadlock bugs are debuggable from bench output alone.
struct StallReport {
  /// At most this many stuck packets are sampled (processor order).
  static constexpr std::size_t kSampleCap = 32;

  struct StuckPacket {
    std::int64_t id = 0;
    ProcId at = 0;              ///< processor the packet is parked on
    ProcId dest = 0;            ///< current routing destination
    std::int64_t remaining = 0; ///< remaining distance (both legs if two-leg)
    int want_dim = -1;          ///< next hop the policy would take (-1: none)
    int want_dir = 0;
    bool link_dead = false;     ///< that hop's link is currently dead
  };

  /// At most this many trailing flight-recorder step records are embedded.
  static constexpr std::size_t kRecentCap = 64;

  StallReason reason = StallReason::kStepCap;
  std::int64_t step = 0;               ///< step at which the run aborted
  std::int64_t no_progress_steps = 0;  ///< trailing zero-move steps
  std::int64_t stuck_packets = 0;      ///< total packets still in flight
  std::vector<StuckPacket> sample;     ///< first kSampleCap stuck packets
  /// Distinct dead links wanted by sampled packets (global directed index
  /// p * 2d + dim * 2 + dir).
  std::vector<std::int64_t> blocked_links;
  /// Tail of the flight recorder (last kRecentCap step records, oldest
  /// first) when one was attached to the run — the per-step history leading
  /// into the abort, diagnosable without a rerun. Empty without a recorder.
  std::vector<FlightRecord> recent;

  const char* ReasonName() const;
  std::string ToString() const;
  void WriteJson(JsonWriter& w) const;
};

struct RouteResult {
  std::int64_t steps = 0;       ///< steps until the last packet arrived
  std::int64_t moves = 0;       ///< total packet-moves over all links/steps
  std::int64_t max_queue = 0;   ///< max packets resident at one processor
  std::int64_t packets = 0;     ///< number of packets routed
  std::int64_t links = 0;       ///< directed links in the network
  bool completed = true;        ///< false if the step cap was hit

  /// Fraction of directed-link-steps that carried a packet — how close the
  /// run came to saturating the network's wire capacity. Always in [0, 1]:
  /// degenerate runs (no steps, no links, nothing moved) report 0, and the
  /// product steps*links is formed in double so huge runs cannot overflow
  /// the int64 intermediate.
  double LinkUtilization() const {
    if (steps <= 0 || links <= 0 || moves <= 0) return 0.0;
    const double capacity =
        static_cast<double>(steps) * static_cast<double>(links);
    const double util = static_cast<double>(moves) / capacity;
    return util < 1.0 ? util : 1.0;
  }

  /// Max over packets of dist(src, dest) — the per-run distance bound.
  std::int64_t max_distance = 0;

  /// Per-packet overshoot = arrival_step - dist(src, dest). A run is
  /// distance-optimal when max overshoot is o(n).
  Accumulator overshoot;
  std::int64_t max_overshoot = 0;

  /// Moves that deviated from the packet's fault-free preferred hop
  /// (adaptive detours around dead links). Always 0 without a fault plan.
  std::int64_t detours = 0;

  /// Steps executed on the engine's sparse active-set path (vs the dense
  /// full-mesh sweep). Purely observational — the two paths are
  /// byte-identical in routing behavior — but useful for confirming that a
  /// low-occupancy phase actually ran sparse.
  std::int64_t sparse_steps = 0;

  /// Peak sparse active-set size over the run (the maximum of the per-step
  /// StepSnapshot::active_procs values); -1 when every step ran the dense
  /// sweep, where the set is not tracked.
  std::int64_t peak_active_procs = -1;

  /// Present iff the run aborted (completed == false): the structured
  /// diagnostic from the stall watchdog or the step cap.
  std::shared_ptr<const StallReport> stall_report;

  /// Self-description of the run (topology, threads, sparse mode, options
  /// hash) — stamped by the engine once per Engine instance and shared by
  /// every Route result it produces. Serialized into ToJson so any record
  /// built from a RouteResult is reproducible from the artifact alone.
  std::shared_ptr<const RunManifest> manifest;

  /// Present iff EngineOptions::journeys was set: the finalized per-packet
  /// hop log (obs/journey.h) and the critical-path report derived from it
  /// (obs/critical_path.h) — last/p99 traced packets with their
  /// distance-vs-wait decomposition and the bound-gap block. ToJson emits
  /// the report (the raw log goes to JSONL/Perfetto sinks instead).
  std::shared_ptr<const JourneyLog> journeys;
  std::shared_ptr<const CriticalPathReport> critical_path;

  std::string ToString() const;

  /// Serializes every field (plus derived link_utilization and overshoot
  /// summary) as one JSON object.
  std::string ToJson() const;
  void WriteJson(JsonWriter& w) const;

  /// Folds this run's counters into an open trace span (steps, moves,
  /// max queue, max overshoot). No-op on a null span.
  void RecordTo(Span& span) const;

  /// Combines phase results: steps/moves add, queue/overshoot take max.
  void Accumulate(const RouteResult& phase);
};

}  // namespace mdmesh
