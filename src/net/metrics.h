// Measurements produced by a routing run. These are the quantities the
// paper's theorems bound: step counts (vs. cD + o(n)), per-packet overshoot
// (arrival time minus source-destination distance, the "distance-optimality"
// of Section 2.2), and queue occupancy (the multi-packet model's O(1)).
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.h"

namespace mdmesh {

struct RouteResult {
  std::int64_t steps = 0;       ///< steps until the last packet arrived
  std::int64_t moves = 0;       ///< total packet-moves over all links/steps
  std::int64_t max_queue = 0;   ///< max packets resident at one processor
  std::int64_t packets = 0;     ///< number of packets routed
  std::int64_t links = 0;       ///< directed links in the network
  bool completed = true;        ///< false if the step cap was hit

  /// Fraction of directed-link-steps that carried a packet — how close the
  /// run came to saturating the network's wire capacity.
  double LinkUtilization() const {
    return steps > 0 && links > 0
               ? static_cast<double>(moves) /
                     (static_cast<double>(steps) * static_cast<double>(links))
               : 0.0;
  }

  /// Max over packets of dist(src, dest) — the per-run distance bound.
  std::int64_t max_distance = 0;

  /// Per-packet overshoot = arrival_step - dist(src, dest). A run is
  /// distance-optimal when max overshoot is o(n).
  Accumulator overshoot;
  std::int64_t max_overshoot = 0;

  std::string ToString() const;

  /// Combines phase results: steps/moves add, queue/overshoot take max.
  void Accumulate(const RouteResult& phase);
};

}  // namespace mdmesh
