// Measurements produced by a routing run. These are the quantities the
// paper's theorems bound: step counts (vs. cD + o(n)), per-packet overshoot
// (arrival time minus source-destination distance, the "distance-optimality"
// of Section 2.2), and queue occupancy (the multi-packet model's O(1)).
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "util/stats.h"

namespace mdmesh {

struct RouteResult {
  std::int64_t steps = 0;       ///< steps until the last packet arrived
  std::int64_t moves = 0;       ///< total packet-moves over all links/steps
  std::int64_t max_queue = 0;   ///< max packets resident at one processor
  std::int64_t packets = 0;     ///< number of packets routed
  std::int64_t links = 0;       ///< directed links in the network
  bool completed = true;        ///< false if the step cap was hit

  /// Fraction of directed-link-steps that carried a packet — how close the
  /// run came to saturating the network's wire capacity. Always in [0, 1]:
  /// degenerate runs (no steps, no links, nothing moved) report 0, and the
  /// product steps*links is formed in double so huge runs cannot overflow
  /// the int64 intermediate.
  double LinkUtilization() const {
    if (steps <= 0 || links <= 0 || moves <= 0) return 0.0;
    const double capacity =
        static_cast<double>(steps) * static_cast<double>(links);
    const double util = static_cast<double>(moves) / capacity;
    return util < 1.0 ? util : 1.0;
  }

  /// Max over packets of dist(src, dest) — the per-run distance bound.
  std::int64_t max_distance = 0;

  /// Per-packet overshoot = arrival_step - dist(src, dest). A run is
  /// distance-optimal when max overshoot is o(n).
  Accumulator overshoot;
  std::int64_t max_overshoot = 0;

  std::string ToString() const;

  /// Serializes every field (plus derived link_utilization and overshoot
  /// summary) as one JSON object.
  std::string ToJson() const;
  void WriteJson(JsonWriter& w) const;

  /// Folds this run's counters into an open trace span (steps, moves,
  /// max queue, max overshoot). No-op on a null span.
  void RecordTo(Span& span) const;

  /// Combines phase results: steps/moves add, queue/overshoot take max.
  void Accumulate(const RouteResult& phase);
};

}  // namespace mdmesh
