// Cycle-accurate synchronous routing engine (paper, Sections 1 and 2.2).
//
// Model: in one step every processor may transmit one packet across each of
// its <= 2d directed outgoing links. Packets follow the *extended greedy*
// scheme: a packet of class c corrects dimensions in the rotated order
// c, c+1 mod d, ..., c-1 mod d, moving one hop per step toward its
// destination coordinate (shorter way on tori, ties resolved to +1). When
// several resident packets want the same outgoing link, the one with the
// farthest remaining distance wins (ties broken by smaller packet id), which
// is the paper's contention rule.
//
// Execution strategy — two byte-identical traversal modes:
//
//  * Dense sweep: every processor is visited each step.
//
//  * Sparse active set: when occupancy drops below
//    EngineOptions::sparse_threshold, the engine iterates only over the
//    set of processors holding in-flight packets (maintained
//    incrementally) plus the one-hop halo that receives traffic, skipping
//    the ~90% of the mesh that sits idle during drain phases.
//
// Delivery goes through a receiver-indexed mailbox: the bid pass copies
// each winning packet into its receiver's 2d-entry row and sets the
// matching presence byte (each directed link has a unique writer, so the
// scatter is race-free), and the commit pass is then fully local — it
// compacts the processor's own queue in place and appends the incomers
// from its own contiguous row, touching no neighbor state. That removes
// both the per-step double buffer (and its per-queue swaps) and the 2d
// scattered neighbor-slot probes per processor.
//
// Because a commit is p-local, the engine pipelines steps: one pass over
// the commit set performs commit(S) and immediately bids step S+1 from the
// still-hot queue, so each processor is traversed once per step instead of
// once per phase — with no mid-step barrier at all. The mailbox is
// double-buffered by step parity (bids for step S write buffer S mod 2),
// which makes the pipelined scatter safe: a neighbor's early bid for S+1
// can never clobber an unconsumed step-S entry. Under an active
// InvariantChecker the engine instead runs the plain two-phase step
// (bid, CheckSlots, commit) so per-phase diagnostics keep their ordering.
//
// Both paths produce identical winner slots and identical queue contents
// (including order) at every step, for any thread count — the contention
// rule, extended-greedy order, and detour policy are shared code; only the
// traversal differs. Per-step counters accumulate into per-worker scratch
// arenas (no atomics, no per-step allocations) and are reduced by the
// coordinator, which also keeps the reduction order fixed.
//
// Fault injection (fault/fault_plan.h): when a FaultPlan is attached, a dead
// directed link transmits nothing that step, and packets route around
// permanent damage with an adaptive detour policy — preferred hop first,
// then the other uncorrected dimensions, then (torus-aware) the long way
// around, then a sidestep through an already-corrected dimension; a
// slack-driven rotation of the fallback order breaks detour cycles. A stall
// watchdog aborts with a structured StallReport instead of burning to the
// step cap when nothing moves for a whole window, and an opt-in
// InvariantChecker (net/invariants.h) validates conservation, link capacity,
// and active-set exactness per step. The fault-free hot path is untouched:
// with no plan (or an empty one) the engine behaves byte-identically to a
// fault-unaware one.
//
// Open-loop injection (workload/): when EngineOptions::injector is set,
// Route runs a continuous-traffic loop instead of the one-shot drain — the
// injector appends packets at the start of every step, delivered packets
// are handed back through StepInjector::OnDeliver and retired so memory
// stays bounded, and the run ends when the injector says so (see the
// StepInjector contract below). Injector-driven runs use the unfused
// two-phase step (newly injected processors merge into the sparse active
// set between steps); with no injector configured, Route is byte-identical
// to an engine without injection support.
//
// The engine is deterministic: identical inputs give identical step counts
// and final placements regardless of thread count (each directed link has a
// unique writer, so the parallel update is race-free by construction).
//
// Checkpoint/resume (net/engine_state.h, ckpt/): when
// EngineOptions::checkpoint is set, the engine snapshots its full state at
// clean step boundaries (on the sink's cadence and on every abort) and
// Engine::Resume continues a run from such a snapshot, byte-identical to
// the uninterrupted run. Checkpointing runs use the unfused two-phase step;
// with no sink, Route is byte-identical to an engine without checkpoint
// support and pays nothing. See the CheckpointSink contract in
// net/engine_state.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "net/engine_state.h"
#include "net/invariants.h"
#include "net/metrics.h"
#include "net/network.h"
#include "obs/flight_recorder.h"
#include "obs/journey.h"
#include "obs/probe.h"
#include "obs/registry.h"
#include "util/thread_pool.h"

namespace mdmesh {

/// Traversal policy for the step loop. Both paths are byte-identical in
/// routing behavior; kAlways/kNever exist for differential testing and for
/// benchmarking the crossover.
enum class SparseMode : std::uint8_t {
  kAuto,    ///< sparse once occupancy drops below sparse_threshold
  kAlways,  ///< force the active-set path from the first step
  kNever,   ///< force the dense full-mesh sweep
};

/// Packet-storage layout for the step loop (see net/tile_arena.h for the
/// tiled layout). Both layouts produce byte-identical delivery traces —
/// pinned by the equality harness in tests/test_engine_tiled.cpp; they
/// differ only in memory footprint and throughput.
enum class LayoutMode : std::uint8_t {
  kAuto,    ///< tiled on meshes with >= kTiledAutoThreshold processors
  kLegacy,  ///< per-processor InlineVec queues in the Network (the seed path)
  kTiled,   ///< tiled SoA arena with sharded mailboxes and halo exchange
};

/// LayoutMode::kAuto switches to the tiled layout at this processor count —
/// the point where the legacy layout's O(N) queue directory stops fitting
/// in cache and its footprint starts to dominate RSS.
inline constexpr std::int64_t kTiledAutoThreshold = 65536;

/// Verdict returned by StepInjector::Inject for one step.
enum class InjectAction : std::uint8_t {
  kContinue,  ///< keep going: Inject is called again next step
  kDrain,     ///< stop injecting; route until every packet is delivered
  kStop,      ///< end the run after this step (undelivered packets remain)
};

/// Open-loop per-step packet injection (workload/driver.h ships the standard
/// Bernoulli driver). Attached via EngineOptions::injector.
///
/// Contract:
///  * Inject(step, out) runs once per step on the coordinator thread, before
///    the step's bids; appended (source, packet) pairs enter the source
///    queue immediately and may move that very step. The injector fills
///    id/dest/klass (ids unique — they break contention ties); the engine
///    overwrites dist0/arrived/flags and stamps the injection step into
///    Packet::tag, so latency = arrived - tag + 1. Packets preloaded in the
///    Network before Route are stamped tag = 1. A packet injected at its own
///    destination is handed straight to OnDeliver (latency 0) without
///    entering a queue. Because tag is repurposed for the injection step,
///    two-leg (kTwoLeg) packets are not supported in injector runs — the
///    flag is stripped on injection.
///  * OnDeliver(pkt, step) runs on the coordinator for every delivered
///    packet — ascending processor order, queue order within a processor —
///    after which the packet is retired from the network, keeping memory
///    bounded on continuous runs. Final queue contents therefore hold only
///    undelivered packets, unlike a plain Route call.
///  * After Inject returns kDrain it is never called again and the engine
///    routes until the network drains (or the step cap); kStop ends the run
///    once the current step commits.
///  * Injector-driven runs use the unfused two-phase step (dense or sparse
///    per SparseMode — newly injected processors join the sparse active
///    set) and bypass the InvariantChecker; results are identical for any
///    thread count and sparse mode. When opts.step_cap is 0 the cap is
///    effectively unbounded: the injector owns termination.
class StepInjector {
 public:
  virtual ~StepInjector() = default;

  /// Append this step's arrivals to `out` (cleared by the caller; entries
  /// are (source processor, packet)). Return what the engine should do next.
  virtual InjectAction Inject(std::int64_t step,
                              std::vector<std::pair<ProcId, Packet>>* out) = 0;

  /// Called once per delivered packet just before it is retired.
  virtual void OnDeliver(const Packet& pkt, std::int64_t step) {
    (void)pkt;
    (void)step;
  }

  /// Checkpoint support: serialize the injector's full state into `out`
  /// (cleared first) / restore it from a snapshot taken by SaveState.
  /// The engine calls SaveState at every checkpoint and RestoreState once
  /// in Resume, both at clean step boundaries, so an injector only has to
  /// round-trip its between-steps state (RNG streams, window cursors,
  /// histograms). RestoreState returns false on a malformed blob; Resume
  /// turns that into a structured failure instead of resuming silently.
  /// The defaults suit stateless injectors.
  virtual void SaveState(std::vector<std::uint8_t>* out) const {
    out->clear();
  }
  virtual bool RestoreState(const std::uint8_t* data, std::size_t size) {
    (void)data;
    return size == 0;
  }
};

struct EngineOptions {
  /// Hard stop; 0 means "auto" (scaled from diameter and load, generous
  /// enough for every algorithm in the paper; hitting it means a bug and is
  /// reported via RouteResult::completed = false plus a StallReport).
  std::int64_t step_cap = 0;

  /// Thread pool; nullptr uses ThreadPool::Global().
  ThreadPool* pool = nullptr;

  /// Optional per-step callback, called after every step with
  /// (step, packets still in flight, arrivals during this step). Adds no
  /// cost when unset. For richer per-step data (per-dimension link moves,
  /// queue histograms) attach a StepProbe instead.
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> observer;

  /// Optional rich per-step probe (obs/probe.h). When attached, the engine
  /// additionally collects per-dimension directed-link move counts and — if
  /// the probe asks for it — a queue-occupancy histogram each step. Costs
  /// nothing when null: every probe-conditional piece of the step loop is
  /// behind a single null check hoisted out of the loop.
  StepProbe* probe = nullptr;

  /// Optional fault plan (must be built on the same topology; outlives the
  /// engine). Null or empty leaves the fault-free hot path byte-identical.
  const FaultPlan* faults = nullptr;

  /// Stall watchdog window: abort with a StallReport after this many
  /// consecutive steps in which no packet moved and no scheduled fault
  /// event fired. 0 picks an automatic window (generous against the plan's
  /// longest flap); < 0 disables the watchdog. A fault-free run always
  /// moves at least one packet per step, so the watchdog never fires there.
  std::int64_t stall_window = 0;

  /// Per-step invariant checking (net/invariants.h). kAuto enables it in
  /// debug builds (NDEBUG undefined) and disables it otherwise.
  InvariantMode invariants = InvariantMode::kAuto;

  /// Step-loop traversal policy (see SparseMode).
  SparseMode sparse = SparseMode::kAuto;

  /// Packet-storage layout (see LayoutMode). kAuto picks the tiled arena on
  /// topologies with >= kTiledAutoThreshold processors and the legacy
  /// per-processor queues below that. The tiled layout requires the
  /// invariant checker to be off (it validates legacy storage directly);
  /// when a checker is active the engine falls back to legacy and the
  /// differential tests still pass — the layouts are trace-identical.
  LayoutMode layout = LayoutMode::kAuto;

  /// With SparseMode::kAuto, run the sparse path once the number of
  /// in-flight packets drops to <= sparse_threshold * N (in-flight packets
  /// upper-bound the occupied processors). Near-full phases keep the dense
  /// sweep; drain tails switch over. Clamped to [0, 1]; 0 never goes
  /// sparse, 1 goes sparse as soon as occupancy allows.
  double sparse_threshold = 0.5;

  /// Optional open-loop injection hook (see the StepInjector contract
  /// above; must outlive the engine). Null keeps Route byte-identical to an
  /// engine without injection support.
  StepInjector* injector = nullptr;

  /// Optional metrics registry (obs/registry.h). When set, every Route call
  /// folds its run totals into named engine.* counters/gauges (routes,
  /// steps, moves, packets, detours, sparse steps, fault events, stall
  /// reasons, peak queue/active-set gauges). Recording happens once per
  /// Route, never per step, so the hot loop is untouched; null costs one
  /// pointer check per call. Tiled-layout runs additionally refresh the
  /// engine.tiles_allocated / engine.tiles_peak gauges and the
  /// engine.halo_bytes counter once per step (coordinator-side, O(1)), so
  /// a live /metrics scrape sees the arena's occupancy as it moves.
  MetricsRegistry* metrics = nullptr;

  /// Optional black-box flight recorder (obs/flight_recorder.h). When set,
  /// the coordinator appends one fixed-size FlightRecord per step into the
  /// recorder's preallocated ring (no allocations, no locks), stamps the
  /// engine manifest, and — when the recorder has a dump path — dumps the
  /// ring as a JSON artifact on watchdog abort, step-cap abort, invariant
  /// failure, or a pending SIGINT/SIGTERM (polled once per step only while
  /// a recorder is attached; aborts with StallReason::kInterrupt). The
  /// StallReport embeds the ring's tail either way. Null costs nothing.
  FlightRecorder* recorder = nullptr;

  /// Optional checkpoint sink (contract in net/engine_state.h). When set,
  /// the engine runs the unfused two-phase step loop (identical results,
  /// pinned by the sparse/dense/fused equality tests), polls Due() after
  /// every completed step, snapshots on demand, and emits a final snapshot
  /// on watchdog/step-cap/SIGINT-SIGTERM aborts. The SIGINT/SIGTERM flag
  /// is polled per step whenever a sink or a recorder is attached. Null
  /// leaves the fused hot path byte-identical and untouched. Excluded from
  /// HashEngineOptions like every observability hook — checkpointing never
  /// changes results, so a checkpointed run can resume without a sink and
  /// vice versa.
  CheckpointSink* checkpoint = nullptr;

  /// Optional packet-journey tracer (obs/journey.h). When set, every Route
  /// records one compact event per step of every sampled packet's life —
  /// injection, each link crossed, each lost bid, each dead-link hold —
  /// from all three engine paths (fused, unfused, tiled), and the epilogue
  /// attaches the finalized JourneyLog plus a CriticalPathReport to the
  /// RouteResult. Traces are byte-identical for any thread count, layout,
  /// and traversal mode (sampling is a pure function of packet id; events
  /// sort on their unique (id, step) key). Null keeps the hot paths
  /// byte-identical and untouched. Excluded from HashEngineOptions like
  /// every observability hook — tracing never changes results, so a
  /// checkpointed run can resume with or without it.
  JourneyTracer* journeys = nullptr;
};

/// FNV-1a over the routing-relevant options: step cap, sparse policy and
/// threshold, stall window, invariant mode, layout, fault-plan presence,
/// injector presence. Identical hashes mean two runs routed under the same
/// engine configuration (thread count excluded — it never changes results).
/// The layout is mixed as *configured* (kAuto stays kAuto), so a checkpoint
/// resumes only under the same configured layout — conservative, since the
/// layouts are trace-identical, but it keeps resume refusal simple.
std::uint64_t HashEngineOptions(const EngineOptions& opts);

const char* SparseModeName(SparseMode mode);
const char* LayoutModeName(LayoutMode mode);

/// Fills a RunManifest (obs/manifest.h) from a live engine configuration:
/// topology shape, worker threads, build type, sparse mode, options hash.
/// Seed and binary are left for the caller — the engine does not know them.
RunManifest MakeRunManifest(const Topology& topo, const EngineOptions& opts);

/// Per-worker scratch arena: step counters and reusable buffers, reset by
/// the coordinator each step and reduced after the dispatch returns.
/// Cache-line aligned so two workers never share a line. Namespace-scope so
/// the tiled step machinery (net/engine_tiled.h) accumulates into the same
/// arenas as the legacy paths — the coordinator's reduction is shared.
struct alignas(64) EngineWorkerScratch {
  std::int64_t arrivals = 0;
  std::int64_t moves = 0;
  std::int64_t detours = 0;
  std::int64_t qmax = 0;
  std::vector<std::int64_t> dir_moves;  // 2d entries; empty without probe
  std::vector<ProcId> receivers;        // sparse bid output (reused)
  /// Journey-event buffer (empty without a tracer): workers append here
  /// during bid/commit; the coordinator drains it into the tracer after
  /// each step's reduction. NOT cleared by the per-step scratch reset.
  std::vector<JourneyEvent> events;
};

class TiledEngine;

class Engine {
 public:
  /// Throws std::invalid_argument if opts.faults targets a different
  /// topology shape.
  explicit Engine(const Topology& topo, EngineOptions opts = {});

  /// Out-of-line so unique_ptr<TiledEngine> destroys a complete type.
  ~Engine();

  const Topology& topo() const { return *topo_; }

  /// Routes every packet in `net` to its `dest` processor. On return the
  /// packets sit in their destinations' queues with `arrived` filled in.
  /// Packets already at their destination stay put (arrived = 0).
  RouteResult Route(Network& net);

  /// Continues a run from a checkpoint snapshot. `net`'s contents are
  /// replaced by the snapshot's queues; the step loop then resumes at
  /// state.step + 1 and the returned RouteResult covers the whole run
  /// (pre-crash steps included). The resumed trace is byte-identical to
  /// the uninterrupted run for any thread count and sparse mode.
  ///
  /// Requirements (std::invalid_argument otherwise): the snapshot's
  /// topology shape and options hash match this engine, injector presence
  /// matches (and the injector accepts its state blob), and the fault
  /// cursor is within this plan's event schedule. The engine's own
  /// checkpoint sink keeps working on a resumed run, so a crash-restart
  /// cycle can repeat indefinitely.
  RouteResult Resume(Network& net, const EngineCheckpointState& state);

 private:
  /// Shared step-loop body: `resume` == nullptr is a fresh Route;
  /// otherwise loop cursors and accumulators are restored from the
  /// snapshot and per-packet initialization is skipped.
  RouteResult RouteInternal(Network& net,
                            const EngineCheckpointState* resume);
  using WorkerScratch = EngineWorkerScratch;

  /// Winner selection for one processor (step `step`, mailbox buffer
  /// `parity` = step & 1): picks the farthest-first winner per outgoing
  /// link into stack-local arrays, marks winners kMoving, and scatters each
  /// winning packet (plus its presence byte) into the receiver's mailbox
  /// row. kSparse additionally records the receivers into `s->receivers`
  /// for active-set maintenance; kRecordSlots additionally publishes the
  /// winner indices to the processor's slot_ row for CheckSlots (checker
  /// path only — the routing never reads a foreign slot row). `queues` is
  /// the network's queue array, hoisted out of the per-processor loop.
  template <bool kFaults, bool kSparse, bool kRecordSlots>
  void BidProc(PacketQueue* queues, ProcId p, std::int64_t step, int parity,
               WorkerScratch* s);

  template <bool kFaults, bool kRecordSlots>
  void StepPhaseA(PacketQueue* queues, std::int64_t step, int parity,
                  std::int64_t begin, std::int64_t end, WorkerScratch* s);

  /// Delivery for one processor, fully local: compacts the stayers of
  /// queues[p] in place and appends the incomers from p's own mailbox row
  /// in buffer `parity` (consuming the presence bytes), accumulating
  /// counters into `s`. Returns true if the queue still holds an in-flight
  /// packet (active-set maintenance).
  bool CommitProc(PacketQueue* queues, ProcId p, std::int32_t now,
                  bool count_dirs, int parity, WorkerScratch& s);

  // Unfused two-phase steps: bid, (CheckSlots), commit. Used under an
  // active InvariantChecker — which needs the full winner table between
  // the phases — and, with checker == nullptr, by injector-driven runs,
  // where the per-step injection and delivery retirement need a clean
  // step boundary. The fused pipeline lives in Route itself.
  void DenseStep(Network& net, std::int64_t step, std::int32_t now,
                 bool count_dirs, InvariantChecker* checker);
  void SparseStep(Network& net, std::int64_t step, std::int32_t now,
                  bool count_dirs, InvariantChecker* checker);

  /// Scans the network for processors holding in-flight packets.
  void RebuildActiveSet(Network& net);

  /// Dense-to-sparse transition for the fused pipeline: rebuilds touched_
  /// as every processor holding an in-flight packet (movers included) or a
  /// pending mailbox entry in buffer `parity`. O(N), runs once per switch.
  void RebuildTouched(Network& net, int parity);

  std::shared_ptr<StallReport> BuildStallReport(const Network& net,
                                                StallReason reason,
                                                std::int64_t step,
                                                std::int64_t no_progress) const;

  const Topology* topo_;
  EngineOptions opts_;
  int d_;
  int n_;
  std::vector<std::int32_t> coords_;        // N x d coordinate table
  std::vector<std::int32_t> nbr_;           // N x 2d neighbor table (-1: none)
  std::vector<std::int32_t> slot_;          // N x 2d winner queue-index
                                            // (checker diagnostics only)

  // Receiver mailbox, double-buffered by step parity: bids for step S write
  // buffer S & 1, so the fused pipeline's early bids for S+1 never clobber
  // an unconsumed step-S entry. in_pkt_ holds 2 x N x 2d packet entries;
  // presence lives in in_mask_ (2 x N x mask_stride_ bytes, rows padded to
  // a multiple of 8 so emptiness is a couple of aligned 8-byte loads).
  std::vector<Packet> in_pkt_;
  std::vector<std::uint8_t> in_mask_;
  std::size_t mask_stride_ = 0;
  // Set when a Route call aborts (step cap / watchdog) with the pipeline's
  // speculative next-step bids already scattered; the next Route clears the
  // mask instead of every call paying for it.
  bool mailbox_dirty_ = false;

  std::vector<WorkerScratch> scratch_;      // per-worker arenas

  // Sparse-path state: active_ lists exactly the processors with in-flight
  // packets (ascending). slots_clean_ tracks whether every slot_ entry
  // outside the current bid set is -1 — only the InvariantChecker needs
  // that global invariant (CheckSlots scans all rows); the routing itself
  // never reads another processor's slot row.
  std::vector<ProcId> active_;
  std::vector<ProcId> touched_;             // active + receivers, ascending
  std::vector<std::uint8_t> touched_inflight_;
  std::vector<std::uint64_t> touched_bits_;  // dedup bitmap, N/64 words
  bool slots_clean_ = false;

  // Shared by every RouteResult this engine produces (S6: artifacts are
  // self-describing). Built once in the constructor; assigning it per Route
  // is a refcount bump, not a serialization.
  std::shared_ptr<const RunManifest> manifest_;

  // Tiled layout (net/engine_tiled.h): resolved once in the constructor
  // from opts_.layout, the topology size, and invariant-checker state.
  // When use_tiled_ is set, the legacy-only arrays (coords_, slot_,
  // mailbox, sparse sets) stay empty and RouteInternal takes the tiled
  // branch.
  bool use_tiled_ = false;
  std::unique_ptr<TiledEngine> tiled_;

  // Fault state (empty vectors when no plan is attached).
  bool have_faults_ = false;
  std::vector<std::uint8_t> link_dead_perm_;     // permanent dead mask
  std::vector<std::uint8_t> link_dead_;          // current per-step mask
  std::vector<std::int32_t> flap_count_;         // active flaps per link
  std::vector<FaultPlan::FlapEvent> events_;     // sorted flap schedule
};

}  // namespace mdmesh
