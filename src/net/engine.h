// Cycle-accurate synchronous routing engine (paper, Sections 1 and 2.2).
//
// Model: in one step every processor may transmit one packet across each of
// its <= 2d directed outgoing links. Packets follow the *extended greedy*
// scheme: a packet of class c corrects dimensions in the rotated order
// c, c+1 mod d, ..., c-1 mod d, moving one hop per step toward its
// destination coordinate (shorter way on tori, ties resolved to +1). When
// several resident packets want the same outgoing link, the one with the
// farthest remaining distance wins (ties broken by smaller packet id), which
// is the paper's contention rule.
//
// Fault injection (fault/fault_plan.h): when a FaultPlan is attached, a dead
// directed link transmits nothing that step, and packets route around
// permanent damage with an adaptive detour policy — preferred hop first,
// then the other uncorrected dimensions, then (torus-aware) the long way
// around, then a sidestep through an already-corrected dimension; a
// slack-driven rotation of the fallback order breaks detour cycles. A stall
// watchdog aborts with a structured StallReport instead of burning to the
// step cap when nothing moves for a whole window, and an opt-in
// InvariantChecker (net/invariants.h) validates conservation and link
// capacity per step. The fault-free hot path is untouched: with no plan (or
// an empty one) the engine behaves byte-identically to a fault-unaware one.
//
// The engine is deterministic: identical inputs give identical step counts
// and final placements regardless of thread count (each directed link has a
// unique writer, so the parallel update is race-free by construction).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "net/invariants.h"
#include "net/metrics.h"
#include "net/network.h"
#include "obs/probe.h"
#include "util/thread_pool.h"

namespace mdmesh {

struct EngineOptions {
  /// Hard stop; 0 means "auto" (scaled from diameter and load, generous
  /// enough for every algorithm in the paper; hitting it means a bug and is
  /// reported via RouteResult::completed = false plus a StallReport).
  std::int64_t step_cap = 0;

  /// Thread pool; nullptr uses ThreadPool::Global().
  ThreadPool* pool = nullptr;

  /// Optional per-step callback, called after every step with
  /// (step, packets still in flight, arrivals during this step). Adds no
  /// cost when unset. For richer per-step data (per-dimension link moves,
  /// queue histograms) attach a StepProbe instead.
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> observer;

  /// Optional rich per-step probe (obs/probe.h). When attached, the engine
  /// additionally collects per-dimension directed-link move counts and — if
  /// the probe asks for it — a queue-occupancy histogram each step. Costs
  /// nothing when null.
  StepProbe* probe = nullptr;

  /// Optional fault plan (must be built on the same topology; outlives the
  /// engine). Null or empty leaves the fault-free hot path byte-identical.
  const FaultPlan* faults = nullptr;

  /// Stall watchdog window: abort with a StallReport after this many
  /// consecutive steps in which no packet moved and no scheduled fault
  /// event fired. 0 picks an automatic window (generous against the plan's
  /// longest flap); < 0 disables the watchdog. A fault-free run always
  /// moves at least one packet per step, so the watchdog never fires there.
  std::int64_t stall_window = 0;

  /// Per-step invariant checking (net/invariants.h). kAuto enables it in
  /// debug builds (NDEBUG undefined) and disables it otherwise.
  InvariantMode invariants = InvariantMode::kAuto;
};

class Engine {
 public:
  /// Throws std::invalid_argument if opts.faults targets a different
  /// topology shape.
  explicit Engine(const Topology& topo, EngineOptions opts = {});

  const Topology& topo() const { return *topo_; }

  /// Routes every packet in `net` to its `dest` processor. On return the
  /// packets sit in their destinations' queues with `arrived` filled in.
  /// Packets already at their destination stay put (arrived = 0).
  RouteResult Route(Network& net);

 private:
  template <bool kFaults>
  void StepPhaseA(Network& net, std::int64_t step, std::int64_t begin,
                  std::int64_t end);

  std::shared_ptr<StallReport> BuildStallReport(const Network& net,
                                                StallReason reason,
                                                std::int64_t step,
                                                std::int64_t no_progress) const;

  const Topology* topo_;
  EngineOptions opts_;
  int d_;
  int n_;
  std::vector<std::int32_t> coords_;        // N x d coordinate table
  std::vector<std::int32_t> slot_;          // N x 2d winner queue-index
  std::vector<std::int64_t> slot_prio_;     // N x 2d winner priority
  std::vector<PacketQueue> next_;           // double buffer for queues

  // Fault state (empty vectors when no plan is attached).
  bool have_faults_ = false;
  std::vector<std::uint8_t> link_dead_perm_;     // permanent dead mask
  std::vector<std::uint8_t> link_dead_;          // current per-step mask
  std::vector<std::int32_t> flap_count_;         // active flaps per link
  std::vector<FaultPlan::FlapEvent> events_;     // sorted flap schedule
};

}  // namespace mdmesh
