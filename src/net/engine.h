// Cycle-accurate synchronous routing engine (paper, Sections 1 and 2.2).
//
// Model: in one step every processor may transmit one packet across each of
// its <= 2d directed outgoing links. Packets follow the *extended greedy*
// scheme: a packet of class c corrects dimensions in the rotated order
// c, c+1 mod d, ..., c-1 mod d, moving one hop per step toward its
// destination coordinate (shorter way on tori, ties resolved to +1). When
// several resident packets want the same outgoing link, the one with the
// farthest remaining distance wins (ties broken by smaller packet id), which
// is the paper's contention rule.
//
// The engine is deterministic: identical inputs give identical step counts
// and final placements regardless of thread count (each directed link has a
// unique writer, so the parallel update is race-free by construction).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/metrics.h"
#include "net/network.h"
#include "obs/probe.h"
#include "util/thread_pool.h"

namespace mdmesh {

struct EngineOptions {
  /// Hard stop; 0 means "auto" (scaled from diameter and load, generous
  /// enough for every algorithm in the paper; hitting it means a bug and is
  /// reported via RouteResult::completed = false).
  std::int64_t step_cap = 0;

  /// Thread pool; nullptr uses ThreadPool::Global().
  ThreadPool* pool = nullptr;

  /// Optional per-step callback, called after every step with
  /// (step, packets still in flight, arrivals during this step). Adds no
  /// cost when unset. For richer per-step data (per-dimension link moves,
  /// queue histograms) attach a StepProbe instead.
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> observer;

  /// Optional rich per-step probe (obs/probe.h). When attached, the engine
  /// additionally collects per-dimension directed-link move counts and — if
  /// the probe asks for it — a queue-occupancy histogram each step. Costs
  /// nothing when null.
  StepProbe* probe = nullptr;
};

class Engine {
 public:
  explicit Engine(const Topology& topo, EngineOptions opts = {});

  const Topology& topo() const { return *topo_; }

  /// Routes every packet in `net` to its `dest` processor. On return the
  /// packets sit in their destinations' queues with `arrived` filled in.
  /// Packets already at their destination stay put (arrived = 0).
  RouteResult Route(Network& net);

 private:
  void StepPhaseA(Network& net, std::int64_t begin, std::int64_t end);

  const Topology* topo_;
  EngineOptions opts_;
  int d_;
  int n_;
  std::vector<std::int32_t> coords_;        // N x d coordinate table
  std::vector<std::int32_t> slot_;          // N x 2d winner queue-index
  std::vector<std::int64_t> slot_prio_;     // N x 2d winner priority
  std::vector<PacketQueue> next_;           // double buffer for queues
};

}  // namespace mdmesh
