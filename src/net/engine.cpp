#include "net/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace mdmesh {
namespace {

/// Queue-occupancy histogram resolution for StepProbe snapshots. Measured
/// maxima stay single-digit (the multi-packet model's O(1)); longer queues
/// clamp into the last bucket and show up as overflow.
constexpr std::size_t kQueueHistBuckets = 64;

/// Finds the next hop for a packet at coordinates `cp` heading to `dc`,
/// visiting dimensions in the rotated order starting at `klass`. Returns the
/// remaining distance; sets dim/dir to the first uncorrected dimension, or
/// dim = -1 if the packet is at its destination.
std::int64_t NextHop(const std::int32_t* cp, const std::int32_t* dc, int d,
                     int n, bool torus, std::uint16_t klass, int& dim,
                     int& dir) {
  std::int64_t rem = 0;
  dim = -1;
  dir = 0;
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    const std::int32_t c = cp[i];
    const std::int32_t g = dc[i];
    if (c == g) continue;
    std::int64_t dist;
    int step;
    if (torus) {
      std::int64_t forward = Mod(g - c, n);
      if (forward <= n - forward) {
        dist = forward;
        step = 1;
      } else {
        dist = n - forward;
        step = -1;
      }
    } else {
      dist = AbsDiff(c, g);
      step = g > c ? 1 : -1;
    }
    rem += dist;
    if (dim < 0) {
      dim = i;
      dir = step > 0 ? 1 : 0;
    }
  }
  return rem;
}

}  // namespace

Engine::Engine(const Topology& topo, EngineOptions opts)
    : topo_(&topo),
      opts_(opts),
      d_(topo.dim()),
      n_(topo.side()),
      coords_(topo.BuildCoordTable()),
      slot_(static_cast<std::size_t>(topo.size()) * static_cast<std::size_t>(2 * topo.dim())),
      slot_prio_(slot_.size()),
      next_(static_cast<std::size_t>(topo.size())) {
  if (opts_.pool == nullptr) opts_.pool = &ThreadPool::Global();
}

void Engine::StepPhaseA(Network& net, std::int64_t begin, std::int64_t end) {
  const bool torus = topo_->torus();
  const auto links = static_cast<std::size_t>(2 * d_);
  auto& queues = net.queues();
  for (ProcId p = begin; p < end; ++p) {
    const std::size_t base = static_cast<std::size_t>(p) * links;
    for (std::size_t l = 0; l < links; ++l) {
      slot_[base + l] = -1;
      slot_prio_[base + l] = -1;
    }
    auto& q = queues[static_cast<std::size_t>(p)];
    if (q.empty()) continue;
    const std::int32_t* cp = &coords_[static_cast<std::size_t>(p) * static_cast<std::size_t>(d_)];
    for (std::size_t k = 0; k < q.size(); ++k) {
      Packet& pkt = q[k];
      if (pkt.dest == p) continue;
      int dim, dir;
      std::int64_t rem = NextHop(
          cp, &coords_[static_cast<std::size_t>(pkt.dest) * static_cast<std::size_t>(d_)],
          d_, n_, torus, pkt.klass, dim, dir);
      assert(dim >= 0);
      // Farthest-first priority counts the full remaining path of a
      // two-leg packet, not just the current leg.
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        rem += topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
      }
      const std::size_t l = base + static_cast<std::size_t>(dim * 2 + dir);
      const auto cur = slot_[l];
      // Farthest remaining distance wins; ties to the smaller packet id.
      if (cur < 0 || rem > slot_prio_[l] ||
          (rem == slot_prio_[l] && pkt.id < q[static_cast<std::size_t>(cur)].id)) {
        slot_[l] = static_cast<std::int32_t>(k);
        slot_prio_[l] = rem;
      }
    }
    for (std::size_t l = 0; l < links; ++l) {
      if (slot_[base + l] >= 0) {
        q[static_cast<std::size_t>(slot_[base + l])].flags |= Packet::kMoving;
      }
    }
  }
}

RouteResult Engine::Route(Network& net) {
  RouteResult result;
  const ProcId N = topo_->size();
  const auto links = static_cast<std::size_t>(2 * d_);
  auto& queues = net.queues();

  // Initialize per-packet measurement state. Two-leg packets (overlapped
  // routing) count their full path as the distance; a zero-length first leg
  // retargets immediately.
  std::int64_t in_flight = 0;  // packets not yet at their final destination
  for (ProcId p = 0; p < N; ++p) {
    for (Packet& pkt : queues[static_cast<std::size_t>(p)]) {
      pkt.flags &= static_cast<std::uint16_t>(~Packet::kMoving);
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        pkt.dist0 = static_cast<std::int32_t>(
            topo_->Dist(p, pkt.dest) +
            topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag)));
        if (pkt.dest == p) {
          pkt.dest = static_cast<ProcId>(pkt.tag);
          pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
        }
      } else {
        pkt.dist0 = static_cast<std::int32_t>(topo_->Dist(p, pkt.dest));
      }
      pkt.arrived = pkt.dest == p ? 0 : -1;
      if (pkt.dest != p) ++in_flight;
      result.max_distance = std::max<std::int64_t>(result.max_distance, pkt.dist0);
      ++result.packets;
    }
  }
  result.max_queue = net.MaxQueue();
  // Directed links: 2d per processor on the torus; meshes lose the boundary
  // links (each dimension has 2*(n-1)*n^(d-1) directed links).
  result.links = topo_->torus()
                     ? 2ll * d_ * N
                     : 2ll * d_ * N * (n_ - 1) / n_;

  std::int64_t cap = opts_.step_cap;
  if (cap <= 0) {
    const std::int64_t load = std::max<std::int64_t>(1, CeilDiv(result.packets, N));
    cap = 4 * load * (topo_->Diameter() + n_) + 4096;
  }

  std::atomic<std::int64_t> arrivals_total{0};
  std::atomic<std::int64_t> moves_total{0};
  std::atomic<std::int64_t> queue_max{result.max_queue};

  // Probe support: per-dimension directed-link move counters, collected
  // only when a probe is attached so the unobserved step loop stays lean.
  StepProbe* const probe = opts_.probe;
  const std::size_t dir_slots = probe != nullptr ? links : 0;
  std::vector<std::atomic<std::int64_t>> dir_moves_atomic(dir_slots);
  std::vector<std::int64_t> dir_moves_snapshot(dir_slots);
  const bool want_hist = probe != nullptr && probe->WantsQueueHistogram();

  std::int64_t step = 0;
  std::int64_t prev_arrivals = 0;
  std::int64_t prev_moves = 0;
  while (in_flight > arrivals_total.load(std::memory_order_relaxed) &&
         step < cap) {
    ++step;
    for (auto& c : dir_moves_atomic) c.store(0, std::memory_order_relaxed);
    opts_.pool->ParallelFor(N, [&](std::int64_t begin, std::int64_t end) {
      StepPhaseA(net, begin, end);
    });
    const std::int32_t now = static_cast<std::int32_t>(step);
    opts_.pool->ParallelFor(N, [&](std::int64_t begin, std::int64_t end) {
      std::int64_t local_arrivals = 0;
      std::int64_t local_moves = 0;
      std::int64_t local_qmax = 0;
      std::vector<std::int64_t> local_dirs(dir_slots, 0);
      for (ProcId p = begin; p < end; ++p) {
        auto& out = next_[static_cast<std::size_t>(p)];
        out.clear();
        // Stayers: everything not selected to move out.
        for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
          if ((pkt.flags & Packet::kMoving) == 0) out.push_back(pkt);
        }
        // Incomers: one per directed in-link, from the neighbor's slot.
        for (int dim = 0; dim < d_; ++dim) {
          for (int dir = 0; dir < 2; ++dir) {
            const ProcId q = topo_->Neighbor(p, dim, dir);
            if (q < 0) continue;
            // q sends toward p on its (dim, 1-dir) link.
            const std::size_t l =
                static_cast<std::size_t>(q) * links +
                static_cast<std::size_t>(dim * 2 + (1 - dir));
            const auto k = slot_[l];
            if (k < 0) continue;
            Packet pkt = queues[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)];
            pkt.flags &= static_cast<std::uint16_t>(~Packet::kMoving);
            ++local_moves;
            if (dir_slots != 0) {
              // The packet crossed q's (dim, 1-dir) directed link.
              ++local_dirs[static_cast<std::size_t>(dim * 2 + (1 - dir))];
            }
            if (pkt.dest == p) {
              if ((pkt.flags & Packet::kTwoLeg) != 0) {
                // Midpoint reached: retarget to the final destination and
                // keep going next step — no barrier between the phases.
                pkt.dest = static_cast<ProcId>(pkt.tag);
                pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
                if (pkt.dest == p) {
                  pkt.arrived = now;
                  ++local_arrivals;
                }
              } else {
                pkt.arrived = now;
                ++local_arrivals;
              }
            }
            out.push_back(pkt);
          }
        }
        local_qmax = std::max<std::int64_t>(local_qmax, static_cast<std::int64_t>(out.size()));
      }
      arrivals_total.fetch_add(local_arrivals, std::memory_order_relaxed);
      moves_total.fetch_add(local_moves, std::memory_order_relaxed);
      for (std::size_t i = 0; i < dir_slots; ++i) {
        if (local_dirs[i] != 0) {
          dir_moves_atomic[i].fetch_add(local_dirs[i], std::memory_order_relaxed);
        }
      }
      std::int64_t seen = queue_max.load(std::memory_order_relaxed);
      while (local_qmax > seen &&
             !queue_max.compare_exchange_weak(seen, local_qmax, std::memory_order_relaxed)) {
      }
    });
    queues.swap(next_);
    if (opts_.observer || probe != nullptr) {
      const std::int64_t arrived_now = arrivals_total.load(std::memory_order_relaxed);
      const std::int64_t arrivals_this = arrived_now - prev_arrivals;
      if (opts_.observer) {
        opts_.observer(step, in_flight - arrived_now, arrivals_this);
      }
      if (probe != nullptr) {
        const std::int64_t moves_now = moves_total.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < dir_slots; ++i) {
          dir_moves_snapshot[i] = dir_moves_atomic[i].load(std::memory_order_relaxed);
        }
        StepSnapshot snap;
        snap.step = step;
        snap.in_flight = in_flight - arrived_now;
        snap.arrivals = arrivals_this;
        snap.moves = moves_now - prev_moves;
        snap.dims = d_;
        snap.dim_dir_moves = dir_moves_snapshot.data();
        Histogram hist(kQueueHistBuckets);
        if (want_hist) {
          for (ProcId p = 0; p < N; ++p) {
            hist.Add(static_cast<std::int64_t>(queues[static_cast<std::size_t>(p)].size()));
          }
          snap.queue_hist = &hist;
        }
        probe->OnStep(snap);
        prev_moves = moves_now;
      }
      prev_arrivals = arrived_now;
    }
  }

  result.steps = step;
  result.moves = moves_total.load();
  result.max_queue = queue_max.load();
  result.completed = in_flight == arrivals_total.load();

  // Overshoot statistics.
  for (ProcId p = 0; p < N; ++p) {
    for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
      if (pkt.arrived < 0) continue;
      const std::int64_t over = pkt.arrived - pkt.dist0;
      result.overshoot.Add(static_cast<double>(over));
      result.max_overshoot = std::max(result.max_overshoot, over);
    }
  }
  return result;
}

}  // namespace mdmesh
