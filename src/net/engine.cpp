#include "net/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "net/engine_tiled.h"
#include "net/greedy_hop.h"
#include "obs/critical_path.h"
#include "util/math.h"

namespace mdmesh {
namespace {

/// Queue-occupancy histogram resolution for StepProbe snapshots. Measured
/// maxima stay single-digit (the multi-packet model's O(1)); longer queues
/// clamp into the last bucket and show up as overflow.
constexpr std::size_t kQueueHistBuckets = 64;

/// Watchdog default: a fault-free engine moves at least one packet every
/// step, so this many consecutive zero-move steps means a real deadlock.
constexpr std::int64_t kDefaultStallWindow = 64;

}  // namespace

std::uint64_t HashEngineOptions(const EngineOptions& opts) {
  // FNV-1a over a canonical encoding of the options that influence routing
  // behavior. Observability hooks (observer, probe, metrics, journeys), the
  // thread pool, and the checkpoint sink are excluded: they never change
  // results (for the sink and the journey tracer that exclusion is
  // load-bearing — a resumed run must hash identically whether or not it
  // keeps checkpointing or tracing).
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(opts.step_cap));
  mix(static_cast<std::uint64_t>(opts.stall_window));
  mix(static_cast<std::uint64_t>(opts.invariants));
  mix(static_cast<std::uint64_t>(opts.sparse));
  mix(static_cast<std::uint64_t>(opts.layout));
  std::uint64_t threshold_bits = 0;
  static_assert(sizeof(threshold_bits) == sizeof(opts.sparse_threshold));
  std::memcpy(&threshold_bits, &opts.sparse_threshold, sizeof(threshold_bits));
  mix(threshold_bits);
  mix(opts.faults != nullptr && !opts.faults->empty() ? 1 : 0);
  mix(opts.injector != nullptr ? 1 : 0);
  return h;
}

const char* SparseModeName(SparseMode mode) {
  switch (mode) {
    case SparseMode::kAlways:
      return "always";
    case SparseMode::kNever:
      return "never";
    default:
      return "auto";
  }
}

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kLegacy:
      return "legacy";
    case LayoutMode::kTiled:
      return "tiled";
    default:
      return "auto";
  }
}

RunManifest MakeRunManifest(const Topology& topo, const EngineOptions& opts) {
  RunManifest m;
  m.d = topo.dim();
  m.n = topo.side();
  m.torus = topo.torus();
  m.threads = opts.pool != nullptr ? opts.pool->workers()
                                   : ThreadPool::Global().workers();
  m.build_type = BuildTypeName();
  m.sparse_mode = SparseModeName(opts.sparse);
  m.layout = LayoutModeName(opts.layout);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(HashEngineOptions(opts)));
  m.engine_options_hash = hex;
  return m;
}

Engine::Engine(const Topology& topo, EngineOptions opts)
    : topo_(&topo), opts_(opts), d_(topo.dim()), n_(topo.side()) {
  if (opts_.pool == nullptr) opts_.pool = &ThreadPool::Global();
  // Resolve the storage layout once. The tiled arena cannot serve an active
  // InvariantChecker (the checker validates legacy storage directly), so
  // checker runs fall back to legacy — trace-identical by the layout
  // equality contract. Injector runs always bypass the checker.
  const bool want_tiled =
      opts_.layout == LayoutMode::kTiled ||
      (opts_.layout == LayoutMode::kAuto &&
       topo.size() >= kTiledAutoThreshold);
  use_tiled_ = want_tiled && (opts_.injector != nullptr ||
                              !InvariantsEnabled(opts_.invariants));
  const auto links = static_cast<std::size_t>(2 * d_);
  mask_stride_ = (links + 7) / 8 * 8;
  if (use_tiled_) {
    // Every legacy O(N) table (coordinate/neighbor tables, winner slots,
    // double-buffered mailbox) stays empty: the tiled arena's footprint is
    // what bounds the engine's memory, proportional to occupied tiles.
    tiled_ = std::make_unique<TiledEngine>(topo, opts_.pool);
  } else {
    if (topo.size() > std::numeric_limits<std::int32_t>::max()) {
      throw std::invalid_argument(
          "Engine: topology exceeds the 32-bit neighbor table");
    }
    coords_ = topo.BuildCoordTable();
    slot_.resize(static_cast<std::size_t>(topo.size()) * links);
    // Double-buffered mailbox (see engine.h): packet entries plus padded
    // presence rows, both sized 2 x N x row.
    in_pkt_.resize(2 * slot_.size());
    in_mask_.assign(2 * static_cast<std::size_t>(topo.size()) * mask_stride_,
                    0);
    // Flat neighbor table: the bid and commit hot loops probe links with one
    // load instead of re-deriving coordinates per hop.
    nbr_.resize(slot_.size());
    for (ProcId p = 0; p < topo.size(); ++p) {
      const std::size_t base = static_cast<std::size_t>(p) * links;
      for (int dim = 0; dim < d_; ++dim) {
        for (int dir = 0; dir < 2; ++dir) {
          nbr_[base + static_cast<std::size_t>(dim * 2 + dir)] =
              static_cast<std::int32_t>(topo.Neighbor(p, dim, dir));
        }
      }
    }
  }
  manifest_ = std::make_shared<const RunManifest>(MakeRunManifest(topo, opts_));
  if (opts_.faults != nullptr && !opts_.faults->empty()) {
    const Topology& ft = opts_.faults->topo();
    if (ft.dim() != topo.dim() || ft.side() != topo.side() ||
        ft.wrap() != topo.wrap()) {
      throw std::invalid_argument(
          "Engine: FaultPlan was built for a different topology");
    }
    have_faults_ = true;
    link_dead_perm_ = opts_.faults->dead_mask();
    link_dead_ = link_dead_perm_;
    flap_count_.assign(link_dead_.size(), 0);
    events_ = opts_.faults->Events();
  }
}

Engine::~Engine() = default;

template <bool kFaults, bool kSparse, bool kRecordSlots>
void Engine::BidProc(PacketQueue* queues, ProcId p, std::int64_t step,
                     int parity, [[maybe_unused]] WorkerScratch* s) {
  const auto links = static_cast<std::size_t>(2 * d_);
  const std::size_t base = static_cast<std::size_t>(p) * links;
  auto& q = queues[static_cast<std::size_t>(p)];
  if (q.empty()) {
    if constexpr (kRecordSlots && !kSparse) {
      // Dense CheckSlots scans every row, so even an idle processor's row
      // must be clean. (The sparse path only ever bids active processors.)
      for (std::size_t l = 0; l < links; ++l) slot_[base + l] = -1;
    }
    return;
  }
  // Winner selection is stack-local: the slot table is only published for
  // the checker's CheckSlots pass — nothing else ever reads a foreign row,
  // so the hot path keeps selection out of shared memory entirely. A bid
  // bitmask (`used`) replaces array initialization and the full-links
  // winner scan — with the typical drain-tail queue of one packet, the
  // fixed per-link overhead would otherwise rival the useful work.
  std::int32_t win[2 * kMaxDim];
  std::int64_t prio[2 * kMaxDim];
  std::uint32_t used = 0;
  const bool torus = topo_->torus();
  const std::int32_t* cp =
      &coords_[static_cast<std::size_t>(p) * static_cast<std::size_t>(d_)];
  if constexpr (!kFaults) {
    // Singleton fast path: a one-packet queue cannot have link contention,
    // so the farthest-first priority (the remaining-distance sum) is never
    // consulted — only the hop direction matters. Drain tails are dominated
    // by such queues. Faulted runs keep the general path (the detour policy
    // needs the remaining distance for its slack rotation).
    if (q.size() == 1) {
      Packet& pkt = q[0];
      if (pkt.dest == p) {
        if constexpr (kRecordSlots && !kSparse) {
          for (std::size_t l = 0; l < links; ++l) slot_[base + l] = -1;
        }
        return;
      }
      const std::int32_t* dc = &coords_[static_cast<std::size_t>(pkt.dest) *
                                        static_cast<std::size_t>(d_)];
      int dim, dir;
      NextHopDir(cp, dc, d_, n_, torus, pkt.klass, dim, dir);
      assert(dim >= 0);
      const std::size_t l = static_cast<std::size_t>(dim * 2 + dir);
      if constexpr (kRecordSlots) {
        for (std::size_t ll = 0; ll < links; ++ll) slot_[base + ll] = -1;
        slot_[base + l] = 0;
      }
      pkt.flags |= Packet::kMoving;
      const auto r = static_cast<std::size_t>(nbr_[base + l]);
      Packet* const out = in_pkt_.data() +
                          static_cast<std::size_t>(parity) * (in_pkt_.size() / 2);
      std::uint8_t* const mask =
          in_mask_.data() +
          static_cast<std::size_t>(parity) * (in_mask_.size() / 2);
      out[r * links + (l ^ 1)] = pkt;
      mask[r * mask_stride_ + (l ^ 1)] = 1;
      if constexpr (kSparse) {
        s->receivers.push_back(static_cast<ProcId>(r));
      }
      return;
    }
  }
  for (std::size_t k = 0; k < q.size(); ++k) {
    Packet& pkt = q[k];
    if (pkt.dest == p) continue;
    const std::int32_t* dc =
        &coords_[static_cast<std::size_t>(pkt.dest) * static_cast<std::size_t>(d_)];
    int dim, dir;
    std::int64_t rem;
    if constexpr (kFaults) {
      // Farthest-first priority counts the full remaining path of a
      // two-leg packet, not just the current leg.
      std::int64_t extra = 0;
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        extra = topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
      }
      bool is_detour = false;
      // Boundary links (mesh) are filtered by the neighbor-table check; the
      // dead mask only covers existing links.
      const std::int32_t* nbr = &nbr_[base];
      const std::uint8_t* dead = &link_dead_[base];
      const auto alive = [nbr, dead](int di, int dr) {
        return dead[di * 2 + dr] == 0 && nbr[di * 2 + dr] >= 0;
      };
      rem = NextHopFaulted(cp, dc, d_, n_, torus, pkt.klass, pkt.id, pkt.flags,
                           alive, step, pkt.dist0, extra, dim, dir, is_detour);
      pkt.flags = is_detour
                      ? static_cast<std::uint16_t>(pkt.flags | Packet::kDetour)
                      : static_cast<std::uint16_t>(pkt.flags &
                                                   ~Packet::kDetour);
      rem += extra;
      if (dim < 0) {
        // Every outgoing link is dead: the packet holds in place. This is
        // the one wait that never reaches the winner comparison, so it is
        // recorded here.
        if (opts_.journeys != nullptr) {
          opts_.journeys->RecordWait(s->events, pkt.id, p, step,
                                     JourneyEvent::kWaitLinksDead, -1, 0);
        }
        continue;
      }
    } else {
      rem = NextHop(cp, dc, d_, n_, torus, pkt.klass, dim, dir);
      assert(dim >= 0);
      // Farthest-first priority counts the full remaining path of a
      // two-leg packet, not just the current leg.
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        rem += topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
      }
    }
    const std::size_t l = static_cast<std::size_t>(dim * 2 + dir);
    // Farthest remaining distance wins; ties to the smaller packet id.
    // Every bidder that does not end up winning is displaced (or rejected)
    // exactly once, which is where the journey tracer learns about waits:
    // a packet bids one link per step, so one lost-bid event per loser per
    // step — the contention half of the latency decomposition.
    if ((used & (std::uint32_t{1} << l)) == 0) {
      used |= std::uint32_t{1} << l;
      win[l] = static_cast<std::int32_t>(k);
      prio[l] = rem;
    } else if (rem > prio[l] ||
               (rem == prio[l] &&
                pkt.id < q[static_cast<std::size_t>(win[l])].id)) {
      if (opts_.journeys != nullptr) {
        opts_.journeys->RecordWait(s->events,
                                   q[static_cast<std::size_t>(win[l])].id, p,
                                   step, JourneyEvent::kWaitLostBid, dim, dir);
      }
      win[l] = static_cast<std::int32_t>(k);
      prio[l] = rem;
    } else {
      if (opts_.journeys != nullptr) {
        opts_.journeys->RecordWait(s->events, pkt.id, p, step,
                                   JourneyEvent::kWaitLostBid, dim, dir);
      }
    }
  }
  if constexpr (kRecordSlots) {
    for (std::size_t l = 0; l < links; ++l) {
      slot_[base + l] = (used & (std::uint32_t{1} << l)) != 0 ? win[l] : -1;
    }
  }
  Packet* const out =
      in_pkt_.data() + static_cast<std::size_t>(parity) * (in_pkt_.size() / 2);
  std::uint8_t* const mask =
      in_mask_.data() + static_cast<std::size_t>(parity) * (in_mask_.size() / 2);
  while (used != 0) {
    const auto l = static_cast<std::size_t>(std::countr_zero(used));
    used &= used - 1;
    Packet& pkt = q[static_cast<std::size_t>(win[l])];
    pkt.flags |= Packet::kMoving;
    // Hand the packet to the receiver's mailbox row. Link l = dim*2+dir
    // lands in the receiver's dim*2+(1-dir) entry (l ^ 1): the entry
    // indexed by the direction the receiver sees us in. Each directed
    // link has exactly one possible writer, so the scatter is race-free.
    // (Boundary links never win: NextHop never points off the mesh and
    // the faulted policy checks nbr >= 0.)
    const auto r = static_cast<std::size_t>(nbr_[base + l]);
    out[r * links + (l ^ 1)] = pkt;
    mask[r * mask_stride_ + (l ^ 1)] = 1;
    if constexpr (kSparse) {
      // The receiver joins the commit set for `step`.
      s->receivers.push_back(static_cast<ProcId>(r));
    }
  }
}

template <bool kFaults, bool kRecordSlots>
void Engine::StepPhaseA(PacketQueue* queues, std::int64_t step, int parity,
                        std::int64_t begin, std::int64_t end,
                        WorkerScratch* s) {
  for (ProcId p = begin; p < end; ++p) {
    BidProc<kFaults, false, kRecordSlots>(queues, p, step, parity, s);
  }
}

bool Engine::CommitProc(PacketQueue* queues, ProcId p, std::int32_t now,
                        bool count_dirs, int parity, WorkerScratch& s) {
  const auto links = static_cast<std::size_t>(2 * d_);
  auto& q = queues[static_cast<std::size_t>(p)];
  bool inflight = false;
  // Stayers: compact everything not selected to move out, preserving order
  // (equivalent to the stayers-first rebuild of a fresh queue).
  std::size_t w = 0;
  const std::size_t sz = q.size();
  for (std::size_t i = 0; i < sz; ++i) {
    if ((q[i].flags & Packet::kMoving) == 0) {
      if (w != i) q[w] = q[i];
      if (q[i].arrived < 0) {
        inflight = true;
        // The fused bid that follows needs this stayer's destination
        // coordinates — a random access; start the load now.
        __builtin_prefetch(
            &coords_[static_cast<std::size_t>(q[i].dest) *
                     static_cast<std::size_t>(d_)]);
      }
      ++w;
    }
  }
  q.resize(w);
  // Incomers: one per directed in-link, consumed from p's own mailbox row
  // in canonical (dim, dir) order. Everything here is p-local. The padded
  // presence row collapses the common "no incomers" case to one or two
  // aligned 8-byte loads.
  const std::size_t rows = static_cast<std::size_t>(topo_->size());
  std::uint8_t* const mrow =
      in_mask_.data() +
      (static_cast<std::size_t>(parity) * rows + static_cast<std::size_t>(p)) *
          mask_stride_;
  const Packet* const row =
      in_pkt_.data() +
      (static_cast<std::size_t>(parity) * rows + static_cast<std::size_t>(p)) *
          links;
  for (std::size_t wi = 0; wi < mask_stride_; wi += 8) {
    // Each presence byte is 0 or 1, so the row word has at most one set
    // bit per byte: countr_zero(word) >> 3 walks the occupied entries in
    // ascending (canonical) link order with no per-link branch, and one
    // zero store consumes the whole word.
    std::uint64_t word;
    std::memcpy(&word, mrow + wi, sizeof(word));
    if (word == 0) continue;
    const std::uint64_t zero = 0;
    std::memcpy(mrow + wi, &zero, sizeof(zero));
    while (word != 0) {
      const std::size_t l =
          wi + (static_cast<std::size_t>(std::countr_zero(word)) >> 3);
      word &= word - 1;
      Packet pkt = row[l];
      const bool detoured = (pkt.flags & Packet::kDetour) != 0;
      if (have_faults_ && detoured) {
        ++s.detours;
      }
      pkt.flags &= static_cast<std::uint16_t>(
          ~(Packet::kMoving | Packet::kDetour));
      ++s.moves;
      if (count_dirs) {
        // Entry l arrived from p's (dim, dir) neighbor, i.e. it crossed the
        // sender's (dim, 1-dir) directed link — index l ^ 1.
        ++s.dir_moves[l ^ 1];
      }
      bool retargeted = false;
      if (pkt.dest == p) {
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          // Midpoint reached: retarget to the final destination and
          // keep going next step — no barrier between the phases.
          pkt.dest = static_cast<ProcId>(pkt.tag);
          pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
          retargeted = true;
          if (pkt.dest == p) {
            pkt.arrived = now;
            ++s.arrivals;
          }
        } else {
          pkt.arrived = now;
          ++s.arrivals;
        }
      }
      if (opts_.journeys != nullptr) {
        std::uint8_t jflags = 0;
        if (detoured) jflags |= JourneyEvent::kDetour;
        if (retargeted) jflags |= JourneyEvent::kRetarget;
        if (pkt.arrived >= 0) jflags |= JourneyEvent::kDelivered;
        opts_.journeys->RecordMove(s.events, pkt.id, p, now,
                                   static_cast<int>(l >> 1),
                                   static_cast<int>((l & 1) ^ 1), jflags);
      }
      if (pkt.arrived < 0) {
        inflight = true;
        __builtin_prefetch(
            &coords_[static_cast<std::size_t>(pkt.dest) *
                     static_cast<std::size_t>(d_)]);
      }
      q.push_back(pkt);
    }
  }
  s.qmax = std::max<std::int64_t>(s.qmax, static_cast<std::int64_t>(q.size()));
  return inflight;
}

void Engine::RebuildActiveSet(Network& net) {
  const ProcId N = topo_->size();
  const std::size_t words = (static_cast<std::size_t>(N) + 63) / 64;
  if (touched_bits_.size() != words) touched_bits_.assign(words, 0);
  active_.clear();
  const auto& queues = net.queues();
  for (ProcId p = 0; p < N; ++p) {
    for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
      if (pkt.arrived < 0) {
        active_.push_back(p);
        break;
      }
    }
  }
}

void Engine::RebuildTouched(Network& net, int parity) {
  const ProcId N = topo_->size();
  touched_.clear();
  const auto& queues = net.queues();
  const std::uint8_t* const mask =
      in_mask_.data() + static_cast<std::size_t>(parity) * (in_mask_.size() / 2);
  for (ProcId p = 0; p < N; ++p) {
    bool t = false;
    // In-flight packets include next step's movers (still queued, kMoving):
    // their sender must commit to drop them.
    for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
      if (pkt.arrived < 0) {
        t = true;
        break;
      }
    }
    if (!t) {
      const std::uint8_t* mrow = mask + static_cast<std::size_t>(p) * mask_stride_;
      std::uint64_t any = 0;
      for (std::size_t i = 0; i < mask_stride_; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, mrow + i, sizeof(word));
        any |= word;
      }
      t = any != 0;
    }
    if (t) touched_.push_back(p);
  }
}

void Engine::DenseStep(Network& net, std::int64_t step, std::int32_t now,
                       bool count_dirs, InvariantChecker* checker) {
  // Unfused two-phase step. Under a checker, CheckSlots must see the full
  // winner table after every bid and before any delivery mutates the queues
  // it indexes into; injector-driven runs pass checker == nullptr and skip
  // the slot bookkeeping entirely.
  const ProcId N = topo_->size();
  const auto shards = static_cast<std::int64_t>(opts_.pool->ShardsFor(N));
  const std::int64_t chunk = CeilDiv(N, shards);
  const int parity = static_cast<int>(step & 1);
  PacketQueue* const queues = net.queues().data();
  const bool record_slots = checker != nullptr;
  opts_.pool->ParallelFor(N, [&](std::int64_t b, std::int64_t e) {
    WorkerScratch* const s = &scratch_[static_cast<std::size_t>(b / chunk)];
    if (have_faults_) {
      if (record_slots) {
        StepPhaseA<true, true>(queues, step, parity, b, e, s);
      } else {
        StepPhaseA<true, false>(queues, step, parity, b, e, s);
      }
    } else {
      if (record_slots) {
        StepPhaseA<false, true>(queues, step, parity, b, e, s);
      } else {
        StepPhaseA<false, false>(queues, step, parity, b, e, s);
      }
    }
  });
  if (checker != nullptr) {
    checker->CheckSlots(net, slot_, have_faults_ ? link_dead_.data() : nullptr,
                        step);
  }
  opts_.pool->ParallelFor(N, [&](std::int64_t b, std::int64_t e) {
    WorkerScratch& s = scratch_[static_cast<std::size_t>(b / chunk)];
    for (ProcId p = b; p < e; ++p) {
      CommitProc(queues, p, now, count_dirs, parity, s);
    }
  });
  if (record_slots) slots_clean_ = false;  // rows hold this step's winners
}

void Engine::SparseStep(Network& net, std::int64_t step, std::int32_t now,
                        bool count_dirs, InvariantChecker* checker) {
  // Unfused sparse step (see DenseStep for the checker-vs-injector split).
  const auto links = static_cast<std::size_t>(2 * d_);
  const int parity = static_cast<int>(step & 1);
  PacketQueue* const queues = net.queues().data();
  const bool record_slots = checker != nullptr;
  const auto na = static_cast<std::int64_t>(active_.size());
  if (na > 0) {
    const std::int64_t bid_chunk =
        CeilDiv(na, static_cast<std::int64_t>(opts_.pool->ShardsFor(na)));
    opts_.pool->ParallelFor(na, [&](std::int64_t b, std::int64_t e) {
      WorkerScratch& s = scratch_[static_cast<std::size_t>(b / bid_chunk)];
      if (have_faults_) {
        if (record_slots) {
          for (std::int64_t i = b; i < e; ++i) {
            BidProc<true, true, true>(
                queues, active_[static_cast<std::size_t>(i)], step, parity, &s);
          }
        } else {
          for (std::int64_t i = b; i < e; ++i) {
            BidProc<true, true, false>(
                queues, active_[static_cast<std::size_t>(i)], step, parity, &s);
          }
        }
      } else {
        if (record_slots) {
          for (std::int64_t i = b; i < e; ++i) {
            BidProc<false, true, true>(
                queues, active_[static_cast<std::size_t>(i)], step, parity, &s);
          }
        } else {
          for (std::int64_t i = b; i < e; ++i) {
            BidProc<false, true, false>(
                queues, active_[static_cast<std::size_t>(i)], step, parity, &s);
          }
        }
      }
    });
  }
  if (checker != nullptr) {
    checker->CheckActiveSet(net, active_, step);
    checker->CheckSlots(net, slot_, have_faults_ ? link_dead_.data() : nullptr,
                        step);
  }
  // Commit set = active processors plus every winner's receiving neighbor,
  // deduped through a word bitmap whose scan also emits the set in
  // ascending order — the commit and next step's bid then walk memory
  // sequentially, which matters more than the scan's O(N/64) floor.
  for (ProcId p : active_) {
    touched_bits_[static_cast<std::size_t>(p) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(p) & 63);
  }
  for (const WorkerScratch& s : scratch_) {
    for (ProcId r : s.receivers) {
      touched_bits_[static_cast<std::size_t>(r) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(r) & 63);
    }
  }
  touched_.clear();
  for (std::size_t w = 0; w < touched_bits_.size(); ++w) {
    std::uint64_t bits = touched_bits_[w];
    if (bits == 0) continue;
    touched_bits_[w] = 0;  // leave the bitmap clear for the next step
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      touched_.push_back(static_cast<ProcId>((w << 6) | static_cast<std::size_t>(bit)));
    }
  }
  const auto nt = static_cast<std::int64_t>(touched_.size());
  touched_inflight_.assign(static_cast<std::size_t>(nt), 0);
  if (nt > 0) {
    const std::int64_t commit_chunk =
        CeilDiv(nt, static_cast<std::int64_t>(opts_.pool->ShardsFor(nt)));
    opts_.pool->ParallelFor(nt, [&](std::int64_t b, std::int64_t e) {
      WorkerScratch& s = scratch_[static_cast<std::size_t>(b / commit_chunk)];
      for (std::int64_t i = b; i < e; ++i) {
        touched_inflight_[static_cast<std::size_t>(i)] =
            CommitProc(queues, touched_[static_cast<std::size_t>(i)], now,
                       count_dirs, parity, s)
                ? 1
                : 0;
      }
    });
  }
  // Re-clear this step's bid rows so the next CheckSlots pass (which scans
  // every row) sees no stale winners from processors that leave the active
  // set. The routing itself never reads foreign slot rows, so injector runs
  // (which never wrote slots) skip this.
  if (record_slots) {
    for (ProcId p : active_) {
      const std::size_t base = static_cast<std::size_t>(p) * links;
      for (std::size_t l = 0; l < links; ++l) slot_[base + l] = -1;
    }
  }
  // Refresh the active set — O(|touched|), no full-mesh pass anywhere.
  active_.clear();
  for (std::int64_t i = 0; i < nt; ++i) {
    if (touched_inflight_[static_cast<std::size_t>(i)] != 0) {
      active_.push_back(touched_[static_cast<std::size_t>(i)]);
    }
  }
}

std::shared_ptr<StallReport> Engine::BuildStallReport(
    const Network& net, StallReason reason, std::int64_t step,
    std::int64_t no_progress) const {
  auto report = std::make_shared<StallReport>();
  report->reason = reason;
  report->step = step;
  report->no_progress_steps = no_progress;
  if (opts_.recorder != nullptr) {
    // Embed the per-step history leading into the abort, so a watchdog
    // report is diagnosable without rerunning under a probe.
    report->recent = opts_.recorder->Tail(StallReport::kRecentCap);
  }
  const bool torus = topo_->torus();
  for (ProcId p = 0; p < topo_->size(); ++p) {
    for (const Packet& pkt : net.At(p)) {
      if (pkt.arrived >= 0) continue;
      ++report->stuck_packets;
      if (report->sample.size() >= StallReport::kSampleCap) continue;
      StallReport::StuckPacket stuck;
      stuck.id = pkt.id;
      stuck.at = p;
      stuck.dest = pkt.dest;
      // Coordinates come from the topology, not the legacy coords_ table —
      // the tiled layout never builds that table, and a stall report is far
      // off the hot path.
      const Point cpt = topo_->Coords(p);
      const Point dpt = topo_->Coords(pkt.dest);
      // Report the *fault-free preferred* hop: the link the packet wants,
      // which is the interesting one when it is dead.
      int dim, dir;
      stuck.remaining = NextHop(cpt.data(), dpt.data(), d_, n_, torus,
                                pkt.klass, dim, dir);
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        stuck.remaining += topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
      }
      stuck.want_dim = dim;
      stuck.want_dir = dir;
      if (have_faults_ && dim >= 0) {
        const std::int64_t link = p * 2 * d_ + dim * 2 + dir;
        stuck.link_dead = link_dead_[static_cast<std::size_t>(link)] != 0;
        if (stuck.link_dead &&
            std::find(report->blocked_links.begin(),
                      report->blocked_links.end(),
                      link) == report->blocked_links.end()) {
          report->blocked_links.push_back(link);
        }
      }
      report->sample.push_back(stuck);
    }
  }
  return report;
}

RouteResult Engine::Route(Network& net) { return RouteInternal(net, nullptr); }

RouteResult Engine::Resume(Network& net, const EngineCheckpointState& state) {
  // Refuse anything that would silently continue a different run: the
  // resumed trace must be byte-identical to the uninterrupted one, and
  // that promise is meaningless across a topology, option, or injector
  // mismatch.
  if (state.d != d_ || state.n != n_ || state.torus != topo_->torus()) {
    throw std::invalid_argument(
        "Engine::Resume: checkpoint topology shape does not match");
  }
  if (state.options_hash != HashEngineOptions(opts_)) {
    throw std::invalid_argument(
        "Engine::Resume: checkpoint engine-options hash does not match");
  }
  if (state.injector_attached != (opts_.injector != nullptr)) {
    throw std::invalid_argument(
        "Engine::Resume: injector presence does not match the checkpoint");
  }
  if (state.queues.size() != static_cast<std::size_t>(topo_->size())) {
    throw std::invalid_argument(
        "Engine::Resume: checkpoint queue table does not match the topology");
  }
  if (state.fault_cursor > events_.size()) {
    throw std::invalid_argument(
        "Engine::Resume: fault cursor beyond the plan's event schedule");
  }
  if (opts_.injector != nullptr &&
      !opts_.injector->RestoreState(state.injector_state.data(),
                                    state.injector_state.size())) {
    throw std::invalid_argument(
        "Engine::Resume: injector rejected its checkpoint state");
  }
  net.Clear();
  auto& queues = net.queues();
  for (std::size_t p = 0; p < state.queues.size(); ++p) {
    auto& q = queues[p];
    for (const Packet& pkt : state.queues[p]) q.push_back(pkt);
  }
  return RouteInternal(net, &state);
}

RouteResult Engine::RouteInternal(Network& net,
                                  const EngineCheckpointState* resume) {
  RouteResult result;
  const ProcId N = topo_->size();
  const auto links = static_cast<std::size_t>(2 * d_);
  auto& queues_vec = net.queues();
  PacketQueue* const queues = queues_vec.data();
  // Journey tracing: one BeginRun per Route; events drain per step in
  // reduce_scratch and finalize in the epilogue.
  JourneyTracer* const jt = opts_.journeys;
  if (jt != nullptr) jt->BeginRun();

  // Initialize per-packet measurement state. Two-leg packets (overlapped
  // routing) count their full path as the distance; a zero-length first leg
  // retargets immediately. A resumed run restores the accumulators instead:
  // the queues already carry fully initialized mid-run packets (dist0,
  // arrived stamps, detour locks) verbatim from the checkpoint.
  std::int64_t in_flight = 0;  // packets not yet at their final destination
  if (resume == nullptr) {
    for (ProcId p = 0; p < N; ++p) {
      for (Packet& pkt : queues[static_cast<std::size_t>(p)]) {
        pkt.flags &= static_cast<std::uint16_t>(
            ~(Packet::kMoving | Packet::kDetour | Packet::kLockMask));
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          pkt.dist0 = static_cast<std::int32_t>(
              topo_->Dist(p, pkt.dest) +
              topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag)));
          if (pkt.dest == p) {
            pkt.dest = static_cast<ProcId>(pkt.tag);
            pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
          }
        } else {
          pkt.dist0 = static_cast<std::int32_t>(topo_->Dist(p, pkt.dest));
        }
        pkt.arrived = pkt.dest == p ? 0 : -1;
        if (jt != nullptr && opts_.injector == nullptr) {
          // Drain-run packets start at t0 = 0, so latency = arrived.
          jt->RecordInjected(pkt.id, p, 0, pkt.dist0, pkt.arrived == 0);
        }
        if (pkt.dest != p) ++in_flight;
        result.max_distance = std::max<std::int64_t>(result.max_distance, pkt.dist0);
        ++result.packets;
      }
    }
    result.max_queue = net.MaxQueue();
  } else {
    in_flight = resume->in_flight;
    result.packets = resume->packets;
    result.max_distance = resume->max_distance;
    result.sparse_steps = resume->sparse_steps;
    result.peak_active_procs = resume->peak_active_procs;
    result.max_overshoot = resume->max_overshoot;
    result.overshoot.RestoreMoments(resume->overshoot_count,
                                    resume->overshoot_mean, resume->overshoot_m2,
                                    resume->overshoot_min, resume->overshoot_max);
    result.max_queue = resume->queue_max;
  }
  // Directed links: 2d per processor on the torus; meshes lose the boundary
  // links (each dimension has 2*(n-1)*n^(d-1) directed links).
  result.links = topo_->torus()
                     ? 2ll * d_ * N
                     : 2ll * d_ * N * (n_ - 1) / n_;

  std::int64_t cap = opts_.step_cap;
  if (cap <= 0) {
    if (opts_.injector != nullptr) {
      // The injector owns termination (kDrain/kStop); the preload-scaled
      // auto cap below would cut a continuous run short.
      cap = std::numeric_limits<std::int64_t>::max();
    } else {
      const std::int64_t load =
          std::max<std::int64_t>(1, CeilDiv(result.packets, N));
      cap = 4 * load * (topo_->Diameter() + n_) + 4096;
    }
  }

  // A previous aborted Route left speculative next-step bids in the
  // mailbox; clear the presence rows once, lazily.
  if (mailbox_dirty_) {
    std::fill(in_mask_.begin(), in_mask_.end(), 0);
    mailbox_dirty_ = false;
  }

  // Fault bookkeeping. Flap windows are relative to each Route call, so the
  // transient state resets here.
  std::size_t event_cursor = 0;
  if (have_faults_) {
    link_dead_ = link_dead_perm_;
    std::fill(flap_count_.begin(), flap_count_.end(), 0);
    if (resume != nullptr) {
      // Replay the flap events the original run already applied to rebuild
      // the per-link masks; fault_events_total was accumulated by that run
      // and restores directly, so the replay must not re-count.
      while (event_cursor < resume->fault_cursor &&
             event_cursor < events_.size()) {
        const FaultPlan::FlapEvent& ev = events_[event_cursor++];
        const auto l = static_cast<std::size_t>(ev.link);
        flap_count_[l] += ev.delta;
        link_dead_[l] = (link_dead_perm_[l] != 0 || flap_count_[l] > 0) ? 1 : 0;
      }
    }
  }

  // Stall watchdog: abort after `stall_window` consecutive steps in which
  // nothing moved and no fault event fired (instead of burning to the cap).
  std::int64_t stall_window = opts_.stall_window;
  if (stall_window == 0) {
    stall_window = kDefaultStallWindow;
    if (opts_.faults != nullptr) {
      stall_window += 2 * opts_.faults->max_flap_duration();
    }
  }
  const bool watchdog_on = stall_window > 0;
  std::int64_t no_progress = resume != nullptr ? resume->no_progress : 0;
  bool watchdog_fired = false;

  // Injector-driven runs bypass the checker: its conservation invariant
  // assumes a closed packet population, which per-step injection and
  // delivery retirement both violate by design.
  std::unique_ptr<InvariantChecker> checker;
  if (opts_.injector == nullptr && InvariantsEnabled(opts_.invariants)) {
    checker = std::make_unique<InvariantChecker>(*topo_);
    checker->BeginRun(net);
  }

  // Per-worker scratch arenas replace the old per-step atomics and vector
  // allocations. Probe support (per-dimension move counters, histograms) is
  // entirely behind this one null check — an unobserved run never touches
  // dir_moves again.
  StepProbe* const probe = opts_.probe;
  // The flight recorder shares the probe's per-dimension move counters and
  // stamps this engine's manifest so a mid-run dump is self-describing.
  static_assert(FlightRecord::kMaxDims >= kMaxDim,
                "FlightRecord must cover every topology dimension");
  FlightRecorder* const recorder = opts_.recorder;
  if (recorder != nullptr) recorder->set_manifest(*manifest_);
  const bool count_dirs = probe != nullptr || recorder != nullptr;
  const bool want_hist = probe != nullptr && probe->WantsQueueHistogram();
  const std::size_t nshards = std::max<std::size_t>(1, opts_.pool->workers());
  if (scratch_.size() != nshards) scratch_.resize(nshards);
  for (WorkerScratch& s : scratch_) {
    s.dir_moves.assign(count_dirs ? links : 0, 0);
    s.receivers.clear();
  }
  std::vector<std::int64_t> dir_moves_snapshot(count_dirs ? links : 0);

  const double threshold = std::clamp(opts_.sparse_threshold, 0.0, 1.0);
  const bool have_faults = have_faults_;
  std::int64_t arrivals_total = resume != nullptr ? resume->arrivals_total : 0;
  std::int64_t moves_total = resume != nullptr ? resume->moves_total : 0;
  std::int64_t detours_total = resume != nullptr ? resume->detours_total : 0;
  std::int64_t fault_events_total =
      resume != nullptr ? resume->fault_events_total : 0;
  std::int64_t queue_max = result.max_queue;
  std::int64_t step = resume != nullptr ? resume->step : 0;

  // Applies the flap edges scheduled for step `at`; returns whether any
  // fired (the watchdog treats a fault event as progress).
  const auto apply_events = [&](std::int64_t at) {
    bool fired = false;
    if (have_faults) {
      while (event_cursor < events_.size() &&
             events_[event_cursor].step == at) {
        const FaultPlan::FlapEvent& ev = events_[event_cursor++];
        const auto l = static_cast<std::size_t>(ev.link);
        flap_count_[l] += ev.delta;
        assert(flap_count_[l] >= 0);
        link_dead_[l] = (link_dead_perm_[l] != 0 || flap_count_[l] > 0) ? 1 : 0;
        fired = true;
        ++fault_events_total;
      }
    }
    return fired;
  };

  const auto mode_for = [&](std::int64_t remaining) {
    switch (opts_.sparse) {
      case SparseMode::kAlways:
        return true;
      case SparseMode::kNever:
        return false;
      case SparseMode::kAuto:
      default:
        // In-flight packets upper-bound the occupied processors, and the
        // count is already on hand — no occupancy scan needed.
        return static_cast<double>(remaining) <=
               threshold * static_cast<double>(N);
    }
  };

  const auto reset_scratch = [&] {
    for (WorkerScratch& s : scratch_) {
      s.arrivals = 0;
      s.moves = 0;
      s.detours = 0;
      s.qmax = 0;
      s.receivers.clear();
    }
    if (count_dirs) {
      for (WorkerScratch& s : scratch_) {
        std::fill(s.dir_moves.begin(), s.dir_moves.end(), 0);
      }
    }
  };

  // Deterministic reduction: worker order is fixed, sums and maxima are
  // order-insensitive anyway. Returns (step arrivals, step moves).
  const auto reduce_scratch = [&]() -> std::pair<std::int64_t, std::int64_t> {
    std::int64_t step_arrivals = 0;
    std::int64_t step_moves = 0;
    for (const WorkerScratch& s : scratch_) {
      step_arrivals += s.arrivals;
      step_moves += s.moves;
      detours_total += s.detours;
      queue_max = std::max(queue_max, s.qmax);
    }
    if (jt != nullptr) {
      for (WorkerScratch& s : scratch_) jt->Drain(&s.events);
    }
    arrivals_total += step_arrivals;
    moves_total += step_moves;
    return {step_arrivals, step_moves};
  };

  // Observer, probe, flight recorder, interrupt poll, and watchdog for one
  // completed step; returns true when the run must abort (watchdog stall or
  // a pending SIGINT/SIGTERM — `interrupted` tells them apart).
  bool interrupted = false;
  const auto emit_step = [&](std::int64_t st, std::int64_t step_arrivals,
                             std::int64_t step_moves, bool fault_event,
                             std::int64_t active_procs,
                             std::int64_t step_injected) {
    result.peak_active_procs =
        std::max(result.peak_active_procs, active_procs);
    if (opts_.observer) {
      opts_.observer(st, in_flight - arrivals_total, step_arrivals);
    }
    if (count_dirs) {
      for (std::size_t i = 0; i < links; ++i) {
        std::int64_t v = 0;
        for (const WorkerScratch& s : scratch_) v += s.dir_moves[i];
        dir_moves_snapshot[i] = v;
      }
    }
    if (recorder != nullptr) {
      FlightRecord rec;
      rec.step = st;
      rec.in_flight = in_flight - arrivals_total;
      rec.arrivals = step_arrivals;
      rec.moves = step_moves;
      rec.injected = step_injected;
      rec.active_procs = active_procs;
      std::int64_t step_qmax = 0;
      for (const WorkerScratch& s : scratch_) {
        step_qmax = std::max(step_qmax, s.qmax);
      }
      rec.queue_max = step_qmax;
      rec.dims = d_;
      for (std::size_t i = 0; i < links; ++i) {
        rec.dir_moves[i] = dir_moves_snapshot[i];
      }
      recorder->Append(rec);
    }
    // Interrupt polling rides on the observability/checkpoint opt-ins: a
    // bare hot-path run never pays the atomic load per step.
    if ((recorder != nullptr || opts_.checkpoint != nullptr) &&
        FlightRecorder::InterruptRequested()) {
      interrupted = true;
      return true;
    }
    if (probe != nullptr) {
      StepSnapshot snap;
      snap.step = st;
      snap.in_flight = in_flight - arrivals_total;
      snap.arrivals = step_arrivals;
      snap.moves = step_moves;
      snap.dims = d_;
      snap.dim_dir_moves = dir_moves_snapshot.data();
      snap.active_procs = active_procs;
      snap.injected = step_injected;
      Histogram hist(kQueueHistBuckets);
      if (want_hist) {
        if (use_tiled_) {
          // Mid-run queues live in the tile arena, not the Network.
          tiled_->FillQueueHist(&hist, N);
        } else {
          for (ProcId p = 0; p < N; ++p) {
            hist.Add(static_cast<std::int64_t>(
                queues[static_cast<std::size_t>(p)].size()));
          }
        }
        snap.queue_hist = &hist;
      }
      probe->OnStep(snap);
    }
    if (watchdog_on) {
      if (step_moves == 0 && !fault_event) {
        ++no_progress;
      } else {
        no_progress = 0;
      }
      if (no_progress >= stall_window && in_flight > arrivals_total) {
        return true;
      }
    }
    return false;
  };

  bool injector_stopped = false;
  StepInjector* const injector = opts_.injector;

  // Checkpointing. `injecting` lives at function scope (instead of inside
  // the injector branch) because the snapshot must capture it; non-injector
  // runs never read it. Snapshots are taken at clean unfused step
  // boundaries only — post-commit, every queue is free of the kMoving
  // scratch bit and the parity mailbox row for the step is fully consumed,
  // so queues + accumulators + the injector blob are the whole state.
  bool injecting = resume != nullptr ? resume->injecting : true;
  CheckpointSink* const sink = opts_.checkpoint;
  const auto save_checkpoint = [&](const char* cause) {
    EngineCheckpointState st;
    st.d = d_;
    st.n = n_;
    st.torus = topo_->torus();
    st.options_hash = HashEngineOptions(opts_);
    st.injector_attached = injector != nullptr;
    st.step = step;
    st.in_flight = in_flight;
    st.arrivals_total = arrivals_total;
    st.moves_total = moves_total;
    st.detours_total = detours_total;
    st.fault_events_total = fault_events_total;
    st.queue_max = queue_max;
    st.no_progress = no_progress;
    st.injecting = injecting;
    st.packets = result.packets;
    st.max_distance = result.max_distance;
    st.sparse_steps = result.sparse_steps;
    st.peak_active_procs = result.peak_active_procs;
    st.max_overshoot = result.max_overshoot;
    st.overshoot_count = result.overshoot.count();
    st.overshoot_mean = result.overshoot.mean();
    st.overshoot_m2 = result.overshoot.m2();
    st.overshoot_min = result.overshoot.min();
    st.overshoot_max = result.overshoot.max();
    st.fault_cursor = static_cast<std::uint64_t>(event_cursor);
    st.queues.resize(static_cast<std::size_t>(N));
    for (ProcId p = 0; p < N; ++p) {
      const auto& q = queues[static_cast<std::size_t>(p)];
      st.queues[static_cast<std::size_t>(p)].assign(q.begin(), q.end());
    }
    if (injector != nullptr) injector->SaveState(&st.injector_state);
    sink->Save(st, cause);
  };

  if (use_tiled_) {
    // Tiled storage path (net/engine_tiled.h): one unified loop serves both
    // drain and injector-driven runs over the tile arena. The shared
    // prologue above already initialized per-packet state in `net`; Import
    // moves the queues into the arena, and Export writes them back at every
    // boundary the rest of the engine observes (cadence checkpoints, the
    // shared epilogue). Per-step semantics — injection before bids,
    // retirement after commits, sparse-mode accounting — mirror the legacy
    // branches below; the equality harness pins the traces byte-identical.
    //
    // The whole branch lives in a noinline closure: RouteInternal is one
    // big function, and folding another hundred lines into it measurably
    // degrades the codegen of the legacy sparse loop below (GCC's inlining
    // and register budgets are per-function).
    const auto route_tiled = [&]() __attribute__((noinline)) {
    MetricsRegistry::Gauge* g_tiles = nullptr;
    MetricsRegistry::Gauge* g_tiles_peak = nullptr;
    MetricsRegistry::Counter* c_halo = nullptr;
    if (opts_.metrics != nullptr) {
      g_tiles = &opts_.metrics->gauge("engine.tiles_allocated");
      g_tiles_peak = &opts_.metrics->gauge("engine.tiles_peak");
      c_halo = &opts_.metrics->counter("engine.halo_bytes");
    }
    tiled_->BeginRoute(have_faults ? link_dead_.data() : nullptr, jt);
    if (injector != nullptr && resume == nullptr) {
      // Preload normalization (contract in engine.h, mirrored from the
      // legacy injector branch): preloads count as injected at step 1, and
      // ones already at their destination retire here with latency 0.
      for (ProcId p = 0; p < N; ++p) {
        auto& q = queues[static_cast<std::size_t>(p)];
        std::size_t w = 0;
        const std::size_t sz = q.size();
        for (std::size_t i = 0; i < sz; ++i) {
          q[i].tag = 1;
          if (jt != nullptr) {
            // Preloads count as injected at t0 = 0 (tag 1, latency
            // arrived - tag + 1 = arrived); zero-hop ones deliver here.
            jt->RecordInjected(q[i].id, p, 0, q[i].dist0, q[i].arrived >= 0);
          }
          if (q[i].arrived >= 0) {
            q[i].arrived = 0;
            result.overshoot.Add(0.0);
            injector->OnDeliver(q[i], 0);
            continue;
          }
          if (w != i) q[w] = q[i];
          ++w;
        }
        q.resize(w);
      }
    }
    tiled_->Import(net);
    std::vector<std::pair<ProcId, Packet>> batch;
    std::int64_t last_halo = 0;
    while ((injector != nullptr ? (injecting || in_flight > arrivals_total)
                                : in_flight > arrivals_total) &&
           step < cap) {
      ++step;
      const bool fault_event = apply_events(step);
      const auto now = static_cast<std::int32_t>(step);
      std::int64_t step_injected = 0;
      if (injector != nullptr && injecting) {
        batch.clear();
        const InjectAction action = injector->Inject(step, &batch);
        if (action != InjectAction::kContinue) injecting = false;
        if (action == InjectAction::kStop) injector_stopped = true;
        for (auto& [src, pkt] : batch) {
          pkt.flags &= static_cast<std::uint16_t>(
              ~(Packet::kMoving | Packet::kDetour | Packet::kLockMask |
                Packet::kTwoLeg));
          pkt.tag = step;
          pkt.dist0 = static_cast<std::int32_t>(topo_->Dist(src, pkt.dest));
          result.max_distance =
              std::max<std::int64_t>(result.max_distance, pkt.dist0);
          ++result.packets;
          ++step_injected;
          if (jt != nullptr) {
            // Injected before the bids of `step`: the packet can move this
            // very step, so t0 = step - 1 makes latency = moves + waits.
            jt->RecordInjected(pkt.id, src, step - 1, pkt.dist0,
                               pkt.dest == src);
          }
          if (pkt.dest == src) {
            // Zero-hop traffic never enters the arena: arrived is set one
            // step back so latency (arrived - tag + 1) reads 0.
            pkt.arrived = static_cast<std::int32_t>(now - 1);
            result.overshoot.Add(0.0);
            injector->OnDeliver(pkt, step);
            continue;
          }
          pkt.arrived = -1;
          tiled_->Append(src, pkt);
          ++in_flight;
        }
      }
      const bool use_sparse = mode_for(in_flight - arrivals_total);
      if (use_sparse) ++result.sparse_steps;
      reset_scratch();
      const std::int64_t active =
          tiled_->Step(step, now, count_dirs, scratch_);
      tiled_->FinishStep(injector, step, &result.overshoot,
                         &result.max_overshoot);
      const auto [step_arrivals, step_moves] = reduce_scratch();
      if (g_tiles != nullptr) {
        g_tiles->Set(tiled_->live_tiles());
        g_tiles_peak->Max(tiled_->peak_tiles());
        c_halo->Add(tiled_->halo_bytes() - last_halo);
        last_halo = tiled_->halo_bytes();
      }
      if (emit_step(step, step_arrivals, step_moves,
                    fault_event || step_injected > 0,
                    use_sparse ? active : -1, step_injected)) {
        watchdog_fired = true;
        break;
      }
      if (injector_stopped) break;
      const bool more = injector != nullptr
                            ? (injecting || in_flight > arrivals_total)
                            : in_flight > arrivals_total;
      if (sink != nullptr && more && sink->Due(step)) {
        // save_checkpoint snapshots `net`'s queues: sync the interchange
        // first. The arena keeps routing afterwards, undisturbed.
        tiled_->Export(net);
        save_checkpoint("cadence");
      }
    }
    tiled_->Export(net);
    };
    route_tiled();
  } else if (injector != nullptr) {
    // Open-loop injection: unfused two-phase steps with per-step injection
    // before the bids and delivery retirement after the commits (contract
    // in engine.h). Preloaded packets count as injected at step 1; ones
    // already at their destination retire right here with latency 0. A
    // resumed run skips the normalization — its queues are already mid-run.
    if (resume == nullptr) {
      for (ProcId p = 0; p < N; ++p) {
        auto& q = queues[static_cast<std::size_t>(p)];
        std::size_t w = 0;
        const std::size_t sz = q.size();
        for (std::size_t i = 0; i < sz; ++i) {
          q[i].tag = 1;
          if (jt != nullptr) {
            // Preloads count as injected at t0 = 0 (tag 1, latency
            // arrived - tag + 1 = arrived); zero-hop ones deliver here.
            jt->RecordInjected(q[i].id, p, 0, q[i].dist0, q[i].arrived >= 0);
          }
          if (q[i].arrived >= 0) {
            q[i].arrived = 0;
            result.overshoot.Add(0.0);
            injector->OnDeliver(q[i], 0);
            continue;
          }
          if (w != i) q[w] = q[i];
          ++w;
        }
        q.resize(w);
      }
    }
    std::vector<std::pair<ProcId, Packet>> batch;
    std::vector<ProcId> injected_procs;
    bool active_valid = false;
    while ((injecting || in_flight > arrivals_total) && step < cap) {
      ++step;
      const bool fault_event = apply_events(step);
      const auto now = static_cast<std::int32_t>(step);
      std::int64_t step_injected = 0;
      if (injecting) {
        batch.clear();
        const InjectAction action = injector->Inject(step, &batch);
        if (action != InjectAction::kContinue) injecting = false;
        if (action == InjectAction::kStop) injector_stopped = true;
        injected_procs.clear();
        for (auto& [src, pkt] : batch) {
          pkt.flags &= static_cast<std::uint16_t>(
              ~(Packet::kMoving | Packet::kDetour | Packet::kLockMask |
                Packet::kTwoLeg));
          pkt.tag = step;
          pkt.dist0 = static_cast<std::int32_t>(topo_->Dist(src, pkt.dest));
          result.max_distance =
              std::max<std::int64_t>(result.max_distance, pkt.dist0);
          ++result.packets;
          ++step_injected;
          if (jt != nullptr) {
            // Injected before the bids of `step`: the packet can move this
            // very step, so t0 = step - 1 makes latency = moves + waits.
            jt->RecordInjected(pkt.id, src, step - 1, pkt.dist0,
                               pkt.dest == src);
          }
          if (pkt.dest == src) {
            // Zero-hop traffic never enters the network: arrived is set one
            // step back so latency (arrived - tag + 1) reads 0.
            pkt.arrived = static_cast<std::int32_t>(now - 1);
            result.overshoot.Add(0.0);
            injector->OnDeliver(pkt, step);
            continue;
          }
          pkt.arrived = -1;
          queues[static_cast<std::size_t>(src)].push_back(pkt);
          ++in_flight;
          if (active_valid) injected_procs.push_back(src);
        }
        if (active_valid && !injected_procs.empty()) {
          // Newly injected processors join the sparse active set (merge
          // keeps it ascending and deduped).
          std::sort(injected_procs.begin(), injected_procs.end());
          const auto old = static_cast<std::ptrdiff_t>(active_.size());
          active_.insert(active_.end(), injected_procs.begin(),
                         injected_procs.end());
          std::inplace_merge(active_.begin(), active_.begin() + old,
                             active_.end());
          active_.erase(std::unique(active_.begin(), active_.end()),
                        active_.end());
        }
      }
      const bool use_sparse = mode_for(in_flight - arrivals_total);
      reset_scratch();
      if (use_sparse) {
        if (!active_valid) {
          RebuildActiveSet(net);
          active_valid = true;
        }
        SparseStep(net, step, now, count_dirs, nullptr);
        ++result.sparse_steps;
      } else {
        active_valid = false;
        DenseStep(net, step, now, count_dirs, nullptr);
      }
      // Retire delivered packets: ascending processor order (the sparse
      // commit set is emitted ascending), queue order within a processor.
      const auto retire = [&](ProcId p) {
        auto& q = queues[static_cast<std::size_t>(p)];
        std::size_t w = 0;
        const std::size_t sz = q.size();
        for (std::size_t i = 0; i < sz; ++i) {
          if (q[i].arrived >= 0) {
            const std::int64_t over =
                (static_cast<std::int64_t>(q[i].arrived) - q[i].tag + 1) -
                q[i].dist0;
            result.overshoot.Add(static_cast<double>(over));
            result.max_overshoot = std::max(result.max_overshoot, over);
            injector->OnDeliver(q[i], step);
            continue;
          }
          if (w != i) q[w] = q[i];
          ++w;
        }
        q.resize(w);
      };
      if (use_sparse) {
        for (ProcId p : touched_) retire(p);
      } else {
        for (ProcId p = 0; p < N; ++p) retire(p);
      }
      const auto [step_arrivals, step_moves] = reduce_scratch();
      if (emit_step(step, step_arrivals, step_moves,
                    fault_event || step_injected > 0,
                    use_sparse ? static_cast<std::int64_t>(active_.size())
                               : -1,
                    step_injected)) {
        watchdog_fired = true;
        break;
      }
      if (injector_stopped) break;
      if (sink != nullptr && (injecting || in_flight > arrivals_total) &&
          sink->Due(step)) {
        save_checkpoint("cadence");
      }
    }
  } else if (checker != nullptr || sink != nullptr || resume != nullptr) {
    // Unfused path: plain two-phase steps (bid, CheckSlots, commit) so the
    // per-phase invariants see exactly the state they are specified on.
    // Checkpointing and resume ride the same loop — snapshots need the
    // clean post-commit boundary the fused pipeline never exposes, and a
    // resumed run must step identically to the checkpointing one (unfused
    // and fused are byte-identical by the equality contract, so forcing
    // this loop never changes results).
    bool active_valid = false;
    while (in_flight > arrivals_total && step < cap) {
      ++step;
      const bool fault_event = apply_events(step);
      const bool use_sparse = mode_for(in_flight - arrivals_total);
      reset_scratch();
      const auto now = static_cast<std::int32_t>(step);
      if (use_sparse) {
        if (!active_valid) {
          RebuildActiveSet(net);
          active_valid = true;
        }
        if (checker != nullptr && !slots_clean_) {
          // CheckSlots scans every slot row, so entering sparse mode after
          // a dense step must erase the dense pass's winners once; sparse
          // steps then keep the rows clean incrementally.
          std::fill(slot_.begin(), slot_.end(), -1);
          slots_clean_ = true;
        }
        SparseStep(net, step, now, count_dirs, checker.get());
        ++result.sparse_steps;
      } else {
        active_valid = false;
        DenseStep(net, step, now, count_dirs, checker.get());
      }
      if (checker != nullptr) {
        try {
          checker->CheckStep(net, step);
        } catch (...) {
          // Invariant violations throw; the black box must hit disk before
          // the exception unwinds past the engine.
          if (recorder != nullptr) recorder->Dump("invariant_failure");
          throw;
        }
      }
      const auto [step_arrivals, step_moves] = reduce_scratch();
      if (emit_step(step, step_arrivals, step_moves, fault_event,
                    use_sparse ? static_cast<std::int64_t>(active_.size())
                               : -1,
                    0)) {
        watchdog_fired = true;
        break;
      }
      if (sink != nullptr && in_flight > arrivals_total && sink->Due(step)) {
        save_checkpoint("cadence");
      }
    }
  } else if (in_flight > 0) {
    // Fused pipeline: one pass over the commit set per step performs
    // commit(S) and immediately bids S+1 from the still-hot queue — each
    // processor is traversed once per step, with no mid-step barrier (the
    // parity mailbox keeps the early S+1 scatter off step-S entries).
    // Fault events for S+1 must therefore be applied before pass S runs.
    const std::size_t words = (static_cast<std::size_t>(N) + 63) / 64;
    if (touched_bits_.size() != words) touched_bits_.assign(words, 0);
    const auto mark = [&](ProcId p) {
      touched_bits_[static_cast<std::size_t>(p) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(p) & 63);
    };
    // Bitmap scan emits the commit set deduped and ascending, so the pass
    // walks queue memory sequentially; the words are cleared on the way.
    const auto scan_marks = [&] {
      touched_.clear();
      for (std::size_t wd = 0; wd < touched_bits_.size(); ++wd) {
        std::uint64_t bits = touched_bits_[wd];
        if (bits == 0) continue;
        touched_bits_[wd] = 0;
        while (bits != 0) {
          const int bit = std::countr_zero(bits);
          bits &= bits - 1;
          touched_.push_back(
              static_cast<ProcId>((wd << 6) | static_cast<std::size_t>(bit)));
        }
      }
    };

    // Bootstrap: bid step 1 on its own (every later bid rides a commit).
    bool fault_event_next = apply_events(1);
    bool cur_sparse = mode_for(in_flight);
    reset_scratch();
    if (cur_sparse) {
      RebuildActiveSet(net);
      const auto na = static_cast<std::int64_t>(active_.size());
      const std::int64_t chunk =
          CeilDiv(na, static_cast<std::int64_t>(opts_.pool->ShardsFor(na)));
      opts_.pool->ParallelFor(na, [&](std::int64_t b, std::int64_t e) {
        WorkerScratch& s = scratch_[static_cast<std::size_t>(b / chunk)];
        if (have_faults) {
          for (std::int64_t i = b; i < e; ++i) {
            BidProc<true, true, false>(
                queues, active_[static_cast<std::size_t>(i)], 1, 1, &s);
          }
        } else {
          for (std::int64_t i = b; i < e; ++i) {
            BidProc<false, true, false>(
                queues, active_[static_cast<std::size_t>(i)], 1, 1, &s);
          }
        }
      });
      for (ProcId p : active_) mark(p);
      for (const WorkerScratch& s : scratch_) {
        for (ProcId r : s.receivers) mark(r);
      }
      scan_marks();
    } else {
      const std::int64_t chunk =
          CeilDiv(N, static_cast<std::int64_t>(opts_.pool->ShardsFor(N)));
      opts_.pool->ParallelFor(N, [&](std::int64_t b, std::int64_t e) {
        WorkerScratch* const s =
            &scratch_[static_cast<std::size_t>(b / chunk)];
        if (have_faults) {
          for (ProcId p = b; p < e; ++p) {
            BidProc<true, false, false>(queues, p, 1, 1, s);
          }
        } else {
          for (ProcId p = b; p < e; ++p) {
            BidProc<false, false, false>(queues, p, 1, 1, s);
          }
        }
      });
    }

    while (in_flight > arrivals_total && step < cap) {
      ++step;
      const bool fault_event = fault_event_next;
      fault_event_next = apply_events(step + 1);
      reset_scratch();
      const auto now = static_cast<std::int32_t>(step);
      const int cparity = static_cast<int>(step & 1);  // commit buffer
      const int bparity = cparity ^ 1;                 // bid buffer (S+1)
      std::int64_t nt = 0;
      if (cur_sparse) {
        ++result.sparse_steps;
        nt = static_cast<std::int64_t>(touched_.size());
        touched_inflight_.assign(static_cast<std::size_t>(nt), 0);
        if (nt > 0) {
          const std::int64_t chunk = CeilDiv(
              nt, static_cast<std::int64_t>(opts_.pool->ShardsFor(nt)));
          const std::size_t rows = static_cast<std::size_t>(N);
          opts_.pool->ParallelFor(nt, [&](std::int64_t b, std::int64_t e) {
            WorkerScratch& s = scratch_[static_cast<std::size_t>(b / chunk)];
            // The pass is memory-latency-bound (queue rows, presence rows,
            // destination coordinates are all strided or random). Process
            // in small batches — prefetch every batch member, commit them
            // all (the commit also prefetches each survivor's destination
            // coordinates), then bid them all — so the misses of ~16
            // independent processors are in flight at once instead of one
            // serial chain. Reordering is safe: a commit touches only its
            // own queue and step-S rows, a bid writes only step-S+1 rows.
            constexpr std::int64_t kBatch = 16;
            for (std::int64_t i0 = b; i0 < e; i0 += kBatch) {
              const std::int64_t i1 = std::min(i0 + kBatch, e);
              for (std::int64_t i = i0; i < i1; ++i) {
                const auto pf = static_cast<std::size_t>(
                    touched_[static_cast<std::size_t>(i)]);
                const char* const qp =
                    reinterpret_cast<const char*>(&queues[pf]);
                __builtin_prefetch(qp);
                __builtin_prefetch(qp + 64);
                __builtin_prefetch(
                    in_mask_.data() +
                    (static_cast<std::size_t>(cparity) * rows + pf) *
                        mask_stride_);
                __builtin_prefetch(
                    in_pkt_.data() +
                    (static_cast<std::size_t>(cparity) * rows + pf) * links);
              }
              for (std::int64_t i = i0; i < i1; ++i) {
                touched_inflight_[static_cast<std::size_t>(i)] =
                    CommitProc(queues, touched_[static_cast<std::size_t>(i)],
                               now, count_dirs, cparity, s)
                        ? 1
                        : 0;
              }
              for (std::int64_t i = i0; i < i1; ++i) {
                if (touched_inflight_[static_cast<std::size_t>(i)] != 0) {
                  const ProcId p = touched_[static_cast<std::size_t>(i)];
                  if (have_faults) {
                    BidProc<true, true, false>(queues, p, step + 1, bparity,
                                               &s);
                  } else {
                    BidProc<false, true, false>(queues, p, step + 1, bparity,
                                                &s);
                  }
                }
              }
            }
          });
        }
      } else {
        const std::int64_t chunk =
            CeilDiv(N, static_cast<std::int64_t>(opts_.pool->ShardsFor(N)));
        opts_.pool->ParallelFor(N, [&](std::int64_t b, std::int64_t e) {
          WorkerScratch& s = scratch_[static_cast<std::size_t>(b / chunk)];
          // Commit-then-bid in small batches, as in the sparse pass: the
          // sequential arrays stream well, but the batch gap gives the
          // commit's destination-coordinate prefetches time to land
          // before the bids consume them.
          constexpr std::int64_t kBatch = 16;
          for (std::int64_t p0 = b; p0 < e; p0 += kBatch) {
            const std::int64_t p1 = std::min(p0 + kBatch, e);
            bool infl[kBatch];
            for (ProcId p = p0; p < p1; ++p) {
              infl[p - p0] = CommitProc(queues, p, now, count_dirs,
                                        cparity, s);
            }
            for (ProcId p = p0; p < p1; ++p) {
              if (infl[p - p0]) {
                if (have_faults) {
                  BidProc<true, false, false>(queues, p, step + 1, bparity,
                                              &s);
                } else {
                  BidProc<false, false, false>(queues, p, step + 1, bparity,
                                               &s);
                }
              }
            }
          }
        });
      }
      const auto [step_arrivals, step_moves] = reduce_scratch();
      const std::int64_t remaining = in_flight - arrivals_total;
      const bool next_sparse = mode_for(remaining);
      std::int64_t active_procs = cur_sparse ? 0 : -1;
      if (remaining > 0 && next_sparse) {
        if (cur_sparse) {
          // Incremental: next commit set = still-in-flight processors plus
          // the receivers of the bids just scattered. O(|touched|).
          std::int64_t na = 0;
          for (std::int64_t i = 0; i < nt; ++i) {
            if (touched_inflight_[static_cast<std::size_t>(i)] != 0) {
              mark(touched_[static_cast<std::size_t>(i)]);
              ++na;
            }
          }
          for (const WorkerScratch& s : scratch_) {
            for (ProcId r : s.receivers) mark(r);
          }
          scan_marks();
          active_procs = na;
        } else {
          // Dense-to-sparse transition: one O(N) scan. Occupancy only
          // decays, so this runs at most once per Route call.
          RebuildTouched(net, bparity);
        }
      }
      cur_sparse = next_sparse;
      if (emit_step(step, step_arrivals, step_moves, fault_event,
                    active_procs, 0)) {
        watchdog_fired = true;
        break;
      }
    }
    if (in_flight > arrivals_total) {
      // Aborted (step cap or watchdog) with the pipeline's speculative
      // step+1 bids already scattered: flag the mailbox for lazy clearing
      // and strip the bid marks so the exposed queues match the unfused
      // engine's post-commit state.
      mailbox_dirty_ = true;
      for (ProcId p = 0; p < N; ++p) {
        for (Packet& pkt : queues[static_cast<std::size_t>(p)]) {
          pkt.flags &= static_cast<std::uint16_t>(~Packet::kMoving);
        }
      }
    }
  }

  result.steps = step;
  result.moves = moves_total;
  result.detours = detours_total;
  result.max_queue = queue_max;
  result.completed = in_flight == arrivals_total;
  if (!result.completed && !injector_stopped) {
    // A kStop verdict is a requested early exit, not a stall — the leftover
    // backlog is expected (completed stays false, no report).
    const StallReason reason = interrupted     ? StallReason::kInterrupt
                               : watchdog_fired ? StallReason::kWatchdog
                                                : StallReason::kStepCap;
    result.stall_report = BuildStallReport(net, reason, step, no_progress);
    // The black box dumps on every abort path; with no dump path set this
    // is a no-op (the report already embeds the ring's tail).
    if (recorder != nullptr) {
      recorder->Dump(result.stall_report->ReasonName());
    }
    // Every abort also leaves a resumable snapshot (cause = abort reason):
    // the state is still at a clean step boundary — the unfused loops only
    // break post-commit — so a later Resume picks up exactly here.
    if (sink != nullptr) {
      save_checkpoint(result.stall_report->ReasonName());
    }
  }
  // Consume the interrupt so a later Route (tests, multi-phase campaigns)
  // does not abort instantly on the stale flag.
  if (interrupted) FlightRecorder::ClearInterrupt();

  // Overshoot statistics. Injector runs accumulate per-packet overshoot at
  // retirement instead (their final queues hold only undelivered packets).
  if (injector == nullptr) {
    for (ProcId p = 0; p < N; ++p) {
      for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
        if (pkt.arrived < 0) continue;
        const std::int64_t over = pkt.arrived - pkt.dist0;
        result.overshoot.Add(static_cast<double>(over));
        result.max_overshoot = std::max(result.max_overshoot, over);
      }
    }
  }

  result.manifest = manifest_;

  // Journey epilogue: collect leftovers from abort paths (the per-step
  // drain only runs through reduce_scratch), trim the fused pipeline's
  // speculative step+1 bid waits, and derive the critical-path report.
  if (jt != nullptr) {
    for (WorkerScratch& s : scratch_) jt->Drain(&s.events);
    result.journeys = jt->Finalize(result.steps);
    result.critical_path = BuildCriticalPathReportShared(
        *result.journeys, *topo_, result.steps, result.packets,
        result.max_distance);
  }

  // Metrics recording: once per Route, after the step loop — nothing here
  // touches the hot path, and a null registry skips the block entirely.
  if (opts_.metrics != nullptr) {
    MetricsRegistry& m = *opts_.metrics;
    m.counter("engine.routes").Increment();
    m.counter("engine.steps").Add(result.steps);
    m.counter("engine.moves").Add(result.moves);
    m.counter("engine.packets").Add(result.packets);
    m.counter("engine.detours").Add(result.detours);
    m.counter("engine.sparse_steps").Add(result.sparse_steps);
    m.counter("engine.fault_events").Add(fault_events_total);
    m.gauge("engine.max_queue").Max(result.max_queue);
    m.gauge("engine.peak_active_procs").Max(result.peak_active_procs);
    m.histogram("engine.route_steps").Add(result.steps);
    if (result.stall_report != nullptr) {
      m.counter(std::string("engine.stall.") +
                result.stall_report->ReasonName())
          .Increment();
    }
    if (result.journeys != nullptr) {
      m.counter("engine.journeys.traced").Add(result.journeys->traced_packets);
      m.counter("engine.journeys.events")
          .Add(static_cast<std::int64_t>(result.journeys->events.size()));
      m.gauge("engine.journeys.bound_gap").Max(result.critical_path->bound_gap);
    }
  }
  return result;
}

}  // namespace mdmesh
