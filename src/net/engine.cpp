#include "net/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

namespace mdmesh {
namespace {

/// Queue-occupancy histogram resolution for StepProbe snapshots. Measured
/// maxima stay single-digit (the multi-packet model's O(1)); longer queues
/// clamp into the last bucket and show up as overflow.
constexpr std::size_t kQueueHistBuckets = 64;

/// Watchdog default: a fault-free engine moves at least one packet every
/// step, so this many consecutive zero-move steps means a real deadlock.
constexpr std::int64_t kDefaultStallWindow = 64;

/// A packet whose accumulated slack (steps elapsed beyond its ideal
/// shortest-path schedule) exceeds this starts rotating the fallback detour
/// order, so a detour cycle cannot repeat the same two hops forever.
constexpr std::int64_t kDetourRotateSlack = 4;

/// Past this much slack the packet is assumed trapped in a cycle the plain
/// fallback order cannot escape (e.g. its class insists on re-correcting a
/// sidestep dimension straight back into the wall); it then makes an
/// occasional hash-randomized choice over *every* alive hop, progress hops
/// included, so any escape edge is eventually tried.
constexpr std::int64_t kScrambleSlack = 16;

/// Mixes (step, packet id) into rotation choices for trapped packets. Slack
/// alone is unusable as a rotation source: it can grow by an exact multiple
/// of the candidate count per trap cycle, repeating the same choices forever.
/// The hash sequence never repeats across steps, so a deterministic limit
/// cycle cannot persist — and it stays identical across thread counts.
inline std::uint64_t DetourHash(std::int64_t step, std::int64_t id) {
  std::uint64_t x = (static_cast<std::uint64_t>(step) << 32) ^
                    (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

inline int LockDim(std::uint16_t flags) { return (flags >> 9) & 0xF; }
inline int LockDir(std::uint16_t flags) { return (flags >> 13) & 1; }
inline std::uint16_t MakeLock(int dim, int dir) {
  return static_cast<std::uint16_t>(Packet::kLockActive | (dim << 9) |
                                    (dir << 13));
}

/// Finds the next hop for a packet at coordinates `cp` heading to `dc`,
/// visiting dimensions in the rotated order starting at `klass`. Returns the
/// remaining distance; sets dim/dir to the first uncorrected dimension, or
/// dim = -1 if the packet is at its destination.
std::int64_t NextHop(const std::int32_t* cp, const std::int32_t* dc, int d,
                     int n, bool torus, std::uint16_t klass, int& dim,
                     int& dir) {
  std::int64_t rem = 0;
  dim = -1;
  dir = 0;
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    const std::int32_t c = cp[i];
    const std::int32_t g = dc[i];
    if (c == g) continue;
    std::int64_t dist;
    int step;
    if (torus) {
      std::int64_t forward = Mod(g - c, n);
      if (forward <= n - forward) {
        dist = forward;
        step = 1;
      } else {
        dist = n - forward;
        step = -1;
      }
    } else {
      dist = AbsDiff(c, g);
      step = g > c ? 1 : -1;
    }
    rem += dist;
    if (dim < 0) {
      dim = i;
      dir = step > 0 ? 1 : 0;
    }
  }
  return rem;
}

/// Fault-aware hop selection: like NextHop, but skips dead links. Candidate
/// order — (1) the preferred hop; (2) the other uncorrected dimensions in
/// rotated order (still shortest-path progress, merely out of dimension
/// order); (3) fallbacks that temporarily increase distance: sidesteps
/// through corrected dimensions first (cost 2 around a wall), then the
/// reverse direction of each uncorrected dimension.
///
/// Local information alone livelocks: the node *next to* a dead link sees a
/// healthy shortest-way hop pointing straight back at the wall. Two
/// stateless-per-step escapes handle that, both derived from state the
/// packet already carries:
///  - Wrong-way commitment (torus): taking a reverse fallback locks that
///    (dimension, direction) into the packet's flag bits, and the packet
///    keeps walking the long way around the ring until the dimension is
///    corrected (or the locked path itself dies).
///  - Slack-gated randomization: slack = steps elapsed beyond the packet's
///    ideal shortest-path schedule (from `step` and `dist0`), monotone
///    while stuck. Past kDetourRotateSlack the fallback order rotates by a
///    per-step hash; past kScrambleSlack the packet additionally makes a
///    hash-randomized choice over every alive hop on ~1 in 4 steps. The
///    perturbation is intermittent, so a packet that escapes its trap still
///    drifts home greedily; a trapped one keeps getting kicked until some
///    kick lands on an escape edge.
///
/// Sets dim = -1 when every outgoing link is dead (the packet cannot bid);
/// `detour` is set when the chosen hop differs from the fault-free one.
/// Returns the remaining first-leg distance, like NextHop.
std::int64_t NextHopFaulted(const Topology& topo, ProcId p,
                            const std::int32_t* cp, const std::int32_t* dc,
                            int d, int n, bool torus, std::uint16_t klass,
                            std::int64_t id, std::uint16_t& flags,
                            const std::uint8_t* dead, std::int64_t step,
                            std::int32_t dist0, std::int64_t twoleg_extra,
                            int& dim, int& dir, bool& detour) {
  int u_dim[kMaxDim], u_dir[kMaxDim];
  int nu = 0;
  std::int64_t rem = 0;
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    const std::int32_t c = cp[i];
    const std::int32_t g = dc[i];
    if (c == g) continue;
    std::int64_t dist;
    int sgn;
    if (torus) {
      std::int64_t forward = Mod(g - c, n);
      if (forward <= n - forward) {
        dist = forward;
        sgn = 1;
      } else {
        dist = n - forward;
        sgn = -1;
      }
    } else {
      dist = AbsDiff(c, g);
      sgn = g > c ? 1 : -1;
    }
    rem += dist;
    u_dim[nu] = i;
    u_dir[nu] = sgn > 0 ? 1 : 0;
    ++nu;
  }
  dim = -1;
  dir = 0;
  detour = false;
  if (nu == 0) {
    flags &= static_cast<std::uint16_t>(~Packet::kLockMask);
    return 0;
  }
  // Boundary links (mesh) are filtered by the Neighbor check; the dead mask
  // only covers existing links.
  const auto alive = [&](int di, int dr) {
    return dead[di * 2 + dr] == 0 && topo.Neighbor(p, di, dr) >= 0;
  };
  const std::int64_t slack = (step - 1) - (dist0 - (rem + twoleg_extra));
  const std::uint64_t hash =
      slack > kDetourRotateSlack ? DetourHash(step, id) : 0;
  if ((flags & Packet::kLockActive) != 0) {
    const int ld = LockDim(flags);
    const int ldir = LockDir(flags);
    if (cp[ld] == dc[ld]) {
      // Dimension corrected: the commitment paid off.
      flags &= static_cast<std::uint16_t>(~Packet::kLockMask);
    } else if (alive(ld, ldir)) {
      dim = ld;
      dir = ldir;
      detour = ld != u_dim[0] || ldir != u_dir[0];
      return rem;
    } else {
      // The committed ring is blocked here. Sidestep to an adjacent ring
      // and KEEP the lock — the packet rounds the fault block instead of
      // bouncing back toward the distance gradient it committed against.
      const int np = 2 * (d - 1);
      for (int t = 0; t < np; ++t) {
        int k = t + (np > 0 ? static_cast<int>(DetourHash(step, ~id) %
                                               static_cast<std::uint64_t>(np))
                            : 0);
        if (k >= np) k -= np;
        int i = k / 2;
        if (i >= ld) ++i;  // skip the locked dimension
        const int dr = k & 1;
        if (!alive(i, dr)) continue;
        dim = i;
        dir = dr;
        detour = true;
        return rem;
      }
      // Fully cornered on the committed path: give up the lock.
      flags &= static_cast<std::uint16_t>(~Packet::kLockMask);
    }
  }
  const bool scramble_now = slack > kScrambleSlack && (hash & 3) == 0;
  if (!scramble_now) {
    if (alive(u_dim[0], u_dir[0])) {
      dim = u_dim[0];
      dir = u_dir[0];
      return rem;
    }
    for (int k = 1; k < nu; ++k) {
      if (alive(u_dim[k], u_dir[k])) {
        dim = u_dim[k];
        dir = u_dir[k];
        detour = true;
        return rem;
      }
    }
  }
  int c_dim[4 * kMaxDim], c_dir[4 * kMaxDim];
  bool c_rev[4 * kMaxDim];
  int nc = 0;
  if (scramble_now) {
    for (int k = 0; k < nu; ++k) {
      c_dim[nc] = u_dim[k];
      c_dir[nc] = u_dir[k];
      c_rev[nc] = false;
      ++nc;
    }
  }
  for (int t = 0; t < d; ++t) {
    int i = klass + t;
    if (i >= d) i -= d;
    if (cp[i] != dc[i]) continue;
    c_dim[nc] = i;
    c_dir[nc] = 1;
    c_rev[nc] = false;
    ++nc;
    c_dim[nc] = i;
    c_dir[nc] = 0;
    c_rev[nc] = false;
    ++nc;
  }
  for (int k = 0; k < nu; ++k) {
    c_dim[nc] = u_dim[k];
    c_dir[nc] = 1 - u_dir[k];
    c_rev[nc] = true;
    ++nc;
  }
  // Rotate with bits independent of the (hash & 3) scramble gate — reusing
  // the low bits would make every scramble step pick rotation 0.
  const int rot =
      (nc > 0 && slack > kDetourRotateSlack)
          ? static_cast<int>((hash >> 8) % static_cast<std::uint64_t>(nc))
          : 0;
  for (int t = 0; t < nc; ++t) {
    int k = t + rot;
    if (k >= nc) k -= nc;
    if (!alive(c_dim[k], c_dir[k])) continue;
    dim = c_dim[k];
    dir = c_dir[k];
    detour = dim != u_dim[0] || dir != u_dir[0];
    if (torus && c_rev[k]) {
      flags = static_cast<std::uint16_t>(
          (flags & ~Packet::kLockMask) | MakeLock(dim, dir));
    }
    return rem;
  }
  return rem;  // fully walled in: every outgoing link is dead
}

}  // namespace

Engine::Engine(const Topology& topo, EngineOptions opts)
    : topo_(&topo),
      opts_(opts),
      d_(topo.dim()),
      n_(topo.side()),
      coords_(topo.BuildCoordTable()),
      slot_(static_cast<std::size_t>(topo.size()) * static_cast<std::size_t>(2 * topo.dim())),
      slot_prio_(slot_.size()),
      next_(static_cast<std::size_t>(topo.size())) {
  if (opts_.pool == nullptr) opts_.pool = &ThreadPool::Global();
  if (opts_.faults != nullptr && !opts_.faults->empty()) {
    const Topology& ft = opts_.faults->topo();
    if (ft.dim() != topo.dim() || ft.side() != topo.side() ||
        ft.wrap() != topo.wrap()) {
      throw std::invalid_argument(
          "Engine: FaultPlan was built for a different topology");
    }
    have_faults_ = true;
    link_dead_perm_ = opts_.faults->dead_mask();
    link_dead_ = link_dead_perm_;
    flap_count_.assign(link_dead_.size(), 0);
    events_ = opts_.faults->Events();
  }
}

template <bool kFaults>
void Engine::StepPhaseA(Network& net, std::int64_t step, std::int64_t begin,
                        std::int64_t end) {
  const bool torus = topo_->torus();
  const auto links = static_cast<std::size_t>(2 * d_);
  auto& queues = net.queues();
  for (ProcId p = begin; p < end; ++p) {
    const std::size_t base = static_cast<std::size_t>(p) * links;
    for (std::size_t l = 0; l < links; ++l) {
      slot_[base + l] = -1;
      slot_prio_[base + l] = -1;
    }
    auto& q = queues[static_cast<std::size_t>(p)];
    if (q.empty()) continue;
    const std::int32_t* cp = &coords_[static_cast<std::size_t>(p) * static_cast<std::size_t>(d_)];
    for (std::size_t k = 0; k < q.size(); ++k) {
      Packet& pkt = q[k];
      if (pkt.dest == p) continue;
      const std::int32_t* dc =
          &coords_[static_cast<std::size_t>(pkt.dest) * static_cast<std::size_t>(d_)];
      int dim, dir;
      std::int64_t rem;
      if constexpr (kFaults) {
        // Farthest-first priority counts the full remaining path of a
        // two-leg packet, not just the current leg.
        std::int64_t extra = 0;
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          extra = topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
        }
        bool is_detour = false;
        rem = NextHopFaulted(*topo_, p, cp, dc, d_, n_, torus, pkt.klass,
                             pkt.id, pkt.flags, &link_dead_[base], step,
                             pkt.dist0, extra, dim, dir, is_detour);
        pkt.flags = is_detour
                        ? static_cast<std::uint16_t>(pkt.flags | Packet::kDetour)
                        : static_cast<std::uint16_t>(pkt.flags &
                                                     ~Packet::kDetour);
        rem += extra;
        if (dim < 0) continue;  // every outgoing link is dead: cannot bid
      } else {
        rem = NextHop(cp, dc, d_, n_, torus, pkt.klass, dim, dir);
        assert(dim >= 0);
        // Farthest-first priority counts the full remaining path of a
        // two-leg packet, not just the current leg.
        if ((pkt.flags & Packet::kTwoLeg) != 0) {
          rem += topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
        }
      }
      const std::size_t l = base + static_cast<std::size_t>(dim * 2 + dir);
      const auto cur = slot_[l];
      // Farthest remaining distance wins; ties to the smaller packet id.
      if (cur < 0 || rem > slot_prio_[l] ||
          (rem == slot_prio_[l] && pkt.id < q[static_cast<std::size_t>(cur)].id)) {
        slot_[l] = static_cast<std::int32_t>(k);
        slot_prio_[l] = rem;
      }
    }
    for (std::size_t l = 0; l < links; ++l) {
      if (slot_[base + l] >= 0) {
        q[static_cast<std::size_t>(slot_[base + l])].flags |= Packet::kMoving;
      }
    }
  }
}

std::shared_ptr<StallReport> Engine::BuildStallReport(
    const Network& net, StallReason reason, std::int64_t step,
    std::int64_t no_progress) const {
  auto report = std::make_shared<StallReport>();
  report->reason = reason;
  report->step = step;
  report->no_progress_steps = no_progress;
  const bool torus = topo_->torus();
  for (ProcId p = 0; p < topo_->size(); ++p) {
    for (const Packet& pkt : net.At(p)) {
      if (pkt.arrived >= 0) continue;
      ++report->stuck_packets;
      if (report->sample.size() >= StallReport::kSampleCap) continue;
      StallReport::StuckPacket stuck;
      stuck.id = pkt.id;
      stuck.at = p;
      stuck.dest = pkt.dest;
      const std::int32_t* cp =
          &coords_[static_cast<std::size_t>(p) * static_cast<std::size_t>(d_)];
      const std::int32_t* dc =
          &coords_[static_cast<std::size_t>(pkt.dest) * static_cast<std::size_t>(d_)];
      // Report the *fault-free preferred* hop: the link the packet wants,
      // which is the interesting one when it is dead.
      int dim, dir;
      stuck.remaining = NextHop(cp, dc, d_, n_, torus, pkt.klass, dim, dir);
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        stuck.remaining += topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag));
      }
      stuck.want_dim = dim;
      stuck.want_dir = dir;
      if (have_faults_ && dim >= 0) {
        const std::int64_t link = p * 2 * d_ + dim * 2 + dir;
        stuck.link_dead = link_dead_[static_cast<std::size_t>(link)] != 0;
        if (stuck.link_dead &&
            std::find(report->blocked_links.begin(),
                      report->blocked_links.end(),
                      link) == report->blocked_links.end()) {
          report->blocked_links.push_back(link);
        }
      }
      report->sample.push_back(stuck);
    }
  }
  return report;
}

RouteResult Engine::Route(Network& net) {
  RouteResult result;
  const ProcId N = topo_->size();
  const auto links = static_cast<std::size_t>(2 * d_);
  auto& queues = net.queues();

  // Initialize per-packet measurement state. Two-leg packets (overlapped
  // routing) count their full path as the distance; a zero-length first leg
  // retargets immediately.
  std::int64_t in_flight = 0;  // packets not yet at their final destination
  for (ProcId p = 0; p < N; ++p) {
    for (Packet& pkt : queues[static_cast<std::size_t>(p)]) {
      pkt.flags &= static_cast<std::uint16_t>(
          ~(Packet::kMoving | Packet::kDetour | Packet::kLockMask));
      if ((pkt.flags & Packet::kTwoLeg) != 0) {
        pkt.dist0 = static_cast<std::int32_t>(
            topo_->Dist(p, pkt.dest) +
            topo_->Dist(pkt.dest, static_cast<ProcId>(pkt.tag)));
        if (pkt.dest == p) {
          pkt.dest = static_cast<ProcId>(pkt.tag);
          pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
        }
      } else {
        pkt.dist0 = static_cast<std::int32_t>(topo_->Dist(p, pkt.dest));
      }
      pkt.arrived = pkt.dest == p ? 0 : -1;
      if (pkt.dest != p) ++in_flight;
      result.max_distance = std::max<std::int64_t>(result.max_distance, pkt.dist0);
      ++result.packets;
    }
  }
  result.max_queue = net.MaxQueue();
  // Directed links: 2d per processor on the torus; meshes lose the boundary
  // links (each dimension has 2*(n-1)*n^(d-1) directed links).
  result.links = topo_->torus()
                     ? 2ll * d_ * N
                     : 2ll * d_ * N * (n_ - 1) / n_;

  std::int64_t cap = opts_.step_cap;
  if (cap <= 0) {
    const std::int64_t load = std::max<std::int64_t>(1, CeilDiv(result.packets, N));
    cap = 4 * load * (topo_->Diameter() + n_) + 4096;
  }

  // Fault bookkeeping. Flap windows are relative to each Route call, so the
  // transient state resets here.
  std::size_t event_cursor = 0;
  if (have_faults_) {
    link_dead_ = link_dead_perm_;
    std::fill(flap_count_.begin(), flap_count_.end(), 0);
  }

  // Stall watchdog: abort after `stall_window` consecutive steps in which
  // nothing moved and no fault event fired (instead of burning to the cap).
  std::int64_t stall_window = opts_.stall_window;
  if (stall_window == 0) {
    stall_window = kDefaultStallWindow;
    if (opts_.faults != nullptr) {
      stall_window += 2 * opts_.faults->max_flap_duration();
    }
  }
  const bool watchdog_on = stall_window > 0;
  std::int64_t no_progress = 0;
  bool watchdog_fired = false;

  std::unique_ptr<InvariantChecker> checker;
  if (InvariantsEnabled(opts_.invariants)) {
    checker = std::make_unique<InvariantChecker>(*topo_);
    checker->BeginRun(net);
  }

  std::atomic<std::int64_t> arrivals_total{0};
  std::atomic<std::int64_t> moves_total{0};
  std::atomic<std::int64_t> detours_total{0};
  std::atomic<std::int64_t> queue_max{result.max_queue};

  // Probe support: per-dimension directed-link move counters, collected
  // only when a probe is attached so the unobserved step loop stays lean.
  StepProbe* const probe = opts_.probe;
  const std::size_t dir_slots = probe != nullptr ? links : 0;
  std::vector<std::atomic<std::int64_t>> dir_moves_atomic(dir_slots);
  std::vector<std::int64_t> dir_moves_snapshot(dir_slots);
  const bool want_hist = probe != nullptr && probe->WantsQueueHistogram();

  const bool have_faults = have_faults_;
  std::int64_t step = 0;
  std::int64_t prev_arrivals = 0;
  std::int64_t prev_moves = 0;
  std::int64_t wd_prev_moves = 0;
  while (in_flight > arrivals_total.load(std::memory_order_relaxed) &&
         step < cap) {
    ++step;
    // Apply this step's scheduled flap edges before anyone bids.
    bool fault_event = false;
    if (have_faults) {
      while (event_cursor < events_.size() &&
             events_[event_cursor].step == step) {
        const FaultPlan::FlapEvent& ev = events_[event_cursor++];
        const auto l = static_cast<std::size_t>(ev.link);
        flap_count_[l] += ev.delta;
        assert(flap_count_[l] >= 0);
        link_dead_[l] = (link_dead_perm_[l] != 0 || flap_count_[l] > 0) ? 1 : 0;
        fault_event = true;
      }
    }
    for (auto& c : dir_moves_atomic) c.store(0, std::memory_order_relaxed);
    if (have_faults) {
      opts_.pool->ParallelFor(N, [&](std::int64_t begin, std::int64_t end) {
        StepPhaseA<true>(net, step, begin, end);
      });
    } else {
      opts_.pool->ParallelFor(N, [&](std::int64_t begin, std::int64_t end) {
        StepPhaseA<false>(net, step, begin, end);
      });
    }
    if (checker != nullptr) {
      checker->CheckSlots(net, slot_, have_faults ? link_dead_.data() : nullptr,
                          step);
    }
    const std::int32_t now = static_cast<std::int32_t>(step);
    opts_.pool->ParallelFor(N, [&](std::int64_t begin, std::int64_t end) {
      std::int64_t local_arrivals = 0;
      std::int64_t local_moves = 0;
      std::int64_t local_detours = 0;
      std::int64_t local_qmax = 0;
      std::vector<std::int64_t> local_dirs(dir_slots, 0);
      for (ProcId p = begin; p < end; ++p) {
        auto& out = next_[static_cast<std::size_t>(p)];
        out.clear();
        // Stayers: everything not selected to move out.
        for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
          if ((pkt.flags & Packet::kMoving) == 0) out.push_back(pkt);
        }
        // Incomers: one per directed in-link, from the neighbor's slot.
        for (int dim = 0; dim < d_; ++dim) {
          for (int dir = 0; dir < 2; ++dir) {
            const ProcId q = topo_->Neighbor(p, dim, dir);
            if (q < 0) continue;
            // q sends toward p on its (dim, 1-dir) link.
            const std::size_t l =
                static_cast<std::size_t>(q) * links +
                static_cast<std::size_t>(dim * 2 + (1 - dir));
            const auto k = slot_[l];
            if (k < 0) continue;
            Packet pkt = queues[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)];
            if (have_faults && (pkt.flags & Packet::kDetour) != 0) {
              ++local_detours;
            }
            pkt.flags &= static_cast<std::uint16_t>(
                ~(Packet::kMoving | Packet::kDetour));
            ++local_moves;
            if (dir_slots != 0) {
              // The packet crossed q's (dim, 1-dir) directed link.
              ++local_dirs[static_cast<std::size_t>(dim * 2 + (1 - dir))];
            }
            if (pkt.dest == p) {
              if ((pkt.flags & Packet::kTwoLeg) != 0) {
                // Midpoint reached: retarget to the final destination and
                // keep going next step — no barrier between the phases.
                pkt.dest = static_cast<ProcId>(pkt.tag);
                pkt.flags &= static_cast<std::uint16_t>(~Packet::kTwoLeg);
                if (pkt.dest == p) {
                  pkt.arrived = now;
                  ++local_arrivals;
                }
              } else {
                pkt.arrived = now;
                ++local_arrivals;
              }
            }
            out.push_back(pkt);
          }
        }
        local_qmax = std::max<std::int64_t>(local_qmax, static_cast<std::int64_t>(out.size()));
      }
      arrivals_total.fetch_add(local_arrivals, std::memory_order_relaxed);
      moves_total.fetch_add(local_moves, std::memory_order_relaxed);
      if (local_detours != 0) {
        detours_total.fetch_add(local_detours, std::memory_order_relaxed);
      }
      for (std::size_t i = 0; i < dir_slots; ++i) {
        if (local_dirs[i] != 0) {
          dir_moves_atomic[i].fetch_add(local_dirs[i], std::memory_order_relaxed);
        }
      }
      std::int64_t seen = queue_max.load(std::memory_order_relaxed);
      while (local_qmax > seen &&
             !queue_max.compare_exchange_weak(seen, local_qmax, std::memory_order_relaxed)) {
      }
    });
    queues.swap(next_);
    if (checker != nullptr) checker->CheckStep(net, step);
    if (opts_.observer || probe != nullptr) {
      const std::int64_t arrived_now = arrivals_total.load(std::memory_order_relaxed);
      const std::int64_t arrivals_this = arrived_now - prev_arrivals;
      if (opts_.observer) {
        opts_.observer(step, in_flight - arrived_now, arrivals_this);
      }
      if (probe != nullptr) {
        const std::int64_t moves_now = moves_total.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < dir_slots; ++i) {
          dir_moves_snapshot[i] = dir_moves_atomic[i].load(std::memory_order_relaxed);
        }
        StepSnapshot snap;
        snap.step = step;
        snap.in_flight = in_flight - arrived_now;
        snap.arrivals = arrivals_this;
        snap.moves = moves_now - prev_moves;
        snap.dims = d_;
        snap.dim_dir_moves = dir_moves_snapshot.data();
        Histogram hist(kQueueHistBuckets);
        if (want_hist) {
          for (ProcId p = 0; p < N; ++p) {
            hist.Add(static_cast<std::int64_t>(queues[static_cast<std::size_t>(p)].size()));
          }
          snap.queue_hist = &hist;
        }
        probe->OnStep(snap);
        prev_moves = moves_now;
      }
      prev_arrivals = arrived_now;
    }
    if (watchdog_on) {
      const std::int64_t moves_now = moves_total.load(std::memory_order_relaxed);
      if (moves_now == wd_prev_moves && !fault_event) {
        ++no_progress;
      } else {
        no_progress = 0;
      }
      wd_prev_moves = moves_now;
      if (no_progress >= stall_window &&
          in_flight > arrivals_total.load(std::memory_order_relaxed)) {
        watchdog_fired = true;
        break;
      }
    }
  }

  result.steps = step;
  result.moves = moves_total.load();
  result.detours = detours_total.load();
  result.max_queue = queue_max.load();
  result.completed = in_flight == arrivals_total.load();
  if (!result.completed) {
    result.stall_report = BuildStallReport(
        net, watchdog_fired ? StallReason::kWatchdog : StallReason::kStepCap,
        step, no_progress);
  }

  // Overshoot statistics.
  for (ProcId p = 0; p < N; ++p) {
    for (const Packet& pkt : queues[static_cast<std::size_t>(p)]) {
      if (pkt.arrived < 0) continue;
      const std::int64_t over = pkt.arrived - pkt.dist0;
      result.overshoot.Add(static_cast<double>(over));
      result.max_overshoot = std::max(result.max_overshoot, over);
    }
  }
  return result;
}

}  // namespace mdmesh
