#include "net/metrics.h"

#include <algorithm>
#include <sstream>

namespace mdmesh {

std::string RouteResult::ToString() const {
  std::ostringstream os;
  os << "steps=" << steps << " packets=" << packets << " moves=" << moves
     << " max_queue=" << max_queue << " max_distance=" << max_distance
     << " max_overshoot=" << max_overshoot
     << (completed ? "" : " INCOMPLETE");
  return os.str();
}

void RouteResult::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("steps").Int(steps);
  w.Key("moves").Int(moves);
  w.Key("max_queue").Int(max_queue);
  w.Key("packets").Int(packets);
  w.Key("links").Int(links);
  w.Key("completed").Bool(completed);
  w.Key("link_utilization").Double(LinkUtilization());
  w.Key("max_distance").Int(max_distance);
  w.Key("max_overshoot").Int(max_overshoot);
  w.Key("overshoot_mean")
      .Double(overshoot.count() > 0 ? overshoot.mean() : 0.0);
  w.EndObject();
}

std::string RouteResult::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  return os.str();
}

void RouteResult::RecordTo(Span& span) const {
  span.RecordRouting(steps, moves, max_queue, max_overshoot);
}

void RouteResult::Accumulate(const RouteResult& phase) {
  steps += phase.steps;
  moves += phase.moves;
  max_queue = std::max(max_queue, phase.max_queue);
  packets = std::max(packets, phase.packets);
  completed = completed && phase.completed;
  max_distance = std::max(max_distance, phase.max_distance);
  max_overshoot = std::max(max_overshoot, phase.max_overshoot);
  overshoot.Merge(phase.overshoot);
}

}  // namespace mdmesh
