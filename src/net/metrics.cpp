#include "net/metrics.h"

#include <algorithm>
#include <sstream>

#include "obs/critical_path.h"
#include "obs/journey.h"

namespace mdmesh {

const char* StallReport::ReasonName() const {
  switch (reason) {
    case StallReason::kWatchdog:
      return "watchdog";
    case StallReason::kInterrupt:
      return "interrupt";
    default:
      return "step_cap";
  }
}

std::string StallReport::ToString() const {
  std::ostringstream os;
  os << "stall[" << ReasonName() << "] at step " << step << ": "
     << stuck_packets << " packet(s) in flight, " << no_progress_steps
     << " trailing no-progress step(s)";
  for (const StuckPacket& pkt : sample) {
    os << "\n  packet " << pkt.id << " at " << pkt.at << " -> " << pkt.dest
       << " (remaining " << pkt.remaining << ")";
    if (pkt.want_dim >= 0) {
      os << " wants dim " << pkt.want_dim << (pkt.want_dir > 0 ? "+" : "-")
         << (pkt.link_dead ? " [link dead]" : " [link alive]");
    } else {
      os << " has no alive outgoing link";
    }
  }
  return os.str();
}

void StallReport::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("reason").String(ReasonName());
  w.Key("step").Int(step);
  w.Key("no_progress_steps").Int(no_progress_steps);
  w.Key("stuck_packets").Int(stuck_packets);
  w.Key("sample").BeginArray();
  for (const StuckPacket& pkt : sample) {
    w.BeginObject();
    w.Key("id").Int(pkt.id);
    w.Key("at").Int(pkt.at);
    w.Key("dest").Int(pkt.dest);
    w.Key("remaining").Int(pkt.remaining);
    w.Key("want_dim").Int(pkt.want_dim);
    w.Key("want_dir").Int(pkt.want_dir);
    w.Key("link_dead").Bool(pkt.link_dead);
    w.EndObject();
  }
  w.EndArray();
  w.Key("blocked_links").BeginArray();
  for (std::int64_t link : blocked_links) w.Int(link);
  w.EndArray();
  if (!recent.empty()) {
    w.Key("recent").BeginArray();
    for (const FlightRecord& rec : recent) rec.WriteJson(w);
    w.EndArray();
  }
  w.EndObject();
}

std::string RouteResult::ToString() const {
  std::ostringstream os;
  os << "steps=" << steps << " packets=" << packets << " moves=" << moves
     << " max_queue=" << max_queue << " max_distance=" << max_distance
     << " max_overshoot=" << max_overshoot;
  if (detours > 0) os << " detours=" << detours;
  if (!completed) {
    os << " INCOMPLETE";
    if (stall_report != nullptr) {
      os << " (" << stall_report->ReasonName() << ")";
    }
  }
  return os.str();
}

void RouteResult::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("steps").Int(steps);
  w.Key("moves").Int(moves);
  w.Key("max_queue").Int(max_queue);
  w.Key("packets").Int(packets);
  w.Key("links").Int(links);
  w.Key("completed").Bool(completed);
  w.Key("link_utilization").Double(LinkUtilization());
  w.Key("max_distance").Int(max_distance);
  w.Key("max_overshoot").Int(max_overshoot);
  w.Key("overshoot_mean")
      .Double(overshoot.count() > 0 ? overshoot.mean() : 0.0);
  w.Key("detours").Int(detours);
  w.Key("sparse_steps").Int(sparse_steps);
  w.Key("peak_active_procs").Int(peak_active_procs);
  if (stall_report != nullptr) {
    w.Key("stall");
    stall_report->WriteJson(w);
  }
  if (manifest != nullptr) {
    w.Key("manifest");
    manifest->WriteJson(w);
  }
  if (journeys != nullptr) {
    w.Key("journeys").BeginObject();
    w.Key("traced_packets").Int(journeys->traced_packets);
    w.Key("events").Int(static_cast<std::int64_t>(journeys->events.size()));
    w.Key("sample_rate").Double(journeys->sample_rate);
    w.Key("sample_seed").Int(journeys->sample_seed);
    w.Key("truncated").Bool(journeys->truncated);
    w.EndObject();
  }
  if (critical_path != nullptr) {
    w.Key("critical_path");
    critical_path->WriteJson(w);
  }
  w.EndObject();
}

std::string RouteResult::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  return os.str();
}

void RouteResult::RecordTo(Span& span) const {
  span.RecordRouting(steps, moves, max_queue, max_overshoot);
}

void RouteResult::Accumulate(const RouteResult& phase) {
  steps += phase.steps;
  moves += phase.moves;
  max_queue = std::max(max_queue, phase.max_queue);
  packets = std::max(packets, phase.packets);
  completed = completed && phase.completed;
  max_distance = std::max(max_distance, phase.max_distance);
  max_overshoot = std::max(max_overshoot, phase.max_overshoot);
  overshoot.Merge(phase.overshoot);
  detours += phase.detours;
  sparse_steps += phase.sparse_steps;
  peak_active_procs = std::max(peak_active_procs, phase.peak_active_procs);
  if (stall_report == nullptr) stall_report = phase.stall_report;
  if (manifest == nullptr) manifest = phase.manifest;
  if (journeys == nullptr) journeys = phase.journeys;
  if (critical_path == nullptr) critical_path = phase.critical_path;
}

}  // namespace mdmesh
