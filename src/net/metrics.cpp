#include "net/metrics.h"

#include <algorithm>
#include <sstream>

namespace mdmesh {

std::string RouteResult::ToString() const {
  std::ostringstream os;
  os << "steps=" << steps << " packets=" << packets << " moves=" << moves
     << " max_queue=" << max_queue << " max_distance=" << max_distance
     << " max_overshoot=" << max_overshoot
     << (completed ? "" : " INCOMPLETE");
  return os.str();
}

void RouteResult::Accumulate(const RouteResult& phase) {
  steps += phase.steps;
  moves += phase.moves;
  max_queue = std::max(max_queue, phase.max_queue);
  packets = std::max(packets, phase.packets);
  completed = completed && phase.completed;
  max_distance = std::max(max_distance, phase.max_distance);
  max_overshoot = std::max(max_overshoot, phase.max_overshoot);
  overshoot.Merge(phase.overshoot);
}

}  // namespace mdmesh
