// Engine checkpoint state and the sink interface the engine emits it
// through (EngineOptions::checkpoint).
//
// A checkpoint is a complete snapshot of a Route call at a clean step
// boundary: every per-processor queue (packets verbatim, including the
// detour lock bits that faulted torus routing carries between steps), the
// step cursor and every loop accumulator, the fault-replay cursor, and an
// opaque injector blob (StepInjector::SaveState — for OpenLoopInjector that
// is the RNG stream, the warmup/measure cursors, and the latency
// histogram). Engine::Resume rebuilds the run from such a snapshot and
// continues it; the contract — pinned by tests/test_ckpt.cpp — is that the
// resumed run's delivery trace and final queue contents are byte-identical
// to the uninterrupted run, for any thread count, sparse or dense traversal,
// with or without faults.
//
// Layering: this header stays in the net layer (plain data + an abstract
// sink) so the engine never depends on a file format. The file format —
// versioned framing, CRC-32 integrity, atomic writes, keep-K rotation and
// corrupt-generation fallback — lives above it in ckpt/checkpoint.h and
// ckpt/manager.h.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace mdmesh {

/// Full engine state at a completed step S: resuming from it and running
/// steps S+1.. reproduces the uninterrupted run exactly.
struct EngineCheckpointState {
  /// Topology shape the snapshot was taken on; Resume refuses a mismatch.
  int d = 0;
  int n = 0;
  bool torus = false;
  /// HashEngineOptions of the producing engine (the RunManifest
  /// engine_options_hash). Resume refuses a checkpoint routed under
  /// different options — silently continuing one would produce a trace
  /// that matches neither configuration.
  std::uint64_t options_hash = 0;
  /// Whether the producing run had a StepInjector attached; must match the
  /// resuming engine (the two loop shapes are not interchangeable).
  bool injector_attached = false;

  std::int64_t step = 0;  ///< last completed step

  // Step-loop accumulators (Engine::Route locals).
  std::int64_t in_flight = 0;
  std::int64_t arrivals_total = 0;
  std::int64_t moves_total = 0;
  std::int64_t detours_total = 0;
  std::int64_t fault_events_total = 0;
  std::int64_t queue_max = 0;
  std::int64_t no_progress = 0;  ///< watchdog zero-progress streak
  bool injecting = false;        ///< injector still in kContinue (else drain)

  // RouteResult accumulators carried across the boundary.
  std::int64_t packets = 0;
  std::int64_t max_distance = 0;
  std::int64_t sparse_steps = 0;
  std::int64_t peak_active_procs = -1;
  std::int64_t max_overshoot = 0;
  // Welford moments of the overshoot Accumulator (injector runs accumulate
  // overshoot at retirement, so it is genuine mid-run state).
  std::int64_t overshoot_count = 0;
  double overshoot_mean = 0.0;
  double overshoot_m2 = 0.0;
  double overshoot_min = 0.0;
  double overshoot_max = 0.0;

  /// Flap events already applied: link_dead_/flap_count_ are reconstructed
  /// by replaying FaultPlan events [0, fault_cursor) — cheaper and safer
  /// than serializing the per-link masks.
  std::uint64_t fault_cursor = 0;

  /// Per-processor queues, verbatim and in order. At a clean step boundary
  /// no packet carries the engine's kMoving scratch bit; detour locks and
  /// kDetour persist as genuine routing state.
  std::vector<std::vector<Packet>> queues;

  /// Opaque injector state (StepInjector::SaveState). Empty when no
  /// injector was attached.
  std::vector<std::uint8_t> injector_state;
};

/// Checkpoint consumer attached via EngineOptions::checkpoint. The engine
/// calls both methods from the coordinator thread only.
///
/// Contract:
///  * Due(step) is polled once after every completed step; returning true
///    makes the engine snapshot its state and call Save(state, "cadence").
///    Due decides the cadence (step count, wall clock, or both) — the
///    engine imposes none.
///  * Save(state, cause) also fires on every abort path — watchdog stall,
///    step cap, SIGINT/SIGTERM — with `cause` naming the abort reason, so
///    an interrupted campaign always leaves a resumable snapshot alongside
///    the flight-recorder dump. A run that completes or stops on an
///    injector kStop verdict does not checkpoint (there is nothing left to
///    resume).
///  * Attaching a sink forces the unfused two-phase step loop (checkpoints
///    need a clean boundary the fused commit/bid pipeline never exposes)
///    but must not change results: unfused and fused are byte-identical by
///    the PR 3 equality contract. With no sink the fused hot path is
///    untouched — checkpointing disabled costs nothing.
///  * Save must not mutate the engine or the network; it sees a const
///    snapshot and typically serializes it (ckpt::CheckpointManager writes
///    a versioned, CRC-checksummed file via an atomic rename and rotates
///    old generations).
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;

  /// Cadence poll, once per completed step. Cheap: called on the hot loop's
  /// coordinator (but only when a sink is attached at all).
  virtual bool Due(std::int64_t step) = 0;

  /// Consume one snapshot. `cause` is "cadence" or the abort reason
  /// ("watchdog", "step_cap", "interrupt").
  virtual void Save(const EngineCheckpointState& state, const char* cause) = 0;
};

}  // namespace mdmesh
