#include "net/tile_arena.h"

#include <bit>
#include <cassert>

namespace mdmesh {

namespace {

constexpr std::size_t kBlockAlign = 64;

std::size_t AlignUp(std::size_t x, std::size_t a) {
  return (x + a - 1) & ~(a - 1);
}

}  // namespace

TileArena::TileArena(const Topology& topo)
    : topo_(&topo),
      d_(topo.dim()),
      nprocs_(topo.size()),
      ntiles_(TileMap::TileCount(topo.size())) {
  const std::size_t d = static_cast<std::size_t>(d_);
  const std::size_t nlinks = 2 * d;
  const std::size_t slots = kTileSlots;
  const std::size_t lanes = kTileLanes;

  // Offsets in alignment order: u8, u64 words, i64 columns, Packet mail,
  // i32 columns, u16 columns. Everything 8-byte-aligned after the cnt
  // bytes, so no padding is needed between sections.
  std::size_t off = 0;
  off_cnt_ = off;
  off += slots * sizeof(std::uint16_t);
  off_nonempty_ = off;
  off += sizeof(std::uint64_t);
  off_inflight_ = off;
  off += sizeof(std::uint64_t);
  off_pend_ = off;
  off += nlinks * sizeof(std::uint64_t);
  header_bytes_ = off;

  off_key_ = off;
  off += lanes * slots * sizeof(std::uint64_t);
  off_id_ = off;
  off += lanes * slots * sizeof(std::int64_t);
  off_tag_ = off;
  off += lanes * slots * sizeof(std::int64_t);
  off_dest_ = off;
  off += lanes * slots * sizeof(std::int64_t);
  off_mail_ = off;
  off += nlinks * slots * sizeof(Packet);
  off_mail_dc_ = off;
  off += nlinks * slots * d * sizeof(std::int32_t);
  off_dc_ = off;
  off += d * lanes * slots * sizeof(std::int32_t);
  off_ccoord_ = off;
  off += d * slots * sizeof(std::int32_t);
  off_dist0_ = off;
  off += lanes * slots * sizeof(std::int32_t);
  off_arrived_ = off;
  off += lanes * slots * sizeof(std::int32_t);
  off_klass_ = off;
  off += lanes * slots * sizeof(std::uint16_t);
  off_flags_ = off;
  off += lanes * slots * sizeof(std::uint16_t);
  block_bytes_ = AlignUp(off, kBlockAlign);

  phys_.assign(static_cast<std::size_t>(ntiles_), -1);
  live_bits_.assign(static_cast<std::size_t>((ntiles_ + 63) / 64), 0);
}

std::int32_t TileArena::Ensure(std::int64_t tile) {
  assert(tile >= 0 && tile < ntiles_);
  std::int32_t ph = phys_[static_cast<std::size_t>(tile)];
  if (ph >= 0) return ph;

  if (!free_.empty()) {
    ph = free_.back();
    free_.pop_back();
  } else {
    ph = static_cast<std::int32_t>(blocks_.size());
    blocks_.emplace_back(new std::uint8_t[block_bytes_]);
    ovf_.emplace_back();
  }
  phys_[static_cast<std::size_t>(tile)] = ph;
  live_bits_[static_cast<std::size_t>(tile >> 6)] |=
      std::uint64_t{1} << (tile & 63);
  ++live_;
  ++total_allocs_;
  if (live_ > peak_) peak_ = live_;

  std::uint8_t* b = block(ph);
  std::memset(b, 0, header_bytes_);
  ovf_[static_cast<std::size_t>(ph)].clear();

  // Fill own-coordinate columns for the tile's processors. Slots whose
  // processor id lands at or beyond N (partial last tile) are left as-is;
  // they are never marked in any bitmap, so their columns are never read.
  std::int32_t* cc = reinterpret_cast<std::int32_t*>(b + off_ccoord_);
  for (int slot = 0; slot < kTileSlots; ++slot) {
    const ProcId p = TileMap::ProcOf(tile, slot);
    if (p >= nprocs_) continue;
    const Point pt = topo_->Coords(p);
    for (int i = 0; i < d_; ++i) {
      cc[static_cast<std::size_t>(i) * kTileSlots +
         static_cast<std::size_t>(slot)] = pt[static_cast<std::size_t>(i)];
    }
  }
  return ph;
}

void TileArena::Free(std::int64_t tile) {
  assert(tile >= 0 && tile < ntiles_);
  const std::int32_t ph = phys_[static_cast<std::size_t>(tile)];
  assert(ph >= 0);
  phys_[static_cast<std::size_t>(tile)] = -1;
  live_bits_[static_cast<std::size_t>(tile >> 6)] &=
      ~(std::uint64_t{1} << (tile & 63));
  free_.push_back(ph);
  --live_;
}

void TileArena::Reset() {
  for (std::size_t w = 0; w < live_bits_.size(); ++w) {
    std::uint64_t bits = live_bits_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      Free(static_cast<std::int64_t>(w * 64) + b);
    }
  }
  live_ = 0;
  peak_ = 0;
  total_allocs_ = 0;
}

void TileArena::ReadLane(std::int32_t ph, int k, int slot, Packet* out) {
  const std::size_t e = static_cast<std::size_t>(k) * kTileSlots +
                        static_cast<std::size_t>(slot);
  out->key = key_col(ph)[e];
  out->id = id_col(ph)[e];
  out->tag = tag_col(ph)[e];
  out->dest = dest_col(ph)[e];
  out->dist0 = dist0_col(ph)[e];
  out->arrived = arrived_col(ph)[e];
  out->klass = klass_col(ph)[e];
  out->flags = flags_col(ph)[e];
}

void TileArena::WriteLane(std::int32_t ph, int k, int slot, const Packet& pkt,
                          const std::int32_t* dcoords) {
  const std::size_t e = static_cast<std::size_t>(k) * kTileSlots +
                        static_cast<std::size_t>(slot);
  key_col(ph)[e] = pkt.key;
  id_col(ph)[e] = pkt.id;
  tag_col(ph)[e] = pkt.tag;
  dest_col(ph)[e] = pkt.dest;
  dist0_col(ph)[e] = pkt.dist0;
  arrived_col(ph)[e] = pkt.arrived;
  klass_col(ph)[e] = pkt.klass;
  flags_col(ph)[e] = pkt.flags;
  std::int32_t* d_cols = dc(ph);
  for (int i = 0; i < d_; ++i) {
    d_cols[(static_cast<std::size_t>(i) * kTileLanes +
            static_cast<std::size_t>(k)) *
               kTileSlots +
           static_cast<std::size_t>(slot)] = dcoords[i];
  }
}

}  // namespace mdmesh
