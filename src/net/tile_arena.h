// Tiled structure-of-arrays packet storage (the tiled layout's backing
// store; see net/engine_tiled.h for the step machinery and net/network.h
// for the layout contract).
//
// Processors are grouped 64 to a *tile*. A tile is one contiguous byte
// block holding the routing state of its 64 processors as columns
// (structure of arrays): destination ids, destination coordinates, classes,
// flags, arrival stamps — 64 values of one field per column section, so the
// bid pass streams columns instead of chasing per-processor heap queues.
// Each slot (processor) holds up to kTileLanes resident packets in the
// columns; deeper queues spill per-tile into an overflow side vector, which
// measured occupancy (single digits, multi-packet model) makes rare.
//
// Address interleaving: the processor-to-(tile, slot) map is bit-sliced in
// the DDR rank/bank/row idiom — the tile index is the high bits and the
// in-tile slot is the low 6 bits XOR-swizzled with the low 6 tile bits
// (TileMap). The XOR swizzle decorrelates slot index from the low processor
// bits, so regular traffic patterns (dimension-0 neighbors, strided
// permutations) spread across slots instead of hammering one column
// position tile after tile. The map is a bijection per tile by
// construction (XOR with a constant permutes [0, 64)); tests pin this for
// non-power-of-two sides and d in {2, 3, 4}.
//
// Allocation: tiles are allocated on first touch (Ensure) and recycled
// through a free list (Free) — the arena's footprint is proportional to
// *occupied* tiles, not to the topology size N. Physical blocks are
// retained across frees and reused, so a long run's steady state performs
// no allocation at all.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "meshsim/topology.h"
#include "net/packet.h"
#include "util/inline_vec.h"

namespace mdmesh {

inline constexpr int kTileSlotBits = 6;
inline constexpr int kTileSlots = 1 << kTileSlotBits;  // processors per tile
/// Resident packets per slot held in the SoA columns before spilling to the
/// per-tile overflow vector. 4 matches the legacy PacketQueue inline
/// capacity (and the multi-packet model's measured occupancy).
inline constexpr int kTileLanes = 4;

/// The bit-sliced processor-to-(tile, slot) address map. All members are
/// pure bit arithmetic — no topology knowledge, no bounds checks; a partial
/// last tile (N not a multiple of 64) simply has slots whose ProcOf lands
/// at or beyond N, which iteration must skip.
struct TileMap {
  static std::int64_t TileOf(ProcId p) { return p >> kTileSlotBits; }

  /// Slot of p inside its tile: low 6 bits XOR-swizzled with the low 6
  /// tile bits (bank-swizzle idiom).
  static int SlotOf(ProcId p) {
    return static_cast<int>((p ^ (p >> kTileSlotBits)) & (kTileSlots - 1));
  }

  /// Inverse of (TileOf, SlotOf): the processor in `tile` at `slot`.
  static ProcId ProcOf(std::int64_t tile, int slot) {
    return (tile << kTileSlotBits) |
           (static_cast<std::int64_t>(slot) ^ (tile & (kTileSlots - 1)));
  }

  /// Slot of the processor whose low 6 id bits are `low`: iterating
  /// low = 0..63 visits a tile's processors in ascending-id order.
  static int SlotForLow(std::int64_t tile, int low) {
    return static_cast<int>((low ^ tile) & (kTileSlots - 1));
  }

  static std::int64_t TileCount(ProcId nprocs) {
    return (nprocs + kTileSlots - 1) >> kTileSlotBits;
  }
};

/// Overflow record for a queue that outgrew its kTileLanes columns. `seq`
/// is the packet's queue position (>= kTileLanes); a slot's entries appear
/// in the per-tile overflow vector in ascending seq order by construction
/// (appends only ever push the next position), so gathering a queue never
/// sorts.
struct TileOvEntry {
  Packet pkt;
  std::int32_t slot;
  std::int32_t seq;
};

/// The tile directory + block store. Column layout per block, in alignment
/// order (offsets computed once from d; L = 2d links):
///
///   cnt       u16[64]           total queue length per slot (ovf included)
///   nonempty  u64               bitmap: cnt[s] > 0
///   inflight  u64               bitmap: slot holds a packet with arrived < 0
///   pend      u64[L]            per-link incoming-mail bitmaps
///   key/id/tag/dest             i64 columns, element (lane k, slot s) at
///                               [k*64 + s]
///   mail      Packet[L][64]     receiver mailbox, cell (l, s) at [l*64 + s]
///   mail_dc   i32[L][64][d]     dest coords riding with each mail cell
///   dc        i32[d][kLanes][64] dest coords, (dim i, lane k, slot s) at
///                               [(i*kLanes + k)*64 + s] (StridedCoords
///                               stride kLanes*64)
///   ccoord    i32[d][64]        own coords, (i, s) at [i*64 + s], filled at
///                               Ensure (StridedCoords stride 64)
///   dist0/arrived               i32 columns like key/id
///   klass/flags                 u16 columns like key/id
///
/// The header (cnt..pend) is the only region Ensure must zero on a rebind;
/// column garbage under cleared bitmaps is never read.
class TileArena {
 public:
  explicit TileArena(const Topology& topo);

  std::int64_t tiles() const { return ntiles_; }
  std::size_t block_bytes() const { return block_bytes_; }

  bool IsLive(std::int64_t tile) const {
    return phys_[static_cast<std::size_t>(tile)] >= 0;
  }
  std::int32_t Phys(std::int64_t tile) const {
    return phys_[static_cast<std::size_t>(tile)];
  }
  /// Live-tile bitmap (tiles()/64 words, logical tile order) — the step
  /// scheduler scans this ascending.
  const std::vector<std::uint64_t>& live_bits() const { return live_bits_; }

  /// Returns the tile's physical block index, allocating (free list first,
  /// then a fresh block) and initializing it on first touch: header zeroed,
  /// ccoord columns filled from the topology, overflow cleared.
  std::int32_t Ensure(std::int64_t tile);

  /// Returns the tile's block to the free list. The block's memory is
  /// retained for reuse; only the directory entry and live bit are cleared.
  void Free(std::int64_t tile);

  /// Frees every live tile and resets the occupancy statistics (peak,
  /// total allocations). Blocks are retained.
  void Reset();

  std::int64_t live_tiles() const { return live_; }
  std::int64_t peak_tiles() const { return peak_; }
  std::int64_t total_allocs() const { return total_allocs_; }

  // Column accessors, by physical block index.
  std::uint16_t* cnt(std::int32_t ph) {
    return reinterpret_cast<std::uint16_t*>(block(ph) + off_cnt_);
  }
  std::uint64_t* nonempty(std::int32_t ph) {
    return reinterpret_cast<std::uint64_t*>(block(ph) + off_nonempty_);
  }
  std::uint64_t* inflight(std::int32_t ph) {
    return reinterpret_cast<std::uint64_t*>(block(ph) + off_inflight_);
  }
  std::uint64_t* pend(std::int32_t ph) {
    return reinterpret_cast<std::uint64_t*>(block(ph) + off_pend_);
  }
  std::uint64_t* key_col(std::int32_t ph) {
    return reinterpret_cast<std::uint64_t*>(block(ph) + off_key_);
  }
  std::int64_t* id_col(std::int32_t ph) {
    return reinterpret_cast<std::int64_t*>(block(ph) + off_id_);
  }
  std::int64_t* tag_col(std::int32_t ph) {
    return reinterpret_cast<std::int64_t*>(block(ph) + off_tag_);
  }
  std::int64_t* dest_col(std::int32_t ph) {
    return reinterpret_cast<std::int64_t*>(block(ph) + off_dest_);
  }
  Packet* mail(std::int32_t ph) {
    return reinterpret_cast<Packet*>(block(ph) + off_mail_);
  }
  std::int32_t* mail_dc(std::int32_t ph) {
    return reinterpret_cast<std::int32_t*>(block(ph) + off_mail_dc_);
  }
  std::int32_t* dc(std::int32_t ph) {
    return reinterpret_cast<std::int32_t*>(block(ph) + off_dc_);
  }
  std::int32_t* ccoord(std::int32_t ph) {
    return reinterpret_cast<std::int32_t*>(block(ph) + off_ccoord_);
  }
  std::int32_t* dist0_col(std::int32_t ph) {
    return reinterpret_cast<std::int32_t*>(block(ph) + off_dist0_);
  }
  std::int32_t* arrived_col(std::int32_t ph) {
    return reinterpret_cast<std::int32_t*>(block(ph) + off_arrived_);
  }
  std::uint16_t* klass_col(std::int32_t ph) {
    return reinterpret_cast<std::uint16_t*>(block(ph) + off_klass_);
  }
  std::uint16_t* flags_col(std::int32_t ph) {
    return reinterpret_cast<std::uint16_t*>(block(ph) + off_flags_);
  }
  InlineVec<TileOvEntry, 2>& ovf(std::int32_t ph) {
    return ovf_[static_cast<std::size_t>(ph)];
  }

  /// Writes the lane-`k` packet of `slot` into *out (assembling it from the
  /// columns).
  void ReadLane(std::int32_t ph, int k, int slot, Packet* out);
  /// Stores `pkt` into lane `k` of `slot` and its dest coords (dcoords, d
  /// values) into the dc columns.
  void WriteLane(std::int32_t ph, int k, int slot, const Packet& pkt,
                 const std::int32_t* dcoords);

 private:
  std::uint8_t* block(std::int32_t ph) {
    return blocks_[static_cast<std::size_t>(ph)].get();
  }

  const Topology* topo_;
  int d_;
  ProcId nprocs_;
  std::int64_t ntiles_;

  std::size_t off_cnt_, off_nonempty_, off_inflight_, off_pend_;
  std::size_t off_key_, off_id_, off_tag_, off_dest_;
  std::size_t off_mail_, off_mail_dc_, off_dc_, off_ccoord_;
  std::size_t off_dist0_, off_arrived_, off_klass_, off_flags_;
  std::size_t header_bytes_;  // [off_cnt_, off_key_): zeroed on rebind
  std::size_t block_bytes_;

  std::vector<std::int32_t> phys_;  // logical tile -> block (-1 = not live)
  std::vector<std::uint64_t> live_bits_;
  std::vector<std::int32_t> free_;
  std::vector<std::unique_ptr<std::uint8_t[]>> blocks_;
  std::vector<InlineVec<TileOvEntry, 2>> ovf_;  // parallel to blocks_

  std::int64_t live_ = 0;
  std::int64_t peak_ = 0;
  std::int64_t total_allocs_ = 0;
};

}  // namespace mdmesh
