#include "workload/driver.h"

#include <algorithm>

#include "net/network.h"
#include "obs/json.h"

namespace mdmesh {

OpenLoopInjector::OpenLoopInjector(const Topology& topo,
                                   const TrafficPattern& pattern,
                                   const DriverOptions& opts)
    : topo_(&topo),
      pattern_(&pattern),
      opts_(opts),
      rng_(opts.seed),
      latency_(512) {
  opts_.rate = std::clamp(opts_.rate, 0.0, 1.0);
  opts_.warmup_steps = std::max<std::int64_t>(opts_.warmup_steps, 0);
  opts_.measure_steps = std::max<std::int64_t>(opts_.measure_steps, 1);
}

InjectAction OpenLoopInjector::Inject(
    std::int64_t step, std::vector<std::pair<ProcId, Packet>>* out) {
  const std::int64_t measure_end = opts_.warmup_steps + opts_.measure_steps;
  if (step == opts_.warmup_steps + 1) backlog_start_ = backlog();
  if (step > measure_end) {
    backlog_end_ = backlog();
    return opts_.drain ? InjectAction::kDrain : InjectAction::kStop;
  }
  const bool measured = step > opts_.warmup_steps;
  const int d = topo_->dim();
  for (ProcId p = 0; p < topo_->size(); ++p) {
    if (!rng_.Chance(opts_.rate)) continue;
    Packet pkt;
    pkt.id = next_id_++;
    pkt.key = static_cast<std::uint64_t>(pkt.id);
    pkt.dest = pattern_->Draw(p, rng_);
    pkt.klass = static_cast<std::uint16_t>(pkt.id % d);
    out->emplace_back(p, pkt);
    ++offered_;
    if (measured) ++measured_injected_;
  }
  return InjectAction::kContinue;
}

void OpenLoopInjector::OnDeliver(const Packet& pkt, std::int64_t step) {
  ++delivered_;
  if (step <= opts_.warmup_steps ||
      step > opts_.warmup_steps + opts_.measure_steps) {
    return;
  }
  ++measured_delivered_;
  latency_.Add(static_cast<std::int64_t>(pkt.arrived) - pkt.tag + 1);
}

double OpenLoopInjector::Throughput() const {
  const double proc_steps = static_cast<double>(topo_->size()) *
                            static_cast<double>(opts_.measure_steps);
  return proc_steps > 0.0
             ? static_cast<double>(measured_delivered_) / proc_steps
             : 0.0;
}

bool OpenLoopInjector::Stable() const {
  if (backlog_end_ < 0) return false;  // window never completed
  const double slack =
      0.05 * static_cast<double>(measured_injected_) + 8.0;
  return static_cast<double>(backlog_end_ - backlog_start_) <= slack;
}

void WorkloadResult::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("pattern").String(pattern);
  w.Key("rate").Double(driver.rate);
  w.Key("warmup_steps").Int(driver.warmup_steps);
  w.Key("measure_steps").Int(driver.measure_steps);
  w.Key("drain").Bool(driver.drain);
  w.Key("seed").UInt(driver.seed);
  w.Key("offered").Int(offered);
  w.Key("delivered").Int(delivered);
  w.Key("measured_injected").Int(measured_injected);
  w.Key("measured_delivered").Int(measured_delivered);
  w.Key("backlog_start").Int(backlog_start);
  w.Key("backlog_end").Int(backlog_end);
  w.Key("throughput").Double(throughput);
  w.Key("stable").Bool(stable);
  w.Key("latency_count").Int(latency_count);
  w.Key("latency_mean").Double(latency_mean);
  w.Key("latency_p50").Double(latency_p50);
  w.Key("latency_p95").Double(latency_p95);
  w.Key("latency_p99").Double(latency_p99);
  w.Key("latency_max").Int(latency_max);
  w.Key("steps").Int(route.steps);
  w.Key("moves").Int(route.moves);
  w.Key("sparse_steps").Int(route.sparse_steps);
  w.Key("peak_active_procs").Int(route.peak_active_procs);
  w.Key("max_queue").Int(route.max_queue);
  w.Key("completed").Bool(route.completed);
  w.EndObject();
}

WorkloadResult RunOpenLoop(const Topology& topo, const TrafficPattern& pattern,
                           const DriverOptions& dopts,
                           const EngineOptions& eopts) {
  OpenLoopInjector injector(topo, pattern, dopts);
  EngineOptions opts = eopts;
  opts.injector = &injector;
  Engine engine(topo, opts);
  Network net(topo);
  WorkloadResult out;
  out.pattern = pattern.name();
  out.driver = dopts;
  out.route = engine.Route(net);
  out.offered = injector.offered();
  out.delivered = injector.delivered();
  out.measured_injected = injector.measured_injected();
  out.measured_delivered = injector.measured_delivered();
  out.backlog_start = injector.backlog_start();
  out.backlog_end = injector.backlog_end();
  out.throughput = injector.Throughput();
  out.stable = injector.Stable();
  const QuantileHistogram& lat = injector.latency();
  out.latency_count = lat.count();
  out.latency_mean = lat.mean();
  out.latency_p50 = lat.Quantile(0.5);
  out.latency_p95 = lat.Quantile(0.95);
  out.latency_p99 = lat.Quantile(0.99);
  out.latency_max = lat.max();
  // Driver-side metrics: whole-run offered/delivered totals plus the
  // measured-window latency histogram, folded into the shared registry the
  // engine already recorded its engine.* counters into.
  if (opts.metrics != nullptr) {
    MetricsRegistry& m = *opts.metrics;
    m.counter("workload.offered").Add(out.offered);
    m.counter("workload.delivered").Add(out.delivered);
    m.counter("workload.measured_injected").Add(out.measured_injected);
    m.counter("workload.measured_delivered").Add(out.measured_delivered);
    m.counter("workload.unstable_runs").Add(out.stable ? 0 : 1);
    m.histogram("workload.latency").Merge(lat);
  }
  return out;
}

SaturationResult FindSaturationRate(const Topology& topo,
                                    const TrafficPattern& pattern,
                                    const DriverOptions& base,
                                    const SaturationOptions& sopts,
                                    const EngineOptions& eopts) {
  SaturationResult result;
  double lo = std::clamp(sopts.lo, 0.0, 1.0);
  double hi = std::clamp(sopts.hi, lo, 1.0);
  for (int i = 0; i < sopts.iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    DriverOptions probe = base;
    probe.rate = mid;
    probe.drain = false;
    WorkloadResult r = RunOpenLoop(topo, pattern, probe, eopts);
    if (r.stable) {
      lo = mid;
    } else {
      hi = mid;
    }
    result.probes.push_back(std::move(r));
  }
  result.rate = lo;
  result.unstable_rate = hi;
  return result;
}

}  // namespace mdmesh
