#include "workload/driver.h"

#include <algorithm>
#include <array>

#include "net/network.h"
#include "obs/critical_path.h"
#include "obs/json.h"
#include "util/codec.h"

namespace mdmesh {

OpenLoopInjector::OpenLoopInjector(const Topology& topo,
                                   const TrafficPattern& pattern,
                                   const DriverOptions& opts)
    : topo_(&topo),
      pattern_(&pattern),
      opts_(opts),
      rng_(opts.seed),
      latency_(512) {
  opts_.rate = std::clamp(opts_.rate, 0.0, 1.0);
  opts_.warmup_steps = std::max<std::int64_t>(opts_.warmup_steps, 0);
  opts_.measure_steps = std::max<std::int64_t>(opts_.measure_steps, 1);
}

InjectAction OpenLoopInjector::Inject(
    std::int64_t step, std::vector<std::pair<ProcId, Packet>>* out) {
  const std::int64_t measure_end = opts_.warmup_steps + opts_.measure_steps;
  if (step == opts_.warmup_steps + 1) backlog_start_ = backlog();
  if (step > measure_end) {
    backlog_end_ = backlog();
    return opts_.drain ? InjectAction::kDrain : InjectAction::kStop;
  }
  const bool measured = step > opts_.warmup_steps;
  const int d = topo_->dim();
  for (ProcId p = 0; p < topo_->size(); ++p) {
    if (!rng_.Chance(opts_.rate)) continue;
    Packet pkt;
    pkt.id = next_id_++;
    pkt.key = static_cast<std::uint64_t>(pkt.id);
    pkt.dest = pattern_->Draw(p, rng_);
    pkt.klass = static_cast<std::uint16_t>(pkt.id % d);
    out->emplace_back(p, pkt);
    ++offered_;
    if (measured) ++measured_injected_;
  }
  return InjectAction::kContinue;
}

void OpenLoopInjector::OnDeliver(const Packet& pkt, std::int64_t step) {
  ++delivered_;
  // The trace hash folds in every delivery — warmup and drain included, and
  // before any window check — so it fingerprints the complete run, not just
  // the measured slice.
  const auto mix = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      delivery_hash_ ^= (v >> (8 * i)) & 0xff;
      delivery_hash_ *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(pkt.id));
  mix(static_cast<std::uint64_t>(pkt.tag));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(pkt.arrived)));
  mix(static_cast<std::uint64_t>(step));
  if (step <= opts_.warmup_steps ||
      step > opts_.warmup_steps + opts_.measure_steps) {
    return;
  }
  ++measured_delivered_;
  latency_.Add(static_cast<std::int64_t>(pkt.arrived) - pkt.tag + 1);
}

namespace {
/// Injector blob format version; bumped with any layout change so a stale
/// blob is rejected instead of misparsed.
constexpr std::uint32_t kInjectorBlobVersion = 1;
}  // namespace

void OpenLoopInjector::SaveState(std::vector<std::uint8_t>* out) const {
  out->clear();
  ByteWriter w(out);
  w.U32(kInjectorBlobVersion);
  const std::array<std::uint64_t, 4> rng_state = rng_.State();
  for (std::uint64_t word : rng_state) w.U64(word);
  w.I64(next_id_);
  w.I64(offered_);
  w.I64(delivered_);
  w.I64(measured_injected_);
  w.I64(measured_delivered_);
  w.I64(backlog_start_);
  w.I64(backlog_end_);
  w.U64(delivery_hash_);
  w.I64(latency_.width());
  w.I64(latency_.count());
  w.I64(latency_.min());
  w.I64(latency_.max());
  w.F64(latency_.sum());
  const std::vector<std::int64_t>& buckets = latency_.raw_buckets();
  w.U64(buckets.size());
  for (std::int64_t b : buckets) w.I64(b);
}

bool OpenLoopInjector::RestoreState(const std::uint8_t* data,
                                    std::size_t size) {
  ByteReader r(data, size);
  if (r.U32() != kInjectorBlobVersion) return false;
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.U64();
  const std::int64_t next_id = r.I64();
  const std::int64_t offered = r.I64();
  const std::int64_t delivered = r.I64();
  const std::int64_t measured_injected = r.I64();
  const std::int64_t measured_delivered = r.I64();
  const std::int64_t backlog_start = r.I64();
  const std::int64_t backlog_end = r.I64();
  const std::uint64_t delivery_hash = r.U64();
  const std::int64_t width = r.I64();
  const std::int64_t count = r.I64();
  const std::int64_t lat_min = r.I64();
  const std::int64_t lat_max = r.I64();
  const double sum = r.F64();
  const std::uint64_t nbuckets = r.U64();
  if (!r.ok() || nbuckets != r.remaining() / 8) return false;
  std::vector<std::int64_t> buckets(static_cast<std::size_t>(nbuckets));
  for (std::int64_t& b : buckets) b = r.I64();
  if (!r.exhausted()) return false;
  if (!latency_.RestoreState(width, count, lat_min, lat_max, sum,
                             std::move(buckets))) {
    return false;
  }
  rng_.Restore(rng_state);
  next_id_ = next_id;
  offered_ = offered;
  delivered_ = delivered;
  measured_injected_ = measured_injected;
  measured_delivered_ = measured_delivered;
  backlog_start_ = backlog_start;
  backlog_end_ = backlog_end;
  delivery_hash_ = delivery_hash;
  return true;
}

double OpenLoopInjector::Throughput() const {
  const double proc_steps = static_cast<double>(topo_->size()) *
                            static_cast<double>(opts_.measure_steps);
  return proc_steps > 0.0
             ? static_cast<double>(measured_delivered_) / proc_steps
             : 0.0;
}

bool OpenLoopInjector::Stable() const {
  if (backlog_end_ < 0) return false;  // window never completed
  const double slack =
      0.05 * static_cast<double>(measured_injected_) + 8.0;
  return static_cast<double>(backlog_end_ - backlog_start_) <= slack;
}

void WorkloadResult::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("pattern").String(pattern);
  w.Key("rate").Double(driver.rate);
  w.Key("warmup_steps").Int(driver.warmup_steps);
  w.Key("measure_steps").Int(driver.measure_steps);
  w.Key("drain").Bool(driver.drain);
  w.Key("seed").UInt(driver.seed);
  w.Key("offered").Int(offered);
  w.Key("delivered").Int(delivered);
  w.Key("measured_injected").Int(measured_injected);
  w.Key("measured_delivered").Int(measured_delivered);
  w.Key("backlog_start").Int(backlog_start);
  w.Key("backlog_end").Int(backlog_end);
  w.Key("throughput").Double(throughput);
  w.Key("stable").Bool(stable);
  w.Key("latency_count").Int(latency_count);
  w.Key("latency_mean").Double(latency_mean);
  w.Key("latency_p50").Double(latency_p50);
  w.Key("latency_p95").Double(latency_p95);
  w.Key("latency_p99").Double(latency_p99);
  w.Key("latency_max").Int(latency_max);
  w.Key("delivery_hash").UInt(delivery_hash);
  w.Key("steps").Int(route.steps);
  w.Key("moves").Int(route.moves);
  w.Key("sparse_steps").Int(route.sparse_steps);
  w.Key("peak_active_procs").Int(route.peak_active_procs);
  w.Key("max_queue").Int(route.max_queue);
  w.Key("completed").Bool(route.completed);
  if (route.critical_path != nullptr) {
    // The "why" behind the latency percentiles above: the traced last and
    // p99 packets with their distance-vs-wait decomposition.
    w.Key("critical_path");
    route.critical_path->WriteJson(w);
  }
  w.EndObject();
}

WorkloadResult RunOpenLoop(const Topology& topo, const TrafficPattern& pattern,
                           const DriverOptions& dopts,
                           const EngineOptions& eopts,
                           const EngineCheckpointState* resume) {
  OpenLoopInjector injector(topo, pattern, dopts);
  EngineOptions opts = eopts;
  opts.injector = &injector;
  Engine engine(topo, opts);
  Network net(topo);
  WorkloadResult out;
  out.pattern = pattern.name();
  out.driver = dopts;
  // Resume restores the injector blob (RNG, counters, histogram) inside
  // Engine::Resume before the step loop continues.
  out.route = resume != nullptr ? engine.Resume(net, *resume)
                                : engine.Route(net);
  out.offered = injector.offered();
  out.delivered = injector.delivered();
  out.measured_injected = injector.measured_injected();
  out.measured_delivered = injector.measured_delivered();
  out.backlog_start = injector.backlog_start();
  out.backlog_end = injector.backlog_end();
  out.throughput = injector.Throughput();
  out.stable = injector.Stable();
  const QuantileHistogram& lat = injector.latency();
  out.latency_count = lat.count();
  out.latency_mean = lat.mean();
  out.latency_p50 = lat.Quantile(0.5);
  out.latency_p95 = lat.Quantile(0.95);
  out.latency_p99 = lat.Quantile(0.99);
  out.latency_max = lat.max();
  out.delivery_hash = injector.delivery_hash();
  // Driver-side metrics: whole-run offered/delivered totals plus the
  // measured-window latency histogram, folded into the shared registry the
  // engine already recorded its engine.* counters into.
  if (opts.metrics != nullptr) {
    MetricsRegistry& m = *opts.metrics;
    m.counter("workload.offered").Add(out.offered);
    m.counter("workload.delivered").Add(out.delivered);
    m.counter("workload.measured_injected").Add(out.measured_injected);
    m.counter("workload.measured_delivered").Add(out.measured_delivered);
    m.counter("workload.unstable_runs").Add(out.stable ? 0 : 1);
    m.histogram("workload.latency").Merge(lat);
  }
  return out;
}

SaturationResult FindSaturationRate(const Topology& topo,
                                    const TrafficPattern& pattern,
                                    const DriverOptions& base,
                                    const SaturationOptions& sopts,
                                    const EngineOptions& eopts) {
  SaturationResult result;
  double lo = std::clamp(sopts.lo, 0.0, 1.0);
  double hi = std::clamp(sopts.hi, lo, 1.0);
  for (int i = 0; i < sopts.iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    DriverOptions probe = base;
    probe.rate = mid;
    probe.drain = false;
    WorkloadResult r = RunOpenLoop(topo, pattern, probe, eopts);
    if (r.stable) {
      lo = mid;
    } else {
      hi = mid;
    }
    result.probes.push_back(std::move(r));
  }
  result.rate = lo;
  result.unstable_rate = hi;
  return result;
}

}  // namespace mdmesh
