#include "workload/patterns.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "routing/permutations.h"

namespace mdmesh {
namespace {

/// Swaps the top and bottom of the low `bits` bits of x.
std::uint32_t SwapEndBits(std::uint32_t x, int bits) {
  if (bits < 2) return x;
  const std::uint32_t lo = x & 1u;
  const std::uint32_t hi = (x >> (bits - 1)) & 1u;
  x &= ~((1u << (bits - 1)) | 1u);
  return x | (lo << (bits - 1)) | hi;
}

/// Applies an involution `f` on [0, 2^bits) to every coordinate, keeping a
/// coordinate fixed when its image falls outside [0, n) (cycle-walking).
/// The result is a bijection on the mesh — and itself an involution.
template <typename F>
std::vector<ProcId> PerCoordinateInvolution(const Topology& topo, F&& f) {
  const int d = topo.dim();
  const auto n = static_cast<std::uint32_t>(topo.side());
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    for (int i = 0; i < d; ++i) {
      const auto x = static_cast<std::uint32_t>(c[static_cast<std::size_t>(i)]);
      const std::uint32_t r = f(x);
      if (r < n) c[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(r);
    }
    dest[static_cast<std::size_t>(p)] = topo.Id(c);
  }
  return dest;
}

/// Coordinate rotation (c0, ..., cd-1) -> (c1, ..., cd-1, c0): viewing the
/// processor id as a d-digit base-n number, this is the perfect shuffle of
/// its digits.
std::vector<ProcId> ShufflePermutation(const Topology& topo) {
  const int d = topo.dim();
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    Point t{};
    for (int i = 0; i < d; ++i) {
      t[static_cast<std::size_t>(i)] = c[static_cast<std::size_t>((i + 1) % d)];
    }
    dest[static_cast<std::size_t>(p)] = topo.Id(t);
  }
  return dest;
}

/// Every coordinate shifted by floor(n/2) mod n — the tornado-style
/// rotation. A bijection on meshes and tori alike (the shift is modular in
/// index space; only the travel distance differs with wraparound).
std::vector<ProcId> DiagonalPermutation(const Topology& topo) {
  const int d = topo.dim();
  const std::int32_t n = topo.side();
  const std::int32_t shift = std::max<std::int32_t>(1, n / 2);
  std::vector<ProcId> dest(static_cast<std::size_t>(topo.size()));
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    for (int i = 0; i < d; ++i) {
      c[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>((c[static_cast<std::size_t>(i)] + shift) % n);
    }
    dest[static_cast<std::size_t>(p)] = topo.Id(c);
  }
  return dest;
}

}  // namespace

const char* PatternName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kUniform:
      return "uniform";
    case PatternKind::kBitReversal:
      return "bitrev";
    case PatternKind::kShuffle:
      return "shuffle";
    case PatternKind::kButterfly:
      return "butterfly";
    case PatternKind::kDiagonal:
      return "diagonal";
    case PatternKind::kTranspose:
      return "transpose";
    case PatternKind::kReversal:
      return "reversal";
    case PatternKind::kHotSpot:
      return "hotspot";
  }
  return "unknown";
}

const std::vector<PatternKind>& AllPatterns() {
  static const std::vector<PatternKind> kAll = {
      PatternKind::kUniform,   PatternKind::kBitReversal,
      PatternKind::kShuffle,   PatternKind::kButterfly,
      PatternKind::kDiagonal,  PatternKind::kTranspose,
      PatternKind::kReversal,  PatternKind::kHotSpot,
  };
  return kAll;
}

bool ParsePattern(std::string_view name, PatternKind* out) {
  for (PatternKind kind : AllPatterns()) {
    if (name == PatternName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

TrafficPattern::TrafficPattern(const Topology& topo, PatternKind kind,
                               std::uint64_t seed, PatternOptions opts)
    : topo_(&topo), kind_(kind) {
  switch (kind) {
    case PatternKind::kUniform:
      break;
    case PatternKind::kBitReversal:
      map_ = BitReversalPermutation(topo);
      break;
    case PatternKind::kShuffle:
      map_ = ShufflePermutation(topo);
      break;
    case PatternKind::kButterfly: {
      const auto n = static_cast<std::uint32_t>(topo.side());
      const int bits =
          n > 1 ? static_cast<int>(std::bit_width(n - 1)) : 0;
      map_ = PerCoordinateInvolution(
          topo, [bits](std::uint32_t x) { return SwapEndBits(x, bits); });
      break;
    }
    case PatternKind::kDiagonal:
      map_ = DiagonalPermutation(topo);
      break;
    case PatternKind::kTranspose:
      map_ = TransposePermutation(topo);
      break;
    case PatternKind::kReversal:
      map_ = ReversalPermutation(topo);
      break;
    case PatternKind::kHotSpot: {
      skew_ = std::clamp(opts.hot_skew, 0.0, 1.0);
      const std::int64_t count =
          std::clamp<std::int64_t>(opts.hot_count, 1, topo.size());
      Rng rng(seed);
      hot_.resize(static_cast<std::size_t>(count));
      for (ProcId& h : hot_) {
        h = static_cast<ProcId>(
            rng.Below(static_cast<std::uint64_t>(topo.size())));
      }
      break;
    }
  }
}

ProcId TrafficPattern::Draw(ProcId src, Rng& rng) const {
  if (!map_.empty()) return map_[static_cast<std::size_t>(src)];
  if (kind_ == PatternKind::kHotSpot && rng.Chance(skew_)) {
    return hot_[static_cast<std::size_t>(
        rng.Below(static_cast<std::uint64_t>(hot_.size())))];
  }
  return static_cast<ProcId>(
      rng.Below(static_cast<std::uint64_t>(topo_->size())));
}

std::vector<std::pair<ProcId, ProcId>> LKRelation(const Topology& topo,
                                                  std::int64_t l,
                                                  std::int64_t k, Rng& rng) {
  if (l < 1 || k < 1) {
    throw std::invalid_argument("LKRelation: l and k must be >= 1");
  }
  const ProcId N = topo.size();
  const std::int64_t m = N * std::min(l, k);
  std::vector<ProcId> senders(static_cast<std::size_t>(N * l));
  std::vector<ProcId> receivers(static_cast<std::size_t>(N * k));
  for (std::int64_t i = 0; i < N * l; ++i) {
    senders[static_cast<std::size_t>(i)] = static_cast<ProcId>(i % N);
  }
  for (std::int64_t i = 0; i < N * k; ++i) {
    receivers[static_cast<std::size_t>(i)] = static_cast<ProcId>(i % N);
  }
  rng.Shuffle(senders);
  rng.Shuffle(receivers);
  std::vector<std::pair<ProcId, ProcId>> rel(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    rel[static_cast<std::size_t>(i)] = {senders[static_cast<std::size_t>(i)],
                                        receivers[static_cast<std::size_t>(i)]};
  }
  std::stable_sort(rel.begin(), rel.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return rel;
}

std::vector<std::pair<ProcId, ProcId>> HRelation(const Topology& topo,
                                                 std::int64_t h, Rng& rng) {
  return LKRelation(topo, h, h, rng);
}

}  // namespace mdmesh
