// Traffic-pattern library for the dynamic workload subsystem.
//
// A TrafficPattern maps a source processor to a destination draw — either a
// fixed structured map (bit-reversal, shuffle, butterfly, diagonal,
// transpose, reversal) or a seeded random draw per packet (uniform,
// hot-spot). Patterns are topology-generic (mesh or torus, any d) and
// deterministic: the same (topology, kind, seed) names the same traffic for
// any thread count. The structured kinds are the classic adversarial inputs
// of the interconnection-network literature (bit-reversal and shuffle
// defeat dimension-order locality; hot-spot models service skew); together
// with the paper's permutations they span the regimes the related
// (l,k)-routing and online-routing work studies.
//
// Beyond per-packet draws, LKRelation/HRelation build whole bounded-degree
// routing problems: each processor sends at most l packets and receives at
// most k (an (l,k)-relation; an h-relation is the symmetric h = l = k
// case), the standard generalization of permutation routing.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "meshsim/topology.h"
#include "util/rng.h"

namespace mdmesh {

enum class PatternKind : std::uint8_t {
  kUniform,      ///< independent uniform destination per packet
  kBitReversal,  ///< per-coordinate bit reversal (cycle-walked)
  kShuffle,      ///< coordinate rotation — a base-n digit perfect shuffle
  kButterfly,    ///< per-coordinate MSB<->LSB swap (cycle-walked)
  kDiagonal,     ///< every coordinate shifted by n/2 mod n (tornado-like)
  kTranspose,    ///< coordinate order reversed
  kReversal,     ///< reflection through the network center
  kHotSpot,      ///< k fixed hot destinations drawn with probability skew
};

struct PatternOptions {
  std::int64_t hot_count = 4;  ///< hot destinations (kHotSpot), clamped to N
  double hot_skew = 0.5;       ///< probability a packet targets the hot set
};

/// Stable lowercase name ("uniform", "bitrev", ...), used in JSON records
/// and CLI flags.
const char* PatternName(PatternKind kind);

/// Every PatternKind, in declaration order.
const std::vector<PatternKind>& AllPatterns();

/// Parses a PatternName back; returns false on an unknown name.
bool ParsePattern(std::string_view name, PatternKind* out);

class TrafficPattern {
 public:
  /// Structured kinds precompute their destination map; random kinds
  /// (uniform, hot-spot) derive their fixed state (the hot set) from
  /// `seed` and draw per packet.
  TrafficPattern(const Topology& topo, PatternKind kind, std::uint64_t seed,
                 PatternOptions opts = {});

  const Topology& topo() const { return *topo_; }
  PatternKind kind() const { return kind_; }
  const char* name() const { return PatternName(kind_); }

  /// True when every packet from `src` goes to the same destination.
  bool fixed() const { return !map_.empty(); }

  /// Destination for one packet injected at `src`. Random kinds consume
  /// draws from `rng` (the caller's stream); structured kinds ignore it.
  ProcId Draw(ProcId src, Rng& rng) const;

  /// The full destination map (empty for random kinds).
  const std::vector<ProcId>& map() const { return map_; }

 private:
  const Topology* topo_;
  PatternKind kind_;
  std::vector<ProcId> map_;  ///< fixed destinations; empty for random kinds
  std::vector<ProcId> hot_;  ///< kHotSpot target set
  double skew_ = 0.0;
};

/// A random (l,k)-relation: a list of (source, destination) pairs in which
/// every processor appears at most l times as a source and at most k times
/// as a destination — exactly min(l, k) times each when l == k. Built by
/// shuffling N*l sender slots against N*k receiver slots and pairing the
/// first N*min(l, k); sorted by source (ties in slot order), deterministic
/// in `rng`. l, k >= 1.
std::vector<std::pair<ProcId, ProcId>> LKRelation(const Topology& topo,
                                                  std::int64_t l,
                                                  std::int64_t k, Rng& rng);

/// The symmetric case: every processor sends exactly h packets and receives
/// exactly h (an h-relation; h = 1 is a random permutation-like relation).
std::vector<std::pair<ProcId, ProcId>> HRelation(const Topology& topo,
                                                 std::int64_t h, Rng& rng);

}  // namespace mdmesh
