// Open-loop injection driver and measurement layer.
//
// OpenLoopInjector implements the engine's StepInjector contract
// (net/engine.h): every step, every processor independently injects a
// packet with probability `rate` (Bernoulli arrivals), destinations drawn
// from a TrafficPattern. The run is windowed booksim-style:
//
//   steps 1 .. warmup                   warm-up (fills the network; excluded)
//   steps warmup+1 .. warmup+measure    measurement window
//   step  warmup+measure+1              verdict: kStop (fixed horizon) or
//                                       kDrain (route the backlog out)
//
// Measured quantities: per-packet latency (delivery step - injection step
// + 1, recorded into a QuantileHistogram at delivery for packets delivered
// inside the window), steady-state throughput (measured deliveries per
// processor-step), and a stability verdict — the network is saturated at a
// rate when the backlog keeps growing across the measurement window
// instead of fluctuating around a steady state. FindSaturationRate
// bisects on the rate to locate the boundary.
//
// Everything is deterministic: one Rng stream drives all draws on the
// coordinator thread, so a (pattern, seed, rate, windows) tuple names the
// same run for any thread count and either engine traversal mode.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/engine.h"
#include "util/stats.h"
#include "workload/patterns.h"

namespace mdmesh {

struct DriverOptions {
  double rate = 0.1;  ///< per-processor per-step injection probability
  std::int64_t warmup_steps = 128;
  std::int64_t measure_steps = 512;
  /// After the measurement window: drain the backlog (true) or stop at the
  /// fixed horizon (false). Latency/saturation sweeps use the fixed
  /// horizon; drain = true makes offered == delivered, which the tests pin.
  bool drain = false;
  std::uint64_t seed = 1;
};

class OpenLoopInjector final : public StepInjector {
 public:
  OpenLoopInjector(const Topology& topo, const TrafficPattern& pattern,
                   const DriverOptions& opts);

  InjectAction Inject(std::int64_t step,
                      std::vector<std::pair<ProcId, Packet>>* out) override;
  void OnDeliver(const Packet& pkt, std::int64_t step) override;

  /// Checkpoint round-trip (StepInjector contract): the blob carries the
  /// RNG stream, every counter, the measurement-window cursors, the
  /// delivery-trace hash, and the full latency histogram, so a restored
  /// injector continues draw-for-draw identically. RestoreState returns
  /// false on a malformed or truncated blob without touching the injector.
  void SaveState(std::vector<std::uint8_t>* out) const override;
  bool RestoreState(const std::uint8_t* data, std::size_t size) override;

  // Whole-run totals.
  std::int64_t offered() const { return offered_; }
  std::int64_t delivered() const { return delivered_; }
  std::int64_t backlog() const { return offered_ - delivered_; }

  // Measurement window [warmup+1, warmup+measure].
  std::int64_t measured_injected() const { return measured_injected_; }
  std::int64_t measured_delivered() const { return measured_delivered_; }
  std::int64_t backlog_start() const { return backlog_start_; }
  std::int64_t backlog_end() const { return backlog_end_; }

  /// Latency histogram of packets delivered inside the window.
  const QuantileHistogram& latency() const { return latency_; }

  /// FNV-1a hash over the whole delivery trace — every (packet id,
  /// injection step, arrival step) triple in delivery order, warmup and
  /// drain included. Order-sensitive by construction, so two runs agree on
  /// it iff they delivered the same packets at the same steps in the same
  /// order: the cross-crash comparison the recovery drill pins.
  std::uint64_t delivery_hash() const { return delivery_hash_; }

  /// Measured deliveries per processor-step — the standard accepted-traffic
  /// rate; equals the offered rate while the network is below saturation.
  double Throughput() const;

  /// False when the backlog grew across the measurement window by more than
  /// measurement noise (5% of the measured offered load plus a small
  /// constant) — the open-loop queue is unstable, i.e. the offered rate
  /// exceeds the network's saturation rate. Also false when the run was cut
  /// off before the window completed (step cap / watchdog).
  bool Stable() const;

 private:
  const Topology* topo_;
  const TrafficPattern* pattern_;
  DriverOptions opts_;
  Rng rng_;
  std::int64_t next_id_ = 0;
  std::int64_t offered_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t measured_injected_ = 0;
  std::int64_t measured_delivered_ = 0;
  std::int64_t backlog_start_ = 0;
  std::int64_t backlog_end_ = -1;  ///< -1 until the window completes
  std::uint64_t delivery_hash_ = 14695981039346656037ull;  ///< FNV-1a basis
  QuantileHistogram latency_;
};

/// One open-loop run, summarized for tables and JSON records.
struct WorkloadResult {
  std::string pattern;
  DriverOptions driver;
  RouteResult route;

  std::int64_t offered = 0;
  std::int64_t delivered = 0;
  std::int64_t measured_injected = 0;
  std::int64_t measured_delivered = 0;
  std::int64_t backlog_start = 0;
  std::int64_t backlog_end = -1;
  double throughput = 0.0;
  bool stable = false;

  std::int64_t latency_count = 0;
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  std::int64_t latency_max = 0;
  /// Order-sensitive hash of the full delivery trace (see
  /// OpenLoopInjector::delivery_hash) — the crash drill's comparison key.
  std::uint64_t delivery_hash = 0;

  /// One JSON object: driver configuration, accounting, latency quantiles,
  /// and the engine-side counters (steps, sparse_steps, peak_active_procs).
  void WriteJson(JsonWriter& w) const;
};

/// Builds the injector, routes an (initially empty) network under `eopts`
/// (the injector field is overwritten), and summarizes. `eopts.step_cap`
/// 0 leaves termination to the driver windows. When `resume` is non-null
/// the run continues from that checkpoint (Engine::Resume) instead of
/// starting fresh — the checkpoint's injector blob must have been produced
/// by an OpenLoopInjector with the same driver options.
WorkloadResult RunOpenLoop(const Topology& topo, const TrafficPattern& pattern,
                           const DriverOptions& dopts,
                           const EngineOptions& eopts = {},
                           const EngineCheckpointState* resume = nullptr);

struct SaturationOptions {
  double lo = 0.0;     ///< assumed-stable lower bracket
  double hi = 1.0;     ///< assumed-unstable upper bracket
  int iterations = 7;  ///< bisection steps (resolution = (hi-lo) / 2^iters)
};

struct SaturationResult {
  double rate = 0.0;           ///< highest rate that measured stable
  double unstable_rate = 0.0;  ///< lowest rate that measured unstable
  std::vector<WorkloadResult> probes;  ///< every bisection run, in order
};

/// Bisection search for the saturation injection rate: the boundary between
/// rates whose backlog stays bounded over the measurement window and rates
/// where it grows without limit. `base.rate` is ignored; `base.drain`
/// should stay false (probes run on the fixed horizon).
SaturationResult FindSaturationRate(const Topology& topo,
                                    const TrafficPattern& pattern,
                                    const DriverOptions& base,
                                    const SaturationOptions& sopts = {},
                                    const EngineOptions& eopts = {});

}  // namespace mdmesh
