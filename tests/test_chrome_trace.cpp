// Tests for the unified timeline-export layer: RunManifest, MetricsRegistry,
// and the ChromeTraceWriter Chrome Trace Event sink — including a full
// engine-instrumented round trip validated with python3 -m json.tool.
#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/engine.h"
#include "obs/manifest.h"
#include "obs/probe.h"
#include "obs/registry.h"
#include "routing/permutations.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdmesh {
namespace {

// ---------------------------------------------------------------- RunManifest

TEST(RunManifestTest, ToJsonSerializesEveryField) {
  RunManifest m;
  m.d = 3;
  m.n = 16;
  m.torus = true;
  m.seed = 42;
  m.threads = 4;
  m.sparse_mode = "auto";
  m.engine_options_hash = "deadbeef00000000";
  m.binary = "test_bin";
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tool\":\"mdmesh\""), std::string::npos);
  EXPECT_NE(json.find("\"d\":3"), std::string::npos);
  EXPECT_NE(json.find("\"n\":16"), std::string::npos);
  EXPECT_NE(json.find("\"wrap\":\"torus\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find("\"sparse_mode\":\"auto\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_options_hash\":\"deadbeef00000000\""),
            std::string::npos);
  EXPECT_NE(json.find("\"binary\":\"test_bin\""), std::string::npos);
}

TEST(RunManifestTest, BuildTypeDefaultsFromCompileMode) {
  RunManifest m;
  const std::string json = m.ToJson();
  const std::string expect =
      std::string("\"build_type\":\"") + BuildTypeName() + "\"";
  EXPECT_NE(json.find(expect), std::string::npos) << json;
}

TEST(RunManifestTest, MakeRunManifestReflectsTopologyAndOptions) {
  Topology topo(2, 8, Wrap::kMesh);
  EngineOptions opts;
  opts.sparse = SparseMode::kNever;
  const RunManifest m = MakeRunManifest(topo, opts);
  EXPECT_EQ(m.d, 2);
  EXPECT_EQ(m.n, 8);
  EXPECT_FALSE(m.torus);
  EXPECT_EQ(m.sparse_mode, "never");
  EXPECT_EQ(m.engine_options_hash.size(), 16u);  // 64-bit FNV-1a hex
  // The hash keys on routing-relevant options: flipping one changes it.
  EngineOptions other = opts;
  other.step_cap = 12345;
  EXPECT_NE(MakeRunManifest(topo, other).engine_options_hash,
            m.engine_options_hash);
  // ...and observability hooks do not change it (zero-cost contract: the
  // same routing run hashes the same with and without sinks).
  EngineOptions probed = opts;
  CongestionTrace trace;
  MetricsRegistry metrics;
  probed.probe = &trace;
  probed.metrics = &metrics;
  EXPECT_EQ(MakeRunManifest(topo, probed).engine_options_hash,
            m.engine_options_hash);
}

// ------------------------------------------------------------ MetricsRegistry

TEST(MetricsRegistryTest, CounterAccumulatesAcrossShards) {
  MetricsRegistry reg;
  MetricsRegistry::Counter& c = reg.counter("widgets");
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Total(), 6);
  // Lookup by the same name returns the same counter.
  EXPECT_EQ(&reg.counter("widgets"), &c);
  EXPECT_NE(&reg.counter("other"), &c);
}

TEST(MetricsRegistryTest, CounterIsThreadSafe) {
  MetricsRegistry reg;
  MetricsRegistry::Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Total(), kThreads * kAddsPerThread);
}

TEST(MetricsRegistryTest, GaugeMaxIsMonotone) {
  MetricsRegistry reg;
  MetricsRegistry::Gauge& g = reg.gauge("peak");
  g.Max(5);
  g.Max(3);
  EXPECT_EQ(g.Value(), 5);
  g.Max(9);
  EXPECT_EQ(g.Value(), 9);
  g.Set(1);  // Set is last-write-wins, not monotone
  EXPECT_EQ(g.Value(), 1);
}

TEST(MetricsRegistryTest, HistogramMergesAndQuantiles) {
  MetricsRegistry reg;
  MetricsRegistry::Hist& h = reg.histogram("lat");
  for (std::int64_t v = 1; v <= 100; ++v) h.Add(v);
  QuantileHistogram extra;
  extra.Add(1000);
  h.Merge(extra);
  const QuantileHistogram merged = h.Merged();
  EXPECT_EQ(merged.count(), 101);
  EXPECT_EQ(merged.max(), 1000);
  EXPECT_GE(merged.Quantile(0.5), 40);
  EXPECT_LE(merged.Quantile(0.5), 60);
}

TEST(MetricsRegistryTest, WriteJsonEmitsAllThreeKinds) {
  MetricsRegistry reg;
  reg.counter("c1").Add(7);
  reg.gauge("g1").Set(3);
  reg.histogram("h1").Add(5);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c1\":7}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g1\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"h1\":{\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, EngineRecordsRouteMetrics) {
  Topology topo(2, 8, Wrap::kMesh);
  MetricsRegistry metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(5);
  auto dest = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  RouteResult r = engine.Route(net);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(metrics.counter("engine.routes").Total(), 1);
  EXPECT_EQ(metrics.counter("engine.steps").Total(), r.steps);
  EXPECT_EQ(metrics.counter("engine.moves").Total(), r.moves);
  EXPECT_EQ(metrics.gauge("engine.max_queue").Value(), r.max_queue);
  // The manifest rides on every RouteResult and lands in its JSON.
  ASSERT_NE(r.manifest, nullptr);
  EXPECT_EQ(r.manifest->d, 2);
  EXPECT_NE(r.ToJson().find("\"manifest\":"), std::string::npos);
}

// ----------------------------------------------------------- ChromeTraceWriter

RunManifest TestManifest() {
  RunManifest m;
  m.d = 2;
  m.n = 8;
  m.binary = "test_chrome_trace";
  return m;
}

std::size_t CountOccurrences(const std::string& hay, const std::string& pin) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(pin); pos != std::string::npos;
       pos = hay.find(pin, pos + pin.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTraceWriterTest, ConstructorEmitsTrackGroupMetadata) {
  ChromeTraceWriter writer(TestManifest());
  EXPECT_EQ(writer.event_count(), 5u);  // one process_name per track group
  std::ostringstream os;
  writer.Write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"phases (wall clock)\""), std::string::npos);
  EXPECT_NE(out.find("\"engine counters\""), std::string::npos);
  EXPECT_NE(out.find("\"thread pool\""), std::string::npos);
  EXPECT_NE(out.find("\"packet journeys\""), std::string::npos);
}

TEST(ChromeTraceWriterTest, ManifestIsEmbeddedInMetadata) {
  ChromeTraceWriter writer(TestManifest());
  std::ostringstream os;
  writer.Write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"metadata\": {\"manifest\": "), std::string::npos);
  EXPECT_NE(out.find("\"binary\":\"test_chrome_trace\""), std::string::npos);
}

TEST(ChromeTraceWriterTest, SpanTreeEmitsMatchedPairsOnBothClocks) {
  TraceContext ctx;
  {
    Span outer = ctx.Open("sort");
    outer.RecordRouting(10, 100, 3, 0);
    Span inner = ctx.Open("route");
    inner.RecordRouting(20, 50, 2, 0);
  }
  ChromeTraceWriter writer(TestManifest());
  writer.AddSpanTree(ctx);
  std::ostringstream os;
  writer.Write(os);
  const std::string out = os.str();
  // 2 spans x 2 clock groups -> 4 B and 4 E events, plus matched counts.
  EXPECT_EQ(CountOccurrences(out, "\"ph\":\"B\""), 4u);
  EXPECT_EQ(CountOccurrences(out, "\"ph\":\"E\""), 4u);
  // Top-level span: B+E on 2 clock groups + a thread_name metadata event
  // per clock group naming its track. Nested span: just the B/E pairs.
  EXPECT_EQ(CountOccurrences(out, "\"name\":\"sort\""), 6u);
  EXPECT_EQ(CountOccurrences(out, "\"name\":\"route\""), 4u);
}

TEST(ChromeTraceWriterTest, CountersCreateOneTrackPerSeries) {
  CongestionTrace trace;
  StepSnapshot snap;
  const std::int64_t dim_moves[4] = {3, 1, 2, 0};
  snap.step = 1;
  snap.in_flight = 9;
  snap.arrivals = 1;
  snap.moves = 6;
  snap.dims = 2;
  snap.dim_dir_moves = dim_moves;
  trace.OnStep(snap);
  ChromeTraceWriter writer(TestManifest());
  writer.AddCounters(trace);
  // in_flight, arrivals, moves, queue_p50/p99/max, injected + 4 dim tracks.
  EXPECT_GE(writer.counter_track_count(), 6u);
  std::ostringstream os;
  writer.Write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"in_flight\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"moves.dim0-\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"moves.dim1+\""), std::string::npos);
}

TEST(ChromeTraceWriterTest, PublicAddCounterFeedsNamedTrack) {
  ChromeTraceWriter writer(TestManifest());
  writer.AddCounter("replayed", 1.0, 10);
  writer.AddCounter("replayed", 2.0, 20);
  EXPECT_EQ(writer.counter_track_count(), 1u);
  std::ostringstream os;
  writer.Write(os);
  EXPECT_NE(os.str().find("\"replayed\":20"), std::string::npos);
}

TEST(ChromeTraceWriterTest, WorkerActivityEmitsPerLaneTracks) {
  ThreadPool pool(2);
  ThreadPoolActivity activity;
  pool.set_activity(&activity);
  std::atomic<int> sum{0};
  pool.ParallelFor(1000, [&sum](std::int64_t begin, std::int64_t end) {
    sum.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  pool.set_activity(nullptr);
  ChromeTraceWriter writer(TestManifest());
  writer.AddWorkerActivity(activity);
  std::ostringstream os;
  writer.Write(os);
  const std::string out = os.str();
  EXPECT_GE(CountOccurrences(out, "\"ph\":\"X\""), 1u);
  EXPECT_NE(out.find("\"name\":\"worker 1\""), std::string::npos);
  // X events carry a duration, never negative.
  EXPECT_EQ(out.find("\"dur\":-"), std::string::npos);
}

// Full pipeline: instrumented engine run -> Chrome trace -> python3 JSON
// parser. The strictest JSON check we can run without new dependencies.
TEST(ChromeTraceWriterTest, EmittedTraceRoundTripsThroughPythonJson) {
  if (std::system("python3 -c 'pass' > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  Topology topo(2, 8, Wrap::kMesh);
  TraceContext ctx;
  CongestionTrace trace;
  MetricsRegistry metrics;
  EngineOptions opts;
  opts.probe = &trace;
  opts.metrics = &metrics;
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(3);
  auto dest = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  RouteResult r;
  {
    Span span = ctx.Open("route \"quoted\" phase");  // exercises escaping
    r = engine.Route(net);
    r.RecordTo(span);
  }
  ASSERT_TRUE(r.completed);

  ChromeTraceWriter writer(MakeRunManifest(topo, opts));
  writer.AddSpanTree(ctx);
  writer.AddCounters(trace);
  const std::string path =
      testing::TempDir() + "/mdmesh_chrome_trace_roundtrip.json";
  writer.WriteFile(path);
  const std::string cmd = "python3 -m json.tool '" + path + "' > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "trace is not valid JSON: " << path;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdmesh
