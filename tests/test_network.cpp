#include "net/network.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  return pkt;
}

TEST(NetworkTest, AddAndCount) {
  Topology topo(2, 4, Wrap::kMesh);
  Network net(topo);
  EXPECT_EQ(net.TotalPackets(), 0);
  net.Add(0, MakePacket(1, 5));
  net.Add(0, MakePacket(2, 6));
  net.Add(3, MakePacket(3, 7));
  EXPECT_EQ(net.TotalPackets(), 3);
  EXPECT_EQ(net.MaxQueue(), 2);
  EXPECT_EQ(net.At(0).size(), 2u);
  EXPECT_EQ(net.At(3).size(), 1u);
  EXPECT_TRUE(net.At(1).empty());
}

TEST(NetworkTest, ForEachVisitsEverythingOnce) {
  Topology topo(2, 4, Wrap::kMesh);
  Network net(topo);
  for (ProcId p = 0; p < topo.size(); ++p) net.Add(p, MakePacket(p, p));
  std::int64_t visits = 0;
  std::int64_t id_sum = 0;
  net.ForEach([&](ProcId p, Packet& pkt) {
    ++visits;
    id_sum += pkt.id;
    EXPECT_EQ(pkt.id, p);
  });
  EXPECT_EQ(visits, topo.size());
  EXPECT_EQ(id_sum, topo.size() * (topo.size() - 1) / 2);
}

TEST(NetworkTest, ForEachMutates) {
  Topology topo(1, 4, Wrap::kMesh);
  Network net(topo);
  net.Add(0, MakePacket(0, 0));
  net.ForEach([](ProcId, Packet& pkt) { pkt.dest = 3; });
  EXPECT_EQ(net.At(0)[0].dest, 3);
}

TEST(NetworkTest, GatherScatterRoundTrip) {
  Topology topo(2, 3, Wrap::kMesh);
  Network net(topo);
  net.Add(1, MakePacket(10, 2));
  net.Add(7, MakePacket(11, 0));
  auto all = net.Gather();
  EXPECT_EQ(all.size(), 2u);
  std::vector<std::pair<ProcId, Packet>> placed;
  for (const Packet& pkt : all) placed.emplace_back(pkt.dest, pkt);
  net.Scatter(placed);
  EXPECT_EQ(net.TotalPackets(), 2);
  EXPECT_EQ(net.At(2).size(), 1u);
  EXPECT_EQ(net.At(0).size(), 1u);
  EXPECT_TRUE(net.At(1).empty());
}

TEST(NetworkTest, ClearEmptiesEverything) {
  Topology topo(1, 4, Wrap::kMesh);
  Network net(topo);
  net.Add(0, MakePacket(0, 0));
  net.Add(1, MakePacket(1, 1));
  net.Clear();
  EXPECT_EQ(net.TotalPackets(), 0);
  EXPECT_EQ(net.MaxQueue(), 0);
}

}  // namespace
}  // namespace mdmesh
