#include "bounds/compatibility.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

namespace mdmesh {
namespace {

class CompatibleSchemesTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, int, int>> {};

TEST_P(CompatibleSchemesTest, PaperSchemesAreCompatible) {
  auto [name, d, n, b] = GetParam();
  Topology topo(d, n, Wrap::kMesh);
  auto scheme = MakeIndexing(name, d, n, b);
  CompatibilityResult r = CheckCompatibility(topo, *scheme);
  EXPECT_TRUE(r.compatible) << name << " d=" << d << " n=" << n;
  EXPECT_LT(r.beta, 1.0);
  // A window of ~2 n^(d-1) always contains a full hyperplane for row-major
  // and snake; blocked schemes smear a hyperplane over a slab of blocks and
  // need a constant factor more.
  EXPECT_LE(r.min_window, 8 * IPow(n, d - 1)) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CompatibleSchemesTest,
    ::testing::Values(std::tuple{"row-major", 2, 8, 0},
                      std::tuple{"row-major", 3, 6, 0},
                      std::tuple{"snake", 2, 8, 0},
                      std::tuple{"snake", 3, 6, 0},
                      std::tuple{"snake", 4, 4, 0},
                      std::tuple{"blocked-snake", 2, 8, 4},
                      std::tuple{"blocked-snake", 3, 8, 4},
                      std::tuple{"blocked-row-major", 2, 8, 4}));

TEST(CompatibilityTest, RowMajorWindowIsTwoHyperplanesMinusOne) {
  // For row-major, hyperplanes x_{d-1} = c occupy index ranges
  // [c n^{d-1}, (c+1) n^{d-1}); the minimal window containing a full one at
  // every offset is 2 n^{d-1} - 1.
  Topology topo(2, 8, Wrap::kMesh);
  RowMajorIndexing scheme(2, 8);
  CompatibilityResult r = CheckCompatibility(topo, scheme);
  EXPECT_EQ(r.min_window, 2 * 8 - 1);
}

TEST(CompatibilityTest, WindowPredicateMonotone) {
  Topology topo(2, 8, Wrap::kMesh);
  SnakeIndexing scheme(2, 8);
  bool prev = false;
  for (std::int64_t w = 1; w <= topo.size(); w *= 2) {
    bool now = WindowsContainHyperplane(topo, scheme, w);
    if (prev) {
      EXPECT_TRUE(now) << "monotonicity broke at w=" << w;
    }
    prev = now;
  }
  EXPECT_TRUE(prev);  // full window trivially works
}

TEST(CompatibilityTest, DiagonalSchemeIsLessCompatible) {
  // An adversarial scheme that interleaves hyperplanes (index = coordinate
  // sum ordering) should need a much larger window than row-major.
  class DiagonalIndexing final : public IndexingScheme {
   public:
    DiagonalIndexing(int d, int n, const Topology& topo) : IndexingScheme(d, n) {
      table_.resize(static_cast<std::size_t>(size_));
      inverse_.resize(static_cast<std::size_t>(size_));
      // Order processors by (coordinate sum, id): consecutive indices hop
      // between hyperplanes of every dimension.
      std::vector<ProcId> order(static_cast<std::size_t>(size_));
      std::iota(order.begin(), order.end(), ProcId{0});
      std::stable_sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
        Point ca = topo.Coords(a);
        Point cb = topo.Coords(b);
        int sa = 0, sb = 0;
        for (int i = 0; i < d_; ++i) {
          sa += ca[static_cast<std::size_t>(i)];
          sb += cb[static_cast<std::size_t>(i)];
        }
        return sa != sb ? sa < sb : a < b;
      });
      for (std::int64_t idx = 0; idx < size_; ++idx) {
        table_[static_cast<std::size_t>(order[static_cast<std::size_t>(idx)])] = idx;
        inverse_[static_cast<std::size_t>(idx)] = order[static_cast<std::size_t>(idx)];
      }
      topo_ = &topo;
    }
    std::int64_t Index(const Point& p) const override {
      return table_[static_cast<std::size_t>(topo_->Id(p))];
    }
    Point PointAt(std::int64_t index) const override {
      return topo_->Coords(inverse_[static_cast<std::size_t>(index)]);
    }
    std::string Name() const override { return "diagonal"; }

   private:
    const Topology* topo_ = nullptr;
    std::vector<std::int64_t> table_;
    std::vector<ProcId> inverse_;
  };

  Topology topo(2, 8, Wrap::kMesh);
  DiagonalIndexing diag(2, 8, topo);
  RowMajorIndexing rm(2, 8);
  CompatibilityResult r_diag = CheckCompatibility(topo, diag);
  CompatibilityResult r_rm = CheckCompatibility(topo, rm);
  EXPECT_GT(r_diag.min_window, r_rm.min_window);
}

TEST(CompatibilityTest, OneDimensionalIsDegenerate) {
  // In 1D every "hyperplane" is a single processor: windows of size 1 work.
  Topology topo(1, 16, Wrap::kMesh);
  RowMajorIndexing scheme(1, 16);
  CompatibilityResult r = CheckCompatibility(topo, scheme);
  EXPECT_EQ(r.min_window, 1);
}

}  // namespace
}  // namespace mdmesh
