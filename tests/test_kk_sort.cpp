#include "sorting/kk_sort.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace mdmesh {
namespace {

TEST(KkSortHarnessTest, ParseAndNames) {
  EXPECT_EQ(ParseSortAlgo("simple"), SortAlgo::kSimple);
  EXPECT_EQ(ParseSortAlgo("copy"), SortAlgo::kCopy);
  EXPECT_EQ(ParseSortAlgo("torus"), SortAlgo::kTorus);
  EXPECT_EQ(ParseSortAlgo("full"), SortAlgo::kFull);
  EXPECT_THROW(ParseSortAlgo("quick"), std::invalid_argument);
  EXPECT_STREQ(SortAlgoName(SortAlgo::kSimple), "SimpleSort");
  EXPECT_STREQ(SortAlgoName(SortAlgo::kCopy), "CopySort");
}

TEST(KkSortHarnessTest, FillInputShapes) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 3, InputKind::kRandom, 5);
  EXPECT_EQ(net.TotalPackets(), 3 * topo.size());
  EXPECT_EQ(net.MaxQueue(), 3);
  // Ids are unique.
  std::set<std::int64_t> ids;
  net.ForEach([&](ProcId, const Packet& pkt) {
    EXPECT_TRUE(ids.insert(pkt.id).second);
  });
}

TEST(KkSortHarnessTest, FillExplicitPlacesKeysAlongSnake) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(topo.size()));
  for (std::size_t t = 0; t < keys.size(); ++t) keys[t] = 100 + t;
  FillExplicit(net, grid, 1, keys);
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
      const auto& q = net.At(grid.ProcAt(b, off));
      ASSERT_EQ(q.size(), 1u);
      EXPECT_EQ(q[0].key,
                100 + static_cast<std::uint64_t>(b * grid.block_volume() + off));
    }
  }
}

TEST(KkSortHarnessTest, FillExplicitRejectsWrongCount) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  EXPECT_THROW(FillExplicit(net, grid, 1, {1, 2, 3}), std::invalid_argument);
}

class KkMeshSortTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KkMeshSortTest, SimpleSortHandlesKPacketsPerProcessor) {
  auto [d, n, k] = GetParam();
  Topology topo(d, n, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, k, InputKind::kRandom, 97);
  SortOptions opts;
  opts.g = 2;
  opts.k = k;
  SortResult result = RunSort(SortAlgo::kSimple, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
}

// Corollary 3.1.1 regime is k <= floor(d/4); we exercise k beyond it too —
// correctness holds for any k, only the time bound needs the small k.
INSTANTIATE_TEST_SUITE_P(Loads, KkMeshSortTest,
                         ::testing::Values(std::tuple{2, 8, 2},
                                           std::tuple{2, 16, 2},
                                           std::tuple{2, 8, 4},
                                           std::tuple{3, 8, 2},
                                           std::tuple{4, 8, 1}));

class KkTorusSortTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KkTorusSortTest, TorusSortHandlesKPacketsPerProcessor) {
  auto [d, n, k] = GetParam();
  Topology topo(d, n, Wrap::kTorus);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, k, InputKind::kRandom, 101);
  SortOptions opts;
  opts.g = 2;
  opts.k = k;
  SortResult result = RunSort(SortAlgo::kTorus, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
}

// Corollary 3.3.1: d-d sorting on the d-dimensional torus (k = d).
INSTANTIATE_TEST_SUITE_P(Loads, KkTorusSortTest,
                         ::testing::Values(std::tuple{2, 8, 2},
                                           std::tuple{2, 16, 2},
                                           std::tuple{3, 8, 3},
                                           std::tuple{2, 8, 4}));

TEST(KkSortHarnessTest, CopySortWithK2) {
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 2, InputKind::kRandom, 103);
  SortOptions opts;
  opts.g = 2;
  opts.k = 2;
  SortResult result = RunSort(SortAlgo::kCopy, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
}

TEST(KkSortHarnessTest, FullSortWithK3) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 3, InputKind::kRandom, 107);
  SortOptions opts;
  opts.g = 2;
  opts.k = 3;
  SortResult result = RunSort(SortAlgo::kFull, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
}

}  // namespace
}  // namespace mdmesh
